/// Ablation benches for the design choices DESIGN.md calls out:
///   1. Pruning bound — paper's log2 heuristic vs the sound additive bound
///      vs the aggressive zero-offset variant: selection time, evaluations,
///      pruned counts, and achieved H(T).
///   2. Preprocessing builder — the O(n 2^n) butterfly vs the paper's
///      literal O(|O|^2) scan.
///   3. Correlation model — independent vs latent-truth vs mixture joints
///      feeding the same crowd budget: final F1.
///
///   ./bench_ablation

#include <cmath>
#include <cstdio>
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/answer_model.h"
#include "core/greedy_selector.h"
#include "eval/experiment.h"

using namespace crowdfusion;

namespace {

void PruningAblation() {
  const int n = 14;
  const int k = 8;
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 42);
  auto crowd = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());

  std::printf("Ablation 1 — pruning bound (n=%d, k=%d, Equation 2 cost "
              "model)\n", n, k);
  common::TablePrinter table(
      {"Bound", "Seconds", "Evaluations", "Pruned", "H(T) bits"});
  const struct {
    const char* name;
    bool prune;
    core::GreedySelector::PruningBound bound;
  } kVariants[] = {
      {"none", false, core::GreedySelector::PruningBound::kPaperLog2},
      {"paper log2", true, core::GreedySelector::PruningBound::kPaperLog2},
      {"sound additive", true,
       core::GreedySelector::PruningBound::kSoundAdditive},
      {"aggressive zero", true,
       core::GreedySelector::PruningBound::kAggressiveZero},
  };
  for (const auto& variant : kVariants) {
    core::GreedySelector::Options options;
    options.use_pruning = variant.prune;
    options.pruning_bound = variant.bound;
    core::GreedySelector selector(options);
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd.value();
    request.k = k;
    auto selection = selector.Select(request);
    CF_CHECK(selection.ok());
    table.AddRow({variant.name,
                  common::StrFormat("%.4f", selection->stats.elapsed_seconds),
                  std::to_string(selection->stats.evaluations),
                  std::to_string(selection->stats.pruned),
                  common::StrFormat("%.6f", selection->entropy_bits)});
  }
  table.Print(std::cout);
  std::printf("\n");
}

void PreprocessingBuilderAblation() {
  std::printf(
      "Ablation 2 — answer-joint builders: butterfly O(n 2^n) vs the "
      "paper's scan O(|O|^2)\n");
  auto crowd = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());
  common::TablePrinter table({"n", "|O|", "Butterfly s", "Scan s",
                              "Max abs diff"});
  for (int n = 8; n <= 14; n += 2) {
    const core::JointDistribution joint =
        bench::MakeCorrelatedJoint(n, 77 + static_cast<uint64_t>(n));
    common::Stopwatch timer;
    auto fast = core::AnswerJointTable::Build(joint, *crowd);
    const double fast_seconds = timer.ElapsedSeconds();
    CF_CHECK(fast.ok());
    timer.Restart();
    auto scan = core::AnswerJointTable::BuildByScan(joint, *crowd);
    const double scan_seconds = timer.ElapsedSeconds();
    CF_CHECK(scan.ok());
    double max_diff = 0.0;
    for (size_t i = 0; i < fast->probs().size(); ++i) {
      max_diff = std::max(max_diff,
                          std::fabs(fast->probs()[i] - scan->probs()[i]));
    }
    table.AddRow({std::to_string(n), std::to_string(joint.support_size()),
                  common::StrFormat("%.5f", fast_seconds),
                  common::StrFormat("%.5f", scan_seconds),
                  common::StrFormat("%.2e", max_diff)});
  }
  table.Print(std::cout);
  std::printf("\n");
}

void CorrelationAblation() {
  std::printf(
      "Ablation 3 — correlation model feeding the same crowd budget "
      "(30 books, B=16, Pc=0.8)\n");
  common::TablePrinter table(
      {"Joint model", "F1 before", "F1 after", "Utility after"});
  const struct {
    const char* name;
    data::CorrelationKind kind;
  } kKinds[] = {
      {"independent", data::CorrelationKind::kIndependent},
      {"latent truth", data::CorrelationKind::kLatentTruth},
      {"mixture", data::CorrelationKind::kMixture},
  };
  for (const auto& kind : kKinds) {
    eval::ExperimentOptions options;
    options.dataset.num_books = 30;
    options.dataset.num_sources = 20;
    options.dataset.seed = 21;
    options.budget_per_book = 16;
    options.tasks_per_round = 2;
    options.correlation.kind = kind.kind;
    auto result = eval::RunExperiment(options);
    CF_CHECK(result.ok()) << result.status().ToString();
    table.AddRow({kind.name,
                  common::StrFormat("%.4f", result->initial_quality.f1),
                  common::StrFormat("%.4f", result->final_quality.f1),
                  common::StrFormat("%.2f", result->final_utility_bits)});
  }
  table.Print(std::cout);
  std::printf(
      "\nCorrelation-aware joints let one answer inform related facts, so "
      "the mixture model\nshould dominate independence at equal budget "
      "(the paper's core motivation).\n");
}

}  // namespace

int main() {
  PruningAblation();
  PreprocessingBuilderAblation();
  CorrelationAblation();
  return 0;
}
