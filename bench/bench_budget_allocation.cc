/// Extension experiment (Section V-D follow-up): uniform per-book budgets
/// vs the global BudgetScheduler at equal total cost. The paper attributes
/// part of its residual error to statement-rich books being starved by the
/// flat B = 60 per-book budget; the global allocator removes that error
/// mode. Reports F1 and total utility at several total budgets, plus the
/// spread of per-book spending.
///
///   ./bench_budget_allocation [num_books]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/bayes.h"
#include "core/greedy_selector.h"
#include "core/scheduler.h"
#include "crowd/simulated_crowd.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"
#include "eval/metrics.h"
#include "fusion/crh.h"

using namespace crowdfusion;

namespace {

struct BookProblem {
  core::JointDistribution joint;
  std::vector<bool> truths;
  std::vector<data::StatementCategory> categories;
};

struct Outcome {
  double f1 = 0.0;
  double utility_bits = 0.0;
  int max_book_cost = 0;
  int min_book_cost = 0;
};

std::vector<BookProblem> BuildProblems(int num_books, uint64_t seed) {
  // A heterogeneous dataset: some books get large statement pools, some
  // tiny ones, so uniform budgets misallocate badly.
  data::BookDatasetOptions options;
  options.num_books = num_books;
  options.num_sources = 30;
  options.coverage = 0.7;
  options.true_variants = 4;
  options.false_variants = 8;
  options.seed = seed;
  auto dataset = data::GenerateBookDataset(options);
  CF_CHECK(dataset.ok());
  fusion::CrhFuser fuser;
  auto fused = fuser.Fuse(dataset->claims);
  CF_CHECK(fused.ok());

  std::vector<BookProblem> problems;
  data::CorrelationModelOptions correlation;
  for (const data::Book& book : dataset->books) {
    const int n = static_cast<int>(book.statements.size());
    if (n == 0) continue;
    BookProblem problem;
    std::vector<double> marginals;
    for (int i = 0; i < n; ++i) {
      marginals.push_back(fused->value_probability[static_cast<size_t>(
          book.value_ids[static_cast<size_t>(i)])]);
      problem.truths.push_back(
          book.statements[static_cast<size_t>(i)].is_true);
      problem.categories.push_back(
          book.statements[static_cast<size_t>(i)].category);
    }
    auto joint =
        data::BuildBookJoint(marginals, book.statements, correlation);
    CF_CHECK(joint.ok());
    problem.joint = std::move(joint).value();
    problems.push_back(std::move(problem));
  }
  return problems;
}

Outcome Score(const std::vector<core::JointDistribution>& joints,
              const std::vector<BookProblem>& problems,
              const std::vector<int>& costs) {
  Outcome outcome;
  eval::ConfusionCounts counts;
  for (size_t i = 0; i < joints.size(); ++i) {
    counts += eval::CountConfusion(joints[i].Marginals(), problems[i].truths);
    outcome.utility_bits += -joints[i].EntropyBits();
  }
  outcome.f1 = eval::ComputeF1(counts).f1;
  outcome.max_book_cost = *std::max_element(costs.begin(), costs.end());
  outcome.min_book_cost = *std::min_element(costs.begin(), costs.end());
  return outcome;
}

/// Uniform strategy: every book independently gets total/num_books tasks.
Outcome RunUniform(const std::vector<BookProblem>& problems, int total_budget,
                   const core::CrowdModel& crowd,
                   core::TaskSelector& selector, uint64_t crowd_seed) {
  const int per_book =
      std::max(1, total_budget / static_cast<int>(problems.size()));
  std::vector<core::JointDistribution> joints;
  std::vector<int> costs;
  for (size_t b = 0; b < problems.size(); ++b) {
    crowd::SimulatedCrowd provider(problems[b].truths, problems[b].categories,
                                   crowd::WorkerBias::Uniform(crowd.pc()),
                                   crowd_seed + b);
    core::EngineOptions options;
    options.budget = per_book;
    options.tasks_per_round = 1;
    auto engine = core::CrowdFusionEngine::Create(
        problems[b].joint, crowd, &selector, &provider, options);
    CF_CHECK(engine.ok());
    auto records = engine->Run();
    CF_CHECK(records.ok());
    joints.push_back(engine->current());
    costs.push_back(engine->cost_spent());
  }
  return Score(joints, problems, costs);
}

/// Global strategy: one BudgetScheduler over all books.
Outcome RunGlobal(const std::vector<BookProblem>& problems, int total_budget,
                  const core::CrowdModel& crowd, core::TaskSelector& selector,
                  uint64_t crowd_seed) {
  core::BudgetScheduler::Options options;
  options.total_budget = total_budget;
  auto scheduler = core::BudgetScheduler::Create(crowd, &selector, options);
  CF_CHECK(scheduler.ok());
  std::vector<std::unique_ptr<crowd::SimulatedCrowd>> providers;
  for (size_t b = 0; b < problems.size(); ++b) {
    providers.push_back(std::make_unique<crowd::SimulatedCrowd>(
        problems[b].truths, problems[b].categories,
        crowd::WorkerBias::Uniform(crowd.pc()), crowd_seed + b));
    CF_CHECK(scheduler
                 ->AddInstance(common::StrFormat("book%zu", b),
                               problems[b].joint, providers.back().get())
                 .ok());
  }
  auto records = scheduler->Run();
  CF_CHECK(records.ok());
  std::vector<core::JointDistribution> joints;
  std::vector<int> costs;
  for (int i = 0; i < scheduler->num_instances(); ++i) {
    joints.push_back(scheduler->joint(i));
    costs.push_back(scheduler->cost_spent(i));
  }
  return Score(joints, problems, costs);
}

}  // namespace

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::vector<BookProblem> problems = BuildProblems(num_books, 77);
  auto crowd = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());
  core::GreedySelector::Options greedy_options;
  greedy_options.use_pruning = true;
  greedy_options.use_preprocessing = true;
  core::GreedySelector selector(greedy_options);

  std::printf(
      "Budget allocation: uniform per-book vs global scheduler, %zu books, "
      "Pc = %.1f\n\n",
      problems.size(), crowd->pc());
  common::TablePrinter table({"Total budget", "Uniform F1", "Global F1",
                              "Uniform utility", "Global utility",
                              "Global max/min book cost"});
  for (const int total : {80, 160, 320, 640}) {
    const Outcome uniform =
        RunUniform(problems, total, *crowd, selector, 9000);
    const Outcome global = RunGlobal(problems, total, *crowd, selector, 9000);
    table.AddRow({std::to_string(total),
                  common::StrFormat("%.4f", uniform.f1),
                  common::StrFormat("%.4f", global.f1),
                  common::StrFormat("%.2f", uniform.utility_bits),
                  common::StrFormat("%.2f", global.utility_bits),
                  common::StrFormat("%d / %d", global.max_book_cost,
                                    global.min_book_cost)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: at equal total cost the global scheduler matches "
      "or beats the uniform\nsplit on both metrics, and its per-book "
      "spending is deliberately uneven.\n");
  return 0;
}
