/// Section V-D reproduction: the error analysis. Runs the full pipeline
/// with the category-biased crowd (workers systematically confused by
/// reordered author lists, appended organization info, and misspellings,
/// as the paper observed on gMission) and breaks the residual judgment
/// errors down by statement category.
///
///   ./bench_error_analysis [num_books] [budget]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include <map>

#include "common/table_printer.h"
#include "core/bayes.h"
#include "core/greedy_selector.h"
#include "crowd/simulated_crowd.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"
#include "fusion/crh.h"

using namespace crowdfusion;

namespace {

struct CategoryStats {
  int facts = 0;
  int wrong = 0;          // final judgment != ground truth
  int64_t asked = 0;      // crowd answers collected on this category
  int64_t answered_correctly = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 100;
  const int budget = argc > 2 ? std::atoi(argv[2]) : 60;

  data::BookDatasetOptions dataset_options;
  dataset_options.num_books = num_books;
  dataset_options.num_sources = 24;
  dataset_options.seed = 13;
  auto dataset = data::GenerateBookDataset(dataset_options);
  CF_CHECK(dataset.ok());

  fusion::CrhFuser fuser;
  auto fused = fuser.Fuse(dataset->claims);
  CF_CHECK(fused.ok());

  // The paper measured overall worker accuracy ~0.86 with three confusing
  // categories; WorkerBias's defaults encode exactly that.
  const crowd::WorkerBias bias;
  auto crowd_model = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd_model.ok());
  core::GreedySelector::Options greedy_options;
  greedy_options.use_pruning = true;
  greedy_options.use_preprocessing = true;
  core::GreedySelector selector(greedy_options);

  std::map<data::StatementCategory, CategoryStats> stats;
  uint64_t seed = 1000;
  for (const data::Book& book : dataset->books) {
    const int n = static_cast<int>(book.statements.size());
    if (n == 0) continue;
    std::vector<double> marginals(static_cast<size_t>(n));
    std::vector<bool> truths(static_cast<size_t>(n));
    std::vector<data::StatementCategory> categories(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      marginals[static_cast<size_t>(i)] =
          fused->value_probability[static_cast<size_t>(
              book.value_ids[static_cast<size_t>(i)])];
      truths[static_cast<size_t>(i)] =
          book.statements[static_cast<size_t>(i)].is_true;
      categories[static_cast<size_t>(i)] =
          book.statements[static_cast<size_t>(i)].category;
    }
    data::CorrelationModelOptions correlation;
    auto joint = data::BuildBookJoint(marginals, book.statements, correlation);
    CF_CHECK(joint.ok());
    crowd::SimulatedCrowd provider(truths, categories, bias, seed++);

    core::JointDistribution current = std::move(joint).value();
    int spent = 0;
    while (spent < budget) {
      core::SelectionRequest request;
      request.joint = &current;
      request.crowd = &crowd_model.value();
      request.k = 1;
      auto selection = selector.Select(request);
      CF_CHECK(selection.ok());
      if (selection->tasks.empty()) break;
      auto answers = provider.CollectAnswers(selection->tasks);
      CF_CHECK(answers.ok());
      for (size_t i = 0; i < selection->tasks.size(); ++i) {
        const int fact = selection->tasks[i];
        CategoryStats& cs = stats[categories[static_cast<size_t>(fact)]];
        ++cs.asked;
        if ((*answers)[i] == truths[static_cast<size_t>(fact)]) {
          ++cs.answered_correctly;
        }
      }
      auto posterior = core::PosteriorGivenAnswers(
          current, {selection->tasks, *answers}, *crowd_model);
      CF_CHECK(posterior.ok());
      current = std::move(posterior).value();
      spent += static_cast<int>(selection->tasks.size());
    }

    const std::vector<double> final_marginals = current.Marginals();
    for (int i = 0; i < n; ++i) {
      CategoryStats& cs = stats[categories[static_cast<size_t>(i)]];
      ++cs.facts;
      const bool predicted = final_marginals[static_cast<size_t>(i)] >= 0.5;
      if (predicted != truths[static_cast<size_t>(i)]) ++cs.wrong;
    }
  }

  std::printf(
      "Section V-D — residual error breakdown by statement category\n"
      "(biased crowd: base accuracy %.2f; reordered %.2f; additional-info "
      "%.2f; misspelling %.2f)\n\n",
      bias.base_accuracy, bias.reordered_accuracy,
      bias.additional_info_accuracy, bias.misspelling_accuracy);
  common::TablePrinter table({"Category", "Facts", "Final errors",
                              "Error rate", "Crowd accuracy on asked"});
  int64_t total_asked = 0;
  int64_t total_correct = 0;
  for (const auto& [category, cs] : stats) {
    table.AddRow(
        {data::StatementCategoryName(category), std::to_string(cs.facts),
         std::to_string(cs.wrong),
         common::StrFormat("%.3f",
                           cs.facts ? static_cast<double>(cs.wrong) /
                                          cs.facts
                                    : 0.0),
         common::StrFormat("%.3f",
                           cs.asked ? static_cast<double>(
                                          cs.answered_correctly) /
                                          static_cast<double>(cs.asked)
                                    : 0.0)});
    total_asked += cs.asked;
    total_correct += cs.answered_correctly;
  }
  table.Print(std::cout);
  std::printf(
      "\nOverall crowd accuracy: %.3f (paper measured ~0.86 on clean "
      "statements, lower on the confusing categories)\n",
      total_asked ? static_cast<double>(total_correct) /
                        static_cast<double>(total_asked)
                  : 0.0);
  std::printf(
      "Expected shape (paper Section V-D): Reordered statements dominate "
      "false negatives;\nAdditionalInfo and Misspelling statements dominate "
      "false positives; Clean/WrongAuthor\nstatements are judged nearly "
      "perfectly.\n");
  return 0;
}
