/// Figure 2 reproduction: OPT vs Approx vs Random quality-vs-cost curves
/// on small books (the paper scales down to 40 books with the fewest
/// statements so OPT stays feasible), k = 2, budget B = 10 per book,
/// Pc in {0.7, 0.8, 0.9}. Panels (a)-(c) are F1, (d)-(f) utility; here
/// both metrics print as one table per Pc and all series dump to CSV.
///
///   ./bench_fig2_opt_vs_approx [num_books]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/string_util.h"

#include "eval/experiment.h"
#include "eval/reporting.h"

using namespace crowdfusion;

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 40;
  std::filesystem::create_directories("bench_results");

  for (const double pc : {0.7, 0.8, 0.9}) {
    eval::ExperimentOptions base;
    base.dataset.num_books = num_books;
    base.dataset.num_sources = 15;
    // The fewest-statement books: tiny variant pools keep n <= 5 so the
    // brute-force OPT stays feasible.
    base.dataset.true_variants = 2;
    base.dataset.false_variants = 3;
    base.dataset.seed = 2;
    base.budget_per_book = 10;
    base.tasks_per_round = 2;
    base.assumed_pc = pc;
    base.true_accuracy = pc;

    std::vector<eval::ExperimentResult> series;
    for (const eval::SelectorKind kind :
         {eval::SelectorKind::kOpt, eval::SelectorKind::kGreedyPrunePre,
          eval::SelectorKind::kRandom}) {
      eval::ExperimentOptions options = base;
      options.selector = kind;
      auto result = eval::RunExperiment(options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      // Match the paper's legend.
      result->label = kind == eval::SelectorKind::kOpt ? "OPT"
                      : kind == eval::SelectorKind::kRandom ? "Random"
                                                            : "Approx.";
      series.push_back(std::move(*result));
    }
    eval::PrintCurves(std::cout,
                      common::StrFormat("Figure 2, Pc = %.1f (k=2, B=10)",
                                        pc),
                      series, /*max_rows=*/12);
    eval::PrintSummary(std::cout, series);
    std::printf("\n");
    const std::string csv = common::StrFormat(
        "bench_results/fig2_pc%02d.csv", static_cast<int>(pc * 100));
    if (auto status = eval::WriteCurvesCsv(csv, series); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    } else {
      std::printf("series written to %s\n\n", csv.c_str());
    }
  }
  std::printf(
      "Expected shape (paper Fig. 2): Approx tracks OPT closely; both beat "
      "Random;\nquality is not strictly monotone because crowd answers can "
      "be wrong.\n");
  return 0;
}
