/// Figure 3 reproduction: quality-vs-cost for k = 1..6, Approx vs Random,
/// Pc in {0.7, 0.8, 0.9}, budget B = 60 per book over the full synthetic
/// Book dataset (100 books). Panels (a)/(c) are F1 for k=1..3 / k=4..6,
/// (b)/(d) the corresponding utilities; here each Pc prints one table with
/// all k series and everything is dumped to CSV.
///
///   ./bench_fig3_k_settings [num_books] [budget]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/string_util.h"

#include "eval/experiment.h"
#include "eval/reporting.h"

using namespace crowdfusion;

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 100;
  const int budget = argc > 2 ? std::atoi(argv[2]) : 60;
  std::filesystem::create_directories("bench_results");

  for (const double pc : {0.7, 0.8, 0.9}) {
    std::vector<eval::ExperimentResult> series;
    for (const eval::SelectorKind kind :
         {eval::SelectorKind::kGreedyPrunePre, eval::SelectorKind::kRandom}) {
      for (int k = 1; k <= 6; ++k) {
        eval::ExperimentOptions options;
        options.dataset.num_books = num_books;
        options.dataset.num_sources = 24;
        options.dataset.seed = 3;
        options.budget_per_book = budget;
        options.tasks_per_round = k;
        options.assumed_pc = pc;
        options.true_accuracy = pc;
        options.selector = kind;
        auto result = eval::RunExperiment(options);
        if (!result.ok()) {
          std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
          return 1;
        }
        result->label = common::StrFormat(
            "%s k=%d",
            kind == eval::SelectorKind::kRandom ? "Random" : "Approx.", k);
        series.push_back(std::move(*result));
      }
    }
    eval::PrintCurves(
        std::cout,
        common::StrFormat("Figure 3, Pc = %.1f (B=%d/book, %d books)", pc,
                          budget, num_books),
        series, /*max_rows=*/10);
    eval::PrintSummary(std::cout, series);
    const std::string csv = common::StrFormat(
        "bench_results/fig3_pc%02d.csv", static_cast<int>(pc * 100));
    if (auto status = eval::WriteCurvesCsv(csv, series); status.ok()) {
      std::printf("series written to %s\n\n", csv.c_str());
    }
  }
  std::printf(
      "Expected shape (paper Fig. 3): Approx beats Random at every k; for "
      "Approx smaller k\nis better per unit cost (strongest at Pc=0.7); for "
      "Random *larger* k is better.\n");
  return 0;
}
