/// Figure 4 reproduction: the Pc-setting study. F1 (panel a) and utility
/// (panel b) vs cost for Pc in {0.7, 0.8, 0.9}, Approx vs Random, full
/// dataset. Also runs the paper's calibration observation: the real crowd
/// measured ~0.86 accurate, and assuming 0.8 or 0.9 both work while
/// underestimating at 0.7 slows convergence.
///
///   ./bench_fig4_pc_settings [num_books] [budget]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/string_util.h"

#include "eval/experiment.h"
#include "eval/reporting.h"

using namespace crowdfusion;

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 100;
  const int budget = argc > 2 ? std::atoi(argv[2]) : 60;
  std::filesystem::create_directories("bench_results");

  std::vector<eval::ExperimentResult> series;
  for (const eval::SelectorKind kind :
       {eval::SelectorKind::kGreedyPrunePre, eval::SelectorKind::kRandom}) {
    for (const double pc : {0.7, 0.8, 0.9}) {
      eval::ExperimentOptions options;
      options.dataset.num_books = num_books;
      options.dataset.num_sources = 24;
      options.dataset.seed = 5;
      options.budget_per_book = budget;
      options.tasks_per_round = 1;
      options.assumed_pc = pc;
      options.true_accuracy = pc;
      options.selector = kind;
      auto result = eval::RunExperiment(options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      result->label = common::StrFormat(
          "%s Pc=%.1f",
          kind == eval::SelectorKind::kRandom ? "Random" : "Approx.", pc);
      series.push_back(std::move(*result));
    }
  }
  eval::PrintCurves(std::cout,
                    common::StrFormat("Figure 4, Pc settings (B=%d/book)",
                                      budget),
                    series, /*max_rows=*/12);
  eval::PrintSummary(std::cout, series);
  if (auto status =
          eval::WriteCurvesCsv("bench_results/fig4_pc.csv", series);
      status.ok()) {
    std::printf("series written to bench_results/fig4_pc.csv\n");
  }

  // Calibration study: workers truly ~0.86 accurate (the paper's measured
  // rate); what the system *assumes* varies.
  std::printf("\nCalibration: true crowd accuracy fixed at 0.86, assumed Pc "
              "varies\n");
  std::vector<eval::ExperimentResult> calibration;
  for (const double assumed : {0.7, 0.8, 0.86, 0.9, 0.99}) {
    eval::ExperimentOptions options;
    options.dataset.num_books = num_books / 2;
    options.dataset.num_sources = 24;
    options.dataset.seed = 5;
    options.budget_per_book = budget / 2;
    options.tasks_per_round = 1;
    options.assumed_pc = assumed;
    options.true_accuracy = 0.86;
    auto result = eval::RunExperiment(options);
    if (!result.ok()) return 1;
    result->label = common::StrFormat("assumed Pc=%.2f", assumed);
    calibration.push_back(std::move(*result));
  }
  eval::PrintSummary(std::cout, calibration);
  std::printf(
      "\nExpected shape (paper Fig. 4 + Section V-C3): higher Pc gives "
      "higher utility;\nPc=0.8 and 0.9 reach comparable F1; "
      "underestimating (0.7) slows convergence.\n");
  return 0;
}
