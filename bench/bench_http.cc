/// HTTP serving bench (ISSUE 5 satellite): drives service::HttpFrontend
/// over loopback sockets with concurrent keep-alive clients and reports
/// requests/sec plus p50/p95 call latency for three traffic shapes —
/// /healthz (pure transport), POST /v1/fusion:run with a small engine
/// request (parse + serve + dump), and a create/step*/delete session
/// conversation. Emits BENCH_http.json (BenchReport schema v2:
/// `throughput_per_sec` requests/sec, `p50_ms`/`p95_ms` call latency,
/// `support` total requests, `k` client threads).
///
/// The optional fourth argument turns on the c10k section: the parent
/// forks client processes (the container's per-process fd ceiling cannot
/// hold both the server's and one client's sockets), each child opens its
/// share of keep-alive connections, and once every connection is
/// established the whole set is swept with pipelming-free request rounds.
/// The row lands as `c10k[conns=N]` (n = rounds, support = requests,
/// k = connections) and is throughput-floor-gated by
/// ci/check_bench_regression.py.
///
/// usage: bench_http [requests_per_thread] [threads] [report.json]
///                   [c10k_connections]

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_report.h"
#include "common/math_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "net/http_client.h"
#include "net/router.h"
#include "service/http_frontend.h"
#include "service/request_json.h"

using namespace crowdfusion;

namespace {

/// Small deterministic engine request: 2 books x 4 facts, scripted
/// provider, budget 4 — a few selector rounds per call, so fusion:run
/// measures serving overhead, not selector scaling.
std::string SmallRequestJson() {
  service::FusionRequest request;
  request.mode = service::RunMode::kEngine;
  request.label = "bench_http";
  for (int i = 0; i < 2; ++i) {
    service::InstanceSpec instance;
    instance.name = "b" + std::to_string(i);
    const std::vector<double> marginals = {0.35, 0.6, 0.45, 0.7};
    auto joint = core::JointDistribution::FromIndependentMarginals(marginals);
    CF_CHECK(joint.ok());
    instance.joint = std::move(joint).value();
    instance.truths = {true, false, true, false};
    request.instances.push_back(std::move(instance));
  }
  request.provider.kind = "scripted";
  request.provider.script = {true, false, true, false};
  request.budget.budget_per_instance = 4;
  return service::SerializeFusionRequest(request);
}

struct Shape {
  const char* name;
  /// Runs one logical call; returns HTTP calls made (>= 1) or 0 on error.
  int (*run)(net::HttpClient&, const std::string& body);
};

int RunHealthz(net::HttpClient& client, const std::string&) {
  auto response = client.Get("/healthz");
  return response.ok() && response->status_code == 200 ? 1 : 0;
}

int RunFusion(net::HttpClient& client, const std::string& body) {
  auto response = client.Post("/v1/fusion:run", body);
  return response.ok() && response->status_code == 200 ? 1 : 0;
}

int RunSessionConversation(net::HttpClient& client, const std::string& body) {
  auto created = client.Post("/v1/sessions", body);
  if (!created.ok() || created->status_code != 201) return 0;
  auto parsed = common::JsonValue::Parse(created->body);
  CF_CHECK(parsed.ok());
  const std::string id =
      parsed->Find("session_id")->GetString().value();
  int calls = 1;
  for (int i = 0; i < 16; ++i) {
    auto stepped = client.Post("/v1/sessions/" + id + "/step", "{}");
    if (!stepped.ok() || stepped->status_code != 200) return 0;
    ++calls;
    auto step_body = common::JsonValue::Parse(stepped->body);
    CF_CHECK(step_body.ok());
    if (step_body->Find("done")->GetBool().value()) break;
  }
  auto deleted = client.Delete("/v1/sessions/" + id);
  if (!deleted.ok() || deleted->status_code != 200) return 0;
  return calls + 1;
}

struct ShapeResult {
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  int64_t requests = 0;
};

ShapeResult DriveShape(const Shape& shape, int port, int threads,
                       int calls_per_thread, const std::string& body) {
  std::atomic<int64_t> total_calls{0};
  std::atomic<int64_t> failures{0};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(threads));
  common::Stopwatch stopwatch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      net::HttpClient::Options client_options;
      client_options.host = "127.0.0.1";
      client_options.port = port;
      net::HttpClient client(client_options);
      auto& local = latencies[static_cast<size_t>(t)];
      local.reserve(static_cast<size_t>(calls_per_thread));
      for (int i = 0; i < calls_per_thread; ++i) {
        common::Stopwatch call_watch;
        const int calls = shape.run(client, body);
        local.push_back(call_watch.ElapsedSeconds() * 1e3);
        if (calls == 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
        } else {
          total_calls.fetch_add(calls, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s = stopwatch.ElapsedSeconds();
  CF_CHECK(failures.load() == 0)
      << shape.name << ": " << failures.load() << " failed calls";

  std::vector<double> merged;
  for (const auto& local : latencies) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end());
  ShapeResult result;
  result.requests = total_calls.load();
  result.requests_per_sec =
      static_cast<double>(result.requests) / std::max(wall_s, 1e-9);
  result.p50_ms = common::PercentileOfSorted(merged, 0.50);
  result.p95_ms = common::PercentileOfSorted(merged, 0.95);
  return result;
}

// --------------------------------------------------------------------------
// c10k: N keep-alive connections held open at once, swept with request
// rounds from forked client processes.
// --------------------------------------------------------------------------

void RaiseFdLimitToHard() {
  struct rlimit limit = {};
  if (::getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

bool ReadFull(int fd, void* buf, size_t len) {
  char* at = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, at, len);
    if (n <= 0) return false;
    at += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t len) {
  const char* at = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, at, len);
    if (n <= 0) return false;
    at += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

/// Child body: open `conns` keep-alive connections, report ready, wait
/// for go, sweep every connection `rounds` times, stream the latencies
/// back. Exits nonzero on any failed request so the parent can tell a
/// wedged server from a slow one.
[[noreturn]] void RunC10kChild(int port_fd, int go_fd, int out_fd, int conns,
                               int rounds) {
  int32_t port = 0;
  if (!ReadFull(port_fd, &port, sizeof(port))) _exit(5);

  std::vector<std::unique_ptr<net::HttpClient>> clients;
  clients.reserve(static_cast<size_t>(conns));
  for (int i = 0; i < conns; ++i) {
    net::HttpClient::Options client_options;
    client_options.host = "127.0.0.1";
    client_options.port = port;
    clients.push_back(std::make_unique<net::HttpClient>(client_options));
    // The warm-up request both establishes the connection and primes the
    // server's per-connection buffers — steady state from here on.
    auto response = clients.back()->Get("/healthz");
    if (!response.ok() || response->status_code != 200) _exit(6);
  }
  if (!WriteFull(out_fd, "R", 1)) _exit(5);
  char go = 0;
  if (!ReadFull(go_fd, &go, 1)) _exit(5);

  constexpr int kChildThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::vector<double>> latencies(kChildThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kChildThreads; ++t) {
    workers.emplace_back([&, t] {
      auto& local = latencies[static_cast<size_t>(t)];
      local.reserve(static_cast<size_t>(rounds * conns / kChildThreads + 1));
      for (int r = 0; r < rounds; ++r) {
        for (int i = t; i < conns; i += kChildThreads) {
          common::Stopwatch call_watch;
          auto response = clients[static_cast<size_t>(i)]->Get("/healthz");
          local.push_back(call_watch.ElapsedSeconds() * 1e3);
          if (!response.ok() || response->status_code != 200) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  if (!WriteFull(out_fd, "D", 1)) _exit(5);
  std::vector<double> merged;
  for (const auto& local : latencies) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  const int64_t count = static_cast<int64_t>(merged.size());
  if (!WriteFull(out_fd, &count, sizeof(count))) _exit(5);
  if (!WriteFull(out_fd, merged.data(), merged.size() * sizeof(double))) {
    _exit(5);
  }
  _exit(failures.load() == 0 ? 0 : 7);
}

/// Parent body. MUST run while the process is single-threaded (every
/// earlier server stopped): the children are forked first, then the
/// serving front-end starts, so no thread ever exists across a fork.
void RunC10k(int conns, int threads, int rounds,
             common::BenchReport* report) {
  RaiseFdLimitToHard();
  constexpr int kMaxConnsPerChild = 2500;
  const int children = (conns + kMaxConnsPerChild - 1) / kMaxConnsPerChild;
  struct Child {
    pid_t pid = -1;
    int port_w = -1;  // parent -> child: the bound port
    int go_w = -1;    // parent -> child: start the timed sweep
    int out_r = -1;   // child -> parent: ready byte, done byte, latencies
    int conns = 0;
  };
  std::vector<Child> fleet(static_cast<size_t>(children));
  int remaining = conns;
  for (int c = 0; c < children; ++c) {
    Child& child = fleet[static_cast<size_t>(c)];
    child.conns = std::min(remaining, kMaxConnsPerChild);
    remaining -= child.conns;
    int port_pipe[2], go_pipe[2], out_pipe[2];
    CF_CHECK(::pipe(port_pipe) == 0 && ::pipe(go_pipe) == 0 &&
             ::pipe(out_pipe) == 0)
        << "pipe failed";
    const pid_t pid = ::fork();
    CF_CHECK(pid >= 0) << "fork failed";
    if (pid == 0) {
      ::close(port_pipe[1]);
      ::close(go_pipe[1]);
      ::close(out_pipe[0]);
      RunC10kChild(port_pipe[0], go_pipe[0], out_pipe[1], child.conns,
                   rounds);
    }
    ::close(port_pipe[0]);
    ::close(go_pipe[0]);
    ::close(out_pipe[1]);
    child.pid = pid;
    child.port_w = port_pipe[1];
    child.go_w = go_pipe[1];
    child.out_r = out_pipe[0];
  }

  service::HttpFrontend::Options options;
  options.port = 0;
  options.threads = std::max(4, threads);
  options.max_connections = conns + 64;
  options.idle_timeout_seconds = 120.0;  // outlives the slowest setup
  service::HttpFrontend frontend(options);
  CF_CHECK_OK(frontend.Start());

  for (Child& child : fleet) {
    const int32_t port = static_cast<int32_t>(frontend.port());
    CF_CHECK(WriteFull(child.port_w, &port, sizeof(port)));
  }
  for (Child& child : fleet) {
    char ready = 0;
    CF_CHECK(ReadFull(child.out_r, &ready, 1) && ready == 'R')
        << "c10k child failed to open its connections";
  }
  {
    const auto metrics = frontend.GetMetrics();
    CF_CHECK(metrics.connections_current == conns)
        << "expected " << conns << " live connections, have "
        << metrics.connections_current;
  }

  common::Stopwatch stopwatch;
  for (Child& child : fleet) CF_CHECK(WriteFull(child.go_w, "G", 1));
  for (Child& child : fleet) {
    char done = 0;
    CF_CHECK(ReadFull(child.out_r, &done, 1) && done == 'D')
        << "c10k child died mid-sweep";
  }
  const double wall_s = stopwatch.ElapsedSeconds();

  // The keep-alive pin: every connection was accepted exactly once and is
  // still open — zero reconnects across the whole sweep.
  const auto metrics = frontend.GetMetrics();
  CF_CHECK(metrics.connections_accepted == conns)
      << "reconnects during the sweep: accepted "
      << metrics.connections_accepted << " for " << conns << " conns";
  CF_CHECK(metrics.connections_current == conns);

  std::vector<double> merged;
  merged.reserve(static_cast<size_t>(conns) * static_cast<size_t>(rounds));
  for (Child& child : fleet) {
    int64_t count = 0;
    CF_CHECK(ReadFull(child.out_r, &count, sizeof(count)));
    std::vector<double> latencies(static_cast<size_t>(count));
    CF_CHECK(ReadFull(child.out_r, latencies.data(),
                      latencies.size() * sizeof(double)));
    merged.insert(merged.end(), latencies.begin(), latencies.end());
    int status = 0;
    CF_CHECK(::waitpid(child.pid, &status, 0) == child.pid);
    CF_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "c10k child exited " << status;
    ::close(child.port_w);
    ::close(child.go_w);
    ::close(child.out_r);
  }
  frontend.Stop();

  std::sort(merged.begin(), merged.end());
  const auto total = static_cast<int64_t>(merged.size());
  const double requests_per_sec =
      static_cast<double>(total) / std::max(wall_s, 1e-9);
  const std::string config = common::StrFormat("c10k[conns=%d]", conns);
  std::printf(
      "  %-22s %9.0f req/s   p50 %7.3f ms   p95 %7.3f ms   (%lld "
      "requests over %d conns, %d children)\n",
      config.c_str(), requests_per_sec,
      common::PercentileOfSorted(merged, 0.50),
      common::PercentileOfSorted(merged, 0.95),
      static_cast<long long>(total), conns, children);
  common::BenchRecord record;
  record.config = config;
  record.n = rounds;
  record.support = total;
  record.k = conns;
  record.throughput_per_sec = requests_per_sec;
  record.p50_ms = common::PercentileOfSorted(merged, 0.50);
  record.p95_ms = common::PercentileOfSorted(merged, 0.95);
  report->Add(record);
}

}  // namespace

int main(int argc, char** argv) {
  int calls_per_thread = argc > 1 ? std::atoi(argv[1]) : 200;
  int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string report_path = argc > 3 ? argv[3] : "";
  const int c10k_conns = argc > 4 ? std::atoi(argv[4]) : 0;

  service::HttpFrontend::Options options;
  options.port = 0;  // ephemeral: bench never collides with anything
  options.threads = std::max(4, threads);
  service::HttpFrontend frontend(options);
  CF_CHECK_OK(frontend.Start());
  const std::string body = SmallRequestJson();
  std::printf("http bench on port %d: %d threads x %d calls/shape\n",
              frontend.port(), threads, calls_per_thread);

  const Shape shapes[] = {
      {"healthz", RunHealthz},
      {"fusion_run", RunFusion},
      {"session_conversation", RunSessionConversation},
  };
  common::BenchReport report("bench_http");
  for (const Shape& shape : shapes) {
    const ShapeResult result = DriveShape(
        shape, frontend.port(), threads, calls_per_thread, body);
    std::printf(
        "  %-22s %9.0f req/s   p50 %7.3f ms   p95 %7.3f ms   (%lld "
        "requests)\n",
        shape.name, result.requests_per_sec, result.p50_ms, result.p95_ms,
        static_cast<long long>(result.requests));
    common::BenchRecord record;
    record.config = shape.name;
    record.support = result.requests;
    record.k = threads;
    record.throughput_per_sec = result.requests_per_sec;
    record.p50_ms = result.p50_ms;
    record.p95_ms = result.p95_ms;
    report.Add(record);
  }
  frontend.Stop();

  // --- router scale: the same fusion:run traffic through net::Router at
  // 1 vs 2 backends, so the report shows what the front tier costs and
  // what a second backend buys.
  for (const int num_backends : {1, 2}) {
    std::vector<std::unique_ptr<service::HttpFrontend>> backends;
    net::Router::Options router_options;
    router_options.port = 0;
    router_options.threads = std::max(4, threads);
    for (int b = 0; b < num_backends; ++b) {
      service::HttpFrontend::Options backend_options;
      backend_options.port = 0;
      backend_options.threads = std::max(4, threads);
      backends.push_back(
          std::make_unique<service::HttpFrontend>(backend_options));
      CF_CHECK_OK(backends.back()->Start());
      router_options.backends.push_back(
          "127.0.0.1:" + std::to_string(backends.back()->port()));
    }
    net::Router router(router_options);
    CF_CHECK_OK(router.Start());
    const Shape shape{
        num_backends == 1 ? "router_1_backend" : "router_2_backends",
        RunFusion};
    const ShapeResult result = DriveShape(shape, router.port(), threads,
                                          calls_per_thread, body);
    std::printf(
        "  %-22s %9.0f req/s   p50 %7.3f ms   p95 %7.3f ms   (%lld "
        "requests)\n",
        shape.name, result.requests_per_sec, result.p50_ms, result.p95_ms,
        static_cast<long long>(result.requests));
    common::BenchRecord record;
    record.config = shape.name;
    record.support = result.requests;
    record.k = threads;
    record.throughput_per_sec = result.requests_per_sec;
    record.p50_ms = result.p50_ms;
    record.p95_ms = result.p95_ms;
    report.Add(record);
    router.Stop();
    for (auto& backend : backends) backend->Stop();
  }

  // Last, after every server above stopped (the process must be single-
  // threaded when the client fleet forks).
  if (c10k_conns > 0) {
    RunC10k(c10k_conns, threads, /*rounds=*/5, &report);
  }

  if (!report_path.empty()) {
    if (auto status = report.MergeToFile(report_path); !status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", report_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", report_path.c_str());
  }
  return 0;
}
