/// HTTP serving bench (ISSUE 5 satellite): drives service::HttpFrontend
/// over loopback sockets with concurrent keep-alive clients and reports
/// requests/sec plus p50/p95 call latency for three traffic shapes —
/// /healthz (pure transport), POST /v1/fusion:run with a small engine
/// request (parse + serve + dump), and a create/step*/delete session
/// conversation. Emits BENCH_http.json (BenchReport schema v2:
/// `throughput_per_sec` requests/sec, `p50_ms`/`p95_ms` call latency,
/// `support` total requests, `k` client threads).
///
/// usage: bench_http [requests_per_thread] [threads] [report.json]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_report.h"
#include "common/math_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "net/http_client.h"
#include "net/router.h"
#include "service/http_frontend.h"
#include "service/request_json.h"

using namespace crowdfusion;

namespace {

/// Small deterministic engine request: 2 books x 4 facts, scripted
/// provider, budget 4 — a few selector rounds per call, so fusion:run
/// measures serving overhead, not selector scaling.
std::string SmallRequestJson() {
  service::FusionRequest request;
  request.mode = service::RunMode::kEngine;
  request.label = "bench_http";
  for (int i = 0; i < 2; ++i) {
    service::InstanceSpec instance;
    instance.name = "b" + std::to_string(i);
    const std::vector<double> marginals = {0.35, 0.6, 0.45, 0.7};
    auto joint = core::JointDistribution::FromIndependentMarginals(marginals);
    CF_CHECK(joint.ok());
    instance.joint = std::move(joint).value();
    instance.truths = {true, false, true, false};
    request.instances.push_back(std::move(instance));
  }
  request.provider.kind = "scripted";
  request.provider.script = {true, false, true, false};
  request.budget.budget_per_instance = 4;
  return service::SerializeFusionRequest(request);
}

struct Shape {
  const char* name;
  /// Runs one logical call; returns HTTP calls made (>= 1) or 0 on error.
  int (*run)(net::HttpClient&, const std::string& body);
};

int RunHealthz(net::HttpClient& client, const std::string&) {
  auto response = client.Get("/healthz");
  return response.ok() && response->status_code == 200 ? 1 : 0;
}

int RunFusion(net::HttpClient& client, const std::string& body) {
  auto response = client.Post("/v1/fusion:run", body);
  return response.ok() && response->status_code == 200 ? 1 : 0;
}

int RunSessionConversation(net::HttpClient& client, const std::string& body) {
  auto created = client.Post("/v1/sessions", body);
  if (!created.ok() || created->status_code != 201) return 0;
  auto parsed = common::JsonValue::Parse(created->body);
  CF_CHECK(parsed.ok());
  const std::string id =
      parsed->Find("session_id")->GetString().value();
  int calls = 1;
  for (int i = 0; i < 16; ++i) {
    auto stepped = client.Post("/v1/sessions/" + id + "/step", "{}");
    if (!stepped.ok() || stepped->status_code != 200) return 0;
    ++calls;
    auto step_body = common::JsonValue::Parse(stepped->body);
    CF_CHECK(step_body.ok());
    if (step_body->Find("done")->GetBool().value()) break;
  }
  auto deleted = client.Delete("/v1/sessions/" + id);
  if (!deleted.ok() || deleted->status_code != 200) return 0;
  return calls + 1;
}

struct ShapeResult {
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  int64_t requests = 0;
};

ShapeResult DriveShape(const Shape& shape, int port, int threads,
                       int calls_per_thread, const std::string& body) {
  std::atomic<int64_t> total_calls{0};
  std::atomic<int64_t> failures{0};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(threads));
  common::Stopwatch stopwatch;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      net::HttpClient::Options client_options;
      client_options.host = "127.0.0.1";
      client_options.port = port;
      net::HttpClient client(client_options);
      auto& local = latencies[static_cast<size_t>(t)];
      local.reserve(static_cast<size_t>(calls_per_thread));
      for (int i = 0; i < calls_per_thread; ++i) {
        common::Stopwatch call_watch;
        const int calls = shape.run(client, body);
        local.push_back(call_watch.ElapsedSeconds() * 1e3);
        if (calls == 0) {
          failures.fetch_add(1, std::memory_order_relaxed);
        } else {
          total_calls.fetch_add(calls, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s = stopwatch.ElapsedSeconds();
  CF_CHECK(failures.load() == 0)
      << shape.name << ": " << failures.load() << " failed calls";

  std::vector<double> merged;
  for (const auto& local : latencies) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end());
  ShapeResult result;
  result.requests = total_calls.load();
  result.requests_per_sec =
      static_cast<double>(result.requests) / std::max(wall_s, 1e-9);
  result.p50_ms = common::PercentileOfSorted(merged, 0.50);
  result.p95_ms = common::PercentileOfSorted(merged, 0.95);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int calls_per_thread = argc > 1 ? std::atoi(argv[1]) : 200;
  int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string report_path = argc > 3 ? argv[3] : "";

  service::HttpFrontend::Options options;
  options.port = 0;  // ephemeral: bench never collides with anything
  options.threads = std::max(4, threads);
  service::HttpFrontend frontend(options);
  CF_CHECK_OK(frontend.Start());
  const std::string body = SmallRequestJson();
  std::printf("http bench on port %d: %d threads x %d calls/shape\n",
              frontend.port(), threads, calls_per_thread);

  const Shape shapes[] = {
      {"healthz", RunHealthz},
      {"fusion_run", RunFusion},
      {"session_conversation", RunSessionConversation},
  };
  common::BenchReport report("bench_http");
  for (const Shape& shape : shapes) {
    const ShapeResult result = DriveShape(
        shape, frontend.port(), threads, calls_per_thread, body);
    std::printf(
        "  %-22s %9.0f req/s   p50 %7.3f ms   p95 %7.3f ms   (%lld "
        "requests)\n",
        shape.name, result.requests_per_sec, result.p50_ms, result.p95_ms,
        static_cast<long long>(result.requests));
    common::BenchRecord record;
    record.config = shape.name;
    record.support = result.requests;
    record.k = threads;
    record.throughput_per_sec = result.requests_per_sec;
    record.p50_ms = result.p50_ms;
    record.p95_ms = result.p95_ms;
    report.Add(record);
  }
  frontend.Stop();

  // --- router scale: the same fusion:run traffic through net::Router at
  // 1 vs 2 backends, so the report shows what the front tier costs and
  // what a second backend buys.
  for (const int num_backends : {1, 2}) {
    std::vector<std::unique_ptr<service::HttpFrontend>> backends;
    net::Router::Options router_options;
    router_options.port = 0;
    router_options.threads = std::max(4, threads);
    for (int b = 0; b < num_backends; ++b) {
      service::HttpFrontend::Options backend_options;
      backend_options.port = 0;
      backend_options.threads = std::max(4, threads);
      backends.push_back(
          std::make_unique<service::HttpFrontend>(backend_options));
      CF_CHECK_OK(backends.back()->Start());
      router_options.backends.push_back(
          "127.0.0.1:" + std::to_string(backends.back()->port()));
    }
    net::Router router(router_options);
    CF_CHECK_OK(router.Start());
    const Shape shape{
        num_backends == 1 ? "router_1_backend" : "router_2_backends",
        RunFusion};
    const ShapeResult result = DriveShape(shape, router.port(), threads,
                                          calls_per_thread, body);
    std::printf(
        "  %-22s %9.0f req/s   p50 %7.3f ms   p95 %7.3f ms   (%lld "
        "requests)\n",
        shape.name, result.requests_per_sec, result.p50_ms, result.p95_ms,
        static_cast<long long>(result.requests));
    common::BenchRecord record;
    record.config = shape.name;
    record.support = result.requests;
    record.k = threads;
    record.throughput_per_sec = result.requests_per_sec;
    record.p50_ms = result.p50_ms;
    record.p95_ms = result.p95_ms;
    report.Add(record);
    router.Stop();
    for (auto& backend : backends) backend->Stop();
  }

  if (!report_path.empty()) {
    if (auto status = report.MergeToFile(report_path); !status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", report_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", report_path.c_str());
  }
  return 0;
}
