/// Google-benchmark micro benchmarks of the core primitives: entropy,
/// marginalization, the BSC butterfly, answer-joint preprocessing,
/// partition refinement, Bayesian updates, and one-round selection.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/answer_model.h"
#include "core/bayes.h"
#include "core/greedy_selector.h"
#include "core/opt_selector.h"
#include "core/random_selector.h"

namespace crowdfusion {
namespace {

core::CrowdModel Crowd() {
  auto crowd = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());
  return std::move(crowd).value();
}

void BM_Entropy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint =
      bench::MakeCorrelatedJoint(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.EntropyBits());
  }
  state.SetComplexityN(joint.support_size());
}
BENCHMARK(BM_Entropy)->Arg(8)->Arg(12)->Arg(16)->Complexity(benchmark::oN);

void BM_MarginalizeOnto(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 2);
  const std::vector<int> tasks = {0, 2, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.MarginalizeOnto(tasks));
  }
}
BENCHMARK(BM_MarginalizeOnto)->Arg(8)->Arg(12)->Arg(16);

void BM_ChannelButterfly(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const core::CrowdModel crowd = Crowd();
  std::vector<double> dist(1ULL << k, 1.0 / static_cast<double>(1ULL << k));
  for (auto _ : state) {
    std::vector<double> copy = dist;
    crowd.PushThroughChannel(copy, k);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ChannelButterfly)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_AnswerDistributionFast(benchmark::State& state) {
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(12, 3);
  const core::CrowdModel crowd = Crowd();
  const std::vector<int> tasks = {0, 3, 5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AnswerDistribution(joint, tasks, crowd));
  }
}
BENCHMARK(BM_AnswerDistributionFast);

void BM_AnswerDistributionBruteForce(benchmark::State& state) {
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(12, 3);
  const core::CrowdModel crowd = Crowd();
  const std::vector<int> tasks = {0, 3, 5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::AnswerDistributionBruteForce(joint, tasks, crowd));
  }
}
BENCHMARK(BM_AnswerDistributionBruteForce);

void BM_AnswerJointBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 4);
  const core::CrowdModel crowd = Crowd();
  for (auto _ : state) {
    auto table = core::AnswerJointTable::Build(joint, crowd);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_AnswerJointBuild)->Arg(8)->Arg(12)->Arg(16);

void BM_AnswerJointBuildByScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 4);
  const core::CrowdModel crowd = Crowd();
  for (auto _ : state) {
    auto table = core::AnswerJointTable::BuildByScan(joint, crowd);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_AnswerJointBuildByScan)->Arg(8)->Arg(10)->Arg(12);

void BM_PartitionRefinerCandidate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 5);
  const core::CrowdModel crowd = Crowd();
  auto table = core::AnswerJointTable::Build(joint, crowd);
  CF_CHECK(table.ok());
  core::PartitionRefiner refiner(&table.value());
  refiner.Commit(0);
  refiner.Commit(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(refiner.EntropyWithCandidate(3));
  }
}
BENCHMARK(BM_PartitionRefinerCandidate)->Arg(8)->Arg(12)->Arg(16);

void BM_BayesUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 6);
  const core::CrowdModel crowd = Crowd();
  const core::AnswerSet answers{{0, 2, 4}, {true, false, true}};
  for (auto _ : state) {
    auto posterior = core::PosteriorGivenAnswers(joint, answers, crowd);
    benchmark::DoNotOptimize(posterior);
  }
}
BENCHMARK(BM_BayesUpdate)->Arg(8)->Arg(12)->Arg(16);

void BM_GreedySelectPreprocessed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 7);
  const core::CrowdModel crowd = Crowd();
  core::GreedySelector::Options options;
  options.use_pruning = true;
  options.use_preprocessing = true;
  core::GreedySelector selector(options);
  for (auto _ : state) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = 3;
    benchmark::DoNotOptimize(selector.Select(request));
  }
}
BENCHMARK(BM_GreedySelectPreprocessed)->Arg(8)->Arg(12)->Arg(16);

void BM_GreedySelectBruteForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 7);
  const core::CrowdModel crowd = Crowd();
  core::GreedySelector selector;
  for (auto _ : state) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = 3;
    benchmark::DoNotOptimize(selector.Select(request));
  }
}
BENCHMARK(BM_GreedySelectBruteForce)->Arg(8)->Arg(12);

void BM_OptSelect(benchmark::State& state) {
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(10, 8);
  const core::CrowdModel crowd = Crowd();
  core::OptSelector selector;
  for (auto _ : state) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = static_cast<int>(state.range(0));
    benchmark::DoNotOptimize(selector.Select(request));
  }
}
BENCHMARK(BM_OptSelect)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace crowdfusion
