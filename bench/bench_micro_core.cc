/// Google-benchmark micro benchmarks of the core primitives: entropy,
/// marginalization, the BSC butterfly, answer-joint preprocessing,
/// partition refinement (dense and sparse), Bayesian updates, and
/// one-round selection. The custom main additionally times the sparse
/// greedy at paper scale (n = 64, |O| = 10^5) and merges the measurement
/// into the BENCH_greedy.json baseline.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "common/bench_report.h"
#include "common/math_util.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "core/answer_model.h"
#include "core/bayes.h"
#include "core/greedy_selector.h"
#include "core/opt_selector.h"
#include "core/random_selector.h"
#include "core/sparse_refiner.h"
#include "core/utility.h"

namespace crowdfusion {
namespace {

core::CrowdModel Crowd() {
  auto crowd = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());
  return std::move(crowd).value();
}

void BM_Entropy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint =
      bench::MakeCorrelatedJoint(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.EntropyBits());
  }
  state.SetComplexityN(joint.support_size());
}
BENCHMARK(BM_Entropy)->Arg(8)->Arg(12)->Arg(16)->Complexity(benchmark::oN);

void BM_MarginalizeOnto(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 2);
  const std::vector<int> tasks = {0, 2, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(joint.MarginalizeOnto(tasks));
  }
}
BENCHMARK(BM_MarginalizeOnto)->Arg(8)->Arg(12)->Arg(16);

void BM_ChannelButterfly(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const core::CrowdModel crowd = Crowd();
  std::vector<double> dist(1ULL << k, 1.0 / static_cast<double>(1ULL << k));
  for (auto _ : state) {
    std::vector<double> copy = dist;
    crowd.PushThroughChannel(copy, k);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ChannelButterfly)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_AnswerDistributionFast(benchmark::State& state) {
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(12, 3);
  const core::CrowdModel crowd = Crowd();
  const std::vector<int> tasks = {0, 3, 5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AnswerDistribution(joint, tasks, crowd));
  }
}
BENCHMARK(BM_AnswerDistributionFast);

void BM_AnswerDistributionBruteForce(benchmark::State& state) {
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(12, 3);
  const core::CrowdModel crowd = Crowd();
  const std::vector<int> tasks = {0, 3, 5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::AnswerDistributionBruteForce(joint, tasks, crowd));
  }
}
BENCHMARK(BM_AnswerDistributionBruteForce);

void BM_AnswerJointBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 4);
  const core::CrowdModel crowd = Crowd();
  for (auto _ : state) {
    auto table = core::AnswerJointTable::Build(joint, crowd);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_AnswerJointBuild)->Arg(8)->Arg(12)->Arg(16);

void BM_AnswerJointBuildByScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 4);
  const core::CrowdModel crowd = Crowd();
  for (auto _ : state) {
    auto table = core::AnswerJointTable::BuildByScan(joint, crowd);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_AnswerJointBuildByScan)->Arg(8)->Arg(10)->Arg(12);

void BM_PartitionRefinerCandidate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 5);
  const core::CrowdModel crowd = Crowd();
  auto table = core::AnswerJointTable::Build(joint, crowd);
  CF_CHECK(table.ok());
  core::PartitionRefiner refiner(&table.value());
  refiner.Commit(0);
  refiner.Commit(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(refiner.EntropyWithCandidate(3));
  }
}
BENCHMARK(BM_PartitionRefinerCandidate)->Arg(8)->Arg(12)->Arg(16);

void BM_SparseRefinerCandidate(benchmark::State& state) {
  const int n = 64;
  const int support = static_cast<int>(state.range(0));
  const core::JointDistribution joint =
      bench::MakeSparseCorrelatedJoint(n, support, 5);
  const core::CrowdModel crowd = Crowd();
  core::SparsePartitionRefiner refiner(joint, crowd);
  refiner.Commit(0);
  refiner.Commit(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(refiner.EntropyWithCandidate(3));
  }
  state.SetComplexityN(joint.support_size());
}
BENCHMARK(BM_SparseRefinerCandidate)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Complexity(benchmark::oN);

/// The batched selection kernel: one pass over the support evaluating a
/// whole candidate set, forced to each tile kernel so scalar and AVX2
/// stay individually comparable across runs whatever kAuto would pick.
void BM_SparseRefinerBatchedSweep(benchmark::State& state) {
  const int support = static_cast<int>(state.range(0));
  const bool use_avx2 = state.range(1) != 0;
  if (use_avx2 && !common::CpuSupportsAvx2()) {
    state.SkipWithError("host cannot run the AVX2 kernel");
    return;
  }
  const int n = 64;
  const core::JointDistribution joint =
      bench::MakeSparseCorrelatedJoint(n, support, 5);
  const core::CrowdModel crowd = Crowd();
  core::SparsePartitionRefiner::Options options;
  options.simd = use_avx2 ? common::SimdPolicy::kForceAvx2
                          : common::SimdPolicy::kForceScalar;
  core::SparsePartitionRefiner refiner(joint, crowd, options);
  refiner.Commit(0);
  refiner.Commit(1);
  std::vector<int> candidates;
  for (int f = 2; f < n; ++f) candidates.push_back(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(refiner.EntropiesWithCandidates(candidates));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(candidates.size()));
}
BENCHMARK(BM_SparseRefinerBatchedSweep)
    ->ArgNames({"support", "avx2"})
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1}});

void BM_SparseRefinerCommit(benchmark::State& state) {
  const core::JointDistribution joint =
      bench::MakeSparseCorrelatedJoint(64, static_cast<int>(state.range(0)),
                                       6);
  const core::CrowdModel crowd = Crowd();
  for (auto _ : state) {
    core::SparsePartitionRefiner refiner(joint, crowd);
    refiner.Commit(0);
    refiner.Commit(7);
    benchmark::DoNotOptimize(refiner.CommittedEntropyBits());
  }
}
BENCHMARK(BM_SparseRefinerCommit)->Arg(1000)->Arg(10000);

void BM_MarginalGainProfile(benchmark::State& state) {
  const int n = 64;
  const core::JointDistribution joint =
      bench::MakeSparseCorrelatedJoint(n, static_cast<int>(state.range(0)),
                                       7);
  const core::CrowdModel crowd = Crowd();
  const std::vector<int> selected = {0, 5, 9};
  std::vector<int> candidates;
  for (int f = 0; f < n; ++f) {
    if (f != 0 && f != 5 && f != 9) candidates.push_back(f);
  }
  for (auto _ : state) {
    auto gains = core::MarginalGainProfile(joint, selected, candidates,
                                           crowd);
    benchmark::DoNotOptimize(gains);
  }
}
BENCHMARK(BM_MarginalGainProfile)->Arg(1000)->Arg(10000);

void BM_SparseGreedySelect(benchmark::State& state) {
  const core::JointDistribution joint = bench::MakeSparseCorrelatedJoint(
      64, static_cast<int>(state.range(0)), 8);
  const core::CrowdModel crowd = Crowd();
  core::GreedySelector::Options options;
  options.use_pruning = true;
  options.use_preprocessing = true;
  options.preprocessing_mode =
      core::GreedySelector::PreprocessingMode::kSparse;
  core::GreedySelector selector(options);
  for (auto _ : state) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = 8;
    benchmark::DoNotOptimize(selector.Select(request));
  }
}
BENCHMARK(BM_SparseGreedySelect)->Arg(1000)->Arg(10000);

void BM_BayesUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 6);
  const core::CrowdModel crowd = Crowd();
  const core::AnswerSet answers{{0, 2, 4}, {true, false, true}};
  for (auto _ : state) {
    auto posterior = core::PosteriorGivenAnswers(joint, answers, crowd);
    benchmark::DoNotOptimize(posterior);
  }
}
BENCHMARK(BM_BayesUpdate)->Arg(8)->Arg(12)->Arg(16);

void BM_GreedySelectPreprocessed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 7);
  const core::CrowdModel crowd = Crowd();
  core::GreedySelector::Options options;
  options.use_pruning = true;
  options.use_preprocessing = true;
  core::GreedySelector selector(options);
  for (auto _ : state) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = 3;
    benchmark::DoNotOptimize(selector.Select(request));
  }
}
BENCHMARK(BM_GreedySelectPreprocessed)->Arg(8)->Arg(12)->Arg(16);

void BM_GreedySelectBruteForce(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 7);
  const core::CrowdModel crowd = Crowd();
  core::GreedySelector selector;
  for (auto _ : state) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = 3;
    benchmark::DoNotOptimize(selector.Select(request));
  }
}
BENCHMARK(BM_GreedySelectBruteForce)->Arg(8)->Arg(12);

void BM_OptSelect(benchmark::State& state) {
  const core::JointDistribution joint = bench::MakeCorrelatedJoint(10, 8);
  const core::CrowdModel crowd = Crowd();
  core::OptSelector selector;
  for (auto _ : state) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = static_cast<int>(state.range(0));
    benchmark::DoNotOptimize(selector.Select(request));
  }
}
BENCHMARK(BM_OptSelect)->Arg(1)->Arg(2)->Arg(3);

/// Times one full sparse greedy selection at paper scale and merges it
/// into the shared baseline file next to bench_table5_runtime's rows.
int EmitBaseline(const std::string& report_path) {
  const int n = 64;
  const int support = 100000;
  const int k = 8;
  const core::JointDistribution joint =
      bench::MakeSparseCorrelatedJoint(n, support, 42);
  const core::CrowdModel crowd = Crowd();
  core::GreedySelector::Options options;
  options.use_pruning = true;
  options.use_preprocessing = true;
  core::GreedySelector selector(options);
  core::SelectionRequest request;
  request.joint = &joint;
  request.crowd = &crowd;
  request.k = k;
  const common::Stopwatch timer;
  auto selection = selector.Select(request);
  const double seconds = timer.ElapsedSeconds();
  CF_CHECK(selection.ok()) << selection.status().ToString();
  CF_CHECK(selection->stats.sparse_preprocessing);

  common::BenchReport report("bench_micro_core");
  common::BenchRecord record;
  record.config = selector.name() + "[sparse]";
  record.n = n;
  record.support = joint.support_size();
  record.k = k;
  record.wall_ms = seconds * 1e3;
  record.entropy_bits = selection->entropy_bits;
  report.Add(std::move(record));

  // Per-kernel rows for the batched candidate sweep itself, so a kernel
  // regression is caught even where the end-to-end greedy would hide it.
  core::SparsePartitionRefiner::Options base_options;
  for (const bool use_avx2 : {false, true}) {
    if (use_avx2 && !common::CpuSupportsAvx2()) continue;
    core::SparsePartitionRefiner::Options refiner_options = base_options;
    refiner_options.simd = use_avx2 ? common::SimdPolicy::kForceAvx2
                                    : common::SimdPolicy::kForceScalar;
    core::SparsePartitionRefiner refiner(joint, crowd, refiner_options);
    refiner.Commit(0);
    refiner.Commit(1);
    std::vector<int> candidates;
    for (int f = 2; f < n; ++f) candidates.push_back(f);
    std::vector<double> entropies = refiner.EntropiesWithCandidates(
        candidates);  // warm-up: scratch reaches its high-water mark
    double best_seconds = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const common::Stopwatch sweep_timer;
      entropies = refiner.EntropiesWithCandidates(candidates);
      const double sweep_seconds = sweep_timer.ElapsedSeconds();
      if (rep == 0 || sweep_seconds < best_seconds) {
        best_seconds = sweep_seconds;
      }
    }
    common::BenchRecord kernel_record;
    kernel_record.config =
        use_avx2 ? "BatchedSweep[avx2]" : "BatchedSweep[scalar]";
    kernel_record.n = n;
    kernel_record.support = joint.support_size();
    kernel_record.k = static_cast<int>(candidates.size());
    kernel_record.wall_ms = best_seconds * 1e3;
    kernel_record.entropy_bits = entropies.front();
    report.Add(kernel_record);
    std::printf("batched sweep [%s]: %d candidates over |O|=%d: %.2f ms\n",
                use_avx2 ? "avx2" : "scalar",
                static_cast<int>(candidates.size()), joint.support_size(),
                best_seconds * 1e3);
  }
  const common::Status written = report.MergeToFile(report_path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", report_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("sparse greedy baseline: n=%d |O|=%d k=%d %.1f ms -> %s\n", n,
              joint.support_size(), k, seconds * 1e3, report_path.c_str());
  return 0;
}

}  // namespace
}  // namespace crowdfusion

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Baseline emission is opt-in so interactive runs (--benchmark_filter,
  // --benchmark_list_tests) have no side effects; CI sets the variable.
  const char* path = std::getenv("CROWDFUSION_BENCH_REPORT");
  if (path == nullptr || path[0] == '\0') return 0;
  return crowdfusion::EmitBaseline(path);
}
