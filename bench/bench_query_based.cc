/// Section IV evaluation: query-based CrowdFusion. For a sweep of budgets,
/// measures the residual uncertainty of the facts of interest H(I | Ans)
/// under three strategies — query-based greedy, the general greedy, and
/// random — averaged over correlated books. The query-based selector
/// should reach any given FOI confidence with fewer tasks ("if we are not
/// interested in all aspects, we can get higher accuracy by asking fewer
/// tasks").
///
///   ./bench_query_based [num_books] [max_budget]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"

#include "bench_util.h"
#include "common/math_util.h"
#include "common/table_printer.h"
#include "core/bayes.h"
#include "core/greedy_selector.h"
#include "core/query_based.h"
#include "core/random_selector.h"
#include "crowd/simulated_crowd.h"

using namespace crowdfusion;

namespace {

/// Residual FOI entropy after `budget` single-task rounds.
double RunRounds(core::TaskSelector& selector,
                 const core::JointDistribution& initial,
                 const core::CrowdModel& crowd,
                 const std::vector<bool>& truths, const std::vector<int>& foi,
                 int budget, uint64_t seed) {
  crowd::SimulatedCrowd provider =
      crowd::SimulatedCrowd::WithUniformAccuracy(truths, crowd.pc(), seed);
  core::JointDistribution current = initial;
  for (int round = 0; round < budget; ++round) {
    core::SelectionRequest request;
    request.joint = &current;
    request.crowd = &crowd;
    request.k = 1;
    auto selection = selector.Select(request);
    CF_CHECK(selection.ok());
    if (selection->tasks.empty()) break;
    auto answers = provider.CollectAnswers(selection->tasks);
    CF_CHECK(answers.ok());
    auto posterior = core::PosteriorGivenAnswers(
        current, {selection->tasks, *answers}, crowd);
    CF_CHECK(posterior.ok());
    current = std::move(posterior).value();
  }
  return common::Entropy(current.MarginalizeOnto(foi));
}

}  // namespace

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 25;
  const int max_budget = argc > 2 ? std::atoi(argv[2]) : 8;
  const int kFacts = 8;
  const std::vector<int> foi = {0, 1};

  auto crowd = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());

  std::printf(
      "Query-based CrowdFusion: mean residual H(I | answers) in bits over "
      "%d correlated books\n(n = %d facts, FOI = {0, 1}, Pc = %.1f; lower "
      "is better)\n\n",
      num_books, kFacts, crowd->pc());

  common::TablePrinter table(
      {"Budget", "Query-based", "General greedy", "Random"});
  for (int budget = 0; budget <= max_budget; ++budget) {
    double sums[3] = {0.0, 0.0, 0.0};
    for (int b = 0; b < num_books; ++b) {
      const core::JointDistribution joint =
          bench::MakeCorrelatedJoint(kFacts, 500 + static_cast<uint64_t>(b));
      // Ground truth: sample a world from the joint itself.
      common::Rng rng(9000 + static_cast<uint64_t>(b));
      std::vector<double> weights;
      for (const auto& entry : joint.entries()) weights.push_back(entry.prob);
      const int world = rng.SampleDiscrete(weights);
      const uint64_t truth_mask =
          joint.entries()[static_cast<size_t>(world)].mask;
      std::vector<bool> truths;
      for (int f = 0; f < joint.num_facts(); ++f) {
        truths.push_back((truth_mask >> f) & 1ULL);
      }

      core::QueryBasedGreedySelector::Options query_options;
      query_options.foi = foi;
      core::QueryBasedGreedySelector query_selector(query_options);
      core::GreedySelector general;
      core::RandomSelector random(static_cast<uint64_t>(b) + 1);
      core::TaskSelector* selectors[3] = {&query_selector, &general, &random};
      for (int s = 0; s < 3; ++s) {
        sums[s] += RunRounds(*selectors[s], joint, *crowd, truths, foi,
                             budget, 777 + static_cast<uint64_t>(b));
      }
    }
    table.AddRow({std::to_string(budget),
                  common::StrFormat("%.4f", sums[0] / num_books),
                  common::StrFormat("%.4f", sums[1] / num_books),
                  common::StrFormat("%.4f", sums[2] / num_books)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (Section IV): the query-based selector drives "
      "H(I|Ans) down fastest;\nthe general greedy spends budget on facts "
      "irrelevant to I; random is worst.\n");
  return 0;
}
