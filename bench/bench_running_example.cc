/// Reproduces the paper's running-example tables exactly:
///   Table I   — facts with marginal probabilities,
///   Table II  — the 16-output joint distribution,
///   Table III — fact entropy vs task entropy for every 2-subset
///               (printed under the paper's reversed pair labels; see the
///               note in tests/core/running_example_test.cc),
///   Table IV  — the answer joint distribution at Pc = 0.8.

#include <cstdio>
#include <iostream>

#include "common/math_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/answer_model.h"
#include "core/bayes.h"
#include "core/running_example.h"
#include "core/utility.h"

using namespace crowdfusion;

namespace {

std::string RowPattern(int row) {
  std::string out;
  for (int b = 3; b >= 0; --b) out += ((row >> b) & 1) ? 'T' : 'F';
  return out;
}

uint64_t RowToMask(int row) {
  uint64_t mask = 0;
  for (int i = 0; i < 4; ++i) {
    if ((row >> (3 - i)) & 1) mask |= 1ULL << i;
  }
  return mask;
}

}  // namespace

int main() {
  const core::FactSet facts = core::RunningExample::Facts();
  const core::JointDistribution joint = core::RunningExample::Joint();
  const core::CrowdModel crowd = core::RunningExample::Crowd();

  std::printf("TABLE I — facts with uncertainty\n");
  common::TablePrinter t1({"Fid", "Entity", "Attribute", "Value", "P(f)"});
  for (int i = 0; i < facts.size(); ++i) {
    t1.AddRow({"f" + std::to_string(i + 1), facts.at(i).subject,
               facts.at(i).predicate, facts.at(i).object,
               common::StrFormat("%.2f", joint.Marginal(i))});
  }
  t1.Print(std::cout);

  std::printf("\nTABLE II — output joint distribution\n");
  common::TablePrinter t2({"Oid", "f1f2f3f4", "P(o)"});
  for (int row = 0; row < 16; ++row) {
    t2.AddRow({"o" + std::to_string(row + 1), RowPattern(row),
               common::StrFormat("%.2f", joint.Probability(RowToMask(row)))});
  }
  t2.Print(std::cout);

  std::printf(
      "\nTABLE III — entropy of tasks vs facts, Pc = %.1f\n"
      "(paper labels; paper f_i maps to Table II fact f_%d-i, see tests)\n",
      crowd.pc(), 5);
  common::TablePrinter t3({"T (paper labels)", "H({fi|fi in T})", "H(T)"});
  const struct {
    const char* label;
    int a, b;
  } kPairs[] = {{"{f1,f2}", 3, 2}, {"{f1,f3}", 3, 1}, {"{f1,f4}", 3, 0},
                {"{f2,f3}", 2, 1}, {"{f2,f4}", 2, 0}, {"{f3,f4}", 1, 0}};
  for (const auto& pair : kPairs) {
    const std::vector<int> tasks = {pair.a, pair.b};
    t3.AddRow({pair.label,
               common::StrFormat(
                   "%.3f", common::Entropy(joint.MarginalizeOnto(tasks))),
               common::StrFormat(
                   "%.3f", core::TaskEntropyBits(joint, tasks, crowd))});
  }
  t3.Print(std::cout);

  std::printf("\nTABLE IV — answer joint distribution, Pc = %.1f\n",
              crowd.pc());
  auto answer_table = core::AnswerJointTable::Build(joint, crowd);
  if (!answer_table.ok()) return 1;
  common::TablePrinter t4({"Ansi", "f1f2f3f4", "P(a)"});
  for (int row = 0; row < 16; ++row) {
    t4.AddRow(
        {"a" + std::to_string(row + 1), RowPattern(row),
         common::StrFormat("%.3f",
                           answer_table->Probability(RowToMask(row)))});
  }
  t4.Print(std::cout);

  const core::AnswerSet e{{0}, {true}};
  auto p_e = core::AnswerSetProbability(joint, e, crowd);
  auto posterior = core::PosteriorGivenAnswers(joint, e, crowd);
  if (!p_e.ok() || !posterior.ok()) return 1;
  std::printf(
      "\nWorked update (Section III-A): ask {f1}, answer \"yes\":\n"
      "  P(e)      = %.3f   (paper: 0.5)\n",
      p_e.value());
  std::printf("  P(o1|e)   = %.3f   (paper: 0.012)\n",
              posterior->Probability(RowToMask(0)));
  std::printf("  P(o9|e)   = %.3f   (paper: 0.064)\n",
              posterior->Probability(RowToMask(8)));
  return 0;
}
