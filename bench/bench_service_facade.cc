/// Facade-overhead micro-bench (ISSUE 4 satellite): the same multi-book
/// workload is served twice — once through a hand-wired BudgetScheduler
/// (the direct API) and once through service::FusionService — and the
/// run asserts that the facade costs < 5% extra wall time. The service
/// layer is supposed to be a boundary, not a tax: it builds the same
/// scheduler from registries and then steps it, so everything but
/// session construction is shared code.
///
/// Each variant runs `reps` times; the MINIMUM wall time per variant is
/// compared (minimum, not mean, so scheduler noise on shared CI runners
/// cannot fail the gate spuriously), plus a small absolute slack for
/// sub-millisecond runs. Emits BENCH_service_facade.json (BenchReport
/// schema; `wall_ms` is the per-run minimum, `n` facts/book, `support`
/// books, `k` tasks/step). Exits nonzero when the gate fails, so CI's
/// bench-smoke job enforces it.
///
/// usage: bench_service_facade [books] [facts] [budget_per_book]
///                             [tasks_per_step] [reps] [report.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_report.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/greedy_selector.h"
#include "core/scheduler.h"
#include "crowd/simulated_crowd.h"
#include "service/fusion_service.h"

using namespace crowdfusion;

namespace {

constexpr double kPc = 0.8;
constexpr double kMaxOverheadFraction = 0.05;
/// Absolute slack: below this scale, "5%" is measurement noise.
constexpr double kAbsoluteSlackMs = 2.0;

struct Workload {
  int books = 24;
  int facts = 8;
  int budget_per_book = 8;
  int tasks_per_step = 2;
  int reps = 5;
};

struct Instances {
  std::vector<core::JointDistribution> joints;
  std::vector<std::vector<bool>> truths;
};

Instances MakeInstances(const Workload& workload) {
  Instances instances;
  common::Rng rng(20174);
  for (int b = 0; b < workload.books; ++b) {
    std::vector<double> marginals(static_cast<size_t>(workload.facts));
    for (double& m : marginals) m = rng.NextUniform(0.25, 0.75);
    auto joint = core::JointDistribution::FromIndependentMarginals(marginals);
    CF_CHECK(joint.ok()) << joint.status().ToString();
    instances.joints.push_back(std::move(joint).value());
    std::vector<bool> truths(static_cast<size_t>(workload.facts));
    for (size_t f = 0; f < truths.size(); ++f) {
      truths[f] = rng.NextBernoulli(0.5);
    }
    instances.truths.push_back(std::move(truths));
  }
  return instances;
}

/// The direct API: exactly what a pre-facade caller wired by hand.
double RunDirectOnceMs(const Workload& workload, const Instances& instances,
                       double* utility_out) {
  common::Stopwatch stopwatch;
  auto crowd = core::CrowdModel::Create(kPc);
  CF_CHECK(crowd.ok());
  core::GreedySelector::Options greedy;
  greedy.use_pruning = true;
  greedy.use_preprocessing = true;
  core::GreedySelector selector(greedy);
  core::BudgetScheduler::Options options;
  options.total_budget = workload.budget_per_book * workload.books;
  options.tasks_per_step = workload.tasks_per_step;
  auto scheduler = core::BudgetScheduler::Create(*crowd, &selector, options);
  CF_CHECK(scheduler.ok());
  std::vector<std::unique_ptr<crowd::SimulatedCrowd>> crowds;
  for (size_t i = 0; i < instances.joints.size(); ++i) {
    crowds.push_back(std::make_unique<crowd::SimulatedCrowd>(
        crowd::SimulatedCrowd::WithUniformAccuracy(
            instances.truths[i], kPc, 9000 + static_cast<uint64_t>(i))));
    CF_CHECK(scheduler
                 ->AddInstanceAsync("book" + std::to_string(i),
                                    instances.joints[i], crowds.back().get())
                 .ok());
  }
  auto records = scheduler->Run();
  CF_CHECK(records.ok()) << records.status().ToString();
  *utility_out = scheduler->TotalUtilityBits();
  return stopwatch.ElapsedSeconds() * 1e3;
}

/// The same workload through the typed request/response facade.
double RunServiceOnceMs(const Workload& workload, const Instances& instances,
                        double* utility_out) {
  common::Stopwatch stopwatch;
  service::FusionRequest request;
  request.mode = service::RunMode::kBlocking;
  for (size_t i = 0; i < instances.joints.size(); ++i) {
    service::InstanceSpec instance;
    instance.name = "book" + std::to_string(i);
    instance.joint = instances.joints[i];
    instance.truths = instances.truths[i];
    request.instances.push_back(std::move(instance));
  }
  request.selector.kind = "greedy";
  request.selector.use_pruning = true;
  request.selector.use_preprocessing = true;
  request.provider.kind = "simulated_crowd";
  request.provider.accuracy = kPc;
  request.provider.seed = 9000;
  request.assumed_pc = kPc;
  request.budget.budget_per_instance = workload.budget_per_book;
  request.budget.tasks_per_step = workload.tasks_per_step;
  service::FusionService fusion_service;
  auto response = fusion_service.Run(std::move(request));
  CF_CHECK(response.ok()) << response.status().ToString();
  *utility_out = response->total_utility_bits;
  return stopwatch.ElapsedSeconds() * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  Workload workload;
  if (argc > 1) workload.books = std::atoi(argv[1]);
  if (argc > 2) workload.facts = std::atoi(argv[2]);
  if (argc > 3) workload.budget_per_book = std::atoi(argv[3]);
  if (argc > 4) workload.tasks_per_step = std::atoi(argv[4]);
  if (argc > 5) workload.reps = std::atoi(argv[5]);
  const std::string report_path = argc > 6 ? argv[6] : "";

  const Instances instances = MakeInstances(workload);
  std::printf(
      "facade overhead bench: %d books x %d facts, budget %d/book, k=%d, "
      "%d reps\n",
      workload.books, workload.facts, workload.budget_per_book,
      workload.tasks_per_step, workload.reps);

  double direct_min_ms = 0.0;
  double service_min_ms = 0.0;
  double direct_utility = 0.0;
  double service_utility = 0.0;
  for (int rep = 0; rep < workload.reps; ++rep) {
    const double direct_ms =
        RunDirectOnceMs(workload, instances, &direct_utility);
    const double service_ms =
        RunServiceOnceMs(workload, instances, &service_utility);
    direct_min_ms =
        rep == 0 ? direct_ms : std::min(direct_min_ms, direct_ms);
    service_min_ms =
        rep == 0 ? service_ms : std::min(service_min_ms, service_ms);
    std::printf("  rep %d: direct %.3f ms, service %.3f ms\n", rep,
                direct_ms, service_ms);
  }

  // Identical seeds must mean identical physics: any utility difference
  // is a facade bug, not an overhead question.
  if (direct_utility != service_utility) {
    std::fprintf(stderr,
                 "FAIL: facade changed the result (direct %.17g vs "
                 "service %.17g bits)\n",
                 direct_utility, service_utility);
    return 1;
  }

  const double overhead_ms = service_min_ms - direct_min_ms;
  const double overhead_fraction =
      direct_min_ms > 0 ? overhead_ms / direct_min_ms : 0.0;
  std::printf(
      "direct min %.3f ms, service min %.3f ms, overhead %.3f ms "
      "(%.2f%%), final utility %.4f bits\n",
      direct_min_ms, service_min_ms, overhead_ms, 100.0 * overhead_fraction,
      service_utility);

  if (!report_path.empty()) {
    common::BenchReport report("bench_service_facade");
    common::BenchRecord record;
    record.config = "direct_scheduler";
    record.n = workload.facts;
    record.support = workload.books;
    record.k = workload.tasks_per_step;
    record.wall_ms = direct_min_ms;
    record.entropy_bits = direct_utility;
    report.Add(record);
    record.config = "service_facade";
    record.wall_ms = service_min_ms;
    record.entropy_bits = service_utility;
    report.Add(record);
    if (auto status = report.MergeToFile(report_path); !status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", report_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", report_path.c_str());
  }

  if (overhead_ms > kAbsoluteSlackMs &&
      overhead_fraction > kMaxOverheadFraction) {
    std::fprintf(stderr,
                 "FAIL: facade overhead %.2f%% exceeds the %.0f%% budget\n",
                 100.0 * overhead_fraction, 100.0 * kMaxOverheadFraction);
    return 1;
  }
  std::printf("PASS: facade overhead within %.0f%%\n",
              100.0 * kMaxOverheadFraction);
  return 0;
}
