/// Serving-throughput benchmark for the async answer pipeline: many books
/// served from one global budget by a BudgetScheduler whose simulated
/// crowd answers with real (slept) latency. Compares the legacy blocking
/// select-collect-merge loop against the pipelined mode at several
/// in-flight window sizes, and reports books/sec plus p50/p95
/// scheduling-step latency into the BENCH_service.json baseline.
///
/// In the emitted BenchRecord rows, `n` is facts per book, `support` is
/// the number of books, `k` is tasks per step; `wall_ms` is the whole
/// run's wall clock and `entropy_bits` the final total utility Q(F).
///
/// A final bulk-pipe section streams `pipe_lines` one-book requests
/// through service::RunBulkPipe from a constant-memory synthetic stream
/// (the offline capacity path of ROADMAP item 4) and reports books/sec
/// plus books/sec/core as the `bulk-pipe[m=32]` row.
///
/// usage: bench_service_throughput [books] [facts] [budget_per_book]
///                                 [tasks_per_step] [median_latency_ms]
///                                 [report.json] [pipe_lines]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_report.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/greedy_selector.h"
#include "core/scheduler.h"
#include "crowd/simulated_crowd.h"
#include "service/bulk_pipe.h"
#include "service/fusion_service.h"
#include "service/request_json.h"

using namespace crowdfusion;

namespace {

struct Workload {
  int books = 24;
  int facts = 8;
  int budget_per_book = 8;
  int tasks_per_step = 2;
  double median_latency_ms = 4.0;
};

struct RunResult {
  double wall_ms = 0.0;
  double books_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double total_utility_bits = 0.0;
  int cost_spent = 0;
};

core::JointDistribution MakeBookJoint(int facts, common::Rng& rng) {
  std::vector<double> marginals(static_cast<size_t>(facts));
  for (double& m : marginals) m = rng.NextUniform(0.25, 0.75);
  auto joint = core::JointDistribution::FromIndependentMarginals(marginals);
  CF_CHECK(joint.ok()) << joint.status().ToString();
  return std::move(joint).value();
}

std::vector<bool> MakeTruths(int facts, common::Rng& rng) {
  std::vector<bool> truths(static_cast<size_t>(facts));
  for (size_t i = 0; i < truths.size(); ++i) {
    truths[i] = rng.NextBernoulli(0.5);
  }
  return truths;
}

double Percentile(std::vector<double> values, double fraction) {
  std::sort(values.begin(), values.end());
  return common::PercentileOfSorted(values, fraction);
}

/// One full serving run. `max_in_flight <= 0` selects the blocking loop;
/// `concurrent_selection` toggles overlapped per-book selection compute.
RunResult ServeBooks(const Workload& workload, int max_in_flight,
                     bool concurrent_selection = true) {
  core::GreedySelector::Options selector_options;
  selector_options.use_pruning = true;
  selector_options.use_preprocessing = true;
  core::GreedySelector selector(selector_options);

  auto crowd_model = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd_model.ok());
  core::BudgetScheduler::Options options;
  options.total_budget = workload.books * workload.budget_per_book;
  options.tasks_per_step = workload.tasks_per_step;
  options.max_in_flight = std::max(1, max_in_flight);
  options.concurrent_selection = concurrent_selection;
  auto scheduler =
      core::BudgetScheduler::Create(*crowd_model, &selector, options);
  CF_CHECK(scheduler.ok()) << scheduler.status().ToString();

  // Same seeds for every configuration: identical joints, truths, and
  // latency draws, so the runs differ only in scheduling.
  common::Rng rng(0xB00C5EEDULL);
  std::vector<std::unique_ptr<crowd::SimulatedCrowd>> crowds;
  crowds.reserve(static_cast<size_t>(workload.books));
  for (int b = 0; b < workload.books; ++b) {
    core::JointDistribution joint = MakeBookJoint(workload.facts, rng);
    crowds.push_back(std::make_unique<crowd::SimulatedCrowd>(
        crowd::SimulatedCrowd::WithUniformAccuracy(
            MakeTruths(workload.facts, rng), 0.8,
            1000 + static_cast<uint64_t>(b))));
    crowd::LatencyOptions latency;
    latency.median_seconds = workload.median_latency_ms / 1e3;
    latency.sigma = 0.4;
    latency.seed = 7000 + static_cast<uint64_t>(b);
    crowds.back()->ConfigureAsync(latency);  // real clock: latency is slept
    auto id = scheduler->AddInstanceAsync("book" + std::to_string(b),
                                          std::move(joint),
                                          crowds.back().get());
    CF_CHECK(id.ok()) << id.status().ToString();
  }

  common::Stopwatch stopwatch;
  auto records =
      max_in_flight <= 0 ? scheduler->Run() : scheduler->RunPipelined();
  const double wall_ms = stopwatch.ElapsedMillis();
  CF_CHECK(records.ok()) << records.status().ToString();

  RunResult result;
  result.wall_ms = wall_ms;
  result.books_per_sec =
      static_cast<double>(workload.books) / (wall_ms / 1e3);
  std::vector<double> step_latencies_ms;
  for (const auto& record : *records) {
    if (record.instance < 0) continue;
    step_latencies_ms.push_back(record.latency_seconds * 1e3);
  }
  result.p50_ms = Percentile(step_latencies_ms, 0.50);
  result.p95_ms = Percentile(step_latencies_ms, 0.95);
  result.total_utility_bits = scheduler->TotalUtilityBits();
  result.cost_spent = scheduler->total_cost_spent();
  return result;
}

/// Constant-memory input for the bulk-pipe capacity run: cycles a small
/// pool of serialized request lines until `total` lines were emitted, so
/// a 100k-line stream costs a few KB however long it runs.
class CyclingLineBuf : public std::streambuf {
 public:
  CyclingLineBuf(std::vector<std::string> pool, int64_t total)
      : pool_(std::move(pool)), total_(total) {}

 protected:
  int underflow() override {
    if (emitted_ >= total_) return traits_type::eof();
    current_ = pool_[static_cast<size_t>(
        emitted_ % static_cast<int64_t>(pool_.size()))];
    current_ += '\n';
    ++emitted_;
    setg(current_.data(), current_.data(),
         current_.data() + current_.size());
    return traits_type::to_int_type(current_[0]);
  }

 private:
  std::vector<std::string> pool_;
  int64_t total_ = 0;
  int64_t emitted_ = 0;
  std::string current_;
};

/// Output sink that only counts: response bytes must not accumulate, or
/// the capacity run would measure string growth instead of the pipe.
class CountingNullBuf : public std::streambuf {
 public:
  int64_t bytes() const { return bytes_; }

 protected:
  int overflow(int c) override {
    if (c != traits_type::eof()) ++bytes_;
    return traits_type::not_eof(c);
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    bytes_ += n;
    return n;
  }

 private:
  int64_t bytes_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Workload workload;
  if (argc > 1) workload.books = std::atoi(argv[1]);
  if (argc > 2) workload.facts = std::atoi(argv[2]);
  if (argc > 3) workload.budget_per_book = std::atoi(argv[3]);
  if (argc > 4) workload.tasks_per_step = std::atoi(argv[4]);
  if (argc > 5) workload.median_latency_ms = std::atof(argv[5]);
  const std::string report_path = argc > 6 ? argv[6] : "BENCH_service.json";
  const int64_t pipe_lines = argc > 7 ? std::atoll(argv[7]) : 2000;

  std::printf(
      "serving %d books x %d facts, budget %d/book, k=%d, crowd median "
      "latency %.1f ms\n\n",
      workload.books, workload.facts, workload.budget_per_book,
      workload.tasks_per_step, workload.median_latency_ms);
  std::printf("%-18s %12s %12s %10s %10s %12s\n", "config", "wall_ms",
              "books/sec", "p50_ms", "p95_ms", "utility");

  struct Config {
    std::string label;
    int max_in_flight;  // <= 0: blocking Run()
  };
  const std::vector<Config> configs = {
      {"blocking", 0},
      {"pipelined[m=1]", 1},
      {"pipelined[m=4]", 4},
      {"pipelined[m=8]", 8},
  };

  common::BenchReport report("bench_service_throughput");
  double blocking_throughput = 0.0;
  double best_pipelined_throughput = 0.0;
  for (const Config& config : configs) {
    const RunResult result = ServeBooks(workload, config.max_in_flight);
    std::printf("%-18s %12.1f %12.1f %10.2f %10.2f %12.2f\n",
                config.label.c_str(), result.wall_ms, result.books_per_sec,
                result.p50_ms, result.p95_ms, result.total_utility_bits);
    if (config.max_in_flight <= 0) {
      blocking_throughput = result.books_per_sec;
    } else {
      best_pipelined_throughput =
          std::max(best_pipelined_throughput, result.books_per_sec);
    }
    common::BenchRecord record;
    record.config = config.label;
    record.n = workload.facts;
    record.support = workload.books;
    record.k = workload.tasks_per_step;
    record.wall_ms = result.wall_ms;
    record.entropy_bits = result.total_utility_bits;
    record.throughput_per_sec = result.books_per_sec;
    record.p50_ms = result.p50_ms;
    record.p95_ms = result.p95_ms;
    report.Add(record);
  }

  if (blocking_throughput > 0) {
    std::printf("\npipelined/blocking speedup: %.2fx\n",
                best_pipelined_throughput / blocking_throughput);
  }

  // Compute-overlap rows: zero crowd latency isolates selection compute,
  // so the serial-vs-concurrent selection pair measures the overlap gain
  // itself, normalized to books/sec-per-core (`throughput_per_sec`).
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  Workload compute_bound = workload;
  compute_bound.median_latency_ms = 0.0;
  std::printf("\nzero-latency selection overlap (m=8, %u cores):\n", cores);
  struct OverlapConfig {
    std::string label;
    bool concurrent_selection;
  };
  const std::vector<OverlapConfig> overlap_configs = {
      {"zero-lat[m=8,serial-select]", false},
      {"zero-lat[m=8,concurrent-select]", true},
  };
  double serial_per_core = 0.0;
  double concurrent_per_core = 0.0;
  for (const OverlapConfig& config : overlap_configs) {
    const RunResult result =
        ServeBooks(compute_bound, 8, config.concurrent_selection);
    const double books_per_sec_per_core =
        result.books_per_sec / static_cast<double>(cores);
    std::printf("%-32s %10.1f ms %10.1f books/sec/core\n",
                config.label.c_str(), result.wall_ms,
                books_per_sec_per_core);
    (config.concurrent_selection ? concurrent_per_core : serial_per_core) =
        books_per_sec_per_core;
    common::BenchRecord record;
    record.config = config.label;
    record.n = compute_bound.facts;
    record.support = compute_bound.books;
    record.k = compute_bound.tasks_per_step;
    record.wall_ms = result.wall_ms;
    record.entropy_bits = result.total_utility_bits;
    record.throughput_per_sec = books_per_sec_per_core;
    record.p50_ms = result.p50_ms;
    record.p95_ms = result.p95_ms;
    report.Add(record);
  }
  if (serial_per_core > 0) {
    std::printf("concurrent/serial selection gain: %.2fx\n",
                concurrent_per_core / serial_per_core);
  }

  // Bulk-pipe capacity run: minimal one-book requests streamed through
  // the offline pipe. Both ends are constant-memory (cycled input pool,
  // counting null sink), so only the pipe's own window can hold state —
  // the sustained-100k-line claim this row backs.
  {
    common::Rng pipe_rng(0xF10E11ULL);
    std::vector<std::string> pool;
    for (int i = 0; i < 64; ++i) {
      service::FusionRequest request;
      request.mode = service::RunMode::kEngine;
      request.label = "pipe-" + std::to_string(i);
      service::InstanceSpec instance;
      instance.name = "book" + std::to_string(i);
      instance.joint = MakeBookJoint(2, pipe_rng);
      instance.truths = MakeTruths(2, pipe_rng);
      request.instances.push_back(std::move(instance));
      request.provider.kind = "scripted";
      request.budget.budget_per_instance = 1;
      // One request per line: compact dump, not the pretty serializer.
      pool.push_back(service::FusionRequestToJson(request).Dump());
    }
    service::FusionService service;
    CyclingLineBuf input(std::move(pool), pipe_lines);
    std::istream in(&input);
    CountingNullBuf sink;
    std::ostream out(&sink);
    service::BulkPipeOptions pipe_options;  // window 32, hardware threads
    auto stats = service::RunBulkPipe(service, in, out, pipe_options);
    CF_CHECK(stats.ok()) << stats.status().ToString();
    CF_CHECK(stats->ok == pipe_lines && stats->errors == 0)
        << stats->ok << " ok, " << stats->errors << " errors of "
        << pipe_lines;
    const double books_per_sec =
        static_cast<double>(stats->books_completed) /
        std::max(1e-9, stats->wall_seconds);
    const double books_per_sec_per_core =
        books_per_sec / static_cast<double>(cores);
    std::printf(
        "\nbulk pipe: %lld one-book requests in %.2f s — %.1f books/sec, "
        "%.2f books/sec/core (window %d, peak in flight %d, %.1f MB "
        "emitted)\n",
        static_cast<long long>(stats->requests), stats->wall_seconds,
        books_per_sec, books_per_sec_per_core, pipe_options.max_in_flight,
        stats->peak_in_flight,
        static_cast<double>(sink.bytes()) / 1e6);
    common::BenchRecord record;
    record.config = "bulk-pipe[m=32]";
    record.n = 2;  // facts per book
    record.support = static_cast<int>(pipe_lines);
    record.k = pipe_options.max_in_flight;
    record.wall_ms = stats->wall_seconds * 1e3;
    record.throughput_per_sec = books_per_sec_per_core;
    report.Add(record);
  }

  if (auto status = report.MergeToFile(report_path); !status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", report_path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("merged %zu records into %s\n",
              configs.size() + overlap_configs.size() + 1,
              report_path.c_str());
  return 0;
}
