/// Table V reproduction: one-round average selection times of the five
/// approaches — OPT, Approx., Approx.&Prune, Approx.&Pre., and
/// Approx.&Prune&Pre. — for k = 1..K on a correlated joint.
///
/// Fidelity notes:
///  * The paper uses books with > 20 facts on a Xeon cluster and reports
///    seconds; a 2^20+ dense support makes the un-preprocessed paths take
///    hours here, so the default is n = 14 facts (override via argv). The
///    *shape* — OPT exploding exponentially, plain Approx doubling per k,
///    pruning flattening the curve, preprocessing dropping it by orders of
///    magnitude — is the reproduction target, not absolute seconds.
///  * OPT and the non-preprocessed Approx variants evaluate H(T) with the
///    literal Equation 2 scan, the paper's cost model. OPT is capped at
///    k <= opt_max (default 4); the paper likewise gave up on OPT at k = 4
///    after five days.
///
///   ./bench_table5_runtime [n] [K] [opt_max] [repetitions]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/greedy_selector.h"
#include "core/opt_selector.h"

using namespace crowdfusion;

namespace {

double TimeSelection(core::TaskSelector& selector,
                     const core::JointDistribution& joint,
                     const core::CrowdModel& crowd, int k, int repetitions) {
  double total = 0.0;
  for (int r = 0; r < repetitions; ++r) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = k;
    const common::Stopwatch timer;
    auto selection = selector.Select(request);
    CF_CHECK(selection.ok()) << selection.status().ToString();
    total += timer.ElapsedSeconds();
  }
  return total / repetitions;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 14;
  const int max_k = argc > 2 ? std::atoi(argv[2]) : 10;
  const int opt_max = argc > 3 ? std::atoi(argv[3]) : 4;
  const int repetitions = argc > 4 ? std::atoi(argv[4]) : 3;

  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 2017);
  auto crowd = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());

  std::printf(
      "TABLE V — one-round average selection times (seconds), n = %d facts, "
      "|O| = %d, %d repetitions\n\n",
      joint.num_facts(), joint.support_size(), repetitions);

  core::OptSelector::Options opt_options;
  opt_options.use_brute_force_entropy = true;
  core::OptSelector opt(opt_options);

  core::GreedySelector approx;  // literal Equation 2 evaluation
  core::GreedySelector::Options prune_options;
  prune_options.use_pruning = true;
  core::GreedySelector approx_prune(prune_options);
  core::GreedySelector::Options pre_options;
  pre_options.use_preprocessing = true;
  core::GreedySelector approx_pre(pre_options);
  core::GreedySelector::Options both_options;
  both_options.use_pruning = true;
  both_options.use_preprocessing = true;
  core::GreedySelector approx_prune_pre(both_options);

  common::TablePrinter table({"k", "OPT", "Approx.", "Approx.&Prune",
                              "Approx.&Pre.", "Approx.&Prune&Pre."});
  for (int k = 1; k <= max_k; ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    if (k <= opt_max) {
      row.push_back(common::StrFormat(
          "%.4f", TimeSelection(opt, joint, *crowd, k, repetitions)));
    } else {
      row.push_back("-");  // infeasible, as in the paper
    }
    for (core::GreedySelector* selector :
         {&approx, &approx_prune, &approx_pre, &approx_prune_pre}) {
      row.push_back(common::StrFormat(
          "%.4f", TimeSelection(*selector, joint, *crowd, k, repetitions)));
    }
    table.AddRow(std::move(row));
    std::fflush(stdout);
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Table V): OPT grows exponentially and is "
      "infeasible past k~3;\nApprox. roughly doubles per k; pruning "
      "flattens it; preprocessing is fastest and near-flat.\n");
  return 0;
}
