/// Table V reproduction: one-round average selection times of the five
/// approaches — OPT, Approx., Approx.&Prune, Approx.&Pre., and
/// Approx.&Prune&Pre. — for k = 1..K on a correlated joint.
///
/// Fidelity notes:
///  * The paper uses books with > 20 facts on a Xeon cluster and reports
///    seconds; a 2^20+ dense support makes the un-preprocessed paths take
///    hours here, so the default is n = 14 facts (override via argv). The
///    *shape* — OPT exploding exponentially, plain Approx doubling per k,
///    pruning flattening the curve, preprocessing dropping it by orders of
///    magnitude — is the reproduction target, not absolute seconds.
///  * OPT and the non-preprocessed Approx variants evaluate H(T) with the
///    literal Equation 2 scan, the paper's cost model. OPT is capped at
///    k <= opt_max (default 4); the paper likewise gave up on OPT at k = 4
///    after five days.
///
/// Beyond the paper's table, a "scale-out" section times the sparse
/// partition refiner on n = 32/64-fact joints with up to 10^5 support
/// outputs — instances no dense path can represent — and every timing is
/// appended to the BENCH_greedy.json baseline (see common/bench_report.h).
///
///   ./bench_table5_runtime [n] [K] [opt_max] [repetitions] [report.json]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/bench_report.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/greedy_selector.h"
#include "core/opt_selector.h"

using namespace crowdfusion;

namespace {

struct TimedSelection {
  double seconds = 0.0;
  core::Selection selection;
};

TimedSelection TimeSelection(core::TaskSelector& selector,
                             const core::JointDistribution& joint,
                             const core::CrowdModel& crowd, int k,
                             int repetitions) {
  TimedSelection result;
  double total = 0.0;
  for (int r = 0; r < repetitions; ++r) {
    core::SelectionRequest request;
    request.joint = &joint;
    request.crowd = &crowd;
    request.k = k;
    const common::Stopwatch timer;
    auto selection = selector.Select(request);
    CF_CHECK(selection.ok()) << selection.status().ToString();
    total += timer.ElapsedSeconds();
    result.selection = std::move(selection).value();
  }
  result.seconds = total / repetitions;
  return result;
}

void Record(common::BenchReport& report, const std::string& config,
            const core::JointDistribution& joint, int k,
            const TimedSelection& timed) {
  common::BenchRecord record;
  record.config = config;
  record.n = joint.num_facts();
  record.support = joint.support_size();
  record.k = k;
  record.wall_ms = timed.seconds * 1e3;
  record.entropy_bits = timed.selection.entropy_bits;
  report.Add(std::move(record));
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 14;
  const int max_k = argc > 2 ? std::atoi(argv[2]) : 10;
  const int opt_max = argc > 3 ? std::atoi(argv[3]) : 4;
  const int repetitions = argc > 4 ? std::atoi(argv[4]) : 3;
  const std::string report_path = argc > 5 ? argv[5] : "BENCH_greedy.json";
  common::BenchReport report("bench_table5_runtime");

  const core::JointDistribution joint = bench::MakeCorrelatedJoint(n, 2017);
  auto crowd = core::CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());

  std::printf(
      "TABLE V — one-round average selection times (seconds), n = %d facts, "
      "|O| = %d, %d repetitions\n\n",
      joint.num_facts(), joint.support_size(), repetitions);

  core::OptSelector::Options opt_options;
  opt_options.use_brute_force_entropy = true;
  core::OptSelector opt(opt_options);

  core::GreedySelector approx;  // literal Equation 2 evaluation
  core::GreedySelector::Options prune_options;
  prune_options.use_pruning = true;
  core::GreedySelector approx_prune(prune_options);
  core::GreedySelector::Options pre_options;
  pre_options.use_preprocessing = true;
  core::GreedySelector approx_pre(pre_options);
  core::GreedySelector::Options both_options;
  both_options.use_pruning = true;
  both_options.use_preprocessing = true;
  core::GreedySelector approx_prune_pre(both_options);

  common::TablePrinter table({"k", "OPT", "Approx.", "Approx.&Prune",
                              "Approx.&Pre.", "Approx.&Prune&Pre."});
  for (int k = 1; k <= max_k; ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    if (k <= opt_max) {
      const TimedSelection timed =
          TimeSelection(opt, joint, *crowd, k, repetitions);
      Record(report, "OPT", joint, k, timed);
      row.push_back(common::StrFormat("%.4f", timed.seconds));
    } else {
      row.push_back("-");  // infeasible, as in the paper
    }
    for (core::GreedySelector* selector :
         {&approx, &approx_prune, &approx_pre, &approx_prune_pre}) {
      const TimedSelection timed =
          TimeSelection(*selector, joint, *crowd, k, repetitions);
      Record(report, selector->name(), joint, k, timed);
      row.push_back(common::StrFormat("%.4f", timed.seconds));
    }
    table.AddRow(std::move(row));
    std::fflush(stdout);
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Table V): OPT grows exponentially and is "
      "infeasible past k~3;\nApprox. roughly doubles per k; pruning "
      "flattens it; preprocessing is fastest and near-flat.\n");

  // Scale-out section: sparse-support instances far beyond the dense
  // n <= 20 wall, runnable only through the sparse partition refiner.
  std::printf(
      "\nSPARSE SCALE-OUT — Approx.&Prune&Pre. on sparse supports "
      "(k = 8, avg of %d)\n\n", repetitions);
  common::TablePrinter sparse_table({"n", "|O|", "seconds", "H(T) bits"});
  const int sparse_k = 8;
  for (const auto& [sparse_n, sparse_support] :
       std::vector<std::pair<int, int>>{
           {32, 10000}, {64, 10000}, {64, 100000}}) {
    const core::JointDistribution sparse_joint =
        bench::MakeSparseCorrelatedJoint(sparse_n, sparse_support, 2017);
    const TimedSelection timed = TimeSelection(
        approx_prune_pre, sparse_joint, *crowd, sparse_k, repetitions);
    Record(report, approx_prune_pre.name() + "[sparse]", sparse_joint,
           sparse_k, timed);
    sparse_table.AddRow(
        {std::to_string(sparse_n), std::to_string(sparse_support),
         common::StrFormat("%.4f", timed.seconds),
         common::StrFormat("%.3f", timed.selection.entropy_bits)});
  }
  sparse_table.Print(std::cout);

  const common::Status written = report.MergeToFile(report_path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", report_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu baseline records to %s\n", report.records().size(),
              report_path.c_str());
  return 0;
}
