#ifndef CROWDFUSION_BENCH_BENCH_UTIL_H_
#define CROWDFUSION_BENCH_BENCH_UTIL_H_

#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "core/joint_distribution.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"

namespace crowdfusion::bench {

/// A correlated n-fact joint distribution in the style of the evaluation
/// workload: a generated book's statements run through the mixture
/// correlation model with mid-uncertainty marginals. Deterministic in
/// `seed`. Requires n <= 20 (dense 2^n support).
inline core::JointDistribution MakeCorrelatedJoint(int n, uint64_t seed) {
  data::BookDatasetOptions options;
  options.num_books = 1;
  options.num_sources = 8 * n;
  options.coverage = 0.95;
  options.min_authors = 2;  // multi-author books corrupt in more ways
  options.true_variants = (n + 1) / 2;
  options.false_variants = 2 * n;  // oversupply; truncated below
  options.seed = seed;
  // Statement pools deduplicate, so a book can come up short; retry with
  // shifted seeds until it has n distinct claimed statements.
  data::Book book;
  bool found = false;
  for (int attempt = 0; attempt < 64 && !found; ++attempt) {
    options.seed = seed + static_cast<uint64_t>(attempt) * 7919;
    auto dataset = data::GenerateBookDataset(options);
    CF_CHECK(dataset.ok()) << dataset.status().ToString();
    if (static_cast<int>(dataset->books.front().statements.size()) >= n) {
      book = std::move(dataset->books.front());
      found = true;
    }
  }
  CF_CHECK(found) << "could not generate a book with " << n << " statements";
  book.statements.resize(static_cast<size_t>(n));

  common::Rng rng(seed ^ 0xBEEF);
  std::vector<double> marginals(static_cast<size_t>(n));
  for (double& m : marginals) m = rng.NextUniform(0.25, 0.75);
  data::CorrelationModelOptions correlation;
  auto joint = data::BuildBookJoint(marginals, book.statements, correlation);
  CF_CHECK(joint.ok()) << joint.status().ToString();
  return std::move(joint).value();
}

}  // namespace crowdfusion::bench

#endif  // CROWDFUSION_BENCH_BENCH_UTIL_H_
