#ifndef CROWDFUSION_BENCH_BENCH_UTIL_H_
#define CROWDFUSION_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "core/joint_distribution.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"

namespace crowdfusion::bench {

/// A sparse correlated joint for paper-scale instances: n facts (up to
/// 64) with exactly `support` distinct outputs. Outputs cluster around a
/// handful of anchor assignments with per-bit corruption — the same
/// "correlated facts, few plausible worlds" structure the paper's book
/// instances have — and carry exponential random weights. Deterministic in
/// `seed`. Requires 1 <= support and support <= 2^min(n, 62).
inline core::JointDistribution MakeSparseCorrelatedJoint(int n, int support,
                                                         uint64_t seed) {
  CF_CHECK(n >= 1 && n <= core::JointDistribution::kMaxFacts);
  CF_CHECK(support >= 1);
  if (n < 62) {
    CF_CHECK(static_cast<uint64_t>(support) <= (1ULL << n));
  }
  common::Rng rng(seed ^ 0x5EED5EEDULL);
  const uint64_t valid = n >= 64 ? ~0ULL : ((1ULL << n) - 1);
  const int num_anchors = std::max(2, std::min(8, support / 4 + 1));
  std::vector<uint64_t> anchors(static_cast<size_t>(num_anchors));
  for (uint64_t& anchor : anchors) anchor = rng.NextUint64() & valid;

  // Sample distinct masks: an anchor with each bit flipped w.p. ~0.1.
  // Dense requests (support near 2^n) fall back to sequential fill once
  // rejection sampling stops finding new masks.
  std::set<uint64_t> masks;
  int64_t attempts = 0;
  const int64_t max_attempts = 64 + 50LL * support;
  while (static_cast<int>(masks.size()) < support) {
    if (attempts++ > max_attempts) {
      for (uint64_t mask = 0;
           static_cast<int>(masks.size()) < support; ++mask) {
        masks.insert(mask & valid);
      }
      break;
    }
    uint64_t mask = anchors[rng.NextBounded(anchors.size())];
    for (int b = 0; b < n; ++b) {
      if (rng.NextBernoulli(0.1)) mask ^= 1ULL << b;
    }
    masks.insert(mask & valid);
  }
  std::vector<core::JointDistribution::Entry> entries;
  entries.reserve(masks.size());
  for (uint64_t mask : masks) {
    // Exponential weights give a heavy-but-not-degenerate distribution.
    entries.push_back({mask, -std::log(1.0 - rng.NextDouble()) + 1e-9});
  }
  auto joint = core::JointDistribution::FromEntries(n, std::move(entries),
                                                    /*normalize=*/true);
  CF_CHECK(joint.ok()) << joint.status().ToString();
  return std::move(joint).value();
}

/// A correlated n-fact joint distribution in the style of the evaluation
/// workload: a generated book's statements run through the mixture
/// correlation model with mid-uncertainty marginals. Deterministic in
/// `seed`. Requires n <= 20 (dense 2^n support).
inline core::JointDistribution MakeCorrelatedJoint(int n, uint64_t seed) {
  data::BookDatasetOptions options;
  options.num_books = 1;
  options.num_sources = 8 * n;
  options.coverage = 0.95;
  options.min_authors = 2;  // multi-author books corrupt in more ways
  options.true_variants = (n + 1) / 2;
  options.false_variants = 2 * n;  // oversupply; truncated below
  options.seed = seed;
  // Statement pools deduplicate, so a book can come up short; retry with
  // shifted seeds until it has n distinct claimed statements.
  data::Book book;
  bool found = false;
  for (int attempt = 0; attempt < 64 && !found; ++attempt) {
    options.seed = seed + static_cast<uint64_t>(attempt) * 7919;
    auto dataset = data::GenerateBookDataset(options);
    CF_CHECK(dataset.ok()) << dataset.status().ToString();
    if (static_cast<int>(dataset->books.front().statements.size()) >= n) {
      book = std::move(dataset->books.front());
      found = true;
    }
  }
  CF_CHECK(found) << "could not generate a book with " << n << " statements";
  book.statements.resize(static_cast<size_t>(n));

  common::Rng rng(seed ^ 0xBEEF);
  std::vector<double> marginals(static_cast<size_t>(n));
  for (double& m : marginals) m = rng.NextUniform(0.25, 0.75);
  data::CorrelationModelOptions correlation;
  auto joint = data::BuildBookJoint(marginals, book.statements, correlation);
  CF_CHECK(joint.ok()) << joint.status().ToString();
  return std::move(joint).value();
}

}  // namespace crowdfusion::bench

#endif  // CROWDFUSION_BENCH_BENCH_UTIL_H_
