# ctest wrapper for the running-example golden smoke: unlike a bare
# PASS_REGULAR_EXPRESSION (which makes ctest ignore the exit code), this
# checks BOTH that the bench exits 0 and that Table III's headline value
# H({f1,f4}) = 1.997 appears in its printed table.
#
# Usage: cmake -DBENCH_BIN=<path> -P check_running_example.cmake
execute_process(COMMAND "${BENCH_BIN}"
  OUTPUT_VARIABLE bench_output
  RESULT_VARIABLE bench_result)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench_running_example exited ${bench_result}")
endif()
if(NOT bench_output MATCHES "\\| 1\\.997 \\|")
  message(FATAL_ERROR
    "Table III golden H({f1,f4}) = 1.997 missing from bench output")
endif()
message(STATUS "running example golden OK (exit 0, H({f1,f4}) = 1.997)")
