#!/usr/bin/env python3
"""Bench-regression gate (ISSUE 5 satellite).

Compares the current run's BENCH_*.json baselines against the previous
successful run's uploaded artifact and fails when a gated headline
regressed by more than --max-regress (default 25%):

  * bench_service_facade: the facade overhead (service wall - direct wall)
    must not grow past old_overhead * (1 + max_regress) + 2 ms slack.
  * bench_table5_runtime and bench_micro_core (the sparse-greedy headline
    and the per-kernel BatchedSweep rows): every (config, n, support, k)
    row present in both baselines must keep
    wall_ms <= old * (1 + max_regress) + 1 ms.
  * bench_service_throughput rows carrying throughput_per_sec (the
    zero-latency selection-overlap and bulk-pipe rows, books/sec-per-
    core): throughput is higher-better, so new >= old * (1 - max_regress).
  * crowdfusion_loadgen rows (the trace-replay soak): tail latency is the
    gated headline, p99_ms <= old * (1 + max_regress) + 5 ms slack. The
    zero-5xx half of the soak gate is enforced by the replay tool itself
    (--fail-on-5xx), not here.
  * bench_http c10k rows (configs starting "c10k", the reactor's
    10k-concurrent-connection sweep): requests/sec is higher-better, so
    new >= old * (1 - max_regress). Correctness halves of that bench
    (zero reconnects, all connections held) are CF_CHECKed by bench_http
    itself.

Rows that exist only on one side are reported but never fail the gate
(benches come and go); a missing previous artifact should be handled by
the caller (the CI step skips the gate entirely then).

usage: check_bench_regression.py <old_dir> <new_dir> [--max-regress 0.25]
"""

import argparse
import json
import pathlib
import sys

FACADE_SLACK_MS = 2.0
TABLE5_SLACK_MS = 1.0
LOADGEN_SLACK_MS = 5.0


def load_records(directory):
    """{(source, config, n, support, k): record} over every BENCH_*.json."""
    records = {}
    for path in sorted(pathlib.Path(directory).glob("**/BENCH_*.json")):
        with open(path) as fh:
            doc = json.load(fh)
        for record in doc.get("records", []):
            key = (
                record.get("source", ""),
                record.get("config", ""),
                record.get("n", 0),
                record.get("support", 0),
                record.get("k", 0),
            )
            records[key] = record
    return records


def facade_overhead_ms(records):
    direct = wall = None
    for key, record in records.items():
        if key[0] != "bench_service_facade":
            continue
        if key[1] == "direct_scheduler":
            direct = record["wall_ms"]
        elif key[1] == "service_facade":
            wall = record["wall_ms"]
    if direct is None or wall is None:
        return None
    return wall - direct


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("old_dir")
    parser.add_argument("new_dir")
    parser.add_argument("--max-regress", type=float, default=0.25)
    args = parser.parse_args()

    old = load_records(args.old_dir)
    new = load_records(args.new_dir)
    if not old:
        print(f"no BENCH_*.json under {args.old_dir}; nothing to gate")
        return 0
    if not new:
        print(f"FAIL: no BENCH_*.json under {args.new_dir}")
        return 1

    failures = []

    old_overhead = facade_overhead_ms(old)
    new_overhead = facade_overhead_ms(new)
    if old_overhead is not None and new_overhead is not None:
        # The measured overhead can be negative on a noisy runner (min-of-
        # reps jitter); percentage-scale only a non-negative base so an
        # unchanged run can never fail its own budget.
        budget = max(old_overhead, 0.0) * (1.0 + args.max_regress) \
            + FACADE_SLACK_MS
        verdict = "ok" if new_overhead <= budget else "FAIL"
        print(
            f"[{verdict}] facade overhead: {old_overhead:.3f} ms -> "
            f"{new_overhead:.3f} ms (budget {budget:.3f} ms)"
        )
        if new_overhead > budget:
            failures.append("bench_service_facade overhead")

    WALL_GATED_SOURCES = ("bench_table5_runtime", "bench_micro_core")
    for key in sorted(new):
        if key[0] not in WALL_GATED_SOURCES:
            continue
        if key not in old:
            print(f"[new ] {key}: no previous row; skipping")
            continue
        old_ms = old[key]["wall_ms"]
        new_ms = new[key]["wall_ms"]
        budget = old_ms * (1.0 + args.max_regress) + TABLE5_SLACK_MS
        verdict = "ok" if new_ms <= budget else "FAIL"
        print(
            f"[{verdict}] {key[1]} n={key[2]} |O|={key[3]} k={key[4]}: "
            f"{old_ms:.3f} ms -> {new_ms:.3f} ms (budget {budget:.3f} ms)"
        )
        if new_ms > budget:
            failures.append(f"{key[0]} {key[1]}")

    for key in sorted(new):
        if key[0] != "bench_service_throughput":
            continue
        if not key[1].startswith("zero-lat"):
            continue  # slept-latency rows stay informational
        new_tp = new[key].get("throughput_per_sec", 0.0)
        if not new_tp:
            print(f"[new ] {key}: no throughput recorded; skipping")
            continue
        if key not in old or not old[key].get("throughput_per_sec", 0.0):
            print(f"[new ] {key}: no previous throughput row; skipping")
            continue
        old_tp = old[key]["throughput_per_sec"]
        floor = old_tp * (1.0 - args.max_regress)
        verdict = "ok" if new_tp >= floor else "FAIL"
        print(
            f"[{verdict}] {key[1]} books={key[3]}: {old_tp:.2f} -> "
            f"{new_tp:.2f} books/sec/core (floor {floor:.2f})"
        )
        if new_tp < floor:
            failures.append(f"bench_service_throughput {key[1]}")

    for key in sorted(new):
        if key[0] != "bench_http" or not key[1].startswith("c10k"):
            continue
        new_tp = new[key].get("throughput_per_sec", 0.0)
        if not new_tp:
            print(f"[new ] {key}: no throughput recorded; skipping")
            continue
        if key not in old or not old[key].get("throughput_per_sec", 0.0):
            print(f"[new ] {key}: no previous throughput row; skipping")
            continue
        old_tp = old[key]["throughput_per_sec"]
        floor = old_tp * (1.0 - args.max_regress)
        verdict = "ok" if new_tp >= floor else "FAIL"
        print(
            f"[{verdict}] {key[1]} rounds={key[2]} requests={key[3]}: "
            f"{old_tp:.0f} -> {new_tp:.0f} req/sec (floor {floor:.0f})"
        )
        if new_tp < floor:
            failures.append(f"bench_http {key[1]} throughput")

    for key in sorted(new):
        if key[0] != "crowdfusion_loadgen":
            continue
        new_p99 = new[key].get("p99_ms", 0.0)
        if not new_p99:
            print(f"[new ] {key}: no p99 recorded; skipping")
            continue
        if key not in old or not old[key].get("p99_ms", 0.0):
            print(f"[new ] {key}: no previous p99 row; skipping")
            continue
        old_p99 = old[key]["p99_ms"]
        budget = old_p99 * (1.0 + args.max_regress) + LOADGEN_SLACK_MS
        verdict = "ok" if new_p99 <= budget else "FAIL"
        print(
            f"[{verdict}] {key[1]} qps={key[2]} span={key[3]}s "
            f"conns={key[4]}: p99 {old_p99:.3f} ms -> {new_p99:.3f} ms "
            f"(budget {budget:.3f} ms)"
        )
        if new_p99 > budget:
            failures.append(f"crowdfusion_loadgen {key[1]} p99")

    if failures:
        print("FAIL: regressions beyond "
              f"{100 * args.max_regress:.0f}%: {failures}")
        return 1
    print("PASS: no gated bench regressed beyond "
          f"{100 * args.max_regress:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
