#!/usr/bin/env bash
# Loadgen soak gate (ISSUE 9): boots `crowdfusion_cli serve`, replays the
# committed 30 s synthetic trace (ci/loadgen/soak_trace.jsonl) against it
# at a fixed QPS through crowdfusion_loadgen, and fails on ANY 5xx or
# transport error (--fail-on-5xx, exit 3). The latency half of the gate —
# p99 vs the previous run — rides the bench-regression artifact flow:
# this script emits BENCH_loadgen.json into the workdir and CI diffs it
# against the last successful run's loadgen-baseline artifact with
# ci/check_bench_regression.py.
#
# usage: ci/loadgen_soak.sh <crowdfusion_cli> <crowdfusion_loadgen> [workdir]
set -euo pipefail

CLI="${1:?usage: loadgen_soak.sh <crowdfusion_cli> <crowdfusion_loadgen>}"
LOADGEN="${2:?usage: loadgen_soak.sh <crowdfusion_cli> <crowdfusion_loadgen>}"
WORK="${3:-$(mktemp -d)}"
HERE="$(cd "$(dirname "$0")" && pwd)"
TRACE="$HERE/loadgen/soak_trace.jsonl"
QPS=20           # 600 records / 20 qps = the 30 s soak window
CONNECTIONS=4

mkdir -p "$WORK"

"$CLI" serve --port 0 --crowd-port 0 >"$WORK/serve.log" 2>"$WORK/serve.err" &
SERVE_PID=$!
cleanup() { kill -9 "$SERVE_PID" 2>/dev/null || true; }
trap cleanup EXIT

echo "waiting for serve to report its port ..."
for _ in $(seq 1 100); do
  if grep -q "^serving on " "$WORK/serve.log" 2>/dev/null; then break; fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: server died during startup"
    cat "$WORK/serve.log" "$WORK/serve.err"
    exit 1
  fi
  sleep 0.1
done
PORT=$(sed -n 's#^serving on http://127.0.0.1:\([0-9]*\).*#\1#p' \
  "$WORK/serve.log")
test -n "$PORT"
echo "front-end on $PORT; replaying $TRACE at $QPS qps"

# Unmeasured warmup: one fast pass over the trace primes every layer the
# timed legs will touch (reactor loop + worker pool, crowd provider
# connections, the session path) so the gated numbers measure steady
# state, not the first-ever wakeup of each thread. Cold-start spikes are
# scheduler noise on a shared runner, not serving capacity.
"$LOADGEN" replay "$TRACE" --port "$PORT" \
  --qps 200 --connections "$CONNECTIONS" >/dev/null

# The soak itself: exit 3 on any 5xx/transport error is the availability
# half of the gate. The JSON report lands on stdout, diagnostics on
# stderr (the CLI stream contract this PR pins).
"$LOADGEN" replay "$TRACE" --port "$PORT" \
  --qps "$QPS" --connections "$CONNECTIONS" \
  --bench-out "$WORK/BENCH_loadgen.json" --config ci-soak \
  --fail-on-5xx >"$WORK/replay.json"

# Client-side report sanity: every request answered 2xx (a 4xx would mean
# the committed trace rotted), and the generator kept pace. The strict
# within-5%-of-target pin runs against a zero-latency backend in
# tests/loadgen/replayer_test.cc; against the real service on a shared
# runner we only require half the target rate.
python3 - "$WORK/replay.json" "$QPS" <<'PYEOF'
import json, sys
r = json.load(open(sys.argv[1]))
qps = float(sys.argv[2])
assert r["schema"] == "crowdfusion-loadgen-report-v1", r
assert r["ok"] == r["attempted"], r
assert r["err_4xx"] == 0 and r["err_5xx"] == 0 and r["err_transport"] == 0, r
assert r["achieved_qps"] >= 0.5 * qps, r
print("replay ok: %d/%d 2xx at %.1f qps, p99 %.2f ms"
      % (r["ok"], r["attempted"], r["achieved_qps"], r["p99_ms"]))
PYEOF

# Second leg (ISSUE 10): the same trace replayed at 100x the recorded
# rate over 256 connections — a deliberate overload probe of the reactor.
# --repeat concatenates 10 passes so the burst lasts a few seconds. The
# acceptance bar: every request is answered, and every answer is either a
# success or the reactor's canned 503+Retry-After shed — never a plain
# 5xx, never a transport error (a wedged connection would surface here as
# a client timeout).
OVERLOAD_QPS=$((QPS * 100))
"$LOADGEN" replay "$TRACE" --port "$PORT" \
  --qps "$OVERLOAD_QPS" --connections 256 --repeat 10 \
  --bench-out "$WORK/BENCH_loadgen.json" --config ci-soak-100x \
  --fail-on-5xx >"$WORK/replay_100x.json"

python3 - "$WORK/replay_100x.json" "$OVERLOAD_QPS" <<'PYEOF'
import json, sys
r = json.load(open(sys.argv[1]))
qps = float(sys.argv[2])
assert r["schema"] == "crowdfusion-loadgen-report-v1", r
assert r["err_4xx"] == 0 and r["err_5xx"] == 0 and r["err_transport"] == 0, r
assert r["ok"] + r["shed_503"] == r["attempted"], r
assert r["achieved_qps"] >= 0.25 * qps, r
print("100x overload ok: %d/%d 2xx + %d shed at %.0f qps, p99 %.2f ms"
      % (r["ok"], r["attempted"], r["shed_503"], r["achieved_qps"],
         r["p99_ms"]))
PYEOF

# Server-side health after 30 s under load: nothing failed (5xx), the new
# uptime/connection gauges moved, and every trace request was counted.
curl -fsS "http://127.0.0.1:$PORT/metricsz" | python3 -c '
import json, sys
m = json.load(sys.stdin)
assert m["requests_failed"] == 0, m
assert m["requests_rejected"] == 0, m
assert m["requests_served"] >= 600, m
assert m["uptime_seconds"] > 25, m
assert m["connections_accepted"] >= 4, m   # one per replay connection
print("metricsz after soak:", json.dumps(m))
'

kill -TERM "$SERVE_PID"
RC=0
wait "$SERVE_PID" || RC=$?
trap - EXIT
if [ "$RC" != "0" ]; then
  echo "FAIL: serve exited $RC on SIGTERM after the soak"
  cat "$WORK/serve.log" "$WORK/serve.err"
  exit 1
fi
grep -q "shut down cleanly" "$WORK/serve.log"
echo "PASS: loadgen soak (zero 5xx, server healthy, clean shutdown)"
