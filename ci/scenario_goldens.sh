#!/usr/bin/env bash
# Scenario-golden drift check (PR 7 tentpole): runs `crowdfusion_cli
# scenario --all` into a scratch directory and diffs every report against
# the checked-in goldens under ci/scenario_goldens/. The CLI path and the
# in-process eval_scenario_golden_test must agree on the same bytes, so a
# drift here means either a behavior change (regenerate deliberately) or
# a CLI/library divergence (a bug).
#
# Run UPDATE_GOLDENS=1 to regenerate the goldens after an intentional
# behavior change — or equivalently:
#   crowdfusion_cli scenario --all --out-dir ci/scenario_goldens
#
# usage: ci/scenario_goldens.sh <path-to-crowdfusion_cli> [workdir]
set -euo pipefail

CLI="${1:?usage: scenario_goldens.sh <crowdfusion_cli> [workdir]}"
WORK="${2:-$(mktemp -d)}"
HERE="$(cd "$(dirname "$0")" && pwd)"
GOLDEN="$HERE/scenario_goldens"

mkdir -p "$WORK" "$GOLDEN"

"$CLI" scenario --all --out-dir "$WORK"

fail=0
for path in "$WORK"/*.json; do
  name="$(basename "$path")"
  if [ "${UPDATE_GOLDENS:-0}" = "1" ]; then
    cp "$path" "$GOLDEN/$name"
    echo "updated golden $name"
    continue
  fi
  if ! diff -u "$GOLDEN/$name" "$path"; then
    echo "FAIL: scenario report $name drifted from its golden"
    fail=1
  else
    echo "OK: $name"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "scenario goldens drifted; regenerate with UPDATE_GOLDENS=1 if intended"
  exit 1
fi
echo "scenario goldens match"
