#!/usr/bin/env bash
# End-to-end serving check (ISSUE 5 satellite): boots `crowdfusion_cli
# serve` (front-end + loopback crowd platform), curls golden requests at
# /v1/fusion:run and the session endpoints, diffs normalized responses
# against the checked-in goldens, and asserts a clean SIGTERM shutdown
# (exit 0). Run UPDATE_GOLDENS=1 to regenerate the goldens after an
# intentional serving-behavior change.
#
# usage: ci/serve_e2e.sh <path-to-crowdfusion_cli> [workdir]
set -euo pipefail

CLI="${1:?usage: serve_e2e.sh <crowdfusion_cli> [workdir]}"
WORK="${2:-$(mktemp -d)}"
HERE="$(cd "$(dirname "$0")" && pwd)"
FIXTURES="$HERE/serve_e2e"
GOLDEN="$FIXTURES/golden"

mkdir -p "$WORK" "$GOLDEN"

# Ephemeral ports everywhere (the repo's parallel-socket-test rule):
# `serve` prints the bound ports, which we scrape from its log.
"$CLI" serve --port 0 --crowd-port 0 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
cleanup() { kill -9 "$SERVE_PID" 2>/dev/null || true; }
trap cleanup EXIT

echo "waiting for serve to report its ports ..."
for _ in $(seq 1 100); do
  if grep -q "^serving on " "$WORK/serve.log" 2>/dev/null; then break; fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: server died during startup"; cat "$WORK/serve.log"; exit 1
  fi
  sleep 0.1
done
PORT=$(sed -n 's#^serving on http://127.0.0.1:\([0-9]*\).*#\1#p' \
  "$WORK/serve.log")
CROWD_PORT=$(sed -n 's#^crowd platform on http://127.0.0.1:\([0-9]*\).*#\1#p' \
  "$WORK/serve.log")
test -n "$PORT" && test -n "$CROWD_PORT"
BASE="http://127.0.0.1:$PORT"
echo "front-end on $PORT, crowd platform on $CROWD_PORT"
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'

# The http-provider request names the crowd endpoint; point the fixture's
# template at the actual ephemeral port (the response golden is
# endpoint-free, so this keeps the diff exact).
python3 - "$FIXTURES/run_crowd_http.json" "$CROWD_PORT" \
  >"$WORK/run_crowd_http.request.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["provider"]["endpoint"] = "127.0.0.1:" + sys.argv[2]
json.dump(doc, sys.stdout, indent=2)
PYEOF

check_golden() {
  local name="$1"
  python3 "$FIXTURES/normalize_response.py" \
    <"$WORK/$name.out" >"$WORK/$name.norm"
  if [ "${UPDATE_GOLDENS:-0}" = "1" ]; then
    cp "$WORK/$name.norm" "$GOLDEN/$name.golden.json"
    echo "updated golden: $name"
  else
    diff -u "$GOLDEN/$name.golden.json" "$WORK/$name.norm" \
      || { echo "FAIL: $name diverged from its golden"; exit 1; }
    echo "golden ok: $name"
  fi
}

# --- one-shot fusion:run, scripted (pure in-process determinism) ---------
curl -fsS -X POST --data @"$FIXTURES/run_scripted.json" \
  "$BASE/v1/fusion:run" >"$WORK/run_scripted.out"
check_golden run_scripted

# --- one-shot fusion:run through the remote crowd (provider "http"):
# client -> HTTP -> service -> HTTP -> crowd, all over real sockets ------
curl -fsS -X POST --data @"$WORK/run_crowd_http.request.json" \
  "$BASE/v1/fusion:run" >"$WORK/run_crowd_http.out"
check_golden run_crowd_http

# --- incremental session lifecycle --------------------------------------
SID=$(curl -fsS -X POST --data @"$FIXTURES/run_scripted.json" \
  "$BASE/v1/sessions" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["session_id"])')
echo "created session $SID"
test "$SID" = "s-1"  # counter-based ids: a fresh server always starts here

for _ in $(seq 1 64); do
  DONE=$(curl -fsS -X POST -d '{}' "$BASE/v1/sessions/$SID/step" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["done"])')
  [ "$DONE" = "True" ] && break
done
test "$DONE" = "True"

curl -fsS "$BASE/v1/sessions/$SID" |
  python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["done"]'
curl -fsS "$BASE/v1/sessions/$SID/result" >"$WORK/session_result.out"
check_golden session_result

# The incremental run must reproduce the one-shot response exactly.
if [ "${UPDATE_GOLDENS:-0}" != "1" ]; then
  diff -u "$WORK/run_scripted.norm" "$WORK/session_result.norm" \
    || { echo "FAIL: session result != one-shot run"; exit 1; }
fi

curl -fsS -X DELETE "$BASE/v1/sessions/$SID" >/dev/null
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sessions/$SID")
test "$STATUS" = "404"

# --- metrics gauges ------------------------------------------------------
curl -fsS "$BASE/metricsz" | python3 -c '
import json, sys
m = json.load(sys.stdin)
assert m["requests_served"] >= 10, m
assert m["requests_failed"] >= 1, m        # the 404 probe above
assert m["sessions_created"] == 1, m
assert m["sessions_active"] == 0, m
assert "p50_handler_ms" in m and "p95_handler_ms" in m, m
print("metricsz ok:", json.dumps(m))
'

# --- clean SIGTERM shutdown ----------------------------------------------
kill -TERM "$SERVE_PID"
RC=0
wait "$SERVE_PID" || RC=$?
trap - EXIT
if [ "$RC" != "0" ]; then
  echo "FAIL: serve exited $RC on SIGTERM"; cat "$WORK/serve.log"; exit 1
fi
grep -q "shut down cleanly" "$WORK/serve.log"
echo "PASS: serve-e2e (clean shutdown, goldens matched)"
