#!/usr/bin/env bash
# End-to-end serving check (ISSUE 5 satellite): boots `crowdfusion_cli
# serve` (front-end + loopback crowd platform), curls golden requests at
# /v1/fusion:run and the session endpoints, diffs normalized responses
# against the checked-in goldens, and asserts a clean SIGTERM shutdown
# (exit 0). Run UPDATE_GOLDENS=1 to regenerate the goldens after an
# intentional serving-behavior change.
#
# usage: ci/serve_e2e.sh <path-to-crowdfusion_cli> [workdir]
set -euo pipefail

CLI="${1:?usage: serve_e2e.sh <crowdfusion_cli> [workdir]}"
WORK="${2:-$(mktemp -d)}"
HERE="$(cd "$(dirname "$0")" && pwd)"
FIXTURES="$HERE/serve_e2e"
GOLDEN="$FIXTURES/golden"

mkdir -p "$WORK" "$GOLDEN"

# Ephemeral ports everywhere (the repo's parallel-socket-test rule):
# `serve` prints the bound ports, which we scrape from its log.
"$CLI" serve --port 0 --crowd-port 0 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
cleanup() { kill -9 "$SERVE_PID" 2>/dev/null || true; }
trap cleanup EXIT

echo "waiting for serve to report its ports ..."
for _ in $(seq 1 100); do
  if grep -q "^serving on " "$WORK/serve.log" 2>/dev/null; then break; fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "FAIL: server died during startup"; cat "$WORK/serve.log"; exit 1
  fi
  sleep 0.1
done
PORT=$(sed -n 's#^serving on http://127.0.0.1:\([0-9]*\).*#\1#p' \
  "$WORK/serve.log")
CROWD_PORT=$(sed -n 's#^crowd platform on http://127.0.0.1:\([0-9]*\).*#\1#p' \
  "$WORK/serve.log")
test -n "$PORT" && test -n "$CROWD_PORT"
BASE="http://127.0.0.1:$PORT"
echo "front-end on $PORT, crowd platform on $CROWD_PORT"
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'

# The http-provider request names the crowd endpoint; point the fixture's
# template at the actual ephemeral port (the response golden is
# endpoint-free, so this keeps the diff exact).
python3 - "$FIXTURES/run_crowd_http.json" "$CROWD_PORT" \
  >"$WORK/run_crowd_http.request.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["provider"]["endpoint"] = "127.0.0.1:" + sys.argv[2]
json.dump(doc, sys.stdout, indent=2)
PYEOF

check_golden() {
  local name="$1"
  python3 "$FIXTURES/normalize_response.py" \
    <"$WORK/$name.out" >"$WORK/$name.norm"
  if [ "${UPDATE_GOLDENS:-0}" = "1" ]; then
    cp "$WORK/$name.norm" "$GOLDEN/$name.golden.json"
    echo "updated golden: $name"
  else
    diff -u "$GOLDEN/$name.golden.json" "$WORK/$name.norm" \
      || { echo "FAIL: $name diverged from its golden"; exit 1; }
    echo "golden ok: $name"
  fi
}

# --- one-shot fusion:run, scripted (pure in-process determinism) ---------
curl -fsS -X POST --data @"$FIXTURES/run_scripted.json" \
  "$BASE/v1/fusion:run" >"$WORK/run_scripted.out"
check_golden run_scripted

# --- one-shot fusion:run through the remote crowd (provider "http"):
# client -> HTTP -> service -> HTTP -> crowd, all over real sockets ------
curl -fsS -X POST --data @"$WORK/run_crowd_http.request.json" \
  "$BASE/v1/fusion:run" >"$WORK/run_crowd_http.out"
check_golden run_crowd_http

# --- incremental session lifecycle --------------------------------------
SID=$(curl -fsS -X POST --data @"$FIXTURES/run_scripted.json" \
  "$BASE/v1/sessions" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["session_id"])')
echo "created session $SID"
test "$SID" = "s-1"  # counter-based ids: a fresh server always starts here

for _ in $(seq 1 64); do
  DONE=$(curl -fsS -X POST -d '{}' "$BASE/v1/sessions/$SID/step" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["done"])')
  [ "$DONE" = "True" ] && break
done
test "$DONE" = "True"

curl -fsS "$BASE/v1/sessions/$SID" |
  python3 -c 'import json,sys; d=json.load(sys.stdin); assert d["done"]'
curl -fsS "$BASE/v1/sessions/$SID/result" >"$WORK/session_result.out"
check_golden session_result

# The incremental run must reproduce the one-shot response exactly.
if [ "${UPDATE_GOLDENS:-0}" != "1" ]; then
  diff -u "$WORK/run_scripted.norm" "$WORK/session_result.norm" \
    || { echo "FAIL: session result != one-shot run"; exit 1; }
fi

curl -fsS -X DELETE "$BASE/v1/sessions/$SID" >/dev/null
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sessions/$SID")
test "$STATUS" = "404"

# --- metrics gauges ------------------------------------------------------
curl -fsS "$BASE/metricsz" | python3 -c '
import json, sys
m = json.load(sys.stdin)
assert m["requests_served"] >= 10, m
assert m["requests_rejected"] >= 1, m      # the 404 probe above (a 4xx)
assert m["requests_failed"] == 0, m        # 5xx only: nothing broke
assert m["sessions_created"] == 1, m
assert m["sessions_active"] == 0, m
assert "p50_handler_ms" in m and "p95_handler_ms" in m, m
assert m["uptime_seconds"] > 0, m          # monotonic since Start()
assert m["connections_accepted"] >= 1, m   # every curl above connected
print("metricsz ok:", json.dumps(m))
'

# --- clean SIGTERM shutdown ----------------------------------------------
kill -TERM "$SERVE_PID"
RC=0
wait "$SERVE_PID" || RC=$?
trap - EXIT
if [ "$RC" != "0" ]; then
  echo "FAIL: serve exited $RC on SIGTERM"; cat "$WORK/serve.log"; exit 1
fi
grep -q "shut down cleanly" "$WORK/serve.log"
echo "PASS: single-backend serve (clean shutdown, goldens matched)"

# ========================================================================
# PART 2 (ISSUE 6): router topology over real processes —
#   router -> 2 backends (`serve`) -> 2 standalone crowd platforms
# with two kill tests: a crowd platform dying mid-run (the http_pool
# provider must fail the batches over), and a backend dying (only its own
# sessions may be lost).
# ========================================================================
echo "=== router topology: router -> 2 backends -> 2 crowd platforms ==="

"$CLI" crowd --port 0 >"$WORK/crowd_a.log" 2>&1 &
CROWD_A_PID=$!
"$CLI" crowd --port 0 >"$WORK/crowd_b.log" 2>&1 &
CROWD_B_PID=$!
"$CLI" serve --port 0 --crowd-port 0 >"$WORK/backend_a.log" 2>&1 &
BACKEND_A_PID=$!
"$CLI" serve --port 0 --crowd-port 0 >"$WORK/backend_b.log" 2>&1 &
BACKEND_B_PID=$!
ROUTE_PID=""
cleanup_fleet() {
  kill -9 "$CROWD_A_PID" "$CROWD_B_PID" "$BACKEND_A_PID" \
    "$BACKEND_B_PID" $ROUTE_PID 2>/dev/null || true
}
trap cleanup_fleet EXIT

wait_for_line() { # <log> <pattern> <pid>
  for _ in $(seq 1 100); do
    if grep -q "$2" "$1" 2>/dev/null; then return 0; fi
    if ! kill -0 "$3" 2>/dev/null; then
      echo "FAIL: process behind $1 died during startup"; cat "$1"; exit 1
    fi
    sleep 0.1
  done
  echo "FAIL: timed out waiting for '$2' in $1"; cat "$1"; exit 1
}

wait_for_line "$WORK/crowd_a.log" "^crowd platform on " "$CROWD_A_PID"
wait_for_line "$WORK/crowd_b.log" "^crowd platform on " "$CROWD_B_PID"
wait_for_line "$WORK/backend_a.log" "^serving on " "$BACKEND_A_PID"
wait_for_line "$WORK/backend_b.log" "^serving on " "$BACKEND_B_PID"
CROWD_A=$(sed -n 's#^crowd platform on http://\([0-9.:]*\)$#\1#p' \
  "$WORK/crowd_a.log")
CROWD_B=$(sed -n 's#^crowd platform on http://\([0-9.:]*\)$#\1#p' \
  "$WORK/crowd_b.log")
BACKEND_A_PORT=$(sed -n 's#^serving on http://127.0.0.1:\([0-9]*\).*#\1#p' \
  "$WORK/backend_a.log")
BACKEND_B_PORT=$(sed -n 's#^serving on http://127.0.0.1:\([0-9]*\).*#\1#p' \
  "$WORK/backend_b.log")
test -n "$CROWD_A" && test -n "$CROWD_B"
test -n "$BACKEND_A_PORT" && test -n "$BACKEND_B_PORT"

"$CLI" route --port 0 \
  --backends "127.0.0.1:$BACKEND_A_PORT,127.0.0.1:$BACKEND_B_PORT" \
  >"$WORK/route.log" 2>&1 &
ROUTE_PID=$!
wait_for_line "$WORK/route.log" "^routing on " "$ROUTE_PID"
ROUTE_PORT=$(sed -n 's#^routing on http://127.0.0.1:\([0-9]*\).*#\1#p' \
  "$WORK/route.log")
test -n "$ROUTE_PORT"
RBASE="http://127.0.0.1:$ROUTE_PORT"
echo "router on $ROUTE_PORT -> backends $BACKEND_A_PORT,$BACKEND_B_PORT;" \
  "crowd platforms $CROWD_A,$CROWD_B"
curl -fsS "$RBASE/healthz" | python3 -c '
import json, sys
h = json.load(sys.stdin)
assert h["backends"] == 2 and h["healthy_backends"] == 2, h
'

# --- kill a crowd platform mid-run: http_pool fails the batches over ----
python3 - "$FIXTURES/run_crowd_http.json" "$CROWD_A" "$CROWD_B" \
  >"$WORK/run_pool.request.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["label"] = "e2e-pool-failover"
doc["provider"]["kind"] = "http_pool"
doc["provider"].pop("endpoint", None)
doc["provider"]["endpoints"] = [sys.argv[2], sys.argv[3]]
json.dump(doc, sys.stdout, indent=2)
PYEOF

POOL_SID=$(curl -fsS -X POST --data @"$WORK/run_pool.request.json" \
  "$RBASE/v1/sessions" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["session_id"])')
echo "pool session $POOL_SID (keyed id minted by the router)"
case "$POOL_SID" in *@*) ;; *)
  echo "FAIL: router did not key the session id"; exit 1;; esac

# One step with both platforms alive, then pull the rug out.
curl -fsS -X POST -d '{}' "$RBASE/v1/sessions/$POOL_SID/step" >/dev/null
kill -9 "$CROWD_A_PID"
echo "killed crowd platform $CROWD_A mid-run"

for _ in $(seq 1 64); do
  DONE=$(curl -fsS -X POST -d '{}' "$RBASE/v1/sessions/$POOL_SID/step" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["done"])')
  [ "$DONE" = "True" ] && break
done
test "$DONE" = "True"
curl -fsS "$RBASE/v1/sessions/$POOL_SID/result" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["dead_instances"] == 0, r            # every book finished
assert r["stats"]["tickets_resubmitted"] > 0, r["stats"]  # failover fired
print("pool failover ok: tickets_resubmitted =",
      r["stats"]["tickets_resubmitted"])
'
curl -fsS -X DELETE "$RBASE/v1/sessions/$POOL_SID" >/dev/null

# --- kill a backend: only its own sessions go dark ----------------------
SIDS=""
for _ in $(seq 1 12); do
  SID=$(curl -fsS -X POST --data @"$FIXTURES/run_scripted.json" \
    "$RBASE/v1/sessions" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["session_id"])')
  SIDS="$SIDS $SID"
done
A_ACTIVE=$(curl -fsS "http://127.0.0.1:$BACKEND_A_PORT/metricsz" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["sessions_active"])')
B_ACTIVE=$(curl -fsS "http://127.0.0.1:$BACKEND_B_PORT/metricsz" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["sessions_active"])')
echo "sessions spread: backend A holds $A_ACTIVE, backend B holds $B_ACTIVE"
test "$A_ACTIVE" -ge 1 && test "$B_ACTIVE" -ge 1
test $((A_ACTIVE + B_ACTIVE)) -eq 12

kill -9 "$BACKEND_A_PID"
echo "killed backend A ($BACKEND_A_PORT)"

ALIVE=0; LOST=0
for SID in $SIDS; do
  CODE=$(curl -s -o /dev/null -w '%{http_code}' "$RBASE/v1/sessions/$SID")
  if [ "$CODE" = "200" ]; then ALIVE=$((ALIVE + 1));
  elif [ "$CODE" = "503" ]; then LOST=$((LOST + 1));
  else echo "FAIL: unexpected status $CODE for $SID"; exit 1; fi
done
echo "after the kill: $ALIVE sessions alive, $LOST lost"
test "$ALIVE" -eq "$B_ACTIVE"   # the survivor lost nothing
test "$LOST" -eq "$A_ACTIVE"    # the corpse took only its own

# Stateless traffic routes around the corpse, and new sessions still land.
curl -fsS -X POST --data @"$FIXTURES/run_scripted.json" \
  "$RBASE/v1/fusion:run" >/dev/null
FRESH=$(curl -fsS -X POST --data @"$FIXTURES/run_scripted.json" \
  "$RBASE/v1/sessions" |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["session_id"])')
case "$FRESH" in *@*) ;; *)
  echo "FAIL: post-kill session create not keyed"; exit 1;; esac
curl -fsS "$RBASE/metricsz" | python3 -c '
import json, sys
m = json.load(sys.stdin)
assert m["proxy_failures"] >= 1, m   # the dead backend was noticed
assert m["sessions_created"] >= 14, m
'

# --- clean SIGTERM shutdown of the router -------------------------------
kill -TERM "$ROUTE_PID"
RC=0
wait "$ROUTE_PID" || RC=$?
if [ "$RC" != "0" ]; then
  echo "FAIL: route exited $RC on SIGTERM"; cat "$WORK/route.log"; exit 1
fi
grep -q "shut down cleanly" "$WORK/route.log"
ROUTE_PID=""
kill -TERM "$BACKEND_B_PID" "$CROWD_B_PID" 2>/dev/null || true
wait "$BACKEND_B_PID" "$CROWD_B_PID" 2>/dev/null || true
trap - EXIT
cleanup_fleet
echo "PASS: serve-e2e (goldens, pool failover, backend kill, clean shutdown)"
