#!/usr/bin/env python3
"""Normalizes a crowdfusion HTTP response for golden diffing.

Strips the fields that legitimately vary run-to-run — wall-clock stats and
per-step transport latency — and re-serializes deterministically (2-space
indent, insertion order preserved). Everything else (steps, answers,
joints, utilities) must match the checked-in golden byte-for-byte.
"""

import json
import sys


def normalize(doc):
    if isinstance(doc, dict):
        if "stats" in doc:
            doc["stats"] = "NORMALIZED"
        if "latency_seconds" in doc:
            doc["latency_seconds"] = 0
        for value in doc.values():
            normalize(value)
    elif isinstance(doc, list):
        for value in doc:
            normalize(value)
    return doc


def main():
    doc = normalize(json.load(sys.stdin))
    json.dump(doc, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
