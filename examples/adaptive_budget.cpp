/// Adaptive global budget allocation (the paper's Section V-D suggestion,
/// implemented): instead of a fixed budget B per book, one global budget is
/// spent step by step on whichever book's best next task promises the
/// largest expected quality gain. Statement-rich, uncertain books attract
/// more tasks; easy books stop consuming budget early.
///
/// The example also calibrates the crowd with a gold pre-test
/// (Section V-C3) before trusting its answers.
///
///   ./adaptive_budget [num_books] [global_budget]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/greedy_selector.h"
#include "core/scheduler.h"
#include "crowd/accuracy_estimator.h"
#include "crowd/simulated_crowd.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"
#include "eval/metrics.h"
#include "fusion/crh.h"

using namespace crowdfusion;

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 25;
  const int global_budget = argc > 2 ? std::atoi(argv[2]) : 250;

  data::BookDatasetOptions dataset_options;
  dataset_options.num_books = num_books;
  dataset_options.num_sources = 20;
  dataset_options.seed = 31;
  auto dataset = data::GenerateBookDataset(dataset_options);
  if (!dataset.ok()) return 1;

  fusion::CrhFuser fuser;
  auto fused = fuser.Fuse(dataset->claims);
  if (!fused.ok()) return 1;

  // Calibrate the crowd on gold tasks first (the real crowd here is a
  // simulator with true accuracy 0.83 that the system does not know).
  const double kTrueAccuracy = 0.83;
  std::vector<bool> gold_truths = {true, false, true, false, true,
                                   false, true, false};
  std::vector<int> gold_ids = {0, 1, 2, 3, 4, 5, 6, 7};
  crowd::SimulatedCrowd gold_crowd = crowd::SimulatedCrowd::WithUniformAccuracy(
      gold_truths, kTrueAccuracy, /*seed=*/404);
  auto estimate = crowd::EstimateAccuracy(gold_crowd, gold_ids, gold_truths,
                                          /*repetitions=*/40);
  if (!estimate.ok()) return 1;
  std::printf(
      "Gold pre-test: %d/%d correct -> Pc estimate %.3f, 95%% Wilson "
      "interval [%.3f, %.3f] (true accuracy %.2f)\n\n",
      estimate->correct, estimate->trials, estimate->mean, estimate->lower,
      estimate->upper, kTrueAccuracy);
  auto crowd_model = estimate->ToCrowdModel();
  if (!crowd_model.ok()) return 1;

  core::GreedySelector::Options greedy_options;
  greedy_options.use_pruning = true;
  greedy_options.use_preprocessing = true;
  core::GreedySelector selector(greedy_options);

  core::BudgetScheduler::Options scheduler_options;
  scheduler_options.total_budget = global_budget;
  auto scheduler = core::BudgetScheduler::Create(*crowd_model, &selector,
                                                 scheduler_options);
  if (!scheduler.ok()) return 1;

  std::vector<std::unique_ptr<crowd::SimulatedCrowd>> providers;
  std::vector<std::vector<bool>> truths_per_book;
  data::CorrelationModelOptions correlation;
  uint64_t seed = 500;
  for (const data::Book& book : dataset->books) {
    const int n = static_cast<int>(book.statements.size());
    if (n == 0) continue;
    std::vector<double> marginals;
    std::vector<bool> truths;
    std::vector<data::StatementCategory> categories;
    for (int i = 0; i < n; ++i) {
      marginals.push_back(fused->value_probability[static_cast<size_t>(
          book.value_ids[static_cast<size_t>(i)])]);
      truths.push_back(book.statements[static_cast<size_t>(i)].is_true);
      categories.push_back(book.statements[static_cast<size_t>(i)].category);
    }
    auto joint =
        data::BuildBookJoint(marginals, book.statements, correlation);
    if (!joint.ok()) return 1;
    providers.push_back(std::make_unique<crowd::SimulatedCrowd>(
        truths, categories, crowd::WorkerBias::Uniform(kTrueAccuracy),
        seed++));
    truths_per_book.push_back(truths);
    if (!scheduler->AddInstance(book.title, std::move(joint).value(),
                                providers.back().get())
             .ok()) {
      return 1;
    }
  }

  const double utility_before = scheduler->TotalUtilityBits();
  auto records = scheduler->Run();
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }

  eval::ConfusionCounts counts;
  for (int i = 0; i < scheduler->num_instances(); ++i) {
    counts += eval::CountConfusion(scheduler->joint(i).Marginals(),
                                   truths_per_book[static_cast<size_t>(i)]);
  }
  const eval::PrecisionRecallF1 prf = eval::ComputeF1(counts);

  std::printf("Global budget %d over %d books: utility %.2f -> %.2f bits, "
              "final F1 %.4f\n\n",
              global_budget, scheduler->num_instances(), utility_before,
              scheduler->TotalUtilityBits(), prf.f1);

  // How unevenly was the budget spent?
  common::TablePrinter table({"Book", "Statements", "Tasks spent"});
  int shown = 0;
  for (int i = 0; i < scheduler->num_instances() && shown < 10; ++i) {
    if (scheduler->cost_spent(i) == 0) continue;
    table.AddRow({scheduler->name(i),
                  std::to_string(scheduler->joint(i).num_facts()),
                  std::to_string(scheduler->cost_spent(i))});
    ++shown;
  }
  table.Print(std::cout);
  std::printf(
      "\nBudget concentrates on uncertain, statement-rich books instead of "
      "a flat B per book.\n");
  return 0;
}
