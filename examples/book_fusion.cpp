/// End-to-end Book-dataset scenario: the workload the paper's evaluation
/// runs, served through the FusionService facade. Generates a synthetic
/// bookstore dataset (the Book dataset substitute), fuses it with the
/// modified CRH framework, builds correlation-aware joints, and refines
/// every book against a simulated crowd — then runs the SAME typed
/// request on all three backends (per-book engines, the blocking global
/// scheduler, the pipelined scheduler) to show they are one API. Also
/// demonstrates dataset persistence (TSV save/load) and the quality-vs-
/// cost curves via the (service-backed) experiment harness.
///
///   ./book_fusion [num_books] [budget_per_book]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/dataset_io.h"
#include "eval/experiment.h"
#include "eval/reporting.h"
#include "service/fusion_service.h"

using namespace crowdfusion;

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 40;
  const int budget = argc > 2 ? std::atoi(argv[2]) : 30;

  eval::ExperimentOptions options;
  options.dataset.num_books = num_books;
  options.dataset.num_sources = 24;
  options.dataset.seed = 2017;
  options.budget_per_book = budget;
  options.tasks_per_round = 2;
  options.assumed_pc = 0.8;
  options.true_accuracy = 0.8;

  std::printf("Book fusion: %d books, %d sources, budget %d tasks/book\n\n",
              num_books, options.dataset.num_sources, budget);

  // Show the raw data difficulty and demonstrate dataset I/O.
  auto dataset = data::GenerateBookDataset(options.dataset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Raw web claims correct: %.1f%% (the paper reports ~50%%)\n",
              100.0 * dataset->FractionTrueClaims());
  const std::string tsv_path = "/tmp/crowdfusion_books.tsv";
  if (auto status = data::SaveBookDataset(*dataset, tsv_path); !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto reloaded = data::LoadBookDataset(tsv_path);
  std::printf("Dataset saved to %s and reloaded: %d claims round-tripped\n\n",
              tsv_path.c_str(),
              reloaded.ok() ? reloaded->claims.num_claims() : -1);

  // A peek at one book's statements.
  const data::Book& sample = dataset->books.front();
  std::printf("Example book \"%s\" (true authors: %s):\n",
              sample.title.c_str(),
              data::RenderAuthorList(sample.true_authors,
                                     data::NameFormat::kFirstLast)
                  .c_str());
  common::TablePrinter statements({"Statement", "Category", "Truth"});
  for (const data::Statement& s : sample.statements) {
    statements.AddRow({s.text, data::StatementCategoryName(s.category),
                       s.is_true ? "true" : "false"});
  }
  statements.Print(std::cout);
  std::printf("\n");

  // One request, three backends: the same typed FusionRequest runs on the
  // per-book engine loop, the blocking global scheduler, and the
  // pipelined scheduler — only `mode` changes.
  service::FusionRequest request;
  service::DatasetSpec workload;
  workload.generate = options.dataset;
  request.dataset = workload;
  request.provider.kind = "simulated_crowd";
  request.provider.accuracy = options.true_accuracy;
  request.provider.seed = options.crowd_seed;
  request.assumed_pc = options.assumed_pc;
  request.budget.budget_per_instance = budget;
  request.budget.tasks_per_step = options.tasks_per_round;

  service::FusionService fusion_service;
  common::TablePrinter backends(
      {"Backend", "Steps", "Cost", "Utility (bits)", "Crowd acc."});
  for (const service::RunMode mode :
       {service::RunMode::kEngine, service::RunMode::kBlocking,
        service::RunMode::kPipelined}) {
    request.mode = mode;
    auto response = fusion_service.Run(request);
    if (!response.ok()) {
      std::fprintf(stderr, "%s: %s\n", service::RunModeName(mode),
                   response.status().ToString().c_str());
      return 1;
    }
    const double accuracy =
        response->stats.answers_served > 0
            ? static_cast<double>(response->stats.answers_correct) /
                  static_cast<double>(response->stats.answers_served)
            : 0.0;
    backends.AddRow(
        {service::RunModeName(mode),
         std::to_string(response->steps.size()),
         std::to_string(response->total_cost_spent),
         common::StrFormat("%.2f", response->total_utility_bits),
         common::StrFormat("%.3f", accuracy)});
  }
  std::printf("One request, three backends:\n");
  backends.Print(std::cout);
  std::printf("\n");

  // Quality-vs-cost curves via the experiment harness (itself a thin
  // client of the same service): full greedy against the random baseline.
  auto approx = eval::RunExperiment(options);
  if (!approx.ok()) {
    std::fprintf(stderr, "%s\n", approx.status().ToString().c_str());
    return 1;
  }
  options.selector = eval::SelectorKind::kRandom;
  auto random = eval::RunExperiment(options);
  if (!random.ok()) return 1;

  eval::PrintCurves(std::cout, "Quality vs crowd cost",
                    {*approx, *random}, /*max_rows=*/10);
  std::printf("\n");
  eval::PrintSummary(std::cout, {*approx, *random});
  std::printf(
      "\nCrowdFusion lifted F1 %.3f -> %.3f using %d crowd answers/book.\n",
      approx->initial_quality.f1, approx->final_quality.f1, budget);
  return 0;
}
