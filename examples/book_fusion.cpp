/// End-to-end Book-dataset scenario: the workload the paper's evaluation
/// runs. Generates a synthetic bookstore dataset (the Book dataset
/// substitute), fuses it with the modified CRH framework, builds
/// correlation-aware joint distributions, and refines every book with
/// CrowdFusion rounds against a simulated crowd. Also demonstrates dataset
/// persistence (TSV save/load).
///
///   ./book_fusion [num_books] [budget_per_book]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/dataset_io.h"
#include "eval/experiment.h"
#include "eval/reporting.h"

using namespace crowdfusion;

int main(int argc, char** argv) {
  const int num_books = argc > 1 ? std::atoi(argv[1]) : 40;
  const int budget = argc > 2 ? std::atoi(argv[2]) : 30;

  eval::ExperimentOptions options;
  options.dataset.num_books = num_books;
  options.dataset.num_sources = 24;
  options.dataset.seed = 2017;
  options.budget_per_book = budget;
  options.tasks_per_round = 2;
  options.assumed_pc = 0.8;
  options.true_accuracy = 0.8;

  std::printf("Book fusion: %d books, %d sources, budget %d tasks/book\n\n",
              num_books, options.dataset.num_sources, budget);

  // Show the raw data difficulty and demonstrate dataset I/O.
  auto dataset = data::GenerateBookDataset(options.dataset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Raw web claims correct: %.1f%% (the paper reports ~50%%)\n",
              100.0 * dataset->FractionTrueClaims());
  const std::string tsv_path = "/tmp/crowdfusion_books.tsv";
  if (auto status = data::SaveBookDataset(*dataset, tsv_path); !status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto reloaded = data::LoadBookDataset(tsv_path);
  std::printf("Dataset saved to %s and reloaded: %d claims round-tripped\n\n",
              tsv_path.c_str(),
              reloaded.ok() ? reloaded->claims.num_claims() : -1);

  // A peek at one book's statements.
  const data::Book& sample = dataset->books.front();
  std::printf("Example book \"%s\" (true authors: %s):\n",
              sample.title.c_str(),
              data::RenderAuthorList(sample.true_authors,
                                     data::NameFormat::kFirstLast)
                  .c_str());
  common::TablePrinter statements({"Statement", "Category", "Truth"});
  for (const data::Statement& s : sample.statements) {
    statements.AddRow({s.text, data::StatementCategoryName(s.category),
                       s.is_true ? "true" : "false"});
  }
  statements.Print(std::cout);
  std::printf("\n");

  // Run CrowdFusion with the full greedy against the random baseline.
  auto approx = eval::RunExperiment(options);
  if (!approx.ok()) {
    std::fprintf(stderr, "%s\n", approx.status().ToString().c_str());
    return 1;
  }
  options.selector = eval::SelectorKind::kRandom;
  auto random = eval::RunExperiment(options);
  if (!random.ok()) return 1;

  eval::PrintCurves(std::cout, "Quality vs crowd cost",
                    {*approx, *random}, /*max_rows=*/10);
  std::printf("\n");
  eval::PrintSummary(std::cout, {*approx, *random});
  std::printf(
      "\nCrowdFusion lifted F1 %.3f -> %.3f using %d crowd answers/book.\n",
      approx->initial_quality.f1, approx->final_quality.f1, budget);
  return 0;
}
