# CLI smoke test (ISSUE 4 satellite): drives crowdfusion_cli through its
# whole pipeline in a scratch directory AND pins the error contract — an
# unknown subcommand or flag must print usage to stderr and exit nonzero
# (the seed binary exited quietly on several of these paths), while
# runtime errors (bad fuser key, missing file) must exit nonzero with a
# diagnostic.
#
# Invoked by ctest as:
#   cmake -DCLI_BIN=<path> -DWORK_DIR=<scratch> -P check_cli.cmake

if(NOT DEFINED CLI_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "CLI_BIN and WORK_DIR are required")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# run(<mode> <name> <args...>): executes the CLI and asserts on <mode>:
#   SUCCESS    — exit 0
#   FAIL_USAGE — nonzero exit AND usage text on stderr (arg-parse errors)
#   FAIL       — nonzero exit with any diagnostic (runtime errors)
function(run mode name)
  execute_process(
    COMMAND "${CLI_BIN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(mode STREQUAL "SUCCESS")
    if(NOT code EQUAL 0)
      message(FATAL_ERROR
        "${name}: expected success, got exit ${code}\nstderr: ${err}")
    endif()
  else()
    if(code EQUAL 0)
      message(FATAL_ERROR
        "${name}: expected a nonzero exit, got 0\nstdout: ${out}")
    endif()
    if(mode STREQUAL "FAIL_USAGE" AND NOT err MATCHES "usage:")
      message(FATAL_ERROR
        "${name}: expected usage on stderr, got: ${err}")
    endif()
    if(mode STREQUAL "FAIL" AND err STREQUAL "")
      message(FATAL_ERROR "${name}: expected a diagnostic on stderr")
    endif()
    # Stdout hygiene (ISSUE 9 satellite): stdout is for DATA. A failing
    # invocation must write its diagnostics to stderr only, so shell
    # pipelines never see half an error message as payload.
    if(NOT out STREQUAL "")
      message(FATAL_ERROR
        "${name}: failure wrote to stdout (must be stderr-only): ${out}")
    endif()
  endif()
endfunction()

# Error contract: arg-parse problems print usage and exit nonzero.
run(FAIL_USAGE no-args)
run(FAIL_USAGE unknown-command frobnicate)
run(FAIL_USAGE generate-missing-path generate)
run(FAIL_USAGE refine-unknown-flag refine books.tsv joints --frob)
run(FAIL_USAGE generate-unknown-flag generate books.tsv --frob)
run(FAIL_USAGE score-extra-args score a b c)

# Happy path: generate -> fuse -> score -> refine (engine) -> refine
# (pipelined) -> score, plus a serialized request through `request`.
run(SUCCESS generate generate books.tsv 8 10 5)
run(SUCCESS fuse fuse books.tsv joints crh)
run(SUCCESS score-initial score books.tsv joints)
run(SUCCESS refine-engine refine books.tsv joints 6 0.8)
run(SUCCESS refine-async refine books.tsv joints 4 0.8 --async
    --max-in-flight 3 --latency-ms 0.5 --skip-failed)
run(SUCCESS score-refined score books.tsv joints)

# Runtime errors: nonzero with a diagnostic.
run(FAIL fuse-unknown-fuser fuse books.tsv joints2 blockchain)
run(FAIL request-missing-file request nope.json)

file(WRITE "${WORK_DIR}/request.json" [=[
{
  "schema": "crowdfusion-request-v1",
  "mode": "blocking",
  "assumed_pc": 0.8,
  "selector": {"kind": "greedy"},
  "provider": {"kind": "scripted"},
  "budget": {"budget_per_instance": 2, "tasks_per_step": 1},
  "instances": [
    {"name": "demo", "joint": {"num_facts": 2,
     "entries": [["0", 0.25], ["1", 0.25], ["2", 0.25], ["3", 0.25]]}}
  ]
}
]=])
run(SUCCESS request request request.json)

# Bulk pipe: newline-delimited requests on stdin, one compact response
# line per request on stdout in INPUT order; a bad line becomes an error
# envelope naming its physical line, never an abort.
file(WRITE "${WORK_DIR}/pipe_input.jsonl" [=[
{"schema": "crowdfusion-request-v1", "mode": "engine", "selector": {"kind": "greedy"}, "provider": {"kind": "scripted"}, "budget": {"budget_per_instance": 2}, "instances": [{"name": "demo", "joint": {"num_facts": 2, "entries": [["0", 0.25], ["1", 0.25], ["2", 0.25], ["3", 0.25]]}, "truths": [true, false]}]}
this line is not a request
]=])
execute_process(
  COMMAND "${CLI_BIN}" pipe --max-in-flight 4 --threads 2
  WORKING_DIRECTORY "${WORK_DIR}"
  INPUT_FILE "${WORK_DIR}/pipe_input.jsonl"
  RESULT_VARIABLE pipe_code
  OUTPUT_VARIABLE pipe_out
  ERROR_VARIABLE pipe_err)
if(NOT pipe_code EQUAL 0)
  message(FATAL_ERROR "pipe: expected exit 0, got ${pipe_code}\n${pipe_err}")
endif()
string(REGEX MATCH "^[^\n]*" pipe_first "${pipe_out}")
if(NOT pipe_first MATCHES "crowdfusion-response-v1")
  message(FATAL_ERROR
    "pipe: first output line is not a response: ${pipe_first}")
endif()
if(NOT pipe_out MATCHES "crowdfusion-error-v1")
  message(FATAL_ERROR "pipe: bad input line produced no error envelope")
endif()
if(NOT pipe_err MATCHES "books/sec")
  message(FATAL_ERROR "pipe: missing throughput report on stderr")
endif()
run(FAIL_USAGE pipe-bad-window pipe --max-in-flight 0)

message(STATUS "crowdfusion_cli smoke: all checks passed")
