/// CrowdFusion is initializer-agnostic (Section VII): any fusion method
/// producing probabilities can seed it. This example runs the same crowd
/// budget on top of four machine-only initializers — modified CRH (the
/// paper's choice), majority voting, TruthFinder, and ACCU — and shows the
/// crowd narrowing the gap between them. The web-link-analysis family
/// (Sums, Average-Log, Investment) is included as well.
///
///   ./compare_initializers

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/experiment.h"

using namespace crowdfusion;

int main() {
  eval::ExperimentOptions base;
  base.dataset.num_books = 30;
  base.dataset.num_sources = 20;
  base.dataset.seed = 11;
  base.budget_per_book = 20;
  base.tasks_per_round = 2;
  base.assumed_pc = 0.8;
  base.true_accuracy = 0.8;

  std::printf(
      "Initializer comparison: %d books, budget %d tasks/book, Pc = %.1f\n\n",
      base.dataset.num_books, base.budget_per_book, base.assumed_pc);

  common::TablePrinter table(
      {"Initializer", "F1 before crowd", "F1 after crowd", "Utility before",
       "Utility after"});
  for (eval::Initializer initializer :
       {eval::Initializer::kCrh, eval::Initializer::kMajorityVote,
        eval::Initializer::kTruthFinder, eval::Initializer::kAccu,
        eval::Initializer::kSums, eval::Initializer::kAverageLog,
        eval::Initializer::kInvestment}) {
    eval::ExperimentOptions options = base;
    options.initializer = initializer;
    auto result = eval::RunExperiment(options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   eval::InitializerName(initializer),
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({eval::InitializerName(initializer),
                  common::StrFormat("%.4f", result->initial_quality.f1),
                  common::StrFormat("%.4f", result->final_quality.f1),
                  common::StrFormat("%.2f", result->initial_utility_bits),
                  common::StrFormat("%.2f", result->final_utility_bits)});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe crowd budget lifts every initializer; weaker machine-only "
      "starts benefit most.\n");
  return 0;
}
