/// File-driven command-line front end, chaining the library's persistence
/// formats so each pipeline stage can run as its own process:
///
///   crowdfusion_cli generate <claims.tsv> [books] [sources] [seed]
///       synthesize a Book dataset and write it in the TSV claim format
///   crowdfusion_cli fuse <claims.tsv> <joint-dir> [crh|majority|...]
///       run machine-only fusion and write one joint file per book
///   crowdfusion_cli refine <claims.tsv> <joint-dir> [budget] [pc]
///                   [--async] [--threads N] [--max-in-flight M]
///                   [--latency-ms S]
///       run CrowdFusion rounds on every saved joint (simulated crowd
///       seeded from the gold labels) and rewrite the refined joints.
///       --async serves every book from ONE pipelined BudgetScheduler
///       (global budget = budget x books, up to M ticket batches in
///       flight, crowd latency simulated at S ms median) instead of
///       refining books one blocking engine at a time; --threads caps the
///       selector's preprocessing shards
///   crowdfusion_cli score <claims.tsv> <joint-dir>
///       compare the stored joints' marginals against the gold labels
///
/// Example session:
///   ./crowdfusion_cli generate /tmp/books.tsv 20 16 7
///   ./crowdfusion_cli fuse /tmp/books.tsv /tmp/joints crh
///   ./crowdfusion_cli score /tmp/books.tsv /tmp/joints
///   ./crowdfusion_cli refine /tmp/books.tsv /tmp/joints 40 0.8
///   ./crowdfusion_cli score /tmp/books.tsv /tmp/joints

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fusion/crh.h"
#include "fusion/majority_vote.h"
#include "fusion/web_link_fusers.h"

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/crowdfusion.h"
#include "core/greedy_selector.h"
#include "core/scheduler.h"
#include "core/serialization.h"
#include "crowd/simulated_crowd.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"
#include "data/dataset_io.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

using namespace crowdfusion;

namespace {

std::string JointPath(const std::string& dir, const data::Book& book) {
  return dir + "/" + book.isbn + ".joint";
}

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: generate <claims.tsv> [books] [sources] [seed]\n");
    return 2;
  }
  data::BookDatasetOptions options;
  options.num_books = argc > 3 ? std::atoi(argv[3]) : 20;
  options.num_sources = argc > 4 ? std::atoi(argv[4]) : 16;
  options.seed = argc > 5 ? static_cast<uint64_t>(std::atoll(argv[5])) : 7;
  auto dataset = data::GenerateBookDataset(options);
  if (!dataset.ok()) return Fail(dataset.status());
  if (auto status = data::SaveBookDataset(*dataset, argv[2]); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %d claims on %d books (%d sources) to %s\n",
              dataset->claims.num_claims(), dataset->claims.num_entities(),
              dataset->claims.num_sources(), argv[2]);
  return 0;
}

common::Result<eval::Initializer> ParseInitializer(const std::string& name) {
  if (name == "crh") return eval::Initializer::kCrh;
  if (name == "majority") return eval::Initializer::kMajorityVote;
  if (name == "truthfinder") return eval::Initializer::kTruthFinder;
  if (name == "accu") return eval::Initializer::kAccu;
  if (name == "sums") return eval::Initializer::kSums;
  if (name == "averagelog") return eval::Initializer::kAverageLog;
  if (name == "investment") return eval::Initializer::kInvestment;
  return common::Status::InvalidArgument("unknown fuser: " + name);
}

int CmdFuse(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: fuse <claims.tsv> <joint-dir> [fuser]\n");
    return 2;
  }
  auto dataset = data::LoadBookDataset(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  auto initializer = ParseInitializer(argc > 4 ? argv[4] : "crh");
  if (!initializer.ok()) return Fail(initializer.status());
  std::printf("fusing with %s...\n", eval::InitializerName(*initializer));
  std::unique_ptr<fusion::Fuser> fuser;
  switch (*initializer) {
    case eval::Initializer::kMajorityVote:
      fuser = std::make_unique<fusion::MajorityVoteFuser>();
      break;
    case eval::Initializer::kSums:
      fuser = std::make_unique<fusion::SumsFuser>();
      break;
    case eval::Initializer::kAverageLog:
      fuser = std::make_unique<fusion::AverageLogFuser>();
      break;
    case eval::Initializer::kInvestment:
      fuser = std::make_unique<fusion::InvestmentFuser>();
      break;
    default:
      fuser = std::make_unique<fusion::CrhFuser>();
      break;
  }
  auto fused = fuser->Fuse(dataset->claims);
  if (!fused.ok()) return Fail(fused.status());

  std::filesystem::create_directories(argv[3]);
  data::CorrelationModelOptions correlation;
  int written = 0;
  for (const data::Book& book : dataset->books) {
    if (book.statements.empty()) continue;
    std::vector<double> marginals;
    for (int vid : book.value_ids) {
      marginals.push_back(
          fused->value_probability[static_cast<size_t>(vid)]);
    }
    auto joint =
        data::BuildBookJoint(marginals, book.statements, correlation);
    if (!joint.ok()) return Fail(joint.status());
    if (auto status =
            core::SaveJointDistribution(*joint, JointPath(argv[3], book));
        !status.ok()) {
      return Fail(status);
    }
    ++written;
  }
  std::printf("wrote %d joint files to %s\n", written, argv[3]);
  return 0;
}

/// Serves every book from one pipelined BudgetScheduler: selection for one
/// book overlaps the simulated crowd latency of the others.
int RefineAsync(const data::BookDataset& dataset, const char* joint_dir,
                int budget, double pc, int max_in_flight,
                double latency_ms, core::GreedySelector* selector) {
  auto crowd_model = core::CrowdModel::Create(pc);
  if (!crowd_model.ok()) return Fail(crowd_model.status());

  std::vector<const data::Book*> books;
  for (const data::Book& book : dataset.books) {
    if (!book.statements.empty()) books.push_back(&book);
  }
  core::BudgetScheduler::Options options;
  options.total_budget = budget * static_cast<int>(books.size());
  options.tasks_per_step = 1;
  options.max_in_flight = max_in_flight;
  auto scheduler =
      core::BudgetScheduler::Create(*crowd_model, selector, options);
  if (!scheduler.ok()) return Fail(scheduler.status());

  std::vector<std::unique_ptr<crowd::SimulatedCrowd>> crowds;
  uint64_t seed = 12000;
  for (const data::Book* book : books) {
    auto joint = core::LoadJointDistribution(JointPath(joint_dir, *book));
    if (!joint.ok()) return Fail(joint.status());
    std::vector<bool> truths;
    std::vector<data::StatementCategory> categories;
    for (const data::Statement& s : book->statements) {
      truths.push_back(s.is_true);
      categories.push_back(s.category);
    }
    crowds.push_back(std::make_unique<crowd::SimulatedCrowd>(
        truths, categories, crowd::WorkerBias::Uniform(pc), seed++));
    crowd::LatencyOptions latency;
    latency.median_seconds = latency_ms / 1e3;
    latency.seed = seed * 31;
    crowds.back()->ConfigureAsync(latency);
    if (auto id = scheduler->AddInstanceAsync(
            book->isbn, std::move(joint).value(), crowds.back().get());
        !id.ok()) {
      return Fail(id.status());
    }
  }

  common::Stopwatch stopwatch;
  auto records = scheduler->RunPipelined();
  if (!records.ok()) return Fail(records.status());
  const double wall_s = stopwatch.ElapsedSeconds();

  for (size_t i = 0; i < books.size(); ++i) {
    if (auto status = core::SaveJointDistribution(
            scheduler->joint(static_cast<int>(i)),
            JointPath(joint_dir, *books[i]));
        !status.ok()) {
      return Fail(status);
    }
  }
  std::printf(
      "refined %zu joints asynchronously: global budget %d, spent %d in %zu "
      "steps, %.2fs wall (%.1f books/sec) at Pc=%.2f, max in flight %d, "
      "crowd latency %.1f ms median\n",
      books.size(), options.total_budget, scheduler->total_cost_spent(),
      records->size(), wall_s,
      static_cast<double>(books.size()) / std::max(wall_s, 1e-9), pc,
      max_in_flight, latency_ms);
  return 0;
}

int CmdRefine(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: refine <claims.tsv> <joint-dir> [budget] [pc] "
                 "[--async] [--threads N] [--max-in-flight M] "
                 "[--latency-ms S]\n");
    return 2;
  }
  auto dataset = data::LoadBookDataset(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());

  // Positional args first, then flags (the async serving knobs).
  int budget = 30;
  double pc = 0.8;
  bool use_async = false;
  int threads = 0;
  int max_in_flight = 4;
  double latency_ms = 5.0;
  int positional = 0;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--async") {
      use_async = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--max-in-flight" && i + 1 < argc) {
      max_in_flight = std::atoi(argv[++i]);
    } else if (arg == "--latency-ms" && i + 1 < argc) {
      latency_ms = std::atof(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown refine flag: %s\n", arg.c_str());
      return 2;
    } else if (positional == 0) {
      budget = std::atoi(arg.c_str());
      ++positional;
    } else if (positional == 1) {
      pc = std::atof(arg.c_str());
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected refine argument: %s\n", arg.c_str());
      return 2;
    }
  }

  auto crowd = core::CrowdModel::Create(pc);
  if (!crowd.ok()) return Fail(crowd.status());
  core::GreedySelector::Options greedy_options;
  greedy_options.use_pruning = true;
  greedy_options.use_preprocessing = true;
  greedy_options.preprocessing_threads = threads;
  core::GreedySelector selector(greedy_options);

  if (use_async) {
    return RefineAsync(*dataset, argv[3], budget, pc, max_in_flight,
                       latency_ms, &selector);
  }

  int refined = 0;
  uint64_t seed = 12000;
  for (const data::Book& book : dataset->books) {
    if (book.statements.empty()) continue;
    auto joint = core::LoadJointDistribution(JointPath(argv[3], book));
    if (!joint.ok()) return Fail(joint.status());
    std::vector<bool> truths;
    std::vector<data::StatementCategory> categories;
    for (const data::Statement& s : book.statements) {
      truths.push_back(s.is_true);
      categories.push_back(s.category);
    }
    crowd::SimulatedCrowd provider(truths, categories,
                                   crowd::WorkerBias::Uniform(pc), seed++);
    core::EngineOptions engine_options;
    engine_options.budget = budget;
    engine_options.tasks_per_round = 1;
    auto engine = core::CrowdFusionEngine::Create(
        std::move(joint).value(), *crowd, &selector, &provider,
        engine_options);
    if (!engine.ok()) return Fail(engine.status());
    if (auto records = engine->Run(); !records.ok()) {
      return Fail(records.status());
    }
    if (auto status = core::SaveJointDistribution(engine->current(),
                                                  JointPath(argv[3], book));
        !status.ok()) {
      return Fail(status);
    }
    ++refined;
  }
  std::printf("refined %d joints with budget %d/book at Pc=%.2f\n", refined,
              budget, pc);
  return 0;
}

int CmdScore(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: score <claims.tsv> <joint-dir>\n");
    return 2;
  }
  auto dataset = data::LoadBookDataset(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  eval::ConfusionCounts counts;
  double utility = 0.0;
  int books = 0;
  for (const data::Book& book : dataset->books) {
    if (book.statements.empty()) continue;
    auto joint = core::LoadJointDistribution(JointPath(argv[3], book));
    if (!joint.ok()) return Fail(joint.status());
    std::vector<bool> truths;
    for (const data::Statement& s : book.statements) {
      truths.push_back(s.is_true);
    }
    counts += eval::CountConfusion(joint->Marginals(), truths);
    utility += -joint->EntropyBits();
    ++books;
  }
  const eval::PrecisionRecallF1 prf = eval::ComputeF1(counts);
  std::printf(
      "%d books: precision %.4f, recall %.4f, F1 %.4f, total utility %.2f "
      "bits\n",
      books, prf.precision, prf.recall, prf.f1, utility);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: crowdfusion_cli <generate|fuse|refine|score> ...\n");
    return 2;
  }
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "fuse") return CmdFuse(argc, argv);
  if (command == "refine") return CmdRefine(argc, argv);
  if (command == "score") return CmdScore(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
