/// File-driven command-line front end — a thin client of
/// service::FusionService, chaining the library's persistence formats so
/// each pipeline stage can run as its own process:
///
///   crowdfusion_cli generate <claims.tsv> [books] [sources] [seed]
///       synthesize a Book dataset and write it in the TSV claim format
///   crowdfusion_cli fuse <claims.tsv> <joint-dir> [fuser]
///       run a machine-only fuser from the registry (crh, majority_vote,
///       accu, truthfinder, sums, averagelog, investment) and write one
///       joint file per book
///   crowdfusion_cli refine <claims.tsv> <joint-dir> [budget] [pc]
///                   [--async] [--threads N] [--max-in-flight M]
///                   [--latency-ms S] [--skip-failed]
///       run CrowdFusion rounds on every saved joint through the service
///       facade (simulated crowd seeded from the gold labels) and rewrite
///       the refined joints. Default: engine mode, one blocking engine
///       per book. --async serves every book from ONE pipelined
///       BudgetScheduler (global budget = budget x books, up to M ticket
///       batches in flight, crowd latency simulated at S ms median);
///       --skip-failed keeps serving when a ticket fails terminally
///       instead of aborting; --threads caps the selector's
///       preprocessing shards
///   crowdfusion_cli request <request.json>
///       parse a serialized FusionRequest, run it, and print the response
///       JSON to stdout — the full service boundary from the shell
///   crowdfusion_cli pipe [--max-in-flight M] [--threads T]
///       offline bulk fusion: stream newline-delimited FusionRequest JSON
///       from stdin, run up to M requests concurrently on T threads, and
///       print one compact response line per request to stdout IN INPUT
///       ORDER. A bad line yields a one-line crowdfusion-error-v1
///       envelope (with its input line number) instead of aborting the
///       stream; a books/sec + books/sec/core report goes to stderr on
///       exit
///   crowdfusion_cli serve [server flags] [--crowd-port M]
///                   [--record-trace FILE]
///       run the HTTP serving front-end (POST /v1/fusion:run, the
///       /v1/sessions endpoints, /healthz, /metricsz) until SIGTERM or
///       SIGINT, then shut down cleanly (exit 0). --crowd-port also
///       starts a loopback crowd platform on port M, so requests with
///       provider kind "http" and endpoint "127.0.0.1:M" exercise the
///       full client -> HTTP -> service -> HTTP -> crowd loop.
///       --record-trace appends every request to FILE in the
///       crowdfusion-trace-v1 JSONL format for later crowdfusion_loadgen
///       replay
///   crowdfusion_cli route --backends host:port,host:port [server flags]
///       run the net::Router front tier over N serve backends: session
///       traffic is consistent-hashed (ids become "s-1@key"), fusion:run
///       goes to the least-loaded backend, dead backends are ejected and
///       re-probed. Runs until SIGTERM/SIGINT, clean exit 0
///   crowdfusion_cli crowd [server flags]
///       run a standalone loopback crowd platform (the ticket wire the
///       "http"/"http_pool" providers speak) until SIGTERM/SIGINT — one
///       process per simulated crowd endpoint in multi-platform
///       topologies
///   crowdfusion_cli score <claims.tsv> <joint-dir>
///       compare the stored joints' marginals against the gold labels
///   crowdfusion_cli scenario <name>... | --all  [--out-dir DIR]
///       run named adversarial crowd scenarios (baseline, collusion,
///       sybil, spam, drift, streaming) across every machine-only fuser
///       and print — or, with --out-dir, write one <name>.json per
///       scenario — the deterministic golden-format report
///       (eval::ScenarioHarness; regenerate ci/scenario_goldens with
///       --all --out-dir ci/scenario_goldens)
///
/// Any unknown subcommand or flag prints usage to stderr and exits
/// nonzero (pinned by the CLI smoke tests). Diagnostics and progress
/// lines go to stderr; stdout carries only machine-readable output
/// (response JSON, score metrics, pipe responses) plus the serve/route/
/// crowd readiness lines that the e2e harness scrapes.
///
/// Example session:
///   ./crowdfusion_cli generate /tmp/books.tsv 20 16 7
///   ./crowdfusion_cli fuse /tmp/books.tsv /tmp/joints crh
///   ./crowdfusion_cli score /tmp/books.tsv /tmp/joints
///   ./crowdfusion_cli refine /tmp/books.tsv /tmp/joints 40 0.8
///   ./crowdfusion_cli score /tmp/books.tsv /tmp/joints

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "loadgen/trace.h"
#include "core/serialization.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"
#include "data/dataset_io.h"
#include "eval/metrics.h"
#include "eval/scenario.h"
#include "fusion/registry.h"
#include "net/loopback_crowd_server.h"
#include "net/router.h"
#include "net/server_config.h"
#include "service/bulk_pipe.h"
#include "service/fusion_service.h"
#include "service/http_frontend.h"
#include "service/request_json.h"

using namespace crowdfusion;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: crowdfusion_cli <command> ...\n"
      "  generate <claims.tsv> [books] [sources] [seed]\n"
      "  fuse     <claims.tsv> <joint-dir> [fuser]\n"
      "  refine   <claims.tsv> <joint-dir> [budget] [pc] [--async]\n"
      "           [--threads N] [--max-in-flight M] [--latency-ms S]\n"
      "           [--skip-failed]\n"
      "  request  <request.json>\n"
      "  pipe     [--max-in-flight M] [--threads T]\n"
      "  serve    [server flags] [--crowd-port M] [--record-trace FILE]\n"
      "  route    --backends host:port,host:port [server flags]\n"
      "  crowd    [server flags]\n"
      "  score    <claims.tsv> <joint-dir>\n"
      "  scenario <name>... | --all  [--out-dir DIR]\n"
      "server flags (serve, route, crowd — one config vocabulary):\n"
      "%s",
      net::ServerFlagUsage());
  return 2;
}

std::string JointPath(const std::string& dir, const data::Book& book) {
  return dir + "/" + book.isbn + ".joint";
}

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Rejects flag-looking arguments in commands that take none.
bool RejectFlags(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag for this command: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 3 || argc > 6 || !RejectFlags(argc, argv, 2)) return Usage();
  data::BookDatasetOptions options;
  options.num_books = argc > 3 ? std::atoi(argv[3]) : 20;
  options.num_sources = argc > 4 ? std::atoi(argv[4]) : 16;
  options.seed = argc > 5 ? static_cast<uint64_t>(std::atoll(argv[5])) : 7;
  auto dataset = data::GenerateBookDataset(options);
  if (!dataset.ok()) return Fail(dataset.status());
  if (auto status = data::SaveBookDataset(*dataset, argv[2]); !status.ok()) {
    return Fail(status);
  }
  std::fprintf(stderr, "wrote %d claims on %d books (%d sources) to %s\n",
               dataset->claims.num_claims(), dataset->claims.num_entities(),
               dataset->claims.num_sources(), argv[2]);
  return 0;
}

int CmdFuse(int argc, char** argv) {
  if (argc < 4 || argc > 5 || !RejectFlags(argc, argv, 2)) return Usage();
  auto dataset = data::LoadBookDataset(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());

  fusion::FuserSpec spec;
  spec.kind = argc > 4 ? argv[4] : "crh";
  if (spec.kind == "majority") spec.kind = "majority_vote";  // legacy alias
  const fusion::FuserRegistry registry = fusion::BuiltinFuserRegistry();
  auto fuser = registry.Create(spec.kind, spec);
  if (!fuser.ok()) return Fail(fuser.status());
  std::fprintf(stderr, "fusing with %s...\n", (*fuser)->name().c_str());
  auto fused = (*fuser)->Fuse(dataset->claims);
  if (!fused.ok()) return Fail(fused.status());

  std::filesystem::create_directories(argv[3]);
  data::CorrelationModelOptions correlation;
  int written = 0;
  for (const data::Book& book : dataset->books) {
    if (book.statements.empty()) continue;
    std::vector<double> marginals;
    for (int vid : book.value_ids) {
      marginals.push_back(fused->value_probability[static_cast<size_t>(vid)]);
    }
    auto joint = data::BuildBookJoint(marginals, book.statements, correlation);
    if (!joint.ok()) return Fail(joint.status());
    if (auto status =
            core::SaveJointDistribution(*joint, JointPath(argv[3], book));
        !status.ok()) {
      return Fail(status);
    }
    ++written;
  }
  std::fprintf(stderr, "wrote %d joint files to %s\n", written, argv[3]);
  return 0;
}

int CmdRefine(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string joint_dir = argv[3];

  // Positional args first, then flags (the async serving knobs). Argument
  // errors are reported before any file I/O is attempted.
  int budget = 30;
  double pc = 0.8;
  bool use_async = false;
  bool skip_failed = false;
  int threads = 0;
  int max_in_flight = 4;
  double latency_ms = 5.0;
  int positional = 0;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--async") {
      use_async = true;
    } else if (arg == "--skip-failed") {
      skip_failed = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--max-in-flight" && i + 1 < argc) {
      max_in_flight = std::atoi(argv[++i]);
    } else if (arg == "--latency-ms" && i + 1 < argc) {
      latency_ms = std::atof(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown refine flag: %s\n", arg.c_str());
      return Usage();
    } else if (positional == 0) {
      budget = std::atoi(arg.c_str());
      ++positional;
    } else if (positional == 1) {
      pc = std::atof(arg.c_str());
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected refine argument: %s\n", arg.c_str());
      return Usage();
    }
  }

  auto dataset = data::LoadBookDataset(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());

  // One typed request: the workload is the saved joints, the provider a
  // simulated crowd judging each book's gold labels; the mode flag flips
  // between the blocking engine loop and the pipelined scheduler.
  service::FusionRequest request;
  request.mode =
      use_async ? service::RunMode::kPipelined : service::RunMode::kEngine;
  request.assumed_pc = pc;
  request.selector.kind = "greedy";
  request.selector.use_pruning = true;
  request.selector.use_preprocessing = true;
  request.selector.preprocessing_threads = threads;
  request.provider.kind = "simulated_crowd";
  request.provider.accuracy = pc;
  request.provider.seed = 12000;
  if (use_async) {
    request.provider.latency_median_seconds = latency_ms / 1e3;
  }
  request.budget.budget_per_instance = budget;
  request.budget.tasks_per_step = 1;
  request.pipeline.max_in_flight = max_in_flight;
  request.pipeline.on_ticket_failure =
      skip_failed
          ? core::BudgetScheduler::TicketFailurePolicy::kSkipInstance
          : core::BudgetScheduler::TicketFailurePolicy::kAbort;

  std::vector<const data::Book*> books;
  for (const data::Book& book : dataset->books) {
    if (book.statements.empty()) continue;
    auto joint = core::LoadJointDistribution(JointPath(joint_dir, book));
    if (!joint.ok()) return Fail(joint.status());
    service::InstanceSpec instance;
    instance.name = book.isbn;
    instance.joint = std::move(joint).value();
    for (const data::Statement& s : book.statements) {
      instance.truths.push_back(s.is_true);
      instance.categories.push_back(static_cast<int>(s.category));
    }
    request.instances.push_back(std::move(instance));
    books.push_back(&book);
  }

  service::FusionService fusion_service;
  common::Stopwatch stopwatch;
  auto session = fusion_service.CreateSession(std::move(request));
  if (!session.ok()) return Fail(session.status());
  while (!(*session)->done()) {
    if (auto outcomes = (*session)->Step(); !outcomes.ok()) {
      return Fail(outcomes.status());
    }
  }
  const double wall_s = stopwatch.ElapsedSeconds();

  for (size_t i = 0; i < books.size(); ++i) {
    if (auto status = core::SaveJointDistribution(
            (*session)->joint(static_cast<int>(i)),
            JointPath(joint_dir, *books[i]));
        !status.ok()) {
      return Fail(status);
    }
  }
  const service::SessionProgress progress = (*session)->Poll();
  if (use_async) {
    std::fprintf(
        stderr,
        "refined %zu joints asynchronously: global budget %d, spent %d in "
        "%d steps, %.2fs wall (%.1f books/sec) at Pc=%.2f, max in flight "
        "%d, crowd latency %.1f ms median%s\n",
        books.size(), progress.total_budget, progress.total_cost_spent,
        progress.steps_completed, wall_s,
        static_cast<double>(books.size()) / std::max(wall_s, 1e-9), pc,
        max_in_flight, latency_ms,
        progress.dead_instances > 0
            ? common::StrFormat(" (%d instances skipped)",
                                progress.dead_instances)
                  .c_str()
            : "");
  } else {
    std::fprintf(stderr, "refined %zu joints with budget %d/book at Pc=%.2f\n",
                 books.size(), budget, pc);
  }
  return 0;
}

int CmdRequest(int argc, char** argv) {
  if (argc != 3 || !RejectFlags(argc, argv, 2)) return Usage();
  std::ifstream file(argv[2]);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[2]);
    return 1;
  }
  std::ostringstream text;
  text << file.rdbuf();
  auto request = service::ParseFusionRequest(text.str());
  if (!request.ok()) return Fail(request.status());
  service::FusionService fusion_service;
  auto response = fusion_service.Run(std::move(request).value());
  if (!response.ok()) return Fail(response.status());
  std::printf("%s\n", service::SerializeFusionResponse(*response).c_str());
  return 0;
}

int CmdPipe(int argc, char** argv) {
  service::BulkPipeOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-in-flight" && i + 1 < argc) {
      options.max_in_flight = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown pipe flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (options.max_in_flight < 1) {
    std::fprintf(stderr, "--max-in-flight must be >= 1\n");
    return Usage();
  }
  service::FusionService fusion_service;
  auto stats =
      service::RunBulkPipe(fusion_service, std::cin, std::cout, options);
  if (!stats.ok()) return Fail(stats.status());
  const double cores =
      std::max(1u, std::thread::hardware_concurrency());
  std::fprintf(
      stderr,
      "pipe: %lld requests (%lld ok, %lld errors) in %.2fs — %.1f "
      "books/sec, %.2f books/sec/core (window %d, peak in flight %d)\n",
      static_cast<long long>(stats->requests),
      static_cast<long long>(stats->ok),
      static_cast<long long>(stats->errors), stats->wall_seconds,
      static_cast<double>(stats->books_completed) / stats->wall_seconds,
      static_cast<double>(stats->books_completed) / stats->wall_seconds /
          cores,
      options.max_in_flight, stats->peak_in_flight);
  return 0;
}

/// Set by SIGTERM/SIGINT; the serve loop polls it. Signal-handler-safe by
/// construction (lock-free flag, no allocation in the handler).
volatile std::sig_atomic_t g_shutdown = 0;

void HandleShutdownSignal(int) { g_shutdown = 1; }

int CmdServe(int argc, char** argv) {
  service::HttpFrontend::Options options;
  options.port = 8080;
  int crowd_port = -1;
  std::string trace_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--crowd-port" && i + 1 < argc) {
      crowd_port = std::atoi(argv[++i]);
    } else if (arg == "--record-trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      // The shared server-config vocabulary; anything it doesn't
      // recognize is a hard usage error (no silently ignored flags).
      auto applied = net::ApplyServerFlag(argc, argv, &i, &options);
      if (!applied.ok()) return Fail(applied.status());
      if (!*applied) {
        std::fprintf(stderr, "unknown serve flag: %s\n", arg.c_str());
        return Usage();
      }
    }
  }

  std::unique_ptr<loadgen::TraceRecorder> trace_recorder;
  if (!trace_path.empty()) {
    auto recorder = loadgen::TraceRecorder::Open(trace_path);
    if (!recorder.ok()) return Fail(recorder.status());
    trace_recorder = std::move(recorder).value();
    std::fprintf(stderr, "recording request trace to %s\n",
                 trace_path.c_str());
  }

  std::unique_ptr<net::LoopbackCrowdServer> crowd_server;
  if (crowd_port >= 0) {
    net::LoopbackCrowdServer::Options options;
    options.port = crowd_port;
    crowd_server = std::make_unique<net::LoopbackCrowdServer>(options);
    if (auto status = crowd_server->Start(); !status.ok()) {
      return Fail(status);
    }
    std::printf("crowd platform on http://%s\n",
                crowd_server->endpoint().c_str());
  }

  options.trace_recorder = trace_recorder.get();
  service::HttpFrontend frontend(options);
  if (auto status = frontend.Start(); !status.ok()) return Fail(status);
  // Handlers BEFORE the readiness line: once it prints, a harness may
  // SIGTERM at any moment and must always observe the clean exit 0.
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  // The e2e harness waits for this exact line before sending traffic.
  std::printf("serving on http://127.0.0.1:%d (threads %d, session TTL "
              "%.0f s)\n",
              frontend.port(), options.threads, options.session_ttl_seconds);
  std::fflush(stdout);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  frontend.Stop();
  if (crowd_server != nullptr) crowd_server->Stop();
  if (trace_recorder != nullptr) {
    std::fprintf(stderr, "recorded %lld requests to %s\n",
                 static_cast<long long>(trace_recorder->records_written()),
                 trace_path.c_str());
  }
  std::printf("shut down cleanly\n");
  return 0;
}

int CmdRoute(int argc, char** argv) {
  net::Router::Options options;
  options.port = 8090;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto applied = net::ApplyServerFlag(argc, argv, &i, &options);
    if (!applied.ok()) return Fail(applied.status());
    if (!*applied) {
      std::fprintf(stderr, "unknown route flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (options.backends.empty()) {
    std::fprintf(stderr, "route requires --backends host:port[,host:port]\n");
    return Usage();
  }

  net::Router router(options);
  if (auto status = router.Start(); !status.ok()) return Fail(status);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  // The e2e harness waits for this exact line before sending traffic.
  std::printf("routing on http://127.0.0.1:%d (%d backends, threads %d)\n",
              router.port(), static_cast<int>(options.backends.size()),
              options.threads);
  std::fflush(stdout);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  router.Stop();
  std::printf("shut down cleanly\n");
  return 0;
}

int CmdCrowd(int argc, char** argv) {
  net::LoopbackCrowdServer::Options options;
  options.port = 8070;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto applied = net::ApplyServerFlag(argc, argv, &i, &options);
    if (!applied.ok()) return Fail(applied.status());
    if (!*applied) {
      std::fprintf(stderr, "unknown crowd flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  net::LoopbackCrowdServer server(options);
  if (auto status = server.Start(); !status.ok()) return Fail(status);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  // The e2e harness waits for this exact line before sending traffic.
  std::printf("crowd platform on http://%s\n", server.endpoint().c_str());
  std::fflush(stdout);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::printf("shut down cleanly\n");
  return 0;
}

int CmdScore(int argc, char** argv) {
  if (argc != 4 || !RejectFlags(argc, argv, 2)) return Usage();
  auto dataset = data::LoadBookDataset(argv[2]);
  if (!dataset.ok()) return Fail(dataset.status());
  eval::ConfusionCounts counts;
  double utility = 0.0;
  int books = 0;
  for (const data::Book& book : dataset->books) {
    if (book.statements.empty()) continue;
    auto joint = core::LoadJointDistribution(JointPath(argv[3], book));
    if (!joint.ok()) return Fail(joint.status());
    std::vector<bool> truths;
    for (const data::Statement& s : book.statements) {
      truths.push_back(s.is_true);
    }
    counts += eval::CountConfusion(joint->Marginals(), truths);
    utility += -joint->EntropyBits();
    ++books;
  }
  const eval::PrecisionRecallF1 prf = eval::ComputeF1(counts);
  std::printf(
      "%d books: precision %.4f, recall %.4f, F1 %.4f, total utility %.2f "
      "bits\n",
      books, prf.precision, prf.recall, prf.f1, utility);
  return 0;
}

int CmdScenario(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::vector<std::string> names;
  std::string out_dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      names = eval::ScenarioNames();
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag for this command: %s\n", argv[i]);
      return Usage();
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) return Usage();
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create %s: %s\n", out_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }
  for (const std::string& name : names) {
    auto report = eval::RunScenario(name);
    if (!report.ok()) return Fail(report.status());
    const std::string text = eval::SerializeScenarioReport(*report);
    if (out_dir.empty()) {
      std::fputs(text.c_str(), stdout);
      continue;
    }
    const std::string path = out_dir + "/" + name + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%d fusers)\n", path.c_str(),
                 static_cast<int>(report->fusers.size()));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "fuse") return CmdFuse(argc, argv);
  if (command == "refine") return CmdRefine(argc, argv);
  if (command == "request") return CmdRequest(argc, argv);
  if (command == "pipe") return CmdPipe(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "route") return CmdRoute(argc, argv);
  if (command == "crowd") return CmdCrowd(argc, argv);
  if (command == "score") return CmdScore(argc, argv);
  if (command == "scenario") return CmdScenario(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage();
}
