/// Trace-replay load generator — the capacity-planning counterpart of
/// `crowdfusion_cli serve` (ROADMAP item 4):
///
///   crowdfusion_loadgen synth <out.jsonl> [--records N] [--qps Q]
///                   [--facts F] [--budget B] [--healthz-every K]
///                   [--seed S]
///       write a deterministic synthetic crowdfusion-trace-v1 file: every
///       K-th record a GET /healthz probe, the rest small scripted-
///       provider POST /v1/fusion:run bodies (joint size 2^F, budget B
///       answers per book)
///   crowdfusion_loadgen replay <trace.jsonl> --port P [--host H]
///                   [--qps Q] [--connections C] [--timeout S]
///                   [--repeat R] [--bench-out FILE] [--config LABEL]
///                   [--fail-on-5xx]
///       fire the trace at a live front-end, open loop: --qps rewrites
///       the schedule to Q requests/sec (0 = the trace's recorded
///       pacing), C worker connections share it round-robin, --repeat
///       concatenates R passes over the trace into one schedule, and
///       latency is measured from each request's SCHEDULED send time
///       into a mergeable log-bucketed histogram (coordinated-omission
///       corrected). Prints a one-object JSON report to stdout; the
///       human-readable summary goes to stderr. --bench-out merges a
///       crowdfusion-bench-v2 row (source "crowdfusion_loadgen",
///       n = target QPS, support = trace span seconds, k = connections,
///       throughput = achieved QPS, p50/p95/p99/p99.9 ms, ok/error
///       counts) into FILE for ci/check_bench_regression.py.
///       --fail-on-5xx exits 3 when any request got a 5xx or no response
///       at all — the CI soak gate. 503s carrying Retry-After are the
///       reactor's deliberate load-shed answer: reported as "shed_503",
///       never counted against --fail-on-5xx.
///
/// Diagnostics go to stderr; exit 2 = usage, 1 = runtime error, 3 =
/// --fail-on-5xx tripped.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/bench_report.h"
#include "common/json.h"
#include "common/string_util.h"
#include "loadgen/replayer.h"
#include "loadgen/trace.h"

using namespace crowdfusion;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: crowdfusion_loadgen <command> ...\n"
      "  synth  <out.jsonl> [--records N] [--qps Q] [--facts F]\n"
      "         [--budget B] [--healthz-every K] [--seed S]\n"
      "  replay <trace.jsonl> --port P [--host H] [--qps Q]\n"
      "         [--connections C] [--timeout S] [--repeat R]\n"
      "         [--bench-out FILE] [--config LABEL] [--fail-on-5xx]\n");
  return 2;
}

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdSynth(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string out_path = argv[2];
  loadgen::SyntheticTraceOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--records" && i + 1 < argc) {
      options.num_records = std::atoi(argv[++i]);
    } else if (arg == "--qps" && i + 1 < argc) {
      options.qps = std::atof(argv[++i]);
    } else if (arg == "--facts" && i + 1 < argc) {
      options.facts = std::atoi(argv[++i]);
    } else if (arg == "--budget" && i + 1 < argc) {
      options.budget_per_instance = std::atoi(argv[++i]);
    } else if (arg == "--healthz-every" && i + 1 < argc) {
      options.healthz_every = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown synth flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  const loadgen::Trace trace = loadgen::MakeSyntheticTrace(options);
  if (auto status = loadgen::SaveTraceFile(trace, out_path); !status.ok()) {
    return Fail(status);
  }
  std::fprintf(stderr,
               "wrote %zu records (%.1f s span at recorded pacing) to %s\n",
               trace.records.size(), trace.SpanSeconds(), out_path.c_str());
  return 0;
}

int CmdReplay(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string trace_path = argv[2];
  loadgen::ReplayOptions options;
  std::string bench_out;
  std::string config = "replay";
  bool fail_on_5xx = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--qps" && i + 1 < argc) {
      options.target_qps = std::atof(argv[++i]);
    } else if (arg == "--connections" && i + 1 < argc) {
      options.connections = std::atoi(argv[++i]);
    } else if (arg == "--timeout" && i + 1 < argc) {
      options.timeout_seconds = std::atof(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      options.repeat = std::atoi(argv[++i]);
    } else if (arg == "--bench-out" && i + 1 < argc) {
      bench_out = argv[++i];
    } else if (arg == "--config" && i + 1 < argc) {
      config = argv[++i];
    } else if (arg == "--fail-on-5xx") {
      fail_on_5xx = true;
    } else {
      std::fprintf(stderr, "unknown replay flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (options.port <= 0) {
    std::fprintf(stderr, "replay requires --port\n");
    return Usage();
  }

  auto trace = loadgen::LoadTraceFile(trace_path);
  if (!trace.ok()) return Fail(trace.status());
  const size_t total_records =
      trace->records.size() * static_cast<size_t>(std::max(1, options.repeat));
  const double span_seconds =
      options.target_qps > 0.0 && !trace->records.empty()
          ? static_cast<double>(total_records - 1) / options.target_qps
          : trace->SpanSeconds() * std::max(1, options.repeat);
  std::fprintf(stderr,
               "replaying %zu records over ~%.1f s at %s against "
               "http://%s:%d (%d connections)\n",
               total_records, span_seconds,
               options.target_qps > 0.0
                   ? common::StrFormat("%.1f qps", options.target_qps).c_str()
                   : "recorded pacing",
               options.host.c_str(), options.port, options.connections);

  auto report = loadgen::Replay(*trace, options);
  if (!report.ok()) return Fail(report.status());

  common::JsonValue summary = common::JsonValue::MakeObject();
  summary.Set("schema", "crowdfusion-loadgen-report-v1");
  summary.Set("trace", trace_path);
  summary.Set("target_qps", options.target_qps);
  summary.Set("connections", options.connections);
  summary.Set("attempted", report->attempted);
  summary.Set("ok", report->ok);
  summary.Set("err_4xx", report->err_4xx);
  summary.Set("err_5xx", report->err_5xx);
  summary.Set("shed_503", report->shed_503);
  summary.Set("err_transport", report->err_transport);
  summary.Set("wall_seconds", report->wall_seconds);
  summary.Set("achieved_qps", report->achieved_qps);
  summary.Set("p50_ms", report->p50_ms);
  summary.Set("p95_ms", report->p95_ms);
  summary.Set("p99_ms", report->p99_ms);
  summary.Set("p999_ms", report->p999_ms);
  std::printf("%s\n", summary.Dump(2).c_str());

  std::fprintf(stderr,
               "achieved %.1f qps over %.1f s: %lld ok, %lld 4xx, %lld "
               "5xx, %lld shed, %lld transport; p50 %.2f ms, p95 %.2f ms, "
               "p99 %.2f ms, p99.9 %.2f ms\n",
               report->achieved_qps, report->wall_seconds,
               static_cast<long long>(report->ok),
               static_cast<long long>(report->err_4xx),
               static_cast<long long>(report->err_5xx),
               static_cast<long long>(report->shed_503),
               static_cast<long long>(report->err_transport),
               report->p50_ms, report->p95_ms, report->p99_ms,
               report->p999_ms);

  if (!bench_out.empty()) {
    common::BenchReport bench("crowdfusion_loadgen");
    common::BenchRecord record;
    record.config = config;
    // Key fields hold the replay SHAPE (target qps, span, connections),
    // never measured counts — check_bench_regression.py matches rows
    // across runs on (source, config, n, support, k).
    record.n = static_cast<int>(std::llround(options.target_qps));
    record.support = std::llround(span_seconds);
    record.k = options.connections;
    record.throughput_per_sec = report->achieved_qps;
    record.p50_ms = report->p50_ms;
    record.p95_ms = report->p95_ms;
    record.p99_ms = report->p99_ms;
    record.p999_ms = report->p999_ms;
    record.ok_count = report->ok;
    record.err_4xx = report->err_4xx;
    record.err_5xx = report->err_5xx;
    record.err_transport = report->err_transport;
    bench.Add(record);
    if (auto status = bench.MergeToFile(bench_out); !status.ok()) {
      return Fail(status);
    }
    std::fprintf(stderr, "merged bench row into %s\n", bench_out.c_str());
  }

  if (fail_on_5xx && (report->err_5xx > 0 || report->err_transport > 0)) {
    std::fprintf(stderr,
                 "FAIL: %lld 5xx + %lld transport errors with "
                 "--fail-on-5xx\n",
                 static_cast<long long>(report->err_5xx),
                 static_cast<long long>(report->err_transport));
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "synth") return CmdSynth(argc, argv);
  if (command == "replay") return CmdReplay(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage();
}
