/// Query-based CrowdFusion (Section IV): the user only cares about a few
/// facts of interest (FOI), and correlated non-FOI facts are still worth
/// asking — the paper's continent/population example, instantiated on a
/// correlated joint.
///
/// Compares three strategies at the same budget:
///   * query-based greedy (maximizes Q(I|T)),
///   * the general greedy (maximizes H(T) over everything),
///   * random selection,
/// and reports the remaining FOI uncertainty H(I | answers).
///
///   ./query_based_fusion

#include <cstdio>
#include <iostream>

#include "common/math_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/bayes.h"
#include "core/greedy_selector.h"
#include "core/query_based.h"
#include "core/random_selector.h"
#include "core/utility.h"
#include "crowd/simulated_crowd.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"

using namespace crowdfusion;

namespace {

/// Runs `budget` one-task rounds with the given selector and returns the
/// final FOI conditional entropy -Q(I|collected answers).
double RunRounds(core::TaskSelector& selector,
                 const core::JointDistribution& initial,
                 const core::CrowdModel& crowd,
                 const std::vector<bool>& truths, const std::vector<int>& foi,
                 int budget, uint64_t seed) {
  crowd::SimulatedCrowd provider =
      crowd::SimulatedCrowd::WithUniformAccuracy(truths, crowd.pc(), seed);
  core::JointDistribution current = initial;
  for (int round = 0; round < budget; ++round) {
    core::SelectionRequest request;
    request.joint = &current;
    request.crowd = &crowd;
    request.k = 1;
    auto selection = selector.Select(request);
    if (!selection.ok() || selection->tasks.empty()) break;
    auto answers = provider.CollectAnswers(selection->tasks);
    if (!answers.ok()) break;
    auto posterior = core::PosteriorGivenAnswers(
        current, {selection->tasks, *answers}, crowd);
    if (!posterior.ok()) break;
    current = std::move(posterior).value();
  }
  // Residual FOI entropy of the refined joint.
  return common::Entropy(current.MarginalizeOnto(foi));
}

}  // namespace

int main() {
  // One synthetic book with correlated statements.
  data::BookDatasetOptions dataset_options;
  dataset_options.num_books = 1;
  dataset_options.num_sources = 25;
  dataset_options.coverage = 0.9;
  dataset_options.true_variants = 4;
  dataset_options.false_variants = 6;
  dataset_options.seed = 77;
  auto dataset = data::GenerateBookDataset(dataset_options);
  if (!dataset.ok()) return 1;
  const data::Book& book = dataset->books.front();

  std::vector<bool> truths;
  for (const data::Statement& s : book.statements) truths.push_back(s.is_true);
  std::vector<double> marginals(truths.size(), 0.5);
  data::CorrelationModelOptions correlation;
  auto joint = data::BuildBookJoint(marginals, book.statements, correlation);
  if (!joint.ok()) return 1;

  auto crowd = core::CrowdModel::Create(0.8);
  if (!crowd.ok()) return 1;

  // FOI: the first two statements (say, the user's query touches them).
  const std::vector<int> foi = {0, 1};
  const int budget = 6;
  std::printf(
      "Query-based CrowdFusion on \"%s\" (%zu statements, FOI = {0, 1}, "
      "budget %d, Pc = %.1f)\n\n",
      book.title.c_str(), book.statements.size(), budget, crowd->pc());

  auto initial_foi_entropy = common::Entropy(joint->MarginalizeOnto(foi));

  core::QueryBasedGreedySelector::Options query_options;
  query_options.foi = foi;
  core::QueryBasedGreedySelector query_selector(query_options);
  core::GreedySelector general_selector;
  core::RandomSelector random_selector(/*seed=*/5);

  common::TablePrinter table({"Strategy", "H(I) before", "H(I | answers)"});
  const struct {
    const char* name;
    core::TaskSelector* selector;
  } kStrategies[] = {
      {"Query-based greedy", &query_selector},
      {"General greedy", &general_selector},
      {"Random", &random_selector},
  };
  for (const auto& strategy : kStrategies) {
    const double after =
        RunRounds(*strategy.selector, *joint, *crowd, truths, foi, budget,
                  /*seed=*/99);
    table.AddRow({strategy.name,
                  common::StrFormat("%.4f", initial_foi_entropy),
                  common::StrFormat("%.4f", after)});
  }
  table.Print(std::cout);
  std::printf(
      "\nLower is better: targeting the FOI resolves its uncertainty with "
      "fewer tasks\nthan optimizing the whole fact set (Section IV).\n");
  return 0;
}
