/// Quickstart: the paper's running example end to end, served through the
/// FusionService facade.
///
/// Builds the four Hong Kong facts and their 16-output joint distribution
/// (Tables I/II), then issues ONE typed FusionRequest: greedy selection of
/// the best two crowd tasks (Algorithm 1), a simulated crowd answering
/// them, and the Bayesian merge (Equation 3) — the whole Figure-1 loop
/// behind a single request/response API. The same request, with only
/// `mode` changed, runs on the blocking or pipelined scheduler instead.
///
///   ./quickstart

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/running_example.h"
#include "core/utility.h"
#include "service/fusion_service.h"
#include "service/request_json.h"

using namespace crowdfusion;

int main() {
  const core::FactSet facts = core::RunningExample::Facts();
  const core::JointDistribution joint = core::RunningExample::Joint();
  const core::CrowdModel crowd = core::RunningExample::Crowd();

  std::printf("CrowdFusion quickstart — the paper's running example\n\n");
  common::TablePrinter table({"Fid", "Fact", "P(f)"});
  for (int i = 0; i < facts.size(); ++i) {
    table.AddRow({"f" + std::to_string(i + 1), facts.at(i).ToString(),
                  common::StrFormat("%.2f", joint.Marginal(i))});
  }
  table.Print(std::cout);
  std::printf("\nInitial quality Q(F) = -H(F) = %.4f bits\n",
              core::QualityBits(joint));

  // One typed request: the running-example joint, the full-featured
  // greedy, a simulated crowd (ground truth: f1,f2,f3 true, f4 false).
  service::FusionRequest request;
  request.mode = service::RunMode::kEngine;
  request.label = "quickstart";
  service::InstanceSpec instance;
  instance.name = "hong-kong";
  instance.joint = joint;
  instance.truths = {true, true, true, false};
  request.instances.push_back(std::move(instance));
  request.selector.kind = "greedy";
  request.selector.use_pruning = true;
  request.selector.use_preprocessing = true;
  request.provider.kind = "simulated_crowd";
  request.provider.accuracy = crowd.pc();
  request.provider.seed = 2024;
  request.assumed_pc = crowd.pc();
  request.budget.budget_per_instance = 2;  // one round of k = 2 tasks
  request.budget.tasks_per_step = 2;

  service::FusionService fusion_service;
  auto response = fusion_service.Run(request);
  if (!response.ok()) {
    std::fprintf(stderr, "service run failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  const service::StepOutcome& round = response->steps.front();
  std::printf("\nSelected tasks (k=2, Pc=%.1f):\n", crowd.pc());
  for (int t : round.tasks) {
    std::printf("  ask the crowd: \"Is it true that %s?\"\n",
                facts.at(t).ToString().c_str());
  }
  std::printf("H(T) = %.4f bits, expected quality gain %.4f bits\n",
              round.selected_entropy_bits, round.expected_gain_bits);

  std::printf("\nCrowd answered:");
  for (size_t i = 0; i < round.answers.size(); ++i) {
    std::printf(" f%d=%s", round.tasks[i] + 1,
                round.answers[i] ? "true" : "false");
  }
  std::printf("\n");

  const service::InstanceReport& report = response->instances.front();
  std::printf("\nAfter the Bayesian merge (Equation 3):\n");
  common::TablePrinter after({"Fid", "P(f) before", "P(f) after"});
  for (int i = 0; i < facts.size(); ++i) {
    after.AddRow({"f" + std::to_string(i + 1),
                  common::StrFormat("%.3f", joint.Marginal(i)),
                  common::StrFormat("%.3f",
                                    report.final_marginals[
                                        static_cast<size_t>(i)])});
  }
  after.Print(std::cout);
  std::printf("\nQuality: %.4f -> %.4f bits\n", core::QualityBits(joint),
              report.utility_bits);

  // The request is a plain value: here is the exact JSON a remote client
  // would POST to run the same thing.
  std::printf("\nThis run as a serialized FusionRequest:\n%s\n",
              service::SerializeFusionRequest(request).c_str());
  return 0;
}
