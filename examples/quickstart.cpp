/// Quickstart: the paper's running example end to end.
///
/// Builds the four Hong Kong facts and their 16-output joint distribution
/// (Tables I/II), selects the best two crowd tasks with the greedy
/// approximation (Algorithm 1), merges a simulated crowd answer via Bayes
/// (Equation 3), and shows the utility improving.
///
///   ./quickstart

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/bayes.h"
#include "core/greedy_selector.h"
#include "core/running_example.h"
#include "core/utility.h"
#include "crowd/simulated_crowd.h"

using namespace crowdfusion;

int main() {
  const core::FactSet facts = core::RunningExample::Facts();
  const core::JointDistribution joint = core::RunningExample::Joint();
  const core::CrowdModel crowd = core::RunningExample::Crowd();

  std::printf("CrowdFusion quickstart — the paper's running example\n\n");
  common::TablePrinter table({"Fid", "Fact", "P(f)"});
  for (int i = 0; i < facts.size(); ++i) {
    table.AddRow({"f" + std::to_string(i + 1), facts.at(i).ToString(),
                  common::StrFormat("%.2f", joint.Marginal(i))});
  }
  table.Print(std::cout);

  std::printf("\nInitial quality Q(F) = -H(F) = %.4f bits\n",
              core::QualityBits(joint));

  // Select k = 2 tasks with the full-featured greedy.
  core::GreedySelector::Options options;
  options.use_pruning = true;
  options.use_preprocessing = true;
  core::GreedySelector selector(options);
  core::SelectionRequest request;
  request.joint = &joint;
  request.crowd = &crowd;
  request.k = 2;
  auto selection = selector.Select(request);
  if (!selection.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 selection.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSelected tasks (k=2, Pc=%.1f):\n", crowd.pc());
  for (int t : selection->tasks) {
    std::printf("  ask the crowd: \"Is it true that %s?\"\n",
                facts.at(t).ToString().c_str());
  }
  std::printf("H(T) = %.4f bits, expected quality gain %.4f bits\n",
              selection->entropy_bits,
              core::ExpectedQualityGain(joint, selection->tasks, crowd));

  // Simulate the crowd: ground truth is f1,f2,f3 true and f4 false.
  crowd::SimulatedCrowd provider = crowd::SimulatedCrowd::WithUniformAccuracy(
      {true, true, true, false}, crowd.pc(), /*seed=*/2024);
  auto answers = provider.CollectAnswers(selection->tasks);
  if (!answers.ok()) return 1;
  std::printf("\nCrowd answered:");
  for (size_t i = 0; i < answers->size(); ++i) {
    std::printf(" f%d=%s", selection->tasks[i] + 1,
                (*answers)[i] ? "true" : "false");
  }
  std::printf("\n");

  core::AnswerSet answer_set{selection->tasks, *answers};
  auto posterior = core::PosteriorGivenAnswers(joint, answer_set, crowd);
  if (!posterior.ok()) return 1;

  std::printf("\nAfter the Bayesian merge (Equation 3):\n");
  common::TablePrinter after({"Fid", "P(f) before", "P(f) after"});
  for (int i = 0; i < facts.size(); ++i) {
    after.AddRow({"f" + std::to_string(i + 1),
                  common::StrFormat("%.3f", joint.Marginal(i)),
                  common::StrFormat("%.3f", posterior->Marginal(i))});
  }
  after.Print(std::cout);
  std::printf("\nQuality: %.4f -> %.4f bits\n", core::QualityBits(joint),
              core::QualityBits(*posterior));
  return 0;
}
