#include "common/bench_report.h"

#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace crowdfusion::common {

namespace {

std::string EscapeJsonString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  return StrFormat("%.17g", value);  // exact double round-trip
}

/// Minimal scanner for the report schema: it only has to read back what
/// ToJson writes (flat objects of string and number values inside one
/// "records" array), but it skips unknown keys so the format can grow.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWhitespace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<std::string> ParseString() {
    SkipWhitespace();
    if (!Consume('"')) return Malformed("expected string");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Malformed("bad \\u escape");
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char hex = text_[pos_ + static_cast<size_t>(i)];
              if (!std::isxdigit(static_cast<unsigned char>(hex))) {
                return Malformed("bad \\u escape");
              }
              code = code * 16 +
                     (std::isdigit(static_cast<unsigned char>(hex))
                          ? hex - '0'
                          : std::tolower(static_cast<unsigned char>(hex)) -
                                'a' + 10);
            }
            pos_ += 4;
            out += static_cast<char>(code);  // report strings are ASCII
            break;
          }
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    if (!Consume('"')) return Malformed("unterminated string");
    return out;
  }

  Result<double> ParseNumber() {
    SkipWhitespace();
    // "null" stands in for a non-finite measurement.
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::nan("");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Malformed("expected number");
    try {
      return std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return Malformed("unparsable number");
    }
  }

  Status SkipValue() {
    SkipWhitespace();
    if (Peek('"')) return ParseString().status();
    // Bare literals an unknown future field might carry.
    for (const char* literal : {"true", "false", "null"}) {
      const size_t len = std::strlen(literal);
      if (text_.compare(pos_, len, literal) == 0) {
        pos_ += len;
        return Status::Ok();
      }
    }
    if (Peek('{') || Peek('[')) {
      const char open = text_[pos_];
      const char close = open == '{' ? '}' : ']';
      int depth = 0;
      bool in_string = false;
      while (pos_ < text_.size()) {
        const char c = text_[pos_++];
        if (in_string) {
          if (c == '\\') ++pos_;
          else if (c == '"') in_string = false;
        } else if (c == '"') {
          in_string = true;
        } else if (c == open) {
          ++depth;
        } else if (c == close && --depth == 0) {
          return Status::Ok();
        }
      }
      return Status::InvalidArgument("unbalanced JSON container");
    }
    return ParseNumber().status();
  }

  Status Malformed(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("malformed bench report at offset %zu: %s", pos_,
                  what.c_str()));
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

Result<BenchRecord> ParseRecord(Scanner& scanner) {
  BenchRecord record;
  if (!scanner.Consume('{')) {
    return scanner.Malformed("expected record object");
  }
  while (!scanner.Peek('}')) {
    CF_ASSIGN_OR_RETURN(const std::string key, scanner.ParseString());
    if (!scanner.Consume(':')) return scanner.Malformed("expected ':'");
    if (key == "source" || key == "config") {
      CF_ASSIGN_OR_RETURN(const std::string value, scanner.ParseString());
      (key == "source" ? record.source : record.config) = value;
    } else if (key == "n" || key == "support" || key == "k") {
      CF_ASSIGN_OR_RETURN(const double value, scanner.ParseNumber());
      // Integer fields must be finite: casting the NaN that "null" parses
      // to would be undefined behavior.
      if (!std::isfinite(value)) {
        return scanner.Malformed("non-finite integer field " + key);
      }
      if (key == "n") record.n = static_cast<int>(value);
      else if (key == "support") record.support = static_cast<int64_t>(value);
      else record.k = static_cast<int>(value);
    } else if (key == "wall_ms" || key == "entropy_bits") {
      CF_ASSIGN_OR_RETURN(const double value, scanner.ParseNumber());
      (key == "wall_ms" ? record.wall_ms : record.entropy_bits) = value;
    } else if (key == "throughput_per_sec" || key == "p50_ms" ||
               key == "p95_ms" || key == "p99_ms" || key == "p999_ms") {
      // v2 serving-throughput fields; absent from v1 files (default 0).
      CF_ASSIGN_OR_RETURN(const double value, scanner.ParseNumber());
      if (key == "throughput_per_sec") record.throughput_per_sec = value;
      else if (key == "p50_ms") record.p50_ms = value;
      else if (key == "p95_ms") record.p95_ms = value;
      else if (key == "p99_ms") record.p99_ms = value;
      else record.p999_ms = value;
    } else if (key == "ok_count" || key == "err_4xx" || key == "err_5xx" ||
               key == "err_transport") {
      // Load-replay outcome counts; absent from pre-loadgen files.
      CF_ASSIGN_OR_RETURN(const double value, scanner.ParseNumber());
      if (!std::isfinite(value)) {
        return scanner.Malformed("non-finite integer field " + key);
      }
      const int64_t count = static_cast<int64_t>(value);
      if (key == "ok_count") record.ok_count = count;
      else if (key == "err_4xx") record.err_4xx = count;
      else if (key == "err_5xx") record.err_5xx = count;
      else record.err_transport = count;
    } else {
      CF_RETURN_IF_ERROR(scanner.SkipValue());
    }
    if (!scanner.Consume(',')) break;
  }
  if (!scanner.Consume('}')) return scanner.Malformed("unterminated record");
  return record;
}

std::string RecordKey(const BenchRecord& record) {
  return StrFormat("%s|%s|%d|%lld|%d", record.source.c_str(),
                   record.config.c_str(), record.n,
                   static_cast<long long>(record.support), record.k);
}

std::string SerializeRecords(const std::vector<BenchRecord>& records) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"crowdfusion-bench-v2\",\n  \"records\": [";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"source\": \"" << EscapeJsonString(r.source)
       << "\", \"config\": \"" << EscapeJsonString(r.config)
       << "\", \"n\": " << r.n << ", \"support\": " << r.support
       << ", \"k\": " << r.k << ", \"wall_ms\": " << FormatDouble(r.wall_ms)
       << ", \"entropy_bits\": " << FormatDouble(r.entropy_bits);
    // Serving-throughput fields only appear on rows that measured them,
    // keeping selection-kernel rows in the familiar v1 shape.
    if (r.throughput_per_sec != 0.0 || r.p50_ms != 0.0 || r.p95_ms != 0.0) {
      os << ", \"throughput_per_sec\": " << FormatDouble(r.throughput_per_sec)
         << ", \"p50_ms\": " << FormatDouble(r.p50_ms)
         << ", \"p95_ms\": " << FormatDouble(r.p95_ms);
    }
    // Load-replay extensions: tail percentiles and outcome counts only on
    // rows that replayed traffic, so kernel rows keep their shape. A
    // clean run still serializes its zero error counts — "zero 5xx" is a
    // pinned measurement, not an absent field.
    if (r.p99_ms != 0.0 || r.p999_ms != 0.0) {
      os << ", \"p99_ms\": " << FormatDouble(r.p99_ms)
         << ", \"p999_ms\": " << FormatDouble(r.p999_ms);
    }
    if (r.ok_count != 0 || r.err_4xx != 0 || r.err_5xx != 0 ||
        r.err_transport != 0) {
      os << ", \"ok_count\": " << r.ok_count << ", \"err_4xx\": " << r.err_4xx
         << ", \"err_5xx\": " << r.err_5xx
         << ", \"err_transport\": " << r.err_transport;
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

Status WriteText(const std::string& path, const std::string& text) {
  std::ofstream stream(path, std::ios::out | std::ios::trunc);
  if (!stream.is_open()) {
    return Status::NotFound(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  stream << text;
  stream.flush();
  if (!stream.good()) {
    return Status::Internal(StrFormat("write to %s failed", path.c_str()));
  }
  return Status::Ok();
}

}  // namespace

BenchReport::BenchReport(std::string default_source)
    : default_source_(std::move(default_source)) {}

void BenchReport::Add(BenchRecord record) {
  if (record.source.empty()) record.source = default_source_;
  records_.push_back(std::move(record));
}

std::string BenchReport::ToJson() const { return SerializeRecords(records_); }

Status BenchReport::WriteFile(const std::string& path) const {
  return WriteText(path, ToJson());
}

Status BenchReport::MergeToFile(const std::string& path) const {
  std::vector<BenchRecord> merged;
  auto existing = Load(path);
  if (existing.ok()) {
    merged = std::move(existing).value();
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();  // corrupt baseline: refuse to clobber it
  }
  for (const BenchRecord& record : records_) {
    bool replaced = false;
    for (BenchRecord& old : merged) {
      if (RecordKey(old) == RecordKey(record)) {
        old = record;
        replaced = true;
        break;
      }
    }
    if (!replaced) merged.push_back(record);
  }
  return WriteText(path, SerializeRecords(merged));
}

Result<std::vector<BenchRecord>> BenchReport::Load(const std::string& path) {
  std::ifstream stream(path);
  if (!stream.is_open()) {
    return Status::NotFound(StrFormat("no bench report at %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  const std::string text = buffer.str();

  Scanner scanner(text);
  if (!scanner.Consume('{')) return scanner.Malformed("expected object");
  std::vector<BenchRecord> records;
  while (!scanner.Peek('}')) {
    CF_ASSIGN_OR_RETURN(const std::string key, scanner.ParseString());
    if (!scanner.Consume(':')) return scanner.Malformed("expected ':'");
    if (key == "records") {
      if (!scanner.Consume('[')) return scanner.Malformed("expected array");
      while (!scanner.Peek(']')) {
        CF_ASSIGN_OR_RETURN(BenchRecord record, ParseRecord(scanner));
        records.push_back(std::move(record));
        if (!scanner.Consume(',')) break;
      }
      if (!scanner.Consume(']')) {
        return scanner.Malformed("unterminated records array");
      }
    } else {
      CF_RETURN_IF_ERROR(scanner.SkipValue());
    }
    if (!scanner.Consume(',')) break;
  }
  if (!scanner.Consume('}')) return scanner.Malformed("unterminated object");
  return records;
}

}  // namespace crowdfusion::common
