#ifndef CROWDFUSION_COMMON_BENCH_REPORT_H_
#define CROWDFUSION_COMMON_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace crowdfusion::common {

/// One benchmark measurement: a selector (or kernel) configuration run on
/// an instance of n facts with |O| support outputs, taking wall_ms and
/// selecting a k-task set of entropy entropy_bits. This is the repo's perf
/// baseline schema (BENCH_*.json).
struct BenchRecord {
  /// Emitting binary, e.g. "bench_table5_runtime".
  std::string source;
  /// Configuration label, e.g. "Approx.&Prune&Pre.[sparse]".
  std::string config;
  /// Fact count n.
  int n = 0;
  /// Support size |O|.
  int64_t support = 0;
  /// Tasks selected (k).
  int k = 0;
  /// Average wall-clock time of one selection round, milliseconds.
  double wall_ms = 0.0;
  /// H(T) of the selected set, bits.
  double entropy_bits = 0.0;
  /// Serving-throughput rows (bench_service_throughput): completed units
  /// (books) per wall-clock second. 0 for selection-kernel rows.
  double throughput_per_sec = 0.0;
  /// Median scheduling-step latency, milliseconds. 0 when not measured.
  double p50_ms = 0.0;
  /// 95th-percentile scheduling-step latency, milliseconds.
  double p95_ms = 0.0;
  /// Load-replay tail percentiles (crowdfusion_loadgen rows), ms. 0 when
  /// not measured.
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  /// Load-replay outcome counts by class: 2xx/3xx responses, HTTP
  /// errors, and requests that never got a response. All 0 for rows that
  /// do not replay traffic; the error fields are meaningful (and
  /// serialized) whenever ok_count or any error is nonzero, so a clean
  /// soak row pins its zeros.
  int64_t ok_count = 0;
  int64_t err_4xx = 0;
  int64_t err_5xx = 0;
  int64_t err_transport = 0;

  friend bool operator==(const BenchRecord& a, const BenchRecord& b) = default;
};

/// Tiny JSON emitter for benchmark baselines; no third-party JSON
/// dependency. A report file looks like
///
///   {
///     "schema": "crowdfusion-bench-v2",
///     "records": [
///       {"source": "bench_table5_runtime", "config": "Approx.&Pre.",
///        "n": 14, "support": 16384, "k": 5, "wall_ms": 1.25,
///        "entropy_bits": 4.31},
///       ...
///     ]
///   }
///
/// MergeToFile lets several bench binaries share one baseline file: the
/// existing file is loaded (it only needs to match the schema above, which
/// Load parses with a small scanner) and records with the same
/// (source, config, n, support, k) key are replaced, so re-running a bench
/// refreshes its own rows without clobbering the others'.
class BenchReport {
 public:
  /// `default_source` stamps records added without an explicit source.
  explicit BenchReport(std::string default_source);

  void Add(BenchRecord record);

  const std::vector<BenchRecord>& records() const { return records_; }

  /// Serializes this report alone.
  std::string ToJson() const;

  /// Overwrites `path` with this report.
  Status WriteFile(const std::string& path) const;

  /// Loads `path` if present, merges this report's records over it (match
  /// on source+config+n+support+k), and writes the result back.
  Status MergeToFile(const std::string& path) const;

  /// Parses a report file produced by WriteFile/MergeToFile. A missing
  /// file is NotFound; a malformed one is InvalidArgument.
  static Result<std::vector<BenchRecord>> Load(const std::string& path);

 private:
  std::string default_source_;
  std::vector<BenchRecord> records_;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_BENCH_REPORT_H_
