#ifndef CROWDFUSION_COMMON_BIT_UTIL_H_
#define CROWDFUSION_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crowdfusion::common {

/// Bit utilities over uint64_t masks. An "output" in the CrowdFusion data
/// model is a truth assignment to n <= 64 facts packed into a mask: bit i is
/// 1 iff fact i is judged true.

inline int PopCount(uint64_t mask) { return std::popcount(mask); }

inline bool GetBit(uint64_t mask, int bit) {
  return (mask >> bit) & 1ULL;
}

inline uint64_t SetBit(uint64_t mask, int bit, bool value) {
  return value ? (mask | (1ULL << bit)) : (mask & ~(1ULL << bit));
}

/// Extracts the bits of `mask` at the positions listed in `positions`
/// (ascending), packing them into the low bits of the result. E.g. with
/// positions = {1, 3}, mask 0b1010 -> 0b11.
inline uint64_t ExtractBits(uint64_t mask, const std::vector<int>& positions) {
  uint64_t out = 0;
  for (size_t i = 0; i < positions.size(); ++i) {
    out |= static_cast<uint64_t>((mask >> positions[i]) & 1ULL) << i;
  }
  return out;
}

/// Scatters the low |positions| bits of `packed` to the given positions.
/// Inverse of ExtractBits for bits inside `positions`.
inline uint64_t DepositBits(uint64_t packed,
                            const std::vector<int>& positions) {
  uint64_t out = 0;
  for (size_t i = 0; i < positions.size(); ++i) {
    out |= static_cast<uint64_t>((packed >> i) & 1ULL) << positions[i];
  }
  return out;
}

/// Iterates all k-subsets of {0..n-1} in lexicographic order, invoking
/// `fn(const std::vector<int>&)` for each. Used by the brute-force OPT
/// selector and by exhaustive tests.
template <typename Fn>
void ForEachSubset(int n, int k, Fn&& fn) {
  if (k < 0 || k > n) return;
  std::vector<int> idx(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = i;
  for (;;) {
    fn(static_cast<const std::vector<int>&>(idx));
    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && idx[static_cast<size_t>(i)] == n - k + i) --i;
    if (i < 0) break;
    ++idx[static_cast<size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      idx[static_cast<size_t>(j)] = idx[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_BIT_UTIL_H_
