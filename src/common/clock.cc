#include "common/clock.h"

#include <chrono>
#include <thread>

namespace crowdfusion::common {

namespace {

class RealClock : public Clock {
 public:
  double NowSeconds() override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepSeconds(double seconds) override {
    if (seconds <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* const kInstance = new RealClock();
  return kInstance;
}

}  // namespace crowdfusion::common
