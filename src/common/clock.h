#ifndef CROWDFUSION_COMMON_CLOCK_H_
#define CROWDFUSION_COMMON_CLOCK_H_

#include <mutex>

namespace crowdfusion::common {

/// Monotonic time source behind the async answer pipeline. Production code
/// uses Clock::Real() (steady_clock + this_thread::sleep_for); tests inject
/// a ManualClock so deadline/retry/latency paths run instantly and
/// deterministically. All times are seconds since an arbitrary epoch.
class Clock {
 public:
  virtual ~Clock() = default;

  virtual double NowSeconds() = 0;

  /// Blocks (or, for a manual clock, advances time) for `seconds`.
  /// Non-positive durations return immediately.
  virtual void SleepSeconds(double seconds) = 0;

  /// Process-wide wall-clock instance. Never null; not owned by callers.
  static Clock* Real();
};

/// Deterministic test clock: time only moves when a caller sleeps or the
/// test advances it explicitly. Thread-safe, so concurrency tests can share
/// one instance between a polling scheduler and an advancing test body.
class ManualClock : public Clock {
 public:
  explicit ManualClock(double start_seconds = 0.0) : now_(start_seconds) {}

  double NowSeconds() override {
    std::lock_guard<std::mutex> lock(mutex_);
    return now_;
  }

  void SleepSeconds(double seconds) override {
    if (seconds <= 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    now_ += seconds;
  }

  void AdvanceSeconds(double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    now_ += seconds;
  }

 private:
  std::mutex mutex_;
  double now_;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_CLOCK_H_
