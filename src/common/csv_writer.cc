#include "common/csv_writer.h"

#include <sstream>

namespace crowdfusion::common {

Result<CsvWriter> CsvWriter::Open(const std::string& path,
                                  std::vector<std::string> header) {
  std::ofstream stream(path);
  if (!stream.is_open()) {
    return Status::NotFound("cannot open CSV file for writing: " + path);
  }
  CsvWriter writer(std::move(stream), header.size());
  CF_RETURN_IF_ERROR(writer.WriteRow(header));
  return writer;
}

CsvWriter::CsvWriter(std::ofstream stream, size_t num_columns)
    : stream_(std::move(stream)), num_columns_(num_columns) {}

std::string CsvWriter::EscapeField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& row) {
  if (!stream_.is_open()) {
    return Status::FailedPrecondition("CSV writer is closed");
  }
  if (row.size() != num_columns_) {
    return Status::InvalidArgument("CSV row width mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) stream_ << ',';
    stream_ << EscapeField(row[i]);
  }
  stream_ << '\n';
  return Status::Ok();
}

Status CsvWriter::WriteNumericRow(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  return WriteRow(cells);
}

void CsvWriter::Close() {
  if (stream_.is_open()) stream_.close();
}

}  // namespace crowdfusion::common
