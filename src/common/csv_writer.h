#ifndef CROWDFUSION_COMMON_CSV_WRITER_H_
#define CROWDFUSION_COMMON_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace crowdfusion::common {

/// Minimal CSV emitter used by benchmark harnesses to dump figure series
/// (cost, F1, utility) for external plotting. Fields containing commas or
/// quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  static Result<CsvWriter> Open(const std::string& path,
                                std::vector<std::string> header);

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  Status WriteRow(const std::vector<std::string>& row);
  Status WriteNumericRow(const std::vector<double>& row);

  /// Flushes and closes; further writes fail.
  void Close();

 private:
  CsvWriter(std::ofstream stream, size_t num_columns);

  static std::string EscapeField(const std::string& field);

  std::ofstream stream_;
  size_t num_columns_;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_CSV_WRITER_H_
