#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/string_util.h"

namespace crowdfusion::common {

using common::Status;

JsonValue::JsonValue(uint64_t value) {
  if (value <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    rep_ = static_cast<int64_t>(value);
  } else {
    // Values past int64 range would be lossy as doubles too; the schemas in
    // this repo carry uint64 masks as strings for exactly this reason.
    rep_ = static_cast<double>(value);
  }
}

common::Result<bool> JsonValue::GetBool() const {
  if (const bool* b = std::get_if<bool>(&rep_)) return *b;
  return Status::InvalidArgument("JSON value is not a bool");
}

common::Result<int64_t> JsonValue::GetInt() const {
  if (const int64_t* i = std::get_if<int64_t>(&rep_)) return *i;
  return Status::InvalidArgument("JSON value is not an integer");
}

common::Result<double> JsonValue::GetDouble() const {
  if (const double* d = std::get_if<double>(&rep_)) return *d;
  if (const int64_t* i = std::get_if<int64_t>(&rep_)) {
    return static_cast<double>(*i);
  }
  return Status::InvalidArgument("JSON value is not a number");
}

common::Result<std::string> JsonValue::GetString() const {
  if (const std::string* s = std::get_if<std::string>(&rep_)) return *s;
  return Status::InvalidArgument("JSON value is not a string");
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  const Object* object = std::get_if<Object>(&rep_);
  if (object == nullptr) return nullptr;
  for (const auto& [name, value] : *object) {
    if (name == key) return &value;
  }
  return nullptr;
}

common::Result<const JsonValue*> JsonValue::Get(std::string_view key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    return Status::NotFound("missing JSON member \"" + std::string(key) +
                            "\"");
  }
  return value;
}

void JsonValue::Set(std::string key, JsonValue value) {
  Object& members = object();
  for (auto& [name, existing] : members) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) { array().push_back(std::move(value)); }

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void DumpTo(const JsonValue& value, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  // Indentation is appended directly (never materialized as strings):
  // scalars dominate real documents and need none of it.
  const auto pad = [&] {
    out.append(static_cast<size_t>(indent * (depth + 1)), ' ');
  };
  const auto close_pad = [&] {
    out.append(static_cast<size_t>(indent * depth), ' ');
  };
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.GetBool().value() ? "true" : "false";
      return;
    case JsonValue::Kind::kInt:
      out += std::to_string(value.GetInt().value());
      return;
    case JsonValue::Kind::kDouble: {
      const double d = value.GetDouble().value();
      if (std::isnan(d)) {
        out += "null";  // JSON has no NaN; null is the conventional stand-in.
      } else if (std::isinf(d)) {
        out += d > 0 ? "1e999" : "-1e999";  // parses back to +-infinity
      } else {
        // 17 significant digits: doubles round-trip bit-exactly. Integral
        // doubles get an explicit ".0" so they reparse as kDouble, not
        // kInt — Parse(Dump(x)) == x holds for the kind too.
        const size_t start = out.size();
        out += StrFormat("%.17g", d);
        if (out.find_first_of(".eE", start) == std::string::npos) {
          out += ".0";
        }
      }
      return;
    }
    case JsonValue::Kind::kString:
      out += JsonEscape(value.GetString().value());
      return;
    case JsonValue::Kind::kArray: {
      const auto& items = value.array();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) {
          out.push_back('\n');
          pad();
        }
        DumpTo(items[i], indent, depth + 1, out);
      }
      if (pretty) {
        out.push_back('\n');
        close_pad();
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = value.object();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) {
          out.push_back('\n');
          pad();
        }
        out += JsonEscape(members[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        DumpTo(members[i].second, indent, depth + 1, out);
      }
      if (pretty) {
        out.push_back('\n');
        close_pad();
      }
      out.push_back('}');
      return;
    }
  }
}

/// Recursive-descent parser over a string_view with a hard depth cap (the
/// fuzz seeds include pathological nesting).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  common::Result<JsonValue> ParseDocument() {
    CF_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  common::Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("JSON nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of JSON input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        CF_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        CF_RETURN_IF_ERROR(Expect("true"));
        return JsonValue(true);
      case 'f':
        CF_RETURN_IF_ERROR(Expect("false"));
        return JsonValue(false);
      case 'n':
        CF_RETURN_IF_ERROR(Expect("null"));
        return JsonValue(nullptr);
      default:
        return ParseNumber();
    }
  }

  common::Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // consume '{'
    JsonValue object = JsonValue::MakeObject();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      SkipWhitespace();
      if (Peek() != '"') return Fail("expected object key string");
      CF_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (object.Find(key) != nullptr) {
        return Fail("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (Peek() != ':') return Fail("expected ':' after object key");
      ++pos_;
      CF_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return object;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  common::Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // consume '['
    JsonValue array = JsonValue::MakeArray();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      CF_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Append(std::move(value));
      SkipWhitespace();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return array;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  common::Result<std::string> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned int>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned int>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned int>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape digit");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by this repo's emitters; reject them cleanly).
            if (code >= 0xD800 && code <= 0xDFFF) {
              return Fail("surrogate \\u escapes are not supported");
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape sequence");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  common::Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Fail("malformed number");
    if (!is_double) {
      int64_t integer = 0;
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), integer);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return JsonValue(integer);
      }
      // Out-of-range integer literal: fall through to double parsing.
    }
    double number = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), number);
    if (ec == std::errc::result_out_of_range &&
        ptr == token.data() + token.size()) {
      // from_chars reports out-of-range for BOTH overflow and underflow.
      // strtod distinguishes them: overflow saturates to +-HUGE_VAL (the
      // 1e999 infinity convention), underflow to ~0 — a literal like
      // 1e-999 must parse as zero, not infinity.
      return JsonValue(std::strtod(std::string(token).c_str(), nullptr));
    }
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Fail("malformed number");
    }
    return JsonValue(number);
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("malformed JSON literal");
    }
    pos_ += literal.size();
    return Status::Ok();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Fail(std::string message) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, 0, out);
  return out;
}

common::Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace crowdfusion::common
