#ifndef CROWDFUSION_COMMON_JSON_H_
#define CROWDFUSION_COMMON_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace crowdfusion::common {

/// A minimal JSON document model for the service boundary: requests,
/// responses, and bench baselines all (de)serialize through it, so the
/// repo needs no third-party JSON dependency.
///
/// Design constraints, in order:
///  * Lossless round-trips for doubles (emitted with 17 significant
///    digits) and for 64-bit integers up to the full int64 range (kept in
///    a dedicated integer alternative, not squeezed through a double).
///  * Deterministic output: object members keep insertion order, so a
///    parse -> dump cycle reproduces the input byte-for-byte (modulo
///    whitespace), which the request-fuzz round-trip tests rely on.
///  * Library error handling: Parse returns a Status instead of throwing.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered object representation; keys are unique.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : rep_(nullptr) {}
  JsonValue(std::nullptr_t) : rep_(nullptr) {}
  JsonValue(bool value) : rep_(value) {}
  JsonValue(int value) : rep_(static_cast<int64_t>(value)) {}
  JsonValue(int64_t value) : rep_(value) {}
  JsonValue(uint64_t value);
  JsonValue(double value) : rep_(value) {}
  JsonValue(const char* value) : rep_(std::string(value)) {}
  JsonValue(std::string value) : rep_(std::move(value)) {}
  JsonValue(Array value) : rep_(std::move(value)) {}
  JsonValue(Object value) : rep_(std::move(value)) {}

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  /// True for either numeric alternative.
  bool is_number() const { return is_int() || kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  /// Checked accessors: non-matching kinds return InvalidArgument.
  common::Result<bool> GetBool() const;
  common::Result<int64_t> GetInt() const;
  /// Accepts both numeric alternatives (an integer reads as its double).
  common::Result<double> GetDouble() const;
  common::Result<std::string> GetString() const;

  /// Unchecked views; precondition: matching kind() (aborts otherwise).
  const Array& array() const { return std::get<Array>(rep_); }
  Array& array() { return std::get<Array>(rep_); }
  const Object& object() const { return std::get<Object>(rep_); }
  Object& object() { return std::get<Object>(rep_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Object member lookup that fails loudly: NotFound names the key.
  common::Result<const JsonValue*> Get(std::string_view key) const;

  /// Sets (or replaces) an object member, keeping insertion order.
  /// Precondition: is_object().
  void Set(std::string key, JsonValue value);

  /// Appends to an array. Precondition: is_array().
  void Append(JsonValue value);

  /// Serializes compactly (indent < 0) or pretty-printed with the given
  /// indent width.
  std::string Dump(int indent = -1) const;

  /// Parses one JSON document; trailing non-whitespace is an error.
  static common::Result<JsonValue> Parse(std::string_view text);

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.rep_ == b.rep_;
  }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      rep_;
};

/// Escapes a string for embedding in JSON output (quotes included).
std::string JsonEscape(std::string_view text);

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_JSON_H_
