#include "common/json_util.h"

#include <charconv>
#include <limits>
#include <utility>

#include "common/string_util.h"

namespace crowdfusion::common {

Status JsonReadBool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  CF_ASSIGN_OR_RETURN(*out, member->GetBool());
  return Status::Ok();
}

Status JsonReadInt(const JsonValue& obj, const char* key, int* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  CF_ASSIGN_OR_RETURN(const int64_t wide, member->GetInt());
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument(
        StrFormat("member \"%s\" out of int range", key));
  }
  *out = static_cast<int>(wide);
  return Status::Ok();
}

Status JsonReadInt64(const JsonValue& obj, const char* key, int64_t* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  CF_ASSIGN_OR_RETURN(*out, member->GetInt());
  return Status::Ok();
}

Status JsonReadDouble(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  CF_ASSIGN_OR_RETURN(*out, member->GetDouble());
  return Status::Ok();
}

Status JsonReadString(const JsonValue& obj, const char* key,
                      std::string* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  CF_ASSIGN_OR_RETURN(*out, member->GetString());
  return Status::Ok();
}

Result<uint64_t> JsonParseU64Text(const std::string& text) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("malformed uint64 \"" + text + "\"");
  }
  return value;
}

JsonValue JsonU64(uint64_t value) {
  if (value <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return JsonValue(static_cast<int64_t>(value));
  }
  return JsonValue(std::to_string(value));
}

Status JsonReadU64(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  if (member->is_string()) {
    CF_ASSIGN_OR_RETURN(const std::string text, member->GetString());
    CF_ASSIGN_OR_RETURN(*out, JsonParseU64Text(text));
    return Status::Ok();
  }
  CF_ASSIGN_OR_RETURN(const int64_t wide, member->GetInt());
  if (wide < 0) {
    return Status::InvalidArgument(
        StrFormat("member \"%s\" must be non-negative", key));
  }
  *out = static_cast<uint64_t>(wide);
  return Status::Ok();
}

JsonValue JsonFromBoolVec(const std::vector<bool>& values) {
  JsonValue array = JsonValue::MakeArray();
  for (const bool value : values) array.Append(JsonValue(value));
  return array;
}

Status JsonReadBoolVec(const JsonValue& obj, const char* key,
                       std::vector<bool>* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  if (!member->is_array()) {
    return Status::InvalidArgument(
        StrFormat("member \"%s\" must be an array", key));
  }
  std::vector<bool> values;
  for (const JsonValue& item : member->array()) {
    CF_ASSIGN_OR_RETURN(const bool value, item.GetBool());
    values.push_back(value);
  }
  *out = std::move(values);
  return Status::Ok();
}

JsonValue JsonFromIntVec(const std::vector<int>& values) {
  JsonValue array = JsonValue::MakeArray();
  for (const int value : values) array.Append(JsonValue(value));
  return array;
}

Status JsonReadIntVec(const JsonValue& obj, const char* key,
                      std::vector<int>* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  if (!member->is_array()) {
    return Status::InvalidArgument(
        StrFormat("member \"%s\" must be an array", key));
  }
  std::vector<int> values;
  for (const JsonValue& item : member->array()) {
    CF_ASSIGN_OR_RETURN(const int64_t value, item.GetInt());
    if (value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max()) {
      return Status::InvalidArgument(
          StrFormat("member \"%s\" element out of int range", key));
    }
    values.push_back(static_cast<int>(value));
  }
  *out = std::move(values);
  return Status::Ok();
}

JsonValue JsonFromDoubleVec(const std::vector<double>& values) {
  JsonValue array = JsonValue::MakeArray();
  for (const double value : values) array.Append(JsonValue(value));
  return array;
}

Status JsonReadDoubleVec(const JsonValue& obj, const char* key,
                         std::vector<double>* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  if (!member->is_array()) {
    return Status::InvalidArgument(
        StrFormat("member \"%s\" must be an array", key));
  }
  std::vector<double> values;
  for (const JsonValue& item : member->array()) {
    CF_ASSIGN_OR_RETURN(const double value, item.GetDouble());
    values.push_back(value);
  }
  *out = std::move(values);
  return Status::Ok();
}

JsonValue JsonFromStringVec(const std::vector<std::string>& values) {
  JsonValue array = JsonValue::MakeArray();
  for (const std::string& value : values) array.Append(JsonValue(value));
  return array;
}

Status JsonReadStringVec(const JsonValue& obj, const char* key,
                         std::vector<std::string>* out) {
  const JsonValue* member = obj.Find(key);
  if (member == nullptr) return Status::Ok();
  if (!member->is_array()) {
    return Status::InvalidArgument(
        StrFormat("member \"%s\" must be an array", key));
  }
  std::vector<std::string> values;
  for (const JsonValue& item : member->array()) {
    CF_ASSIGN_OR_RETURN(std::string value, item.GetString());
    values.push_back(std::move(value));
  }
  *out = std::move(values);
  return Status::Ok();
}

Result<const JsonValue*> JsonRequireObject(const JsonValue& json,
                                           const char* what) {
  if (!json.is_object()) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a JSON object");
  }
  return &json;
}

}  // namespace crowdfusion::common
