#ifndef CROWDFUSION_COMMON_JSON_UTIL_H_
#define CROWDFUSION_COMMON_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace crowdfusion::common {

/// Optional-member field plumbing shared by every JSON wire in the repo
/// (the service request/response format, the net crowd-ticket wire, the
/// serving front-end). One semantics everywhere:
///
///  * Readers keep the out-param untouched when the member is absent, so
///    C++ struct defaults survive a minimal document.
///  * A present member of the wrong type (or out of the target's range)
///    is kInvalidArgument naming the key — never a crash, never a silent
///    truncation.
///  * uint64 values (seeds, masks) are emitted as JSON integers when they
///    fit int64 and as decimal strings otherwise; readers accept both
///    spellings (JsonU64 / JsonReadU64).

Status JsonReadBool(const JsonValue& obj, const char* key, bool* out);
Status JsonReadInt(const JsonValue& obj, const char* key, int* out);
Status JsonReadInt64(const JsonValue& obj, const char* key, int64_t* out);
Status JsonReadDouble(const JsonValue& obj, const char* key, double* out);
Status JsonReadString(const JsonValue& obj, const char* key,
                      std::string* out);
Status JsonReadU64(const JsonValue& obj, const char* key, uint64_t* out);
Status JsonReadBoolVec(const JsonValue& obj, const char* key,
                       std::vector<bool>* out);
Status JsonReadIntVec(const JsonValue& obj, const char* key,
                      std::vector<int>* out);
Status JsonReadDoubleVec(const JsonValue& obj, const char* key,
                         std::vector<double>* out);
Status JsonReadStringVec(const JsonValue& obj, const char* key,
                         std::vector<std::string>* out);

JsonValue JsonFromBoolVec(const std::vector<bool>& values);
JsonValue JsonFromIntVec(const std::vector<int>& values);
JsonValue JsonFromDoubleVec(const std::vector<double>& values);
JsonValue JsonFromStringVec(const std::vector<std::string>& values);

/// The lossless uint64 emitter described above.
JsonValue JsonU64(uint64_t value);

/// Strict all-digits uint64 text parse (the string spelling of JsonU64
/// and of joint-distribution masks).
Result<uint64_t> JsonParseU64Text(const std::string& text);

/// InvalidArgument naming `what` unless `json` is an object; returns
/// &json otherwise so callers can chain.
Result<const JsonValue*> JsonRequireObject(const JsonValue& json,
                                           const char* what);

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_JSON_UTIL_H_
