#include "common/latency_histogram.h"

#include <bit>
#include <cmath>

namespace crowdfusion::common {

LatencyHistogram::LatencyHistogram()
    : counts_(static_cast<size_t>(kNumBuckets), 0) {}

void LatencyHistogram::Record(double seconds) {
  if (!(seconds > 0.0)) {  // NaN and non-positive count as the floor
    RecordNanos(1);
    return;
  }
  const double nanos = seconds * 1e9;
  // Anything past the top bucket clamps there; the cast stays in range.
  RecordNanos(nanos >= 9.0e18 ? INT64_MAX
                              : static_cast<int64_t>(std::llround(nanos)));
}

void LatencyHistogram::RecordNanos(int64_t nanos) {
  ++counts_[static_cast<size_t>(BucketIndex(nanos))];
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    counts_[static_cast<size_t>(i)] +=
        other.counts_[static_cast<size_t>(i)];
  }
  count_ += other.count_;
}

int LatencyHistogram::BucketIndex(int64_t nanos) {
  if (nanos < 1) nanos = 1;
  const uint64_t v = static_cast<uint64_t>(nanos);
  // [1, kSubBuckets): exact buckets 0 .. kSubBuckets-2.
  if (v < static_cast<uint64_t>(kSubBuckets)) {
    return static_cast<int>(v) - 1;
  }
  // Octave e = floor(log2 v) >= 4; sub-bucket = the 4 bits below the
  // leading one, so each octave splits into 16 equal linear ranges.
  int e = std::bit_width(v) - 1;
  if (e > kMaxExponent) return kNumBuckets - 1;
  const int sub =
      static_cast<int>((v >> (e - 4)) - static_cast<uint64_t>(kSubBuckets));
  return (kSubBuckets - 1) + (e - 4) * kSubBuckets + sub;
}

int64_t LatencyHistogram::BucketUpperBoundNanos(int index) {
  if (index < kSubBuckets - 1) return index + 1;
  const int rest = index - (kSubBuckets - 1);
  const int e = 4 + rest / kSubBuckets;
  const int sub = rest % kSubBuckets;
  return ((static_cast<int64_t>(kSubBuckets + sub) + 1) << (e - 4)) - 1;
}

double LatencyHistogram::PercentileSeconds(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Nearest-rank: the smallest rank r with r >= p * count, at least 1.
  int64_t rank = static_cast<int64_t>(
      std::ceil(p * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      return static_cast<double>(BucketUpperBoundNanos(i)) * 1e-9;
    }
  }
  return static_cast<double>(BucketUpperBoundNanos(kNumBuckets - 1)) * 1e-9;
}

}  // namespace crowdfusion::common
