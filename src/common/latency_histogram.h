#ifndef CROWDFUSION_COMMON_LATENCY_HISTOGRAM_H_
#define CROWDFUSION_COMMON_LATENCY_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace crowdfusion::common {

/// Log-bucketed latency histogram for the load-replay harness: fixed
/// integer buckets (16 linear sub-buckets per power-of-two octave over
/// nanoseconds, HdrHistogram-style), so
///
///  * Record is allocation-free and O(1) (bit_width + shift, no log()),
///  * Merge is an element-wise integer add — commutative and associative,
///    so percentiles are DETERMINISTIC under any merge order (each replay
///    worker owns a histogram; the report merges them),
///  * every percentile is an EXACT bucket upper bound: the true sample is
///    <= the reported value and >= value * 16/17 (<= 6.25% relative
///    error), and the bound itself is an exact integer nanosecond count,
///    identical on every machine.
///
/// Values below 1 ns count as 1 ns; values above the top bucket
/// (~2^43 ns = 8800 s) clamp into it. Not thread-safe: one writer per
/// instance, merge after the writers quiesce.
class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave; 1/kSubBuckets bounds the relative
  /// bucket width.
  static constexpr int kSubBuckets = 16;
  /// Largest bucketed exponent: values up to 2^(kMaxExponent + 1) - 1 ns.
  static constexpr int kMaxExponent = 42;
  /// [1, 16) resolve exactly; each octave above adds kSubBuckets buckets.
  static constexpr int kNumBuckets =
      (kSubBuckets - 1) + (kMaxExponent - 4 + 1) * kSubBuckets;

  LatencyHistogram();

  void Record(double seconds);
  void RecordNanos(int64_t nanos);

  /// Adds every bucket of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  int64_t count() const { return count_; }

  /// Nearest-rank percentile (p in [0, 1]) as the exact upper bound of
  /// the bucket holding that rank, in seconds; 0 for an empty histogram.
  double PercentileSeconds(double p) const;
  double PercentileMs(double p) const { return PercentileSeconds(p) * 1e3; }

  /// Bucket index of a nanosecond value (clamped into [0, kNumBuckets)).
  static int BucketIndex(int64_t nanos);
  /// Largest nanosecond value mapping to `index`. Precondition:
  /// 0 <= index < kNumBuckets.
  static int64_t BucketUpperBoundNanos(int index);

  const std::vector<int64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_LATENCY_HISTOGRAM_H_
