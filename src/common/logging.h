#ifndef CROWDFUSION_COMMON_LOGGING_H_
#define CROWDFUSION_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace crowdfusion::common {

/// Internal helper that prints a fatal message and aborts when the stream
/// is destroyed. Used by CF_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace crowdfusion::common

/// Aborts with a message when `condition` is false. Intended for internal
/// invariants (programming errors), not for validating user input — user
/// input errors are reported via Status.
#define CF_CHECK(condition)                                              \
  if (!(condition))                                                      \
  ::crowdfusion::common::FatalLogMessage(__FILE__, __LINE__, #condition) \
      .stream()

#define CF_CHECK_OK(expr)                                              \
  do {                                                                 \
    const ::crowdfusion::common::Status _cf_check_status = (expr);     \
    CF_CHECK(_cf_check_status.ok()) << _cf_check_status.ToString();    \
  } while (false)

#ifndef NDEBUG
#define CF_DCHECK(condition) CF_CHECK(condition)
#else
#define CF_DCHECK(condition) \
  if (false) CF_CHECK(condition)
#endif

#endif  // CROWDFUSION_COMMON_LOGGING_H_
