#include "common/math_util.h"

#include <limits>

#include "common/logging.h"

namespace crowdfusion::common {

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -XLog2X(p) - XLog2X(1.0 - p);
}

double Entropy(std::span<const double> probs) {
  double h = 0.0;
  for (double p : probs) h -= XLog2X(p);
  return h;
}

double Normalize(std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  if (total <= 0.0) return 0.0;
  const double inv = 1.0 / total;
  for (double& v : values) v *= inv;
  return total;
}

double Sum(std::span<const double> values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double KlDivergence(std::span<const double> p, std::span<const double> q) {
  CF_CHECK(p.size() == q.size());
  double d = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) return std::numeric_limits<double>::infinity();
    d += p[i] * std::log2(p[i] / q[i]);
  }
  return d;
}

double PercentileOfSorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[index < sorted.size() ? index : sorted.size() - 1];
}

uint64_t BinomialCoefficient(int n, int k) {
  CF_CHECK(n >= 0 && k >= 0);
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<uint64_t>(n - k + i) /
             static_cast<uint64_t>(i);
  }
  return result;
}

}  // namespace crowdfusion::common
