#ifndef CROWDFUSION_COMMON_MATH_UTIL_H_
#define CROWDFUSION_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace crowdfusion::common {

/// All entropies in this library are measured in bits (log base 2), matching
/// the paper's running example (e.g. H({f1,f4}) = 1.997 for two facts).

/// x * log2(x) with the standard convention 0 log 0 = 0.
inline double XLog2X(double x) { return x > 0.0 ? x * std::log2(x) : 0.0; }

/// Binary entropy h(p) = -p log2 p - (1-p) log2 (1-p), in bits.
double BinaryEntropy(double p);

/// Shannon entropy of a (not necessarily normalized) non-negative vector.
/// If the vector does not sum to 1 the entries are interpreted as-is, i.e.
/// the caller is responsible for normalization.
double Entropy(std::span<const double> probs);

/// Normalizes a non-negative vector in place to sum to 1. Returns the
/// pre-normalization sum (0 if the vector was all zeros, in which case the
/// vector is left untouched).
double Normalize(std::vector<double>& values);

/// Sum of a vector.
double Sum(std::span<const double> values);

/// True if |a - b| <= tol.
inline bool Near(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Kullback-Leibler divergence D(p || q) in bits. Entries where p == 0
/// contribute 0; entries where p > 0 and q == 0 contribute +infinity.
double KlDivergence(std::span<const double> p, std::span<const double> q);

/// n choose k without overflow for the sizes used here (n <= 63).
uint64_t BinomialCoefficient(int n, int k);

/// Clamps v into [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// p-th percentile (p in [0, 1], nearest-rank with rounding) of an
/// ascending-sorted sample; 0 for an empty one. The latency-gauge helper
/// shared by the serving stats, /metricsz, and the benches.
double PercentileOfSorted(std::span<const double> sorted, double p);

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_MATH_UTIL_H_
