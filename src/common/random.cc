#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace crowdfusion::common {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CF_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CF_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int count) {
  CF_CHECK(count >= 0 && count <= n);
  // Floyd's algorithm would avoid the O(n) vector for small samples, but
  // callers here sample a large fraction of n, so a shuffle prefix is fine.
  std::vector<int> pool(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  for (int i = 0; i < count; ++i) {
    const int j =
        i + static_cast<int>(NextBounded(static_cast<uint64_t>(n - i)));
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
  }
  pool.resize(static_cast<size_t>(count));
  std::sort(pool.begin(), pool.end());
  return pool;
}

int Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CF_CHECK(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return -1;
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace crowdfusion::common
