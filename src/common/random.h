#ifndef CROWDFUSION_COMMON_RANDOM_H_
#define CROWDFUSION_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace crowdfusion::common {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the library (dataset generation, crowd
/// simulation, random task selection) takes an Rng so experiments are
/// reproducible from a single seed. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give independent
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `count` distinct integers from [0, n) in increasing order.
  /// Precondition: 0 <= count <= n.
  std::vector<int> SampleWithoutReplacement(int n, int count);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns -1 if all weights are zero or the vector is empty.
  int SampleDiscrete(const std::vector<double>& weights);

  /// Forks an independent child generator (for per-entity streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_RANDOM_H_
