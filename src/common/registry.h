#ifndef CROWDFUSION_COMMON_REGISTRY_H_
#define CROWDFUSION_COMMON_REGISTRY_H_

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"

namespace crowdfusion::common {

/// String-keyed factory registry: the building block behind
/// core::SelectorRegistry, core::ProviderRegistry, and
/// fusion::FuserRegistry. Keys are config-file spellings ("greedy",
/// "majority_vote", ...); factories build a Product from a Spec.
///
/// Error contract (tested): creating with an unknown key is
/// InvalidArgument and the message names both the key and the sorted list
/// of registered keys; registering a duplicate key is InvalidArgument.
/// Registries are plain values — copy one to extend it locally.
template <typename Product, typename Spec>
class FactoryRegistry {
 public:
  using Factory = std::function<common::Result<Product>(const Spec&)>;

  /// `category` names the product family in error messages ("selector",
  /// "provider", "fuser").
  explicit FactoryRegistry(std::string category)
      : category_(std::move(category)) {}

  /// Registers a factory under `key`. Duplicate keys are rejected.
  Status Register(const std::string& key, Factory factory) {
    if (key.empty()) {
      return Status::InvalidArgument(category_ + " key must not be empty");
    }
    if (factory == nullptr) {
      return Status::InvalidArgument(category_ + " factory for \"" + key +
                                     "\" must not be null");
    }
    const auto [it, inserted] = factories_.emplace(key, std::move(factory));
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument(StrFormat(
          "duplicate %s key \"%s\": already registered", category_.c_str(),
          key.c_str()));
    }
    return Status::Ok();
  }

  /// Builds a Product. Unknown keys fail with the key and the registered
  /// alternatives in the message.
  common::Result<Product> Create(const std::string& key,
                                 const Spec& spec) const {
    const auto it = factories_.find(key);
    if (it == factories_.end()) {
      return Status::InvalidArgument(StrFormat(
          "unknown %s key \"%s\"; registered: %s", category_.c_str(),
          key.c_str(), Join(Keys(), ", ").c_str()));
    }
    return it->second(spec);
  }

  bool Contains(const std::string& key) const {
    return factories_.find(key) != factories_.end();
  }

  /// Registered keys, sorted (std::map keeps them ordered already).
  std::vector<std::string> Keys() const {
    std::vector<std::string> keys;
    keys.reserve(factories_.size());
    for (const auto& [key, factory] : factories_) keys.push_back(key);
    return keys;
  }

  const std::string& category() const { return category_; }

 private:
  std::string category_;
  std::map<std::string, Factory> factories_;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_REGISTRY_H_
