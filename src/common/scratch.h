#ifndef CROWDFUSION_COMMON_SCRATCH_H_
#define CROWDFUSION_COMMON_SCRATCH_H_

#include <cstddef>
#include <vector>

namespace crowdfusion::common {

/// Reusable per-thread scratch buffers for hot paths that would otherwise
/// allocate on every call (the sparse refiner's batched kernel evaluates
/// thousands of candidate tiles per greedy round; a heap round trip per
/// tile dwarfs the scan it serves). Each (thread, slot) pair is one
/// std::vector<double> that grows monotonically and is reused for the life
/// of the thread — ThreadPool workers are long-lived, so after warm-up the
/// request path allocates nothing here.
///
/// Slots keep independent users from aliasing: a caller that needs two
/// live buffers at once (tile accumulators plus the per-candidate cell
/// vector fed to the entropy butterfly) takes two distinct slots. Nested
/// use of the SAME slot on one thread is not supported; add a slot instead.
enum class ScratchSlot {
  /// Sparse refiner: interleaved per-tile cell accumulators.
  kTileSums = 0,
  /// Sparse refiner: one candidate's de-interleaved cell sums (the buffer
  /// the crowd-noise butterfly and entropy run over).
  kCellSums,
  kNumSlots,
};

/// The calling thread's scratch vector for `slot`, resized to `size`
/// elements and zero-filled. The reference stays valid until the same
/// thread asks for the same slot again.
inline std::vector<double>& ZeroedThreadScratch(ScratchSlot slot,
                                                size_t size) {
  thread_local std::vector<double>
      buffers[static_cast<size_t>(ScratchSlot::kNumSlots)];
  std::vector<double>& buffer = buffers[static_cast<size_t>(slot)];
  // assign() reuses capacity: it only touches the allocator when the
  // buffer grows past its high-water mark.
  buffer.assign(size, 0.0);
  return buffer;
}

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_SCRATCH_H_
