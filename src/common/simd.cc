#include "common/simd.h"

#include <cstdlib>

#include "common/logging.h"

namespace crowdfusion::common {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
#if CROWDFUSION_SIMD_AVX2_COMPILED
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel DetectSimdLevel() {
  if (const char* env = std::getenv("CROWDFUSION_DISABLE_SIMD");
      env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    return SimdLevel::kScalar;
  }
  return CpuSupportsAvx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() {
  // Memoized: the environment toggle is read once, at first dispatch.
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

bool ResolveSimd(SimdPolicy policy) {
  switch (policy) {
    case SimdPolicy::kAuto:
      return ActiveSimdLevel() == SimdLevel::kAvx2;
    case SimdPolicy::kForceScalar:
      return false;
    case SimdPolicy::kForceAvx2:
      CF_CHECK(CpuSupportsAvx2())
          << "SimdPolicy::kForceAvx2 on a host without AVX2";
      return true;
  }
  return false;
}

}  // namespace crowdfusion::common
