#ifndef CROWDFUSION_COMMON_SIMD_H_
#define CROWDFUSION_COMMON_SIMD_H_

/// Runtime SIMD dispatch for the hot kernels (the sparse refiner's batched
/// cell-accumulation scan). Kernels come in pairs — a portable scalar tile
/// kernel and an explicitly vectorized one — and MUST produce bit-identical
/// results: every differential and golden in the repo is pinned down to the
/// last float, so dispatch may change speed, never bits. The helpers here
/// only answer "which kernel may run on this host"; the bit-equality proof
/// lives in tests/core/simd_dispatch_test.cc.
///
/// Three gates stack, strictest first:
///  * compile time: -DCROWDFUSION_DISABLE_SIMD=ON (or a non-x86 / MSVC
///    toolchain) compiles the vector kernels out entirely;
///  * environment: CROWDFUSION_DISABLE_SIMD=1 in the process environment
///    forces scalar dispatch at startup without a rebuild;
///  * cpuid: hosts without AVX2 fall back to scalar automatically.

/// True when the AVX2 kernels are compiled into this binary at all.
#if !defined(CROWDFUSION_DISABLE_SIMD) && \
    (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CROWDFUSION_SIMD_AVX2_COMPILED 1
#else
#define CROWDFUSION_SIMD_AVX2_COMPILED 0
#endif

namespace crowdfusion::common {

enum class SimdLevel {
  kScalar,
  kAvx2,
};

/// Name for logs and bench rows ("scalar", "avx2").
const char* SimdLevelName(SimdLevel level);

/// True when this host's CPU can execute the AVX2 kernels (false whenever
/// they were compiled out).
bool CpuSupportsAvx2();

/// Uncached detection: compile-time gate, then the
/// CROWDFUSION_DISABLE_SIMD environment toggle, then cpuid.
SimdLevel DetectSimdLevel();

/// DetectSimdLevel() memoized at first use; what kAuto callers dispatch on.
SimdLevel ActiveSimdLevel();

/// Per-kernel dispatch request, carried in hot-path Options structs. kAuto
/// follows ActiveSimdLevel(); the forced values exist so tests can run both
/// kernels explicitly regardless of host CPU (forcing AVX2 on a host
/// without it is a programming error, guarded by the caller via
/// CpuSupportsAvx2()).
enum class SimdPolicy {
  kAuto,
  kForceScalar,
  kForceAvx2,
};

/// Resolves a policy against this host: true = run the AVX2 kernel.
bool ResolveSimd(SimdPolicy policy);

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_SIMD_H_
