#ifndef CROWDFUSION_COMMON_STATUS_H_
#define CROWDFUSION_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace crowdfusion::common {

/// Error categories used across the library. Mirrors the usual database
/// Status idiom (RocksDB / Arrow): functions that can fail return a Status
/// or a Result<T>; exceptions are not used on library paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); carries a message only when not OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error container, analogous to absl::StatusOr<T>.
///
/// Usage:
///   Result<Foo> r = MakeFoo(...);
///   if (!r.ok()) return r.status();
///   Foo& foo = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : rep_(std::move(value)) {}
  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error and aborts.
  Result(Status status) : rep_(std::move(status)) {
    if (std::get<Status>(rep_).ok()) {
      std::abort();  // OK status carries no value; this is a logic bug.
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    // get_if (not get) so GCC's inliner never sees a read of the Status
    // alternative on the ok() path; std::get here trips a spurious
    // -Wmaybe-uninitialized in GCC 12's variant handling.
    const Status* error = std::get_if<Status>(&rep_);
    if (error != nullptr) return *error;
    // A valueless-by-exception rep_ holds neither alternative; reporting
    // OK for it would turn a failure into silent success.
    if (rep_.valueless_by_exception()) std::abort();
    return kOk;
  }

  /// Precondition: ok(). Aborts otherwise.
  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) std::abort();
  }

  std::variant<T, Status> rep_;
};

}  // namespace crowdfusion::common

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define CF_RETURN_IF_ERROR(expr)                          \
  do {                                                    \
    ::crowdfusion::common::Status _cf_status = (expr);    \
    if (!_cf_status.ok()) return _cf_status;              \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its status, otherwise
/// assigns the value to `lhs`.
#define CF_ASSIGN_OR_RETURN(lhs, expr)        \
  auto CF_CONCAT_(_cf_result, __LINE__) = (expr);             \
  if (!CF_CONCAT_(_cf_result, __LINE__).ok()) \
    return CF_CONCAT_(_cf_result, __LINE__).status();        \
  lhs = std::move(CF_CONCAT_(_cf_result, __LINE__)).value()

#define CF_CONCAT_IMPL_(a, b) a##b
#define CF_CONCAT_(a, b) CF_CONCAT_IMPL_(a, b)

#endif  // CROWDFUSION_COMMON_STATUS_H_
