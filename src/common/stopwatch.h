#ifndef CROWDFUSION_COMMON_STOPWATCH_H_
#define CROWDFUSION_COMMON_STOPWATCH_H_

#include <chrono>

namespace crowdfusion::common {

/// Wall-clock stopwatch for benchmark harnesses. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_STOPWATCH_H_
