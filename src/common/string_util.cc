#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <algorithm>

namespace crowdfusion::common {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

int EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace crowdfusion::common
