#ifndef CROWDFUSION_COMMON_STRING_UTIL_H_
#define CROWDFUSION_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace crowdfusion::common {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Levenshtein edit distance; used to simulate and detect misspelled
/// author names in the Book dataset substrate.
int EditDistance(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_STRING_UTIL_H_
