#include "common/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace crowdfusion::common {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CF_CHECK(row.size() == header_.size())
      << "row has " << row.size() << " cells, header has " << header_.size();
  rows_.push_back(std::move(row));
}

void TablePrinter::AddNumericRow(const std::vector<double>& row,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::setw(static_cast<int>(widths[c])) << std::left
         << row[c] << " |";
    }
    os << "\n";
  };
  auto print_rule = [&] {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace crowdfusion::common
