#ifndef CROWDFUSION_COMMON_TABLE_PRINTER_H_
#define CROWDFUSION_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace crowdfusion::common {

/// Prints aligned ASCII tables, used by the benchmark harnesses to emit the
/// same rows the paper's tables and figure series report.
///
///   TablePrinter t({"k", "OPT", "Approx."});
///   t.AddRow({"1", "37.78", "32.60"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddNumericRow(const std::vector<double>& row, int precision = 4);

  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_TABLE_PRINTER_H_
