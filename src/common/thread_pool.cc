#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace crowdfusion::common {

namespace {

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 16u));
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping so no submitted task is lost.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& body, int max_shards) {
  if (begin >= end) return;
  const int64_t count = end - begin;
  int shards = num_threads() + 1;  // workers plus the calling thread
  if (max_shards > 0) shards = std::min(shards, max_shards);
  shards = static_cast<int>(
      std::min<int64_t>(static_cast<int64_t>(shards), count));
  if (shards <= 1) {
    body(begin, end);
    return;
  }

  // Shard-claiming control block shared with the helpers. The caller
  // claims shards too, so completion never depends on a free worker.
  struct Control {
    std::atomic<int> next_shard{0};
    std::atomic<int> done_shards{0};
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto control = std::make_shared<Control>();
  const int64_t per_shard = (count + shards - 1) / shards;
  auto run_shards = [control, shards, begin, end, per_shard, &body] {
    for (;;) {
      const int shard =
          control->next_shard.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;
      const int64_t shard_begin =
          begin + static_cast<int64_t>(shard) * per_shard;
      const int64_t shard_end = std::min(shard_begin + per_shard, end);
      if (shard_begin < shard_end) body(shard_begin, shard_end);
      if (control->done_shards.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          shards) {
        std::lock_guard<std::mutex> lock(control->mutex);
        control->all_done.notify_all();
      }
    }
  };
  // Helpers capture the control block by value: if every shard is claimed
  // by the caller before a helper runs, the helper exits immediately and
  // must not touch the (gone) stack frame. `body` stays borrowed — shards
  // all finish before ParallelFor returns.
  for (int i = 0; i < shards - 1; ++i) Submit(run_shards);
  run_shards();
  std::unique_lock<std::mutex> lock(control->mutex);
  control->all_done.wait(lock, [&control, shards] {
    return control->done_shards.load(std::memory_order_acquire) == shards;
  });
}

ThreadPool* ThreadPool::Shared() {
  // Leaked intentionally: joining workers during static destruction would
  // race with other teardown.
  static ThreadPool* const kInstance = new ThreadPool();
  return kInstance;
}

}  // namespace crowdfusion::common
