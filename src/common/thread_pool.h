#ifndef CROWDFUSION_COMMON_THREAD_POOL_H_
#define CROWDFUSION_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace crowdfusion::common {

/// Fixed-size worker pool shared by the compute-parallel pieces of the
/// library (sparse-refiner candidate/entry sharding, the CLI's multi-book
/// refine). Replaces the previous pattern of spawning ad-hoc std::threads
/// per batch: workers are started once and reused, so a selector that
/// shards thousands of small candidate batches no longer pays a
/// thread-create/join round trip per batch.
///
/// ParallelFor is deadlock-safe under nesting: the calling thread claims
/// shards itself alongside the workers, so the loop completes even when
/// every worker is busy (e.g. engines running on the pool whose selectors
/// shard their scans on the same pool).
class ThreadPool {
 public:
  /// `num_threads <= 0` sizes the pool to the hardware (capped).
  explicit ThreadPool(int num_threads = 0);

  /// Joins the workers. Pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Runs `body(shard_begin, shard_end)` over a partition of
  /// [begin, end) into at most `max_shards` contiguous ranges
  /// (0 = one per worker plus the caller) and blocks until every shard
  /// completed. The caller participates, so this never deadlocks and a
  /// zero-worker pool degrades to a serial loop.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body,
                   int max_shards = 0);

  /// Process-wide pool for callers without their own. Never null; sized to
  /// the hardware on first use.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace crowdfusion::common

#endif  // CROWDFUSION_COMMON_THREAD_POOL_H_
