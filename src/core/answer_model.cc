#include "core/answer_model.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/math_util.h"

namespace crowdfusion::core {

using common::Status;

namespace {

void CheckTasks(const JointDistribution& joint, std::span<const int> tasks) {
  CF_CHECK(tasks.size() <=
           static_cast<size_t>(JointDistribution::kMaxDenseFacts));
  for (int t : tasks) {
    CF_CHECK(t >= 0 && t < joint.num_facts())
        << "task fact id out of range: " << t;
  }
}

}  // namespace

std::vector<double> AnswerDistributionBruteForce(const JointDistribution& joint,
                                                 std::span<const int> tasks,
                                                 const CrowdModel& crowd) {
  CheckTasks(joint, tasks);
  const int k = static_cast<int>(tasks.size());
  const std::vector<int> positions(tasks.begin(), tasks.end());
  std::vector<double> out(1ULL << k, 0.0);
  // Literal Equation 2: outer loop over answer patterns, inner scan over
  // the output support, counting #Same / #Diff judgments per term.
  for (uint64_t ans = 0; ans < out.size(); ++ans) {
    double total = 0.0;
    for (const auto& entry : joint.entries()) {
      const uint64_t truth = common::ExtractBits(entry.mask, positions);
      total += entry.prob * crowd.AnswerLikelihood(truth, ans, k);
    }
    out[ans] = total;
  }
  return out;
}

std::vector<double> AnswerDistribution(const JointDistribution& joint,
                                       std::span<const int> tasks,
                                       const CrowdModel& crowd) {
  CheckTasks(joint, tasks);
  const int k = static_cast<int>(tasks.size());
  std::vector<double> marginal = joint.MarginalizeOnto(tasks);
  crowd.PushThroughChannel(marginal, k);
  return marginal;
}

double AnswerEntropyBits(const JointDistribution& joint,
                         std::span<const int> tasks, const CrowdModel& crowd) {
  const std::vector<double> dist = AnswerDistribution(joint, tasks, crowd);
  return common::Entropy(dist);
}

double AnswerEntropyBitsBruteForce(const JointDistribution& joint,
                                   std::span<const int> tasks,
                                   const CrowdModel& crowd) {
  const std::vector<double> dist =
      AnswerDistributionBruteForce(joint, tasks, crowd);
  return common::Entropy(dist);
}

common::Result<AnswerJointTable> AnswerJointTable::Build(
    const JointDistribution& joint, const CrowdModel& crowd) {
  if (joint.num_facts() > JointDistribution::kMaxDenseFacts) {
    return Status::InvalidArgument(
        "preprocessing requires a densifiable distribution (n <= 30)");
  }
  std::vector<double> dense = joint.ToDense();
  crowd.PushThroughChannel(dense, joint.num_facts());
  return AnswerJointTable(joint.num_facts(), std::move(dense));
}

common::Result<AnswerJointTable> AnswerJointTable::BuildByScan(
    const JointDistribution& joint, const CrowdModel& crowd) {
  if (joint.num_facts() > JointDistribution::kMaxDenseFacts) {
    return Status::InvalidArgument(
        "preprocessing requires a densifiable distribution (n <= 30)");
  }
  const int n = joint.num_facts();
  std::vector<double> probs(1ULL << n, 0.0);
  for (uint64_t ans = 0; ans < probs.size(); ++ans) {
    double total = 0.0;
    for (const auto& entry : joint.entries()) {
      total += entry.prob * crowd.AnswerLikelihood(entry.mask, ans, n);
    }
    probs[ans] = total;
  }
  return AnswerJointTable(n, std::move(probs));
}

PartitionRefiner::PartitionRefiner(const AnswerJointTable* table)
    : table_(table), part_of_(table->probs().size(), 0) {
  CF_CHECK(table_ != nullptr);
}

double PartitionRefiner::EntropyWithCandidate(int fact) const {
  CF_CHECK(fact >= 0 && fact < table_->num_facts());
  const std::vector<double>& probs = table_->probs();
  // Refined part id: committed part * 2 + candidate judgment bit.
  std::vector<double> sums(static_cast<size_t>(num_parts_) * 2, 0.0);
  for (uint64_t mask = 0; mask < probs.size(); ++mask) {
    const size_t part = static_cast<size_t>(part_of_[mask]) * 2 +
                        (common::GetBit(mask, fact) ? 1 : 0);
    sums[part] += probs[mask];
  }
  return common::Entropy(sums);
}

void PartitionRefiner::Commit(int fact) {
  CF_CHECK(fact >= 0 && fact < table_->num_facts());
  for (uint64_t mask = 0; mask < part_of_.size(); ++mask) {
    part_of_[mask] = part_of_[mask] * 2 +
                     (common::GetBit(mask, fact) ? 1 : 0);
  }
  num_parts_ *= 2;
  committed_.push_back(fact);
}

double PartitionRefiner::CommittedEntropyBits() const {
  const std::vector<double>& probs = table_->probs();
  std::vector<double> sums(static_cast<size_t>(num_parts_), 0.0);
  for (uint64_t mask = 0; mask < probs.size(); ++mask) {
    sums[part_of_[mask]] += probs[mask];
  }
  return common::Entropy(sums);
}

}  // namespace crowdfusion::core
