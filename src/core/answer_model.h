#ifndef CROWDFUSION_CORE_ANSWER_MODEL_H_
#define CROWDFUSION_CORE_ANSWER_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/crowd_model.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// The crowd answer distribution (Definition 3, Equation 2):
///   P(Ans^T = a) = sum_o P(o) * Pc^{#Same(o,a)} * (1-Pc)^{#Diff(o,a)}
/// over the k = |T| asked facts. Answer patterns are packed into the low k
/// bits in task order: bit i corresponds to tasks[i].

/// Literal Equation 2 evaluation: O(2^k * |O| * k). This is the paper's
/// "brute force" cost model; used by tests and by the non-preprocessed
/// greedy/OPT variants that Table V times.
std::vector<double> AnswerDistributionBruteForce(const JointDistribution& joint,
                                                 std::span<const int> tasks,
                                                 const CrowdModel& crowd);

/// Fast equivalent: marginalize the joint onto T (one O(|O|) scan), then
/// push through k binary symmetric channels (O(k * 2^k) butterfly).
std::vector<double> AnswerDistribution(const JointDistribution& joint,
                                       std::span<const int> tasks,
                                       const CrowdModel& crowd);

/// H(T) = H({Ans^T}) in bits, via the fast path.
double AnswerEntropyBits(const JointDistribution& joint,
                         std::span<const int> tasks, const CrowdModel& crowd);

/// H(T) in bits via the literal Equation 2 path.
double AnswerEntropyBitsBruteForce(const JointDistribution& joint,
                                   std::span<const int> tasks,
                                   const CrowdModel& crowd);

/// The preprocessing stage (Section III-F): the full answer joint
/// distribution over all 2^n answer patterns when every fact is asked
/// (the paper's Table IV). Once built, the marginal answer distribution of
/// any task set is obtained by partition refinement (Algorithm 2) in one
/// scan per fact — this is what drops one greedy round from
/// O(2^k n k^2 |O|) to O(n k |O|).
class AnswerJointTable {
 public:
  /// Builds via the BSC butterfly in O(n * 2^n). Requires
  /// num_facts <= JointDistribution::kMaxDenseFacts.
  static common::Result<AnswerJointTable> Build(const JointDistribution& joint,
                                                const CrowdModel& crowd);

  /// Builds by the paper's literal method: for every answer pattern, scan
  /// the output support and accumulate Equation 2 terms, O(2^n * |O| * n)
  /// (the paper's O(|O|^2) with a dense support). Exists so the
  /// preprocessing cost itself can be benchmarked faithfully and the fast
  /// builder can be verified against it.
  static common::Result<AnswerJointTable> BuildByScan(
      const JointDistribution& joint, const CrowdModel& crowd);

  int num_facts() const { return num_facts_; }
  const std::vector<double>& probs() const { return probs_; }

  /// P(Ans^{all facts} = answer_mask), the Table IV entries.
  double Probability(uint64_t answer_mask) const {
    return probs_[answer_mask];
  }

 private:
  AnswerJointTable(int num_facts, std::vector<double> probs)
      : num_facts_(num_facts), probs_(std::move(probs)) {}

  int num_facts_;
  std::vector<double> probs_;  // dense, size 2^num_facts
};

/// Algorithm 2 as an incremental structure. Maintains the partition of the
/// answer table induced by the committed task set; each candidate
/// evaluation refines every part by the candidate's judgment in one scan
/// and returns the entropy of the refined marginal. Committing a fact keeps
/// the refined partition so the next greedy iteration pays one scan per
/// candidate, matching the paper's O(n|O|) per-iteration claim.
class PartitionRefiner {
 public:
  /// `table` must outlive the refiner.
  explicit PartitionRefiner(const AnswerJointTable* table);

  /// H(T ∪ {fact}) in bits, where T is the committed set. O(2^n) scan.
  double EntropyWithCandidate(int fact) const;

  /// Adds `fact` to the committed set, refining the stored partition.
  void Commit(int fact);

  /// Entropy of the committed task set's answer marginal, H(T).
  double CommittedEntropyBits() const;

  const std::vector<int>& committed() const { return committed_; }
  int num_parts() const { return num_parts_; }

 private:
  const AnswerJointTable* table_;
  std::vector<uint32_t> part_of_;  // per answer mask, in [0, num_parts_)
  int num_parts_ = 1;
  std::vector<int> committed_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_ANSWER_MODEL_H_
