#include "core/async_provider.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace crowdfusion::core {

using common::Status;

TicketLedger::TicketLedger(common::Clock* clock)
    : clock_(clock == nullptr ? common::Clock::Real() : clock) {}

TicketId TicketLedger::Add(Outcome outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  const TicketId id = next_id_++;
  Record record;
  record.ready_at =
      clock_->NowSeconds() + std::max(0.0, outcome.latency_seconds);
  record.outcome = std::move(outcome);
  tickets_.emplace(id, std::move(record));
  return id;
}

common::Result<TicketStatus> TicketLedger::Poll(TicketId ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return Status::NotFound(
        common::StrFormat("unknown or already-taken ticket %lld",
                          static_cast<long long>(ticket)));
  }
  const Record& record = it->second;
  TicketStatus status;
  status.attempts_used = record.outcome.attempts_used;
  const double remaining = record.ready_at - clock_->NowSeconds();
  if (remaining > 0) {
    status.phase = TicketPhase::kInFlight;
    status.seconds_until_ready = remaining;
  } else if (record.outcome.result.ok()) {
    status.phase = TicketPhase::kReady;
  } else {
    status.phase = TicketPhase::kFailed;
    status.error = record.outcome.result.status();
  }
  return status;
}

common::Result<std::vector<bool>> TicketLedger::Await(TicketId ticket) {
  double remaining = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = tickets_.find(ticket);
    if (it == tickets_.end()) {
      return Status::NotFound(
          common::StrFormat("unknown or already-taken ticket %lld",
                            static_cast<long long>(ticket)));
    }
    remaining = it->second.ready_at - clock_->NowSeconds();
  }
  // Sleep outside the lock: with a real clock this blocks for the
  // platform's remaining latency and must not stall Submit/Poll callers.
  if (remaining > 0) clock_->SleepSeconds(remaining);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    return Status::NotFound(
        common::StrFormat("ticket %lld taken concurrently",
                          static_cast<long long>(ticket)));
  }
  common::Result<std::vector<bool>> result =
      std::move(it->second.outcome.result);
  tickets_.erase(it);
  return result;
}

void TicketLedger::Forget(TicketId ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  tickets_.erase(ticket);
}

int64_t TicketLedger::tickets_issued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_ - 1;
}

int64_t TicketLedger::live_tickets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(tickets_.size());
}

TicketLedger::Outcome SimulateTicketAttempts(
    const TicketOptions& options,
    const std::function<common::Result<std::vector<bool>>(int attempt)>&
        run_attempt,
    const std::function<double(int attempt)>& attempt_latency) {
  TicketLedger::Outcome outcome;
  const int max_attempts = std::max(1, options.max_attempts);
  double elapsed = 0.0;
  Status last_error = Status::Unavailable("no attempt ran");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) elapsed += std::max(0.0, options.retry_backoff_seconds);
    if (attempt_latency != nullptr) {
      elapsed += std::max(0.0, attempt_latency(attempt));
    }
    outcome.attempts_used = attempt;
    if (elapsed > options.deadline_seconds) {
      // The attempt would land past the deadline; the caller observes the
      // failure the moment the deadline passes.
      outcome.latency_seconds = options.deadline_seconds;
      outcome.result = Status::DeadlineExceeded(common::StrFormat(
          "ticket deadline of %.3fs passed during attempt %d",
          options.deadline_seconds, attempt));
      return outcome;
    }
    common::Result<std::vector<bool>> result = run_attempt(attempt);
    if (result.ok()) {
      outcome.latency_seconds = elapsed;
      outcome.result = std::move(result);
      return outcome;
    }
    last_error = result.status();
  }
  // Attempts exhausted: surface the last attempt's own status so a
  // single-attempt ticket fails exactly as the blocking call would have;
  // attempts_used records that retries happened.
  outcome.latency_seconds = elapsed;
  outcome.result = last_error;
  return outcome;
}

SyncProviderAdapter::SyncProviderAdapter(AnswerProvider* provider,
                                         common::Clock* clock)
    : provider_(provider), ledger_(clock) {}

common::Result<TicketId> SyncProviderAdapter::Submit(
    std::span<const int> fact_ids, const TicketOptions& options) {
  if (provider_ == nullptr) {
    return Status::InvalidArgument("wrapped provider must not be null");
  }
  TicketLedger::Outcome outcome = SimulateTicketAttempts(
      options,
      [this, fact_ids](int) { return provider_->CollectAnswers(fact_ids); },
      /*attempt_latency=*/nullptr);
  return ledger_.Add(std::move(outcome));
}

common::Result<TicketStatus> SyncProviderAdapter::Poll(TicketId ticket) {
  return ledger_.Poll(ticket);
}

common::Result<std::vector<bool>> SyncProviderAdapter::Await(TicketId ticket) {
  return ledger_.Await(ticket);
}

void SyncProviderAdapter::Cancel(TicketId ticket) { ledger_.Forget(ticket); }

}  // namespace crowdfusion::core
