#ifndef CROWDFUSION_CORE_ASYNC_PROVIDER_H_
#define CROWDFUSION_CORE_ASYNC_PROVIDER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/crowdfusion.h"

namespace crowdfusion::core {

/// Handle to one in-flight batch of crowd tasks.
using TicketId = int64_t;

/// Per-ticket service contract: how long the caller is willing to wait in
/// total (across retries) and how many attempts the provider may make.
struct TicketOptions {
  /// Overall deadline relative to submission, seconds, spanning every
  /// retry. A ticket whose attempts would resolve past it fails with
  /// DeadlineExceeded at the deadline instead.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Bounded retry: total attempts (first try included). Must be >= 1.
  int max_attempts = 3;
  /// Extra delay charged before each retry attempt.
  double retry_backoff_seconds = 0.0;
};

enum class TicketPhase {
  kInFlight,  // answers not available yet
  kReady,     // answers available, not yet taken
  kFailed,    // attempts or deadline exhausted
};

struct TicketStatus {
  TicketPhase phase = TicketPhase::kInFlight;
  /// Attempts consumed so far (final count once resolved).
  int attempts_used = 0;
  /// Seconds until the ticket resolves; 0 once kReady or kFailed. Pollers
  /// use it to sleep exactly as long as needed instead of spinning.
  double seconds_until_ready = 0.0;
  /// The failure, when phase == kFailed.
  common::Status error;
};

/// The asynchronous collection contract (the real-platform shape of
/// AnswerProvider): submitting a batch of fact ids returns a ticket
/// immediately; answers land after the platform's latency and are fetched
/// by ticket. One provider instance still serves one fact universe.
///
/// Thread-safety: implementations in this repo guard their ticket state, so
/// Submit/Poll/Await may be called from any thread; calls for the *same*
/// ticket should still come from one logical owner (Await consumes).
class AsyncAnswerProvider {
 public:
  virtual ~AsyncAnswerProvider() = default;

  /// Registers a batch of tasks with the crowd and returns its ticket.
  virtual common::Result<TicketId> Submit(std::span<const int> fact_ids,
                                          const TicketOptions& options) = 0;
  common::Result<TicketId> Submit(std::span<const int> fact_ids) {
    return Submit(fact_ids, TicketOptions());
  }

  /// Non-blocking status check. Unknown or already-taken tickets are
  /// NotFound.
  virtual common::Result<TicketStatus> Poll(TicketId ticket) = 0;

  /// Blocks (via the provider's clock) until the ticket resolves, then
  /// consumes it: returns the answers, or the ticket's failure status.
  virtual common::Result<std::vector<bool>> Await(TicketId ticket) = 0;

  /// Abandons a ticket the caller will never Await (e.g. a scheduler run
  /// aborted with batches still in flight), releasing its bookkeeping.
  /// Unknown tickets are ignored. Default: no-op, for providers without
  /// per-ticket state.
  virtual void Cancel(TicketId ticket) { (void)ticket; }
};

/// Shared ticket bookkeeping for the providers in this repo, which all
/// resolve a ticket's fate *eagerly at submit time* (answers, retries and
/// latency are sampled up front in submission order — keeping RNG streams
/// identical to the synchronous path) and then replay it against the
/// clock: Poll compares now to the precomputed ready time, Await sleeps
/// the difference. Mutex-guarded so a provider can be polled from a
/// scheduler thread while other threads submit.
class TicketLedger {
 public:
  /// The precomputed fate of a ticket.
  struct Outcome {
    /// Submission-to-resolution delay, seconds (includes retry backoff).
    double latency_seconds = 0.0;
    /// Answers on success; the terminal error otherwise.
    common::Result<std::vector<bool>> result =
        common::Status::Internal("unresolved ticket outcome");
    int attempts_used = 1;
  };

  /// `clock` must outlive the ledger; nullptr means Clock::Real().
  explicit TicketLedger(common::Clock* clock);

  TicketId Add(Outcome outcome);
  common::Result<TicketStatus> Poll(TicketId ticket);
  common::Result<std::vector<bool>> Await(TicketId ticket);

  /// Drops a ticket without consuming it (idempotent): abandoned tickets
  /// must not accumulate in a long-lived serving process.
  void Forget(TicketId ticket);

  /// Tickets submitted over the ledger's lifetime.
  int64_t tickets_issued() const;

  /// Tickets currently held (issued, not yet taken or forgotten).
  int64_t live_tickets() const;

 private:
  struct Record {
    double ready_at = 0.0;
    Outcome outcome;
  };

  mutable std::mutex mutex_;
  common::Clock* clock_;
  TicketId next_id_ = 1;
  std::unordered_map<TicketId, Record> tickets_;
};

/// Resolves a ticket's attempt schedule against TicketOptions: runs
/// `run_attempt` up to max_attempts times (charging `attempt_latency`
/// plus backoff for each), stopping at the first success or when the
/// deadline would pass. `attempt_latency` may be null (zero latency).
/// Attempts are numbered from 1.
TicketLedger::Outcome SimulateTicketAttempts(
    const TicketOptions& options,
    const std::function<common::Result<std::vector<bool>>(int attempt)>&
        run_attempt,
    const std::function<double(int attempt)>& attempt_latency);

/// Adapts any synchronous AnswerProvider to the async contract with zero
/// latency: answers are collected inside Submit (so the wrapped provider's
/// RNG stream advances in submission order, exactly as the blocking loop
/// would) and the ticket is ready immediately. Non-OK collections are
/// retried up to the ticket's max_attempts. The wrapped provider is not
/// owned and must outlive the adapter.
class SyncProviderAdapter : public AsyncAnswerProvider {
 public:
  /// `clock` is only consulted for ticket timestamps; nullptr means
  /// Clock::Real().
  explicit SyncProviderAdapter(AnswerProvider* provider,
                               common::Clock* clock = nullptr);

  common::Result<TicketId> Submit(std::span<const int> fact_ids,
                                  const TicketOptions& options) override;
  using AsyncAnswerProvider::Submit;
  common::Result<TicketStatus> Poll(TicketId ticket) override;
  common::Result<std::vector<bool>> Await(TicketId ticket) override;
  void Cancel(TicketId ticket) override;

 private:
  AnswerProvider* provider_;
  TicketLedger ledger_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_ASYNC_PROVIDER_H_
