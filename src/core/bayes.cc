#include "core/bayes.h"

#include <unordered_set>

#include "common/bit_util.h"
#include "common/string_util.h"

namespace crowdfusion::core {

using common::Status;

namespace {

Status ValidateAnswerSet(const JointDistribution& prior,
                         const AnswerSet& answer_set) {
  if (answer_set.tasks.size() != answer_set.answers.size()) {
    return Status::InvalidArgument(common::StrFormat(
        "answer set has %zu tasks but %zu answers", answer_set.tasks.size(),
        answer_set.answers.size()));
  }
  std::unordered_set<int> seen;
  for (int t : answer_set.tasks) {
    if (t < 0 || t >= prior.num_facts()) {
      return Status::OutOfRange(
          common::StrFormat("task fact id %d out of range [0, %d)", t,
                            prior.num_facts()));
    }
    if (!seen.insert(t).second) {
      return Status::InvalidArgument(common::StrFormat(
          "task fact id %d appears twice in one answer set", t));
    }
  }
  return Status::Ok();
}

/// Unnormalized posterior weights P(o) * P(Ans | o); returns total mass.
double WeightEntries(const JointDistribution& prior,
                     const AnswerSet& answer_set, const CrowdModel& crowd,
                     std::vector<JointDistribution::Entry>& out) {
  const int k = static_cast<int>(answer_set.tasks.size());
  uint64_t answer_bits = 0;
  for (int i = 0; i < k; ++i) {
    if (answer_set.answers[static_cast<size_t>(i)]) answer_bits |= 1ULL << i;
  }
  out.clear();
  out.reserve(prior.entries().size());
  double total = 0.0;
  for (const auto& entry : prior.entries()) {
    const uint64_t truth_bits =
        common::ExtractBits(entry.mask, answer_set.tasks);
    const double w =
        entry.prob * crowd.AnswerLikelihood(truth_bits, answer_bits, k);
    total += w;
    out.push_back({entry.mask, w});
  }
  return total;
}

}  // namespace

common::Result<JointDistribution> PosteriorGivenAnswers(
    const JointDistribution& prior, const AnswerSet& answer_set,
    const CrowdModel& crowd) {
  CF_RETURN_IF_ERROR(ValidateAnswerSet(prior, answer_set));
  std::vector<JointDistribution::Entry> weighted;
  const double total = WeightEntries(prior, answer_set, crowd, weighted);
  if (total <= 0.0) {
    return Status::FailedPrecondition(
        "received answers have zero probability under the prior "
        "(impossible evidence; check Pc and the prior support)");
  }
  return JointDistribution::FromEntries(prior.num_facts(), std::move(weighted),
                                        /*normalize=*/true);
}

common::Result<double> AnswerSetProbability(const JointDistribution& prior,
                                            const AnswerSet& answer_set,
                                            const CrowdModel& crowd) {
  CF_RETURN_IF_ERROR(ValidateAnswerSet(prior, answer_set));
  std::vector<JointDistribution::Entry> weighted;
  return WeightEntries(prior, answer_set, crowd, weighted);
}

common::Result<JointDistribution> PosteriorGivenAnswerSets(
    const JointDistribution& prior, std::span<const AnswerSet> answer_sets,
    const CrowdModel& crowd) {
  JointDistribution current = prior;
  for (const AnswerSet& answers : answer_sets) {
    CF_ASSIGN_OR_RETURN(current,
                        PosteriorGivenAnswers(current, answers, crowd));
  }
  return current;
}

}  // namespace crowdfusion::core
