#ifndef CROWDFUSION_CORE_BAYES_H_
#define CROWDFUSION_CORE_BAYES_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/crowd_model.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// One round's collected crowd answers: answers[i] is the crowd's true/false
/// judgment of fact tasks[i].
struct AnswerSet {
  std::vector<int> tasks;
  std::vector<bool> answers;
};

/// Merges crowd answers into the output distribution (Section III-A,
/// Equation 3):
///   P(o | Ans) = P(o) * Pc^{#Same} * (1-Pc)^{#Diff} / P(Ans)
/// Returns the normalized posterior. Fails if the answer set is malformed
/// (size mismatch, out-of-range fact ids, duplicate tasks) or if the answer
/// set has zero probability under the prior (impossible evidence).
common::Result<JointDistribution> PosteriorGivenAnswers(
    const JointDistribution& prior, const AnswerSet& answer_set,
    const CrowdModel& crowd);

/// Marginal likelihood P(Ans) of the received answers under the prior and
/// crowd model (the normalizer of Equation 3).
common::Result<double> AnswerSetProbability(const JointDistribution& prior,
                                            const AnswerSet& answer_set,
                                            const CrowdModel& crowd);

/// Applies a sequence of answer sets (multiple rounds) in order.
common::Result<JointDistribution> PosteriorGivenAnswerSets(
    const JointDistribution& prior, std::span<const AnswerSet> answer_sets,
    const CrowdModel& crowd);

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_BAYES_H_
