#include "core/crowd_model.h"

#include <cmath>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace crowdfusion::core {

common::Result<CrowdModel> CrowdModel::Create(double pc) {
  if (!(pc >= 0.5 && pc <= 1.0)) {
    return common::Status::InvalidArgument(common::StrFormat(
        "crowd accuracy Pc must be in [0.5, 1], got %g", pc));
  }
  return CrowdModel(pc);
}

double CrowdModel::EntropyBits() const { return common::BinaryEntropy(pc_); }

double CrowdModel::AnswerLikelihood(uint64_t truth_bits, uint64_t answer_bits,
                                    int k) const {
  CF_DCHECK(k >= 0 && k <= 64);
  const uint64_t mask = k >= 64 ? ~0ULL : ((1ULL << k) - 1);
  const int diff = common::PopCount((truth_bits ^ answer_bits) & mask);
  const int same = k - diff;
  return std::pow(pc_, same) * std::pow(1.0 - pc_, diff);
}

void CrowdModel::PushThroughChannel(std::vector<double>& dist, int k) const {
  PushThroughChannelOnCoords(dist, k, k >= 64 ? ~0ULL : ((1ULL << k) - 1));
}

void CrowdModel::PushThroughChannelOnCoords(std::vector<double>& dist, int m,
                                            uint64_t noisy_coords) const {
  CF_CHECK(dist.size() == (1ULL << m));
  const double keep = pc_;
  const double flip = 1.0 - pc_;
  if (flip == 0.0) return;  // Perfect crowd: channel is the identity.
  for (int b = 0; b < m; ++b) {
    if (!common::GetBit(noisy_coords, b)) continue;
    const uint64_t bit = 1ULL << b;
    // One BSC butterfly stage: each pair (x, x|bit) mixes.
    for (uint64_t x = 0; x < dist.size(); ++x) {
      if (x & bit) continue;
      const double p0 = dist[x];
      const double p1 = dist[x | bit];
      dist[x] = keep * p0 + flip * p1;
      dist[x | bit] = flip * p0 + keep * p1;
    }
  }
}

}  // namespace crowdfusion::core
