#ifndef CROWDFUSION_CORE_CROWD_MODEL_H_
#define CROWDFUSION_CORE_CROWD_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace crowdfusion::core {

/// The paper's crowd error model (Definition 2): every task is answered
/// independently and correctly with probability Pc in [0.5, 1]. In channel
/// terms each asked fact passes through a binary symmetric channel with
/// crossover probability 1 - Pc.
class CrowdModel {
 public:
  /// Validates Pc in [0.5, 1].
  static common::Result<CrowdModel> Create(double pc);

  double pc() const { return pc_; }

  /// H(Crowd) = -Pc log2 Pc - (1-Pc) log2 (1-Pc) (Equation 1), bits.
  double EntropyBits() const;

  /// Likelihood P(answer | truth) for the asked coordinates: Pc^#Same *
  /// (1-Pc)^#Diff, where #Same/#Diff count agreeing/disagreeing judgments
  /// among the k asked facts. `truth_bits` and `answer_bits` are packed
  /// into the low k bits.
  double AnswerLikelihood(uint64_t truth_bits, uint64_t answer_bits,
                          int k) const;

  /// Pushes a dense distribution over 2^k truth assignments through k
  /// independent BSCs, producing the distribution over 2^k answer patterns
  /// (Equation 2 after marginalizing the joint onto the task set).
  /// In-place butterfly, O(k * 2^k).
  void PushThroughChannel(std::vector<double>& dist, int k) const;

  /// Pushes the channel on selected coordinates only: coordinate i of the
  /// 2^m-entry table is noisy iff `noisy_coords` bit i is set. Used by the
  /// query-based variant where facts-of-interest coordinates stay latent.
  void PushThroughChannelOnCoords(std::vector<double>& dist, int m,
                                  uint64_t noisy_coords) const;

 private:
  explicit CrowdModel(double pc) : pc_(pc) {}

  double pc_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_CROWD_MODEL_H_
