#include "core/crowdfusion.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace crowdfusion::core {

using common::Status;

common::Result<CrowdFusionEngine> CrowdFusionEngine::Create(
    JointDistribution initial, CrowdModel crowd, TaskSelector* selector,
    AnswerProvider* provider, EngineOptions options) {
  if (selector == nullptr) {
    return Status::InvalidArgument("selector must not be null");
  }
  if (provider == nullptr) {
    return Status::InvalidArgument("answer provider must not be null");
  }
  if (options.budget < 0) {
    return Status::InvalidArgument(
        common::StrFormat("budget must be non-negative, got %d",
                          options.budget));
  }
  if (options.tasks_per_round <= 0) {
    return Status::InvalidArgument(common::StrFormat(
        "tasks_per_round must be positive, got %d", options.tasks_per_round));
  }
  if (initial.num_facts() == 0) {
    return Status::InvalidArgument("initial distribution has no facts");
  }
  if (!initial.IsNormalized(1e-6)) {
    return Status::InvalidArgument("initial distribution is not normalized");
  }
  return CrowdFusionEngine(std::move(initial), crowd, selector, provider,
                           options);
}

common::Result<RoundRecord> CrowdFusionEngine::RunRound() {
  // Debug guard on the borrow contract: Create() validated these non-null,
  // so a null here means the owner destroyed (and zeroed) them while the
  // engine was still running — the classic async hand-off footgun.
  CF_DCHECK(selector_ != nullptr) << "selector destroyed before the engine";
  CF_DCHECK(provider_ != nullptr) << "provider destroyed before the engine";
  if (!HasBudget()) {
    return Status::FailedPrecondition("budget exhausted");
  }
  // Ask min(k, n, remaining budget) tasks this round (Section V-A); an
  // adaptive policy may override the fixed k.
  const int remaining = options_.budget - cost_spent_;
  int requested_k = options_.tasks_per_round;
  if (options_.round_policy != nullptr) {
    RoundPolicy::RoundContext context;
    context.joint = &current_;
    context.remaining_budget = remaining;
    context.rounds_completed = rounds_completed_;
    requested_k = std::max(1, options_.round_policy->NextK(context));
  }
  const int k = std::min({requested_k, current_.num_facts(), remaining});

  SelectionRequest request;
  request.joint = &current_;
  request.crowd = &crowd_;
  request.k = k;
  CF_ASSIGN_OR_RETURN(Selection selection, selector_->Select(request));

  RoundRecord record;
  record.round = rounds_completed_;
  record.tasks = selection.tasks;
  record.selected_entropy_bits = selection.entropy_bits;
  record.selection_stats = selection.stats;

  if (!selection.tasks.empty()) {
    CF_ASSIGN_OR_RETURN(record.answers,
                        provider_->CollectAnswers(selection.tasks));
    if (record.answers.size() != selection.tasks.size()) {
      return Status::Internal(common::StrFormat(
          "answer provider returned %zu answers for %zu tasks",
          record.answers.size(), selection.tasks.size()));
    }
    AnswerSet answer_set;
    answer_set.tasks = selection.tasks;
    answer_set.answers = record.answers;
    CF_ASSIGN_OR_RETURN(current_,
                        PosteriorGivenAnswers(current_, answer_set, crowd_));
    cost_spent_ += static_cast<int>(selection.tasks.size());
  }

  record.utility_bits = -current_.EntropyBits();
  record.cumulative_cost = cost_spent_;
  ++rounds_completed_;
  return record;
}

common::Result<std::vector<RoundRecord>> CrowdFusionEngine::Run() {
  std::vector<RoundRecord> records;
  while (HasBudget()) {
    CF_ASSIGN_OR_RETURN(RoundRecord record, RunRound());
    const bool selected_nothing = record.tasks.empty();
    records.push_back(std::move(record));
    if (selected_nothing) break;  // Selector sees no benefit in more tasks.
  }
  return records;
}

}  // namespace crowdfusion::core
