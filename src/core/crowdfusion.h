#ifndef CROWDFUSION_CORE_CROWDFUSION_H_
#define CROWDFUSION_CORE_CROWDFUSION_H_

#include <span>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "core/bayes.h"
#include "core/crowd_model.h"
#include "core/joint_distribution.h"
#include "core/round_policy.h"
#include "core/task_selector.h"

namespace crowdfusion::core {

/// Source of crowd answers for selected tasks. The production
/// implementation is crowd::SimulatedCrowd (the gMission substitute); tests
/// use scripted providers. The asynchronous (ticketed) counterpart is
/// core::AsyncAnswerProvider in core/async_provider.h; any blocking
/// provider can be lifted to it with SyncProviderAdapter.
class AnswerProvider {
 public:
  virtual ~AnswerProvider() = default;

  /// Returns the crowd's true/false judgment for each asked fact, in order.
  virtual common::Result<std::vector<bool>> CollectAnswers(
      std::span<const int> fact_ids) = 0;
};

/// One select-collect-merge cycle's outcome.
struct RoundRecord {
  int round = 0;
  std::vector<int> tasks;
  std::vector<bool> answers;
  /// Q(F) = -H(F) after merging this round's answers, bits.
  double utility_bits = 0.0;
  /// Selector's H(T) estimate for the chosen set.
  double selected_entropy_bits = 0.0;
  /// Tasks spent so far, including this round.
  int cumulative_cost = 0;
  SelectionStats selection_stats;
};

/// Engine configuration. Copy-safe by design: the struct owns only plain
/// values, and its single pointer member is an explicitly *borrowed*
/// reference, so copies share the same policy object and never double-free
/// or dangle on their own — the caller keeps the policy alive for as long
/// as any engine configured with it runs (asserted, debug-only, each
/// round).
struct EngineOptions {
  /// Total number of tasks the engine may spend (B in Section V-A).
  int budget = 60;
  /// Tasks per round (k). Per the paper, each round asks
  /// min(k, n, remaining budget) tasks.
  int tasks_per_round = 1;
  /// Optional adaptive k policy; when set it overrides tasks_per_round
  /// each round (still clamped to [1, min(n, remaining budget)]).
  /// Borrowed, never owned or deleted; must outlive every engine (and
  /// every copy of this options struct) that uses it.
  RoundPolicy* round_policy = nullptr;
};

static_assert(std::is_trivially_copyable_v<EngineOptions>,
              "EngineOptions must stay trivially copyable: engines and "
              "experiment configs copy it freely across async hand-offs");

/// The CrowdFusion system loop (Figure 1): starting from any probabilistic
/// fusion result, repeatedly select tasks, collect crowd answers, and merge
/// them via Bayes until the budget runs out.
///
/// Lifetime contract (load-bearing now that engines are handed across
/// threads and overlap with in-flight crowd tickets): the engine BORROWS
/// the selector, the provider, and options.round_policy — it never owns or
/// deletes them, and all three must outlive the engine and every
/// outstanding round started through it. Violations are asserted
/// (debug-only) at each round; in release they are undefined behavior.
/// The crowd model is copied by value, as is the joint — only those three
/// pointers are borrowed. The crowd model is the accuracy the *system*
/// assumes — experiments may pair it with a provider whose true accuracy
/// differs (the paper's Pc setting study).
class CrowdFusionEngine {
 public:
  static common::Result<CrowdFusionEngine> Create(JointDistribution initial,
                                                  CrowdModel crowd,
                                                  TaskSelector* selector,
                                                  AnswerProvider* provider,
                                                  EngineOptions options);

  /// True while budget remains and the distribution still has facts.
  bool HasBudget() const { return cost_spent_ < options_.budget; }

  /// Runs one round. Precondition: HasBudget().
  common::Result<RoundRecord> RunRound();

  /// Runs rounds until the budget is exhausted or a round selects nothing.
  common::Result<std::vector<RoundRecord>> Run();

  const JointDistribution& current() const { return current_; }
  int cost_spent() const { return cost_spent_; }
  int rounds_completed() const { return rounds_completed_; }
  const CrowdModel& crowd() const { return crowd_; }

 private:
  CrowdFusionEngine(JointDistribution initial, CrowdModel crowd,
                    TaskSelector* selector, AnswerProvider* provider,
                    EngineOptions options)
      : current_(std::move(initial)),
        crowd_(crowd),
        selector_(selector),
        provider_(provider),
        options_(options) {}

  JointDistribution current_;
  CrowdModel crowd_;
  TaskSelector* selector_;
  AnswerProvider* provider_;
  EngineOptions options_;
  int cost_spent_ = 0;
  int rounds_completed_ = 0;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_CROWDFUSION_H_
