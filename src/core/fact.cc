#include "core/fact.h"

#include "common/logging.h"

namespace crowdfusion::core {

std::string Fact::ToString() const {
  return subject + " | " + predicate + " | " + object;
}

int FactSet::Add(Fact fact) {
  facts_.push_back(std::move(fact));
  return static_cast<int>(facts_.size()) - 1;
}

const Fact& FactSet::at(int id) const {
  CF_CHECK(id >= 0 && id < size()) << "fact id out of range: " << id;
  return facts_[static_cast<size_t>(id)];
}

int FactSet::Find(const Fact& fact) const {
  for (int i = 0; i < size(); ++i) {
    if (facts_[static_cast<size_t>(i)] == fact) return i;
  }
  return -1;
}

}  // namespace crowdfusion::core
