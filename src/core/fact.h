#ifndef CROWDFUSION_CORE_FACT_H_
#define CROWDFUSION_CORE_FACT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace crowdfusion::core {

/// A fact is a {subject, predicate, object} triple whose ground-truth value
/// is either true or false (Section II-A). Facts in one FactSet may refer to
/// entirely different real-world entities.
struct Fact {
  std::string subject;
  std::string predicate;
  std::string object;

  /// "subject | predicate | object" display form.
  std::string ToString() const;

  friend bool operator==(const Fact& a, const Fact& b) = default;
};

/// An ordered collection of facts; a fact's id is its index. The joint
/// distribution, crowd answers, and task selections all refer to facts by
/// these ids.
class FactSet {
 public:
  FactSet() = default;
  explicit FactSet(std::vector<Fact> facts) : facts_(std::move(facts)) {}

  /// Appends a fact; returns its id.
  int Add(Fact fact);

  int size() const { return static_cast<int>(facts_.size()); }
  bool empty() const { return facts_.empty(); }

  const Fact& at(int id) const;
  const std::vector<Fact>& facts() const { return facts_; }

  /// Index of the first fact equal to `fact`, or -1.
  int Find(const Fact& fact) const;

 private:
  std::vector<Fact> facts_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_FACT_H_
