#include "core/fact_query.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace crowdfusion::core {

using common::Status;

FactQuery FactQuery::Atom(int fact_id) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAtom;
  node->fact_id = fact_id;
  return FactQuery(std::move(node));
}

FactQuery FactQuery::Not(FactQuery operand) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->left = std::move(operand.root_);
  return FactQuery(std::move(node));
}

FactQuery FactQuery::And(FactQuery left, FactQuery right) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = std::move(left.root_);
  node->right = std::move(right.root_);
  return FactQuery(std::move(node));
}

FactQuery FactQuery::Or(FactQuery left, FactQuery right) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = std::move(left.root_);
  node->right = std::move(right.root_);
  return FactQuery(std::move(node));
}

FactQuery FactQuery::True() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kTrue;
  return FactQuery(std::move(node));
}

FactQuery FactQuery::False() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kFalse;
  return FactQuery(std::move(node));
}

bool FactQuery::EvaluateNode(const Node& node, uint64_t mask) {
  switch (node.kind) {
    case Kind::kAtom:
      return common::GetBit(mask, node.fact_id);
    case Kind::kNot:
      return !EvaluateNode(*node.left, mask);
    case Kind::kAnd:
      return EvaluateNode(*node.left, mask) &&
             EvaluateNode(*node.right, mask);
    case Kind::kOr:
      return EvaluateNode(*node.left, mask) ||
             EvaluateNode(*node.right, mask);
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
  }
  return false;
}

bool FactQuery::Evaluate(uint64_t output_mask) const {
  return EvaluateNode(*root_, output_mask);
}

int FactQuery::MaxFactIdOf(const Node& node) {
  switch (node.kind) {
    case Kind::kAtom:
      return node.fact_id;
    case Kind::kNot:
      return MaxFactIdOf(*node.left);
    case Kind::kAnd:
    case Kind::kOr:
      return std::max(MaxFactIdOf(*node.left), MaxFactIdOf(*node.right));
    case Kind::kTrue:
    case Kind::kFalse:
      return -1;
  }
  return -1;
}

int FactQuery::MaxFactId() const { return MaxFactIdOf(*root_); }

common::Result<double> FactQuery::Probability(
    const JointDistribution& joint) const {
  const int max_fact = MaxFactId();
  if (max_fact >= joint.num_facts()) {
    return Status::OutOfRange(common::StrFormat(
        "query references fact %d but the joint has %d facts", max_fact,
        joint.num_facts()));
  }
  double probability = 0.0;
  for (const auto& entry : joint.entries()) {
    if (Evaluate(entry.mask)) probability += entry.prob;
  }
  return probability;
}

common::Result<double> FactQuery::Confidence(
    const JointDistribution& joint) const {
  CF_ASSIGN_OR_RETURN(const double p, Probability(joint));
  return 1.0 - common::BinaryEntropy(p);
}

std::string FactQuery::ToStringOf(const Node& node) {
  switch (node.kind) {
    case Kind::kAtom:
      return common::StrFormat("f%d", node.fact_id);
    case Kind::kNot:
      return "!" + ToStringOf(*node.left);
    case Kind::kAnd:
      return "(" + ToStringOf(*node.left) + " & " + ToStringOf(*node.right) +
             ")";
    case Kind::kOr:
      return "(" + ToStringOf(*node.left) + " | " + ToStringOf(*node.right) +
             ")";
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
  }
  return "?";
}

std::string FactQuery::ToString() const { return ToStringOf(*root_); }

}  // namespace crowdfusion::core
