#ifndef CROWDFUSION_CORE_FACT_QUERY_H_
#define CROWDFUSION_CORE_FACT_QUERY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Boolean queries over facts, evaluated against the output joint
/// distribution. This operationalizes the paper's justification for the
/// PWS-quality utility: "By improving the utility of outputs, the
/// confidence of any query answers would be improved as well"
/// (Section II-A) — a query's answer probability is a marginal of the
/// joint, so refining the joint sharpens every query.
///
/// Queries are immutable expression trees built by the combinators:
///
///   auto q = FactQuery::And(FactQuery::Atom(0),
///                           FactQuery::Not(FactQuery::Atom(3)));
///   double p = q.Probability(joint).value();   // P(f0 ∧ ¬f3)
///
/// Copying a query is cheap (shared immutable nodes).
class FactQuery {
 public:
  /// The truth of a single fact.
  static FactQuery Atom(int fact_id);
  static FactQuery Not(FactQuery operand);
  static FactQuery And(FactQuery left, FactQuery right);
  static FactQuery Or(FactQuery left, FactQuery right);
  /// Constants, useful as fold identities.
  static FactQuery True();
  static FactQuery False();

  /// Evaluates the query on one concrete output.
  bool Evaluate(uint64_t output_mask) const;

  /// P(query is true) under the joint. Fails if the query references a
  /// fact id outside the joint.
  common::Result<double> Probability(const JointDistribution& joint) const;

  /// Confidence of the query's answer: 1 - h(P(query)), in [0, 1]; 1 means
  /// the joint answers the query with certainty, 0 means a coin flip.
  /// Monotone under utility improvement in expectation.
  common::Result<double> Confidence(const JointDistribution& joint) const;

  /// Largest fact id referenced (-1 for constants).
  int MaxFactId() const;

  /// Parenthesized display form, e.g. "(f0 & !f3)".
  std::string ToString() const;

 private:
  enum class Kind { kAtom, kNot, kAnd, kOr, kTrue, kFalse };

  struct Node {
    Kind kind;
    int fact_id = -1;
    std::shared_ptr<const Node> left;
    std::shared_ptr<const Node> right;
  };

  explicit FactQuery(std::shared_ptr<const Node> root)
      : root_(std::move(root)) {}

  static bool EvaluateNode(const Node& node, uint64_t mask);
  static int MaxFactIdOf(const Node& node);
  static std::string ToStringOf(const Node& node);

  std::shared_ptr<const Node> root_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_FACT_QUERY_H_
