#include "core/greedy_selector.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/answer_model.h"
#include "core/sparse_refiner.h"

namespace crowdfusion::core {

namespace {

/// Offset added to a candidate's entropy in the Theorem 3 prune test; see
/// the PruningBound comments in the header. `remaining_slots` counts the
/// selections still to be made after the current iteration's commit.
double PruneOffsetBits(GreedySelector::PruningBound bound,
                       int remaining_slots) {
  switch (bound) {
    case GreedySelector::PruningBound::kPaperLog2:
      return remaining_slots >= 1
                 ? std::log2(static_cast<double>(remaining_slots))
                 : 0.0;
    case GreedySelector::PruningBound::kSoundAdditive:
      return static_cast<double>(remaining_slots);
    case GreedySelector::PruningBound::kAggressiveZero:
      return 0.0;
  }
  return 0.0;
}

/// Shared greedy loop. `evaluate_all(active)` returns H(T ∪ {fact}) for
/// every active candidate under the current committed set T (batched so a
/// refinement engine can shard the scan across threads); `commit(fact)`
/// extends T.
void RunGreedyLoop(
    const GreedySelector::Options& options, std::vector<int> active, int k,
    const std::function<std::vector<double>(const std::vector<int>&)>&
        evaluate_all,
    const std::function<void(int)>& commit, Selection& selection) {
  double current_entropy = 0.0;  // H(∅) = 0.
  for (int iteration = 0; iteration < k; ++iteration) {
    int best_fact = -1;
    double best_entropy = -1.0;
    const std::vector<double> entropies = evaluate_all(active);
    selection.stats.evaluations += static_cast<int64_t>(active.size());
    for (size_t c = 0; c < active.size(); ++c) {
      const double h = entropies[c];
      if (h > best_entropy) {
        best_entropy = h;
        best_fact = active[c];
      }
    }
    if (best_fact < 0) break;  // No candidates remain.
    const double gain = best_entropy - current_entropy;
    if (gain <= options.min_gain_bits) break;  // K* < k (Algorithm 1, line 6).

    commit(best_fact);
    selection.tasks.push_back(best_fact);
    selection.entropy_bits = best_entropy;
    current_entropy = best_entropy;

    // Rebuild the active list: drop the committed fact and, if pruning is
    // on, every fact whose achievable total entropy can no longer reach
    // this iteration's maximum (Theorem 3). Regardless of the bound, at
    // least `remaining_slots` candidates are kept so the greedy can always
    // fill k tasks — Theorem 2 guarantees K* = k whenever uncertainty
    // remains, so pruning must never empty the pool (the paper leaves
    // this guard implicit).
    const int remaining_slots = k - iteration - 1;
    const double prune_offset =
        PruneOffsetBits(options.pruning_bound, remaining_slots);
    std::vector<size_t> survivors;
    std::vector<size_t> prunable;
    for (size_t c = 0; c < active.size(); ++c) {
      if (active[c] == best_fact) continue;
      if (options.use_pruning &&
          entropies[c] + prune_offset < best_entropy - 1e-12) {
        prunable.push_back(c);
      } else {
        survivors.push_back(c);
      }
    }
    if (static_cast<int>(survivors.size()) < remaining_slots &&
        !prunable.empty()) {
      // Refill from the best prunable candidates.
      std::sort(prunable.begin(), prunable.end(), [&](size_t a, size_t b) {
        return entropies[a] > entropies[b];
      });
      while (static_cast<int>(survivors.size()) < remaining_slots &&
             !prunable.empty()) {
        survivors.push_back(prunable.front());
        prunable.erase(prunable.begin());
      }
      std::sort(survivors.begin(), survivors.end());
    }
    selection.stats.pruned += static_cast<int64_t>(prunable.size());
    std::vector<int> next_active;
    next_active.reserve(survivors.size());
    for (size_t c : survivors) next_active.push_back(active[c]);
    active = std::move(next_active);
  }
}

}  // namespace

common::Result<bool> GreedySelector::ResolvePreprocessingEngine(
    const JointDistribution& joint, int k) const {
  const int n = joint.num_facts();
  const bool can_dense = n <= JointDistribution::kMaxDenseFacts;
  const bool can_sparse = k <= SparsePartitionRefiner::kMaxCommittedTasks;
  switch (options_.preprocessing_mode) {
    case PreprocessingMode::kDense:
      if (!can_dense) {
        return common::Status::InvalidArgument(common::StrFormat(
            "dense preprocessing requires n <= %d, got %d",
            JointDistribution::kMaxDenseFacts, n));
      }
      return false;
    case PreprocessingMode::kSparse:
      if (!can_sparse) {
        return common::Status::InvalidArgument(common::StrFormat(
            "sparse preprocessing caps k at %d, got %d",
            SparsePartitionRefiner::kMaxCommittedTasks, k));
      }
      return true;
    case PreprocessingMode::kAuto:
      break;
  }
  // Auto: dense only when it is possible, the support already fills most
  // of the 2^n table (so a sparse scan would touch nearly as many cells),
  // and k fits no matter what.
  const bool support_mostly_dense =
      can_dense && (1ULL << n) <= 8ULL * static_cast<uint64_t>(
                                            joint.support_size());
  if (support_mostly_dense || !can_sparse) {
    if (!can_dense) {
      return common::Status::InvalidArgument(common::StrFormat(
          "instance needs sparse preprocessing (n = %d > %d) but k = %d "
          "exceeds its cap of %d tasks",
          n, JointDistribution::kMaxDenseFacts, k,
          SparsePartitionRefiner::kMaxCommittedTasks));
    }
    return false;
  }
  return true;
}

common::Result<Selection> GreedySelector::Select(
    const SelectionRequest& request) {
  CF_ASSIGN_OR_RETURN(std::vector<int> candidates,
                      ResolveCandidates(request));
  const int k = std::min(request.k, static_cast<int>(candidates.size()));
  const common::Stopwatch timer;
  Selection selection;

  if (options_.use_preprocessing) {
    CF_ASSIGN_OR_RETURN(const bool use_sparse,
                        ResolvePreprocessingEngine(*request.joint, k));
    const common::Stopwatch preprocessing_timer;
    if (use_sparse) {
      SparsePartitionRefiner::Options refiner_options;
      refiner_options.num_threads = options_.preprocessing_threads;
      refiner_options.simd = options_.simd;
      SparsePartitionRefiner refiner(*request.joint, *request.crowd,
                                     refiner_options);
      selection.stats.preprocessing_seconds =
          preprocessing_timer.ElapsedSeconds();
      selection.stats.sparse_preprocessing = true;
      RunGreedyLoop(
          options_, std::move(candidates), k,
          [&refiner](const std::vector<int>& active) {
            return refiner.EntropiesWithCandidates(active);
          },
          [&refiner](int fact) { refiner.Commit(fact); }, selection);
    } else {
      CF_ASSIGN_OR_RETURN(
          AnswerJointTable table,
          AnswerJointTable::Build(*request.joint, *request.crowd));
      selection.stats.preprocessing_seconds =
          preprocessing_timer.ElapsedSeconds();
      PartitionRefiner refiner(&table);
      RunGreedyLoop(
          options_, std::move(candidates), k,
          [&refiner](const std::vector<int>& active) {
            std::vector<double> entropies(active.size());
            for (size_t c = 0; c < active.size(); ++c) {
              entropies[c] = refiner.EntropyWithCandidate(active[c]);
            }
            return entropies;
          },
          [&refiner](int fact) { refiner.Commit(fact); }, selection);
    }
  } else {
    std::vector<int> selected;
    RunGreedyLoop(
        options_, std::move(candidates), k,
        [&](const std::vector<int>& active) {
          std::vector<double> entropies(active.size());
          for (size_t c = 0; c < active.size(); ++c) {
            std::vector<int> extended = selected;
            extended.push_back(active[c]);
            entropies[c] = AnswerEntropyBitsBruteForce(*request.joint,
                                                       extended,
                                                       *request.crowd);
          }
          return entropies;
        },
        [&selected](int fact) { selected.push_back(fact); }, selection);
  }

  selection.stats.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

std::string GreedySelector::name() const {
  std::string n = "Approx.";
  if (options_.use_pruning) n += "&Prune";
  if (options_.use_preprocessing) n += "&Pre.";
  return n;
}

}  // namespace crowdfusion::core
