#ifndef CROWDFUSION_CORE_GREEDY_SELECTOR_H_
#define CROWDFUSION_CORE_GREEDY_SELECTOR_H_

#include "common/simd.h"
#include "core/task_selector.h"

namespace crowdfusion::core {

/// Algorithm 1: the (1 - 1/e)-approximate greedy task selector. Iteratively
/// adds the fact with the largest marginal gain ρ_t(T) = H(T ∪ {t}) - H(T);
/// stops early (K* < k) when no candidate has positive gain.
///
/// Two independent accelerations from the paper:
///  * Pruning (Section III-E, Theorem 3): after each iteration, any fact
///    whose achievable total entropy upper bound falls below the iteration
///    maximum is removed from all future iterations.
///  * Preprocessing (Section III-F, Algorithm 2): materialize the answer
///    joint once per round, then obtain every candidate marginal by
///    partition refinement in one O(|O|) scan, keeping the refined
///    partition between iterations. Without it, every candidate is
///    evaluated by the literal Equation 2 scan, the paper's brute-force
///    cost model. Two interchangeable refinement engines exist: the dense
///    2^n answer table (n <= 30 only) and the sparse-support refiner
///    (any n <= 64, scans the |O| outputs directly, optionally sharding
///    candidate batches across threads); kAuto picks per instance.
///
/// On the pruning bound: the paper prunes f_j when
///   H(T ∪ {f_j}) + log2(k - |T| - 1) < max_t H(T ∪ {f_t}).
/// Since a further task set S can contribute up to |S| bits of entropy
/// (2^|S| answer patterns), the *sound* bound is the additive
/// H(T ∪ {f_j}) + (k - |T| - 1); but because two candidates' entropies can
/// differ by at most 1 bit, the sound bound provably never fires before the
/// final iteration — it is a no-op. The paper's log2 form is therefore a
/// heuristic (it prunes aggressively and is what produces Table V's flat
/// "&Prune" column); the paper itself calls the result a "heuristic
/// solution ... without losing much effectiveness". Both bounds are
/// provided, plus an even more aggressive zero-offset variant for
/// ablations; the default is the paper's.
class GreedySelector : public TaskSelector {
 public:
  /// The offset added to a candidate's entropy when testing the Theorem 3
  /// prune condition. Smaller offset = more aggressive pruning.
  enum class PruningBound {
    /// log2(remaining slots); the paper's printed bound (heuristic).
    kPaperLog2,
    /// remaining slots, in bits; sound but fires only in the last
    /// iteration (provably never changes the selection).
    kSoundAdditive,
    /// 0; prune everything strictly below the iteration maximum
    /// (the strongest heuristic, for the ablation bench).
    kAggressiveZero,
  };

  /// Which partition-refinement engine backs use_preprocessing.
  enum class PreprocessingMode {
    /// Dense 2^n table when the support mostly fills it, sparse otherwise.
    kAuto,
    /// Always the dense answer table; fails for n > 30.
    kDense,
    /// Always the sparse-support refiner.
    kSparse,
  };

  struct Options {
    bool use_pruning = false;
    PruningBound pruning_bound = PruningBound::kPaperLog2;
    bool use_preprocessing = false;
    PreprocessingMode preprocessing_mode = PreprocessingMode::kAuto;
    /// Threads for sparse candidate batches: 0 = auto, 1 = serial.
    int preprocessing_threads = 0;
    /// Kernel dispatch for the sparse refiner's batched scan. kAuto
    /// follows the host; dispatch never changes results (the kernels are
    /// bit-identical), only speed.
    common::SimdPolicy simd = common::SimdPolicy::kAuto;
    /// Gains at or below this threshold count as "no benefit" and stop the
    /// selection early.
    double min_gain_bits = 1e-12;
  };

  GreedySelector() = default;
  explicit GreedySelector(Options options) : options_(options) {}

  common::Result<Selection> Select(const SelectionRequest& request) override;

  std::string name() const override;

  /// Pure function of the request: no per-instance mutable state, so the
  /// scheduler may overlap Select() calls across books.
  bool ConcurrentSelectSafe() const override { return true; }

  const Options& options() const { return options_; }

 private:
  /// Picks the refinement engine for one preprocessed round: true = sparse.
  /// Fails when the requested mode cannot run the instance (dense with
  /// n > 30, or a committed set beyond the sparse refiner's cell cap with
  /// no dense fallback).
  common::Result<bool> ResolvePreprocessingEngine(
      const JointDistribution& joint, int k) const;

  Options options_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_GREEDY_SELECTOR_H_
