#include "core/information.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/string_util.h"
#include "core/answer_model.h"

namespace crowdfusion::core {

using common::Status;

double AnswersMutualInformationBits(const JointDistribution& joint,
                                    std::span<const int> tasks,
                                    const CrowdModel& crowd) {
  if (tasks.empty()) return 0.0;
  const double h_answers = AnswerEntropyBits(joint, tasks, crowd);
  // Answers are conditionally independent given the facts, each with the
  // crowd's own noise entropy: H(Ans | F) = |T| * H(Crowd).
  const double h_noise =
      static_cast<double>(tasks.size()) * crowd.EntropyBits();
  return std::max(0.0, h_answers - h_noise);
}

double ExpectedPosteriorEntropyBits(const JointDistribution& joint,
                                    std::span<const int> tasks,
                                    const CrowdModel& crowd) {
  return joint.EntropyBits() -
         AnswersMutualInformationBits(joint, tasks, crowd);
}

double ValueOfInformationBits(const JointDistribution& joint,
                              std::span<const int> selected, int fact,
                              const CrowdModel& crowd) {
  std::vector<int> extended(selected.begin(), selected.end());
  extended.push_back(fact);
  return AnswersMutualInformationBits(joint, extended, crowd) -
         AnswersMutualInformationBits(joint, selected, crowd);
}

std::vector<double> SingleTaskInformationProfile(
    const JointDistribution& joint, const CrowdModel& crowd) {
  // A single task's answer distribution is the fact's marginal pushed
  // through one binary symmetric channel, so the whole profile needs one
  // scan of the support (Marginals) instead of n separate Equation 2
  // evaluations: I(F; Ans^{f}) = h(Pc p + (1-Pc)(1-p)) - h(Pc).
  const std::vector<double> marginals = joint.Marginals();
  const double h_noise = crowd.EntropyBits();
  const double keep = crowd.pc();
  const double flip = 1.0 - crowd.pc();
  std::vector<double> profile(marginals.size(), 0.0);
  for (size_t f = 0; f < marginals.size(); ++f) {
    const double noisy = keep * marginals[f] + flip * (1.0 - marginals[f]);
    profile[f] = std::max(0.0, common::BinaryEntropy(noisy) - h_noise);
  }
  return profile;
}

common::Result<double> FactMutualInformationBits(
    const JointDistribution& joint, int fact_a, int fact_b) {
  if (fact_a < 0 || fact_a >= joint.num_facts() || fact_b < 0 ||
      fact_b >= joint.num_facts()) {
    return Status::OutOfRange(common::StrFormat(
        "fact ids (%d, %d) out of range [0, %d)", fact_a, fact_b,
        joint.num_facts()));
  }
  if (fact_a == fact_b) {
    // I(X; X) = H(X).
    return common::BinaryEntropy(joint.Marginal(fact_a));
  }
  const std::vector<int> pair = {fact_a, fact_b};
  const std::vector<double> joint_table = joint.MarginalizeOnto(pair);
  const double pa = joint.Marginal(fact_a);
  const double pb = joint.Marginal(fact_b);
  // I = H(a) + H(b) - H(a, b).
  const double mi = common::BinaryEntropy(pa) + common::BinaryEntropy(pb) -
                    common::Entropy(joint_table);
  return std::max(0.0, mi);
}

common::Result<std::vector<std::vector<double>>> FactCorrelationMatrix(
    const JointDistribution& joint) {
  const int n = joint.num_facts();
  std::vector<std::vector<double>> matrix(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n)));
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      CF_ASSIGN_OR_RETURN(const double mi,
                          FactMutualInformationBits(joint, a, b));
      matrix[static_cast<size_t>(a)][static_cast<size_t>(b)] = mi;
      matrix[static_cast<size_t>(b)][static_cast<size_t>(a)] = mi;
    }
  }
  return matrix;
}

}  // namespace crowdfusion::core
