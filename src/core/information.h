#ifndef CROWDFUSION_CORE_INFORMATION_H_
#define CROWDFUSION_CORE_INFORMATION_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/crowd_model.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Information-theoretic toolbox over the CrowdFusion model. Everything is
/// in bits. These are the quantities behind the paper's identities in
/// Section III-B (ΔQ = H(F) − H(F|T) = H(T) − H(T|F)) exposed as a public
/// API, so downstream schedulers and diagnostics can reason about the
/// value of asking before spending budget.

/// I(F; Ans^T): mutual information between the latent fact assignment and
/// the crowd's answers to task set T. Equals H(T) − |T|·H(Crowd), the
/// paper's ΔQ. Non-negative; zero iff the answers are useless.
double AnswersMutualInformationBits(const JointDistribution& joint,
                                    std::span<const int> tasks,
                                    const CrowdModel& crowd);

/// H(F | Ans^T): expected posterior entropy after asking T, i.e.
/// H(F) − I(F; Ans^T). This is what the Bayesian merge achieves in
/// expectation over answer outcomes.
double ExpectedPosteriorEntropyBits(const JointDistribution& joint,
                                    std::span<const int> tasks,
                                    const CrowdModel& crowd);

/// Value of information of asking a single fact on top of an already
/// selected set: I(F; Ans^{T∪{fact}}) − I(F; Ans^T).
double ValueOfInformationBits(const JointDistribution& joint,
                              std::span<const int> selected, int fact,
                              const CrowdModel& crowd);

/// Per-fact single-task VOI profile: entry i is the value of asking fact i
/// alone. The greedy's first pick is always the argmax of this profile.
std::vector<double> SingleTaskInformationProfile(
    const JointDistribution& joint, const CrowdModel& crowd);

/// I(f_a; f_b): mutual information between two facts under the joint —
/// the quantitative form of the paper's "facts are correlated" premise
/// (Barack Obama example). Zero iff independent.
common::Result<double> FactMutualInformationBits(
    const JointDistribution& joint, int fact_a, int fact_b);

/// The full pairwise fact-MI matrix (symmetric, zero diagonal).
common::Result<std::vector<std::vector<double>>> FactCorrelationMatrix(
    const JointDistribution& joint);

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_INFORMATION_H_
