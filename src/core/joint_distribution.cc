#include "core/joint_distribution.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"

namespace crowdfusion::core {

using common::Result;
using common::Status;

common::Result<JointDistribution> JointDistribution::FromEntries(
    int num_facts, std::vector<Entry> entries, bool normalize,
    double tolerance) {
  if (num_facts < 0 || num_facts > kMaxFacts) {
    return Status::InvalidArgument(common::StrFormat(
        "num_facts must be in [0, %d], got %d", kMaxFacts, num_facts));
  }
  const uint64_t valid_bits =
      num_facts >= 64 ? ~0ULL : ((1ULL << num_facts) - 1);
  double total = 0.0;
  for (const Entry& e : entries) {
    if (e.prob < 0.0 || !std::isfinite(e.prob)) {
      return Status::InvalidArgument(
          common::StrFormat("invalid probability %g", e.prob));
    }
    if ((e.mask & ~valid_bits) != 0) {
      return Status::InvalidArgument(common::StrFormat(
          "output mask %llu uses bits beyond fact %d",
          static_cast<unsigned long long>(e.mask), num_facts - 1));
    }
    total += e.prob;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("distribution has zero total mass");
  }
  if (!normalize && std::fabs(total - 1.0) > tolerance) {
    return Status::InvalidArgument(common::StrFormat(
        "probabilities sum to %.9f, not 1 (pass normalize=true to rescale)",
        total));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mask < b.mask; });
  // Merge duplicates and drop zeros, rescaling only when asked: without
  // normalize the caller's probabilities are preserved bit-exactly (they
  // already sum to 1 within tolerance), which keeps save/load round-trips
  // exact.
  std::vector<Entry> merged;
  merged.reserve(entries.size());
  const double inv = normalize ? 1.0 / total : 1.0;
  for (const Entry& e : entries) {
    if (e.prob <= 0.0) continue;
    if (!merged.empty() && merged.back().mask == e.mask) {
      merged.back().prob += e.prob * inv;
    } else {
      merged.push_back({e.mask, e.prob * inv});
    }
  }
  return JointDistribution(num_facts, std::move(merged));
}

common::Result<JointDistribution> JointDistribution::FromDense(
    int num_facts, std::vector<double> probs, bool normalize) {
  if (num_facts < 0 || num_facts > kMaxDenseFacts) {
    return Status::InvalidArgument(common::StrFormat(
        "dense construction requires num_facts in [0, %d], got %d",
        kMaxDenseFacts, num_facts));
  }
  const size_t expected = 1ULL << num_facts;
  if (probs.size() != expected) {
    return Status::InvalidArgument(common::StrFormat(
        "dense vector has %zu entries, expected %zu", probs.size(), expected));
  }
  std::vector<Entry> entries;
  entries.reserve(probs.size());
  for (size_t mask = 0; mask < probs.size(); ++mask) {
    if (probs[mask] != 0.0) {
      entries.push_back({static_cast<uint64_t>(mask), probs[mask]});
    }
  }
  return FromEntries(num_facts, std::move(entries), normalize);
}

common::Result<JointDistribution> JointDistribution::Uniform(int num_facts) {
  if (num_facts < 0 || num_facts > kMaxDenseFacts) {
    return Status::InvalidArgument(
        "uniform distribution requires 0 <= num_facts <= 30");
  }
  const size_t count = 1ULL << num_facts;
  std::vector<Entry> entries(count);
  const double p = 1.0 / static_cast<double>(count);
  for (size_t mask = 0; mask < count; ++mask) {
    entries[mask] = {static_cast<uint64_t>(mask), p};
  }
  return JointDistribution(num_facts, std::move(entries));
}

common::Result<JointDistribution> JointDistribution::FromIndependentMarginals(
    std::span<const double> marginals) {
  const int n = static_cast<int>(marginals.size());
  if (n > kMaxDenseFacts) {
    return Status::InvalidArgument(
        "independent product limited to 30 facts (dense)");
  }
  for (double p : marginals) {
    if (p < 0.0 || p > 1.0 || !std::isfinite(p)) {
      return Status::InvalidArgument(
          common::StrFormat("marginal %g outside [0, 1]", p));
    }
  }
  const size_t count = 1ULL << n;
  std::vector<Entry> entries;
  entries.reserve(count);
  for (size_t mask = 0; mask < count; ++mask) {
    double p = 1.0;
    for (int i = 0; i < n; ++i) {
      p *= common::GetBit(mask, i) ? marginals[static_cast<size_t>(i)]
                                   : 1.0 - marginals[static_cast<size_t>(i)];
    }
    if (p > 0.0) entries.push_back({static_cast<uint64_t>(mask), p});
  }
  return FromEntries(n, std::move(entries), /*normalize=*/true);
}

common::Result<JointDistribution> JointDistribution::PointMass(int num_facts,
                                                               uint64_t mask) {
  return FromEntries(num_facts, {{mask, 1.0}});
}

double JointDistribution::Probability(uint64_t mask) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), mask,
      [](const Entry& e, uint64_t m) { return e.mask < m; });
  if (it != entries_.end() && it->mask == mask) return it->prob;
  return 0.0;
}

double JointDistribution::Marginal(int fact_id) const {
  CF_CHECK(fact_id >= 0 && fact_id < num_facts_);
  double p = 0.0;
  for (const Entry& e : entries_) {
    if (common::GetBit(e.mask, fact_id)) p += e.prob;
  }
  return p;
}

std::vector<double> JointDistribution::Marginals() const {
  std::vector<double> out(static_cast<size_t>(num_facts_), 0.0);
  // Iterate only the set bits of each mask (sparse supports typically have
  // popcount << n), accumulating in the same ascending-bit order as the
  // naive loop so results stay bit-identical.
  for (const Entry& e : entries_) {
    for (uint64_t m = e.mask; m != 0; m &= m - 1) {
      out[static_cast<size_t>(std::countr_zero(m))] += e.prob;
    }
  }
  return out;
}

double JointDistribution::EntropyBits() const {
  double h = 0.0;
  for (const Entry& e : entries_) h -= common::XLog2X(e.prob);
  return h;
}

std::vector<double> JointDistribution::MarginalizeOnto(
    std::span<const int> fact_ids) const {
  const int k = static_cast<int>(fact_ids.size());
  CF_CHECK(k <= kMaxDenseFacts) << "marginalization target too large";
  for (int id : fact_ids) {
    CF_CHECK(id >= 0 && id < num_facts_) << "fact id out of range: " << id;
  }
  std::vector<int> positions(fact_ids.begin(), fact_ids.end());
  std::vector<double> out(1ULL << k, 0.0);
  for (const Entry& e : entries_) {
    out[common::ExtractBits(e.mask, positions)] += e.prob;
  }
  return out;
}

std::vector<double> JointDistribution::ToDense() const {
  CF_CHECK(num_facts_ <= kMaxDenseFacts)
      << "cannot densify " << num_facts_ << " facts";
  std::vector<double> out(1ULL << num_facts_, 0.0);
  for (const Entry& e : entries_) out[e.mask] = e.prob;
  return out;
}

double JointDistribution::TotalMass() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.prob;
  return total;
}

bool JointDistribution::IsNormalized(double tolerance) const {
  return std::fabs(TotalMass() - 1.0) <= tolerance;
}

uint64_t JointDistribution::Mode() const {
  uint64_t best_mask = 0;
  double best_prob = -1.0;
  for (const Entry& e : entries_) {
    if (e.prob > best_prob) {
      best_prob = e.prob;
      best_mask = e.mask;
    }
  }
  return best_mask;
}

std::string JointDistribution::ToString(int max_entries) const {
  std::ostringstream os;
  os << "JointDistribution(n=" << num_facts_ << ", |O|=" << support_size()
     << ") {";
  int shown = 0;
  for (const Entry& e : entries_) {
    if (shown++ >= max_entries) {
      os << " ...";
      break;
    }
    os << " ";
    for (int i = num_facts_ - 1; i >= 0; --i) {
      os << (common::GetBit(e.mask, i) ? 'T' : 'F');
    }
    os << ":" << common::StrFormat("%.4f", e.prob);
  }
  os << " }";
  return os.str();
}

}  // namespace crowdfusion::core
