#ifndef CROWDFUSION_CORE_JOINT_DISTRIBUTION_H_
#define CROWDFUSION_CORE_JOINT_DISTRIBUTION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace crowdfusion::core {

/// Joint probability distribution over the 2^n true/false assignments
/// ("outputs", Section II-A) of n facts.
///
/// An output is a bitmask: bit i set means fact i is judged true. The
/// distribution is stored as a sparse, mask-sorted support list so that
/// strongly correlated inputs (few possible worlds) stay compact, while
/// dense inputs (the paper's running example, independent products) simply
/// enumerate all 2^n masks.
///
/// Supports n up to kMaxDenseFacts = 30 when densified; sparse
/// distributions can use the full 64 mask bits (kMaxFacts = 64).
class JointDistribution {
 public:
  struct Entry {
    uint64_t mask = 0;
    double prob = 0.0;

    friend bool operator==(const Entry& a, const Entry& b) = default;
  };

  /// Largest fact count for which dense 2^n materialization is permitted.
  static constexpr int kMaxDenseFacts = 30;
  /// Largest fact count representable at all (mask bits).
  static constexpr int kMaxFacts = 64;

  JointDistribution() = default;

  /// Builds from explicit (mask, probability) entries. Entries with
  /// duplicate masks are merged; zero-probability entries are dropped.
  /// Fails if any probability is negative, any mask uses bits >= num_facts,
  /// or the probabilities do not sum to 1 within `tolerance` (pass
  /// normalize=true to rescale instead).
  static common::Result<JointDistribution> FromEntries(
      int num_facts, std::vector<Entry> entries, bool normalize = false,
      double tolerance = 1e-6);

  /// Dense distribution from a full vector of 2^num_facts probabilities
  /// (index == mask).
  static common::Result<JointDistribution> FromDense(
      int num_facts, std::vector<double> probs, bool normalize = false);

  /// Uniform distribution over all 2^num_facts outputs.
  static common::Result<JointDistribution> Uniform(int num_facts);

  /// Product distribution of independent facts with the given marginal
  /// probabilities of being true (dense; requires size <= kMaxDenseFacts).
  static common::Result<JointDistribution> FromIndependentMarginals(
      std::span<const double> marginals);

  /// Deterministic distribution: all mass on one output.
  static common::Result<JointDistribution> PointMass(int num_facts,
                                                     uint64_t mask);

  int num_facts() const { return num_facts_; }
  /// Number of support entries |O|.
  int support_size() const { return static_cast<int>(entries_.size()); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Probability of one output mask (0 if outside the support).
  double Probability(uint64_t mask) const;

  /// Marginal probability P(f_id = true).
  double Marginal(int fact_id) const;

  /// All marginals.
  std::vector<double> Marginals() const;

  /// Shannon entropy H(F) of the joint, in bits.
  double EntropyBits() const;

  /// PWS-quality Q(F) = -H(F) (Definition 1).
  double Quality() const { return -EntropyBits(); }

  /// Marginalizes onto the facts listed in `fact_ids` (ascending ids not
  /// required; result coordinate i corresponds to fact_ids[i]). Returns a
  /// dense vector of 2^k probabilities. Requires k <= kMaxDenseFacts.
  std::vector<double> MarginalizeOnto(std::span<const int> fact_ids) const;

  /// Densifies to a full 2^n vector (index == mask). Requires
  /// num_facts <= kMaxDenseFacts.
  std::vector<double> ToDense() const;

  /// Sum of all probabilities (should be 1 for a normalized distribution).
  double TotalMass() const;

  /// True if TotalMass() is within `tolerance` of 1.
  bool IsNormalized(double tolerance = 1e-6) const;

  /// Most probable output mask (ties broken towards the smaller mask).
  uint64_t Mode() const;

  std::string ToString(int max_entries = 32) const;

  friend bool operator==(const JointDistribution& a,
                         const JointDistribution& b) = default;

 private:
  JointDistribution(int num_facts, std::vector<Entry> entries)
      : num_facts_(num_facts), entries_(std::move(entries)) {}

  int num_facts_ = 0;
  std::vector<Entry> entries_;  // sorted by mask, unique, prob > 0
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_JOINT_DISTRIBUTION_H_
