#include "core/opt_selector.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/answer_model.h"

namespace crowdfusion::core {

using common::Status;

common::Result<Selection> OptSelector::Select(const SelectionRequest& request) {
  CF_ASSIGN_OR_RETURN(std::vector<int> candidates,
                      ResolveCandidates(request));
  const common::Stopwatch timer;
  const int n = static_cast<int>(candidates.size());
  const int k = std::min(request.k, n);
  if (options_.max_subsets > 0) {
    const uint64_t subsets = common::BinomialCoefficient(n, k);
    if (subsets > options_.max_subsets) {
      return Status::ResourceExhausted(common::StrFormat(
          "OPT would enumerate %llu subsets (cap %llu)",
          static_cast<unsigned long long>(subsets),
          static_cast<unsigned long long>(options_.max_subsets)));
    }
  }

  Selection best;
  best.entropy_bits = -1.0;
  std::vector<int> task_buffer(static_cast<size_t>(k));
  common::ForEachSubset(n, k, [&](const std::vector<int>& subset_idx) {
    for (int i = 0; i < k; ++i) {
      task_buffer[static_cast<size_t>(i)] =
          candidates[static_cast<size_t>(subset_idx[static_cast<size_t>(i)])];
    }
    const double h =
        options_.use_brute_force_entropy
            ? AnswerEntropyBitsBruteForce(*request.joint, task_buffer,
                                          *request.crowd)
            : AnswerEntropyBits(*request.joint, task_buffer, *request.crowd);
    ++best.stats.evaluations;
    if (h > best.entropy_bits) {
      best.entropy_bits = h;
      best.tasks = task_buffer;
    }
  });
  best.stats.elapsed_seconds = timer.ElapsedSeconds();
  return best;
}

}  // namespace crowdfusion::core
