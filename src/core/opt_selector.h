#ifndef CROWDFUSION_CORE_OPT_SELECTOR_H_
#define CROWDFUSION_CORE_OPT_SELECTOR_H_

#include "core/task_selector.h"

namespace crowdfusion::core {

/// Exact optimal task selection by brute force: enumerate every size-k
/// subset of the candidates and keep the one maximizing H(T). The problem
/// is NP-hard (Theorem 1), so this is exponential in k — usable only for
/// small instances; it anchors the Figure 2 comparison and the Table V
/// runtime rows.
class OptSelector : public TaskSelector {
 public:
  struct Options {
    /// Evaluate H(T) with the literal Equation 2 scan (the paper's cost
    /// model for the un-preprocessed brute force) instead of the fast
    /// marginalize-and-push path.
    bool use_brute_force_entropy = false;
    /// Refuse requests whose subset count exceeds this, to avoid runaway
    /// benchmarks. 0 disables the cap.
    uint64_t max_subsets = 0;
  };

  OptSelector() = default;
  explicit OptSelector(Options options) : options_(options) {}

  common::Result<Selection> Select(const SelectionRequest& request) override;

  std::string name() const override { return "OPT"; }

  /// Pure function of the request: no per-instance mutable state.
  bool ConcurrentSelectSafe() const override { return true; }

 private:
  Options options_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_OPT_SELECTOR_H_
