#include "core/partition_reduction.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace crowdfusion::core {

using common::Status;

namespace {

Status Validate(const PartitionInstance& instance) {
  if (instance.numbers.empty()) {
    return Status::InvalidArgument("PARTITION instance is empty");
  }
  if (instance.numbers.size() > 63) {
    return Status::InvalidArgument("at most 63 numbers supported");
  }
  for (uint64_t c : instance.numbers) {
    if (c == 0) {
      return Status::InvalidArgument(
          "PARTITION numbers must be positive (zeros are trivially "
          "placeable and break the probability encoding)");
    }
  }
  return Status::Ok();
}

}  // namespace

common::Result<PartitionReduction> ReducePartitionToTaskSelection(
    const PartitionInstance& instance) {
  CF_RETURN_IF_ERROR(Validate(instance));
  const int s = static_cast<int>(instance.numbers.size());
  uint64_t sum = 0;
  for (uint64_t c : instance.numbers) sum += c;

  // Output i carries probability c_i / sum. Fact j is judged true in
  // output i iff bit j of i is set: then selecting the fact subset S
  // marginalizes the outputs into groups by their index pattern on S, and
  // a single fact f_j splits them into {i : bit j of i} vs the rest.
  // The paper's 2^s-output construction encodes the same family of binary
  // splits; indexing outputs directly keeps the instance polynomial-sized.
  std::vector<JointDistribution::Entry> entries;
  entries.reserve(static_cast<size_t>(s));
  for (int i = 0; i < s; ++i) {
    entries.push_back(
        {static_cast<uint64_t>(i),
         static_cast<double>(instance.numbers[static_cast<size_t>(i)]) /
             static_cast<double>(sum)});
  }
  CF_ASSIGN_OR_RETURN(JointDistribution joint,
                      JointDistribution::FromEntries(
                          s, std::move(entries), /*normalize=*/true));
  PartitionReduction reduction{std::move(joint), 1.0};
  return reduction;
}

common::Result<bool> DecideViaTaskSelection(const PartitionInstance& instance,
                                            double epsilon) {
  CF_RETURN_IF_ERROR(Validate(instance));
  CF_ASSIGN_OR_RETURN(PartitionReduction reduction,
                      ReducePartitionToTaskSelection(instance));
  const int s = static_cast<int>(instance.numbers.size());
  if (s > 24) {
    return Status::InvalidArgument(
        "exhaustive DTaskSelect check limited to 24 numbers");
  }
  // Every nonempty proper group of numbers corresponds to a binary
  // judgment pattern over the facts; with Pc = 1 the answer entropy of a
  // "virtual fact" that is true exactly on group G is
  // H(P(G)), maximized at 1 bit iff P(G) = 1/2. Enumerate groups.
  for (uint64_t group = 1; group + 1 < (1ULL << s); ++group) {
    double mass = 0.0;
    for (int i = 0; i < s; ++i) {
      if ((group >> i) & 1ULL) {
        mass += reduction.joint.Probability(static_cast<uint64_t>(i));
      }
    }
    if (common::BinaryEntropy(mass) >=
        reduction.target_entropy_bits - epsilon) {
      return true;
    }
  }
  return false;
}

common::Result<bool> DecidePartitionDirectly(
    const PartitionInstance& instance) {
  CF_RETURN_IF_ERROR(Validate(instance));
  uint64_t sum = 0;
  for (uint64_t c : instance.numbers) sum += c;
  if (sum % 2 != 0) return false;
  const uint64_t half = sum / 2;
  if (half > (1ULL << 22)) {
    return Status::InvalidArgument(
        "DP table too large; use numbers summing below 2^23");
  }
  std::vector<bool> reachable(half + 1, false);
  reachable[0] = true;
  for (uint64_t c : instance.numbers) {
    for (uint64_t target = half; target >= c; --target) {
      if (reachable[target - c]) reachable[target] = true;
      if (target == c) break;
    }
  }
  return static_cast<bool>(reachable[half]);
}

}  // namespace crowdfusion::core
