#ifndef CROWDFUSION_CORE_PARTITION_REDUCTION_H_
#define CROWDFUSION_CORE_PARTITION_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Executable form of the paper's NP-hardness proof (Theorem 1): the
/// reduction from PARTITION to the decision version of task selection
/// (DTaskSelect: "is there a k-subset T with H(T) >= Ht?").
///
/// Given numbers (c_1..c_s), the reduction builds a joint distribution
/// over n = 2^s... — following the paper's construction spirit — with one
/// output per number, where output i has probability c_i / Sum and the
/// mask of output i is chosen so that fact j is true in output i iff bit j
/// of i is set. Selecting the single fact f_I (k = 1, Pc = 1) splits the
/// numbers into exactly the two groups indexed by bit pattern I, and
/// H(f_I) = 1 iff both groups sum to Sum/2 — i.e. iff a perfect partition
/// exists.
///
/// Practical limits: s numbers need s facts and s outputs (we index facts
/// directly rather than materializing all 2^s output ids, which is the
/// standard compact encoding of the same instance), so instances up to
/// s = 63 are representable and exhaustive search is feasible for s ~ 20.
struct PartitionInstance {
  std::vector<uint64_t> numbers;
};

struct PartitionReduction {
  /// The constructed joint distribution: s facts, s outputs; output i has
  /// mask = i's characteristic pattern and probability c_i / Sum.
  JointDistribution joint;
  /// The entropy target Ht of DTaskSelect (1 bit).
  double target_entropy_bits = 1.0;
};

/// Builds the DTaskSelect instance for a PARTITION instance. Fails on
/// empty input, zero numbers, or more than 63 numbers.
common::Result<PartitionReduction> ReducePartitionToTaskSelection(
    const PartitionInstance& instance);

/// Decision procedure over the reduction: true iff some subset-selection
/// (equivalently some single selected fact in the compact encoding)
/// reaches H >= 1 - epsilon, which by Theorem 1 holds iff the PARTITION
/// instance has a perfect split. Enumerates the 2^s fact subsets, so only
/// for small s; exists to make the proof checkable, not to be fast.
common::Result<bool> DecideViaTaskSelection(const PartitionInstance& instance,
                                            double epsilon = 1e-9);

/// Reference solver: straightforward subset-sum bitset DP.
common::Result<bool> DecidePartitionDirectly(
    const PartitionInstance& instance);

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_PARTITION_REDUCTION_H_
