#include "core/query_based.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/utility.h"

namespace crowdfusion::core {

using common::Status;

common::Result<Selection> QueryBasedGreedySelector::Select(
    const SelectionRequest& request) {
  CF_ASSIGN_OR_RETURN(std::vector<int> candidates,
                      ResolveCandidates(request));
  if (options_.foi.empty()) {
    return Status::InvalidArgument(
        "query-based selection requires a non-empty FOI set");
  }
  for (int id : options_.foi) {
    if (id < 0 || id >= request.joint->num_facts()) {
      return Status::OutOfRange(
          common::StrFormat("FOI fact id %d out of range", id));
    }
  }
  const int k = std::min(request.k, static_cast<int>(candidates.size()));
  if (static_cast<int>(options_.foi.size()) + k >
      JointDistribution::kMaxDenseFacts) {
    return Status::InvalidArgument(
        "|FOI| + k exceeds the dense joint table limit");
  }

  const common::Stopwatch timer;
  Selection selection;
  std::vector<int> selected;
  CF_ASSIGN_OR_RETURN(
      double current_utility,
      QueryBasedUtility(*request.joint, options_.foi, selected,
                        *request.crowd));
  std::vector<int> active = candidates;

  for (int iteration = 0; iteration < k; ++iteration) {
    int best_fact = -1;
    double best_utility = -1e300;
    for (int fact : active) {
      std::vector<int> extended = selected;
      extended.push_back(fact);
      CF_ASSIGN_OR_RETURN(
          double utility,
          QueryBasedUtility(*request.joint, options_.foi, extended,
                            *request.crowd));
      ++selection.stats.evaluations;
      if (utility > best_utility) {
        best_utility = utility;
        best_fact = fact;
      }
    }
    if (best_fact < 0) break;
    if (best_utility - current_utility <= options_.min_gain_bits) break;
    selected.push_back(best_fact);
    selection.tasks.push_back(best_fact);
    selection.entropy_bits = best_utility;
    current_utility = best_utility;
    active.erase(std::remove(active.begin(), active.end(), best_fact),
                 active.end());
  }

  if (selection.tasks.empty()) selection.entropy_bits = current_utility;
  selection.stats.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

}  // namespace crowdfusion::core
