#ifndef CROWDFUSION_CORE_QUERY_BASED_H_
#define CROWDFUSION_CORE_QUERY_BASED_H_

#include <vector>

#include "core/task_selector.h"

namespace crowdfusion::core {

/// Query-based CrowdFusion (Section IV): the user cares only about a set of
/// facts of interest (FOI) I ⊆ F, and tasks are selected to maximize
///   Q(I|T) = H(T) - H(I, T) = -H(I | Ans^T),
/// i.e. to minimize the posterior uncertainty of the FOI. Facts outside I
/// remain valuable tasks when they are correlated with I (the paper's
/// continent/population example). Setting I = F recovers the general
/// problem up to a constant, so this greedy and GreedySelector choose the
/// same sets in that case.
///
/// The returned Selection's `entropy_bits` holds the achieved Q(I|T)
/// (a non-positive number; larger is better), not H(T).
///
/// Note: the paper's Equation 7 prints the monotonicity direction reversed
/// (Q(I|T) >= Q(I|T') for T ⊆ T'); conditioning on more answers cannot
/// increase H(I | Ans), so Q(I|T) is non-decreasing in T. The greedy here
/// follows the corrected direction.
class QueryBasedGreedySelector : public TaskSelector {
 public:
  struct Options {
    /// Facts of interest. Must be non-empty, ids valid for the joint.
    std::vector<int> foi;
    /// Stop when the best candidate improves Q(I|T) by at most this.
    double min_gain_bits = 1e-12;
  };

  explicit QueryBasedGreedySelector(Options options)
      : options_(std::move(options)) {}

  common::Result<Selection> Select(const SelectionRequest& request) override;

  std::string name() const override { return "QueryBased"; }

 private:
  Options options_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_QUERY_BASED_H_
