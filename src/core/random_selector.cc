#include "core/random_selector.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/answer_model.h"

namespace crowdfusion::core {

common::Result<Selection> RandomSelector::Select(
    const SelectionRequest& request) {
  CF_ASSIGN_OR_RETURN(std::vector<int> candidates,
                      ResolveCandidates(request));
  const common::Stopwatch timer;
  const int n = static_cast<int>(candidates.size());
  const int k = std::min(request.k, n);
  const std::vector<int> picks = rng_.SampleWithoutReplacement(n, k);
  Selection selection;
  selection.tasks.reserve(static_cast<size_t>(k));
  for (int idx : picks) {
    selection.tasks.push_back(candidates[static_cast<size_t>(idx)]);
  }
  selection.entropy_bits =
      AnswerEntropyBits(*request.joint, selection.tasks, *request.crowd);
  selection.stats.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

}  // namespace crowdfusion::core
