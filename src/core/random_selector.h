#ifndef CROWDFUSION_CORE_RANDOM_SELECTOR_H_
#define CROWDFUSION_CORE_RANDOM_SELECTOR_H_

#include "common/random.h"
#include "core/task_selector.h"

namespace crowdfusion::core {

/// Baseline from Section V: selects k distinct candidate facts uniformly at
/// random (each task can be selected once per round).
class RandomSelector : public TaskSelector {
 public:
  explicit RandomSelector(uint64_t seed = 42) : rng_(seed) {}

  common::Result<Selection> Select(const SelectionRequest& request) override;

  std::string name() const override { return "Random"; }

 private:
  common::Rng rng_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_RANDOM_SELECTOR_H_
