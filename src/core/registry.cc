#include "core/registry.h"

#include "common/logging.h"
#include "core/greedy_selector.h"
#include "core/opt_selector.h"
#include "core/query_based.h"
#include "core/random_selector.h"
#include "core/sampled_selector.h"
#include "core/scripted_provider.h"

namespace crowdfusion::core {

using common::Status;

namespace {

common::Result<GreedySelector::PreprocessingMode> ParsePreprocessingMode(
    const std::string& mode) {
  if (mode == "auto") return GreedySelector::PreprocessingMode::kAuto;
  if (mode == "dense") return GreedySelector::PreprocessingMode::kDense;
  if (mode == "sparse") return GreedySelector::PreprocessingMode::kSparse;
  return Status::InvalidArgument(
      "unknown preprocessing_mode \"" + mode +
      "\"; expected \"auto\", \"dense\", or \"sparse\"");
}

common::Result<std::unique_ptr<TaskSelector>> MakeGreedy(
    const SelectorSpec& spec) {
  GreedySelector::Options options;
  options.use_pruning = spec.use_pruning;
  options.use_preprocessing = spec.use_preprocessing;
  CF_ASSIGN_OR_RETURN(options.preprocessing_mode,
                      ParsePreprocessingMode(spec.preprocessing_mode));
  options.preprocessing_threads = spec.preprocessing_threads;
  if (spec.min_gain_bits >= 0) options.min_gain_bits = spec.min_gain_bits;
  return std::unique_ptr<TaskSelector>(
      std::make_unique<GreedySelector>(options));
}

common::Result<std::unique_ptr<TaskSelector>> MakeOpt(
    const SelectorSpec& spec) {
  OptSelector::Options options;
  options.use_brute_force_entropy = spec.brute_force_entropy;
  if (spec.max_subsets < 0) {
    return Status::InvalidArgument("max_subsets must be non-negative");
  }
  options.max_subsets = static_cast<uint64_t>(spec.max_subsets);
  return std::unique_ptr<TaskSelector>(
      std::make_unique<OptSelector>(options));
}

common::Result<std::unique_ptr<TaskSelector>> MakeSampled(
    const SelectorSpec& spec) {
  SampledGreedySelector::Options options;
  if (spec.samples <= 0) {
    return Status::InvalidArgument("samples must be positive");
  }
  options.samples = spec.samples;
  options.bias_correction = spec.bias_correction;
  options.seed = spec.seed;
  if (spec.min_gain_bits >= 0) options.min_gain_bits = spec.min_gain_bits;
  return std::unique_ptr<TaskSelector>(
      std::make_unique<SampledGreedySelector>(options));
}

common::Result<std::unique_ptr<TaskSelector>> MakeRandom(
    const SelectorSpec& spec) {
  return std::unique_ptr<TaskSelector>(
      std::make_unique<RandomSelector>(spec.seed));
}

common::Result<std::unique_ptr<TaskSelector>> MakeQueryBased(
    const SelectorSpec& spec) {
  if (spec.foi.empty()) {
    return Status::InvalidArgument(
        "query_based selector requires a non-empty foi (facts of interest)");
  }
  QueryBasedGreedySelector::Options options;
  options.foi = spec.foi;
  if (spec.min_gain_bits >= 0) options.min_gain_bits = spec.min_gain_bits;
  return std::unique_ptr<TaskSelector>(
      std::make_unique<QueryBasedGreedySelector>(std::move(options)));
}

common::Result<ProviderHandle> MakeScripted(const ProviderSpec& spec) {
  if (spec.failures_before_success < 0) {
    return Status::InvalidArgument(
        "failures_before_success must be non-negative");
  }
  ScriptedProvider::Options options;
  // A scripted provider bound to instance truths answers with them; an
  // explicit script wins, and with neither the parity rule applies.
  options.script = spec.script.empty() ? spec.truths : spec.script;
  options.failures_before_success = spec.failures_before_success;
  auto provider = std::make_shared<ScriptedProvider>(std::move(options));
  ProviderHandle handle;
  handle.sync = provider.get();
  handle.owner = std::move(provider);
  return handle;
}

}  // namespace

SelectorRegistry BuiltinSelectorRegistry() {
  SelectorRegistry registry("selector");
  CF_CHECK_OK(registry.Register("greedy", MakeGreedy));
  CF_CHECK_OK(registry.Register("opt", MakeOpt));
  CF_CHECK_OK(registry.Register("sampled", MakeSampled));
  CF_CHECK_OK(registry.Register("random", MakeRandom));
  CF_CHECK_OK(registry.Register("query_based", MakeQueryBased));
  return registry;
}

ProviderRegistry BuiltinProviderRegistry() {
  ProviderRegistry registry("provider");
  CF_CHECK_OK(registry.Register("scripted", MakeScripted));
  return registry;
}

}  // namespace crowdfusion::core
