#ifndef CROWDFUSION_CORE_REGISTRY_H_
#define CROWDFUSION_CORE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/registry.h"
#include "common/status.h"
#include "core/async_provider.h"
#include "core/crowdfusion.h"
#include "core/task_selector.h"

namespace crowdfusion::core {

/// Config-shaped description of a task selector: a registry key plus the
/// union of every builtin selector's knobs, as plain serializable values.
/// Fields a selector does not consume are ignored by its factory.
struct SelectorSpec {
  /// Registry key: "greedy", "opt", "sampled", "random", "query_based".
  std::string kind = "greedy";

  // --- greedy ---
  bool use_pruning = true;
  bool use_preprocessing = true;
  /// "auto", "dense", or "sparse" (GreedySelector::PreprocessingMode).
  std::string preprocessing_mode = "auto";
  /// Threads for sparse candidate batches: 0 = auto, 1 = serial.
  int preprocessing_threads = 0;

  // --- opt ---
  bool brute_force_entropy = false;
  /// Subset cap for OPT (0 = uncapped).
  int64_t max_subsets = 0;

  // --- sampled ---
  int samples = 4096;
  bool bias_correction = true;

  // --- sampled / random ---
  uint64_t seed = 42;

  // --- query_based ---
  /// Facts of interest; required non-empty for "query_based".
  std::vector<int> foi;

  /// Early-stop gain threshold; negative means "the selector's default"
  /// (1e-12 for the exact greedies, 1e-6 for the sampled one).
  double min_gain_bits = -1.0;

  friend bool operator==(const SelectorSpec& a,
                         const SelectorSpec& b) = default;
};

/// String-keyed factory registry over TaskSelector implementations.
using SelectorRegistry =
    common::FactoryRegistry<std::unique_ptr<TaskSelector>, SelectorSpec>;

/// A fresh registry holding every selector defined in core: "greedy",
/// "opt", "sampled", "random", "query_based". Copy and extend it to add
/// custom selectors.
SelectorRegistry BuiltinSelectorRegistry();

/// Config-shaped description of a hostile worker population layered over
/// a simulated crowd (crowd::AdversaryModel). The adversary partitions a
/// virtual worker pool into roles by fraction; whatever is left stays
/// honest. All behaviour is seeded and deterministic, and an adversary
/// with enabled == false leaves the crowd's RNG streams untouched — a
/// spec without an adversary block answers bit-for-bit like one predating
/// the adversary layer.
struct AdversarySpec {
  /// Master switch; false means "no adversary" (the differential path).
  bool enabled = false;
  /// Virtual worker pool the roles partition. Providers that model real
  /// worker pools (CrowdPlatform) override this with their pool size.
  int num_workers = 16;
  /// Fraction of the pool colluding: correct on ordinary facts, but
  /// coordinated on the WRONG answer for the targeted facts, so fusers
  /// that propagate trust between agreeing sources reward the clique.
  double colluder_fraction = 0.0;
  /// Fraction of facts the clique targets (chosen by a seeded hash of the
  /// fact id, so every colluder targets the same facts in any order).
  double collusion_target_fraction = 0.5;
  /// Fraction of the pool cloned from ONE answer stream: the first sybil
  /// asked about a fact draws the master answer, every clone repeats it.
  double sybil_fraction = 0.0;
  /// Fraction answering a fair coin, independent of the truth.
  double spammer_fraction = 0.0;
  /// Fraction parroting the majority of all answers logged so far for the
  /// fact (ties and first-asked default to "true").
  double parrot_fraction = 0.0;
  /// Per-answer accuracy drift of each HONEST worker: its P(correct)
  /// moves by this much with every answer it gives (negative = fatigue),
  /// clamped to [drift_floor, drift_ceiling]. Ground truth for scoring
  /// AccuracyEstimator / Dawid-Skene against drifting workers.
  double drift_per_answer = 0.0;
  double drift_floor = 0.05;
  double drift_ceiling = 0.95;
  /// Seeds the adversary's own RNG stream (role draws, spam, sybil
  /// masters) so enabling it never perturbs the honest judgment stream.
  uint64_t seed = 1099;

  friend bool operator==(const AdversarySpec& a,
                         const AdversarySpec& b) = default;
};

/// Config-shaped description of an answer provider. The spec doubles as a
/// per-instance template: workload builders clone it for every instance,
/// filling `truths`/`categories` from that instance's gold labels and
/// deriving per-instance seeds (base seed + instance index).
struct ProviderSpec {
  /// Registry key: "simulated_crowd" (registered by the crowd layer) or
  /// "scripted" (registered here in core).
  std::string kind = "simulated_crowd";

  // --- ground-truth binding (per instance) ---
  std::vector<bool> truths;
  /// data::StatementCategory values as ints; empty means all-clean.
  std::vector<int> categories;

  // --- simulated_crowd ---
  /// Worker accuracy (the experiments' true_accuracy, may differ from the
  /// system's assumed Pc).
  double accuracy = 0.8;
  /// Use the Section V-D category-biased worker pool instead of the
  /// uniform one; base accuracy is still `accuracy`.
  bool biased = false;
  uint64_t seed = 0;
  /// Simulated answer latency (0 = instant; the differential setting).
  double latency_median_seconds = 0.0;
  double latency_sigma = 0.5;
  /// Probability a whole collection attempt fails (kUnavailable).
  double failure_probability = 0.0;
  double straggler_probability = 0.0;
  double straggler_factor = 10.0;
  uint64_t latency_seed = 4242;
  /// Hostile worker overlay ("simulated_crowd", and remote universes of
  /// that kind over "http"/"http_pool"). Default-disabled.
  AdversarySpec adversary;

  // --- scripted ---
  /// Per-fact scripted answers; empty means the parity rule (id % 2 == 1).
  std::vector<bool> script;
  int failures_before_success = 0;

  // --- http (registered by the net layer) ---
  /// Remote crowd platform serving the ticket wire, as "host:port".
  /// Required non-empty for "http".
  std::string endpoint;
  /// Concrete provider kind the platform hosts for this instance's
  /// universe; empty means "simulated_crowd". The remaining fields above
  /// (truths, accuracy, seeds, ...) travel to the platform as that
  /// universe's template.
  std::string universe_kind;

  // --- http_pool (registered by the net layer) ---
  /// Crowd platforms backing the failover pool, each as "host:port".
  /// Required non-empty for "http_pool"; the same universe template is
  /// registered on every endpoint so a ticket batch can be resubmitted to
  /// a different platform when its home endpoint hangs or dies.
  std::vector<std::string> endpoints;
  /// Ceiling on one collection attempt against one endpoint ("http" and
  /// "http_pool"): an Await past this budget returns kDeadlineExceeded,
  /// and the pool treats an in-flight ticket older than this as expired
  /// and resubmits it elsewhere. 0 means wait forever ("http") / the
  /// pool's default attempt budget ("http_pool").
  double await_timeout_seconds = 0.0;

  friend bool operator==(const ProviderSpec& a,
                         const ProviderSpec& b) = default;
};

/// An owned provider plus typed views onto its contracts. `sync` and
/// `async` point into the object `owner` keeps alive; either view may be
/// null when the provider does not speak that contract (the scheduler
/// wraps sync-only providers in SyncProviderAdapter itself).
struct ProviderHandle {
  std::shared_ptr<void> owner;
  AnswerProvider* sync = nullptr;
  AsyncAnswerProvider* async = nullptr;
  /// Optional stats hook: (answers_served, answers_correct) so far, for
  /// empirical-accuracy reporting. Null when the provider has no notion
  /// of correctness.
  std::function<std::pair<int64_t, int64_t>()> served_correct;
  /// Optional stats hook: ticket batches resubmitted to a different
  /// replica after a failed or expired collection attempt. Null for
  /// providers with no failover tier (everything but "http_pool").
  std::function<int64_t()> tickets_resubmitted;
};

/// String-keyed factory registry over answer providers.
using ProviderRegistry =
    common::FactoryRegistry<ProviderHandle, ProviderSpec>;

/// A fresh registry holding the providers defined in core ("scripted").
/// The crowd layer adds "simulated_crowd" via
/// crowd::RegisterCrowdProviders; the service facade composes both.
ProviderRegistry BuiltinProviderRegistry();

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_REGISTRY_H_
