#include "core/round_policy.h"

#include <algorithm>
#include <cmath>

namespace crowdfusion::core {

int DeadlinePolicy::NextK(const RoundContext& context) {
  const int remaining_rounds =
      std::max(1, max_rounds_ - context.rounds_completed);
  return (context.remaining_budget + remaining_rounds - 1) / remaining_rounds;
}

int UncertaintyAdaptivePolicy::NextK(const RoundContext& context) {
  if (context.joint == nullptr || context.joint->num_facts() == 0) return 1;
  const double per_fact_entropy =
      context.joint->EntropyBits() /
      static_cast<double>(context.joint->num_facts());
  if (per_fact_entropy >= options_.careful_threshold_bits) return 1;
  // Scale k up linearly as uncertainty falls below the threshold.
  const double certainty =
      1.0 - per_fact_entropy / options_.careful_threshold_bits;
  const int k = 1 + static_cast<int>(std::floor(
                        certainty * static_cast<double>(options_.max_k - 1)));
  return std::clamp(k, 1, options_.max_k);
}

}  // namespace crowdfusion::core
