#ifndef CROWDFUSION_CORE_ROUND_POLICY_H_
#define CROWDFUSION_CORE_ROUND_POLICY_H_

#include <memory>

#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Chooses the number of tasks k for the next round. The paper's
/// experimental conclusion (Section V-C2): "k should be set to a small
/// value when the budget is the main constraint; whereas a large value is
/// suggested for k if time-efficiency is the primary constraint" — each
/// round costs one crowd round-trip, so small k spends budget precisely
/// while large k finishes sooner. RoundPolicy makes that trade-off a
/// pluggable object instead of a fixed constant.
class RoundPolicy {
 public:
  struct RoundContext {
    /// The distribution the next round will select against.
    const JointDistribution* joint = nullptr;
    /// Tasks left in the budget.
    int remaining_budget = 0;
    /// Rounds completed so far.
    int rounds_completed = 0;
  };

  virtual ~RoundPolicy() = default;

  /// Returns the k for the next round; the engine clamps it to
  /// [1, min(n, remaining budget)].
  virtual int NextK(const RoundContext& context) = 0;
};

/// Always k (the paper's setting).
class FixedKPolicy : public RoundPolicy {
 public:
  explicit FixedKPolicy(int k) : k_(k) {}
  int NextK(const RoundContext&) override { return k_; }

 private:
  int k_;
};

/// Finishes within a target number of rounds: k = ceil(remaining budget /
/// remaining rounds). Models the "time-efficiency is the primary
/// constraint" end of the paper's trade-off.
class DeadlinePolicy : public RoundPolicy {
 public:
  explicit DeadlinePolicy(int max_rounds) : max_rounds_(max_rounds) {}
  int NextK(const RoundContext& context) override;

 private:
  int max_rounds_;
};

/// Spends precisely while the distribution is uncertain and accelerates
/// once it firms up: k = 1 while H(F) per fact is above the threshold,
/// growing as uncertainty falls. Rationale: early answers steer later
/// selections (the paper's advantage of small k), but once the joint is
/// nearly settled batching is free.
class UncertaintyAdaptivePolicy : public RoundPolicy {
 public:
  struct Options {
    /// Entropy-per-fact above which the policy stays at k = 1.
    double careful_threshold_bits = 0.5;
    /// Largest k the policy will batch once certain.
    int max_k = 6;
  };

  UncertaintyAdaptivePolicy() = default;
  explicit UncertaintyAdaptivePolicy(Options options) : options_(options) {}

  int NextK(const RoundContext& context) override;

 private:
  Options options_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_ROUND_POLICY_H_
