#include "core/running_example.h"

#include "common/logging.h"

namespace crowdfusion::core {

FactSet RunningExample::Facts() {
  FactSet facts;
  facts.Add({"Hong Kong", "Continent", "Asia"});
  facts.Add({"Hong Kong", "Population", ">= 500,000"});
  facts.Add({"Hong Kong", "Major Ethnic Group", "Chinese"});
  facts.Add({"Hong Kong", "Continent", "Europe"});
  return facts;
}

JointDistribution RunningExample::Joint() {
  // Table II, rows o1..o16. Row (i-1) read as a 4-bit number b3 b2 b1 b0 is
  // the judgment (f1, f2, f3, f4); our mask packs fact j into bit j.
  static constexpr double kRowProbs[16] = {
      0.03, 0.06, 0.07, 0.04,  // o1..o4
      0.09, 0.01, 0.11, 0.09,  // o5..o8
      0.04, 0.04, 0.04, 0.05,  // o9..o12
      0.06, 0.09, 0.07, 0.11,  // o13..o16
  };
  std::vector<JointDistribution::Entry> entries;
  entries.reserve(16);
  for (int row = 0; row < 16; ++row) {
    const bool f1 = (row >> 3) & 1;
    const bool f2 = (row >> 2) & 1;
    const bool f3 = (row >> 1) & 1;
    const bool f4 = row & 1;
    uint64_t mask = 0;
    if (f1) mask |= 1ULL << 0;
    if (f2) mask |= 1ULL << 1;
    if (f3) mask |= 1ULL << 2;
    if (f4) mask |= 1ULL << 3;
    entries.push_back({mask, kRowProbs[row]});
  }
  auto joint = JointDistribution::FromEntries(4, std::move(entries));
  CF_CHECK(joint.ok()) << joint.status().ToString();
  return std::move(joint).value();
}

CrowdModel RunningExample::Crowd() {
  auto crowd = CrowdModel::Create(0.8);
  CF_CHECK(crowd.ok());
  return std::move(crowd).value();
}

}  // namespace crowdfusion::core
