#ifndef CROWDFUSION_CORE_RUNNING_EXAMPLE_H_
#define CROWDFUSION_CORE_RUNNING_EXAMPLE_H_

#include "core/crowd_model.h"
#include "core/fact.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// The paper's running example (Tables I and II): four facts about Hong
/// Kong with an explicit 16-output joint distribution. Fact id i maps to
/// the paper's f_{i+1}; output bit i is fact i's judgment.
///
/// The example anchors exact-value tests for Tables I-IV and the worked
/// Bayesian update in Section III-A, and is the quickstart dataset.
class RunningExample {
 public:
  /// Table I's facts: continent/population/ethnic-group/continent-Europe.
  static FactSet Facts();

  /// Table II's joint distribution (16 outputs, mass 1).
  static JointDistribution Joint();

  /// The crowd used throughout the example: Pc = 0.8.
  static CrowdModel Crowd();

  /// Table I marginals: {0.5, 0.63, 0.58, 0.49}.
  static constexpr double kMarginals[4] = {0.5, 0.63, 0.58, 0.49};
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_RUNNING_EXAMPLE_H_
