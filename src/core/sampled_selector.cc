#include "core/sampled_selector.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/bit_util.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace crowdfusion::core {

using common::Status;

namespace {

/// Inverse-CDF sampler over the sparse support.
class WorldSampler {
 public:
  explicit WorldSampler(const JointDistribution& joint) : joint_(joint) {
    cumulative_.reserve(joint.entries().size());
    double total = 0.0;
    for (const auto& entry : joint.entries()) {
      total += entry.prob;
      cumulative_.push_back(total);
    }
  }

  uint64_t Sample(common::Rng& rng) const {
    const double u = rng.NextDouble() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    const size_t index = static_cast<size_t>(
        std::min<ptrdiff_t>(it - cumulative_.begin(),
                            static_cast<ptrdiff_t>(cumulative_.size()) - 1));
    return joint_.entries()[index].mask;
  }

 private:
  const JointDistribution& joint_;
  std::vector<double> cumulative_;
};

/// Estimates H(T) in bits from `samples` simulated crowd interactions.
double EstimateEntropy(const WorldSampler& sampler,
                       const std::vector<int>& tasks, double pc, int samples,
                       bool bias_correction, common::Rng& rng) {
  std::unordered_map<uint64_t, int> histogram;
  histogram.reserve(static_cast<size_t>(samples) / 4);
  for (int s = 0; s < samples; ++s) {
    const uint64_t world = sampler.Sample(rng);
    uint64_t answer = 0;
    for (size_t i = 0; i < tasks.size(); ++i) {
      const bool truth = common::GetBit(world, tasks[i]);
      const bool reported = rng.NextBernoulli(pc) ? truth : !truth;
      if (reported) answer |= 1ULL << i;
    }
    ++histogram[answer];
  }
  double entropy = 0.0;
  const double inv = 1.0 / static_cast<double>(samples);
  for (const auto& [answer, count] : histogram) {
    entropy -= common::XLog2X(static_cast<double>(count) * inv);
  }
  if (bias_correction && !histogram.empty()) {
    // Miller–Madow: plug-in entropy underestimates by ~(K-1)/(2M) nats.
    entropy += static_cast<double>(histogram.size() - 1) /
               (2.0 * static_cast<double>(samples) * std::log(2.0));
  }
  return entropy;
}

}  // namespace

common::Result<Selection> SampledGreedySelector::Select(
    const SelectionRequest& request) {
  CF_ASSIGN_OR_RETURN(std::vector<int> candidates,
                      ResolveCandidates(request));
  if (options_.samples <= 0) {
    return Status::InvalidArgument("sample count must be positive");
  }
  const common::Stopwatch timer;
  const int k = std::min(request.k, static_cast<int>(candidates.size()));
  const WorldSampler sampler(*request.joint);
  const double pc = request.crowd->pc();

  Selection selection;
  std::vector<int> selected;
  double current_entropy = 0.0;
  std::vector<int> active = candidates;
  for (int iteration = 0; iteration < k; ++iteration) {
    int best_fact = -1;
    double best_entropy = -1.0;
    for (int fact : active) {
      std::vector<int> extended = selected;
      extended.push_back(fact);
      const double h =
          EstimateEntropy(sampler, extended, pc, options_.samples,
                          options_.bias_correction, rng_);
      ++selection.stats.evaluations;
      if (h > best_entropy) {
        best_entropy = h;
        best_fact = fact;
      }
    }
    if (best_fact < 0) break;
    if (best_entropy - current_entropy <= options_.min_gain_bits) break;
    selected.push_back(best_fact);
    selection.tasks.push_back(best_fact);
    selection.entropy_bits = best_entropy;
    current_entropy = best_entropy;
    active.erase(std::remove(active.begin(), active.end(), best_fact),
                 active.end());
  }
  selection.stats.elapsed_seconds = timer.ElapsedSeconds();
  return selection;
}

}  // namespace crowdfusion::core
