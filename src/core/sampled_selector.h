#ifndef CROWDFUSION_CORE_SAMPLED_SELECTOR_H_
#define CROWDFUSION_CORE_SAMPLED_SELECTOR_H_

#include "common/random.h"
#include "core/task_selector.h"

namespace crowdfusion::core {

/// Scalability extension beyond the paper: a greedy selector whose
/// candidate entropies are *Monte-Carlo estimates*, lifting the dense-2^n
/// ceiling of the exact paths. The exact greedy needs the marginal answer
/// distribution of T ∪ {candidate}, which costs O(|O|) per candidate with
/// preprocessing — fine for n ≤ 20, hopeless for the sparse 63-fact joints
/// the JointDistribution type otherwise supports.
///
/// The estimator draws M worlds o ~ P(O) (alias-free inverse-CDF over the
/// sparse support) and pushes each through the per-fact BSC to get an
/// answer sample; H(T) is estimated from the empirical answer histogram
/// with the Miller–Madow bias correction ((K-1)/2M for K occupied bins).
/// The estimate concentrates at O(sqrt(K/M)), so with M >> 2^k per-round
/// selections on sparse joints of any n become feasible.
///
/// Determinism: seeded; two selectors with equal seeds pick equal tasks.
class SampledGreedySelector : public TaskSelector {
 public:
  struct Options {
    /// Monte-Carlo sample count per candidate evaluation.
    int samples = 4096;
    /// Apply the Miller–Madow entropy bias correction.
    bool bias_correction = true;
    uint64_t seed = 20177;
    /// Stop early when the best estimated gain is at or below this.
    double min_gain_bits = 1e-6;
  };

  SampledGreedySelector() = default;
  explicit SampledGreedySelector(Options options)
      : options_(options), rng_(options.seed) {}

  common::Result<Selection> Select(const SelectionRequest& request) override;

  std::string name() const override { return "Approx.(sampled)"; }

 private:
  Options options_;
  common::Rng rng_{20177};
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_SAMPLED_SELECTOR_H_
