#include "core/scheduler.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/bayes.h"

namespace crowdfusion::core {

using common::Status;

common::Result<BudgetScheduler> BudgetScheduler::Create(CrowdModel crowd,
                                                        TaskSelector* selector,
                                                        Options options) {
  if (selector == nullptr) {
    return Status::InvalidArgument("selector must not be null");
  }
  if (options.total_budget < 0) {
    return Status::InvalidArgument("total_budget must be non-negative");
  }
  if (options.tasks_per_step <= 0) {
    return Status::InvalidArgument("tasks_per_step must be positive");
  }
  if (options.max_in_flight < 1) {
    return Status::InvalidArgument("max_in_flight must be >= 1");
  }
  if (options.ticket.max_attempts < 1) {
    return Status::InvalidArgument("ticket.max_attempts must be >= 1");
  }
  if (!(options.max_poll_seconds > 0)) {
    return Status::InvalidArgument("max_poll_seconds must be positive");
  }
  return BudgetScheduler(crowd, selector, options);
}

common::Result<int> BudgetScheduler::AddInstance(std::string name,
                                                 JointDistribution joint,
                                                 AnswerProvider* provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("answer provider must not be null");
  }
  auto adapter =
      std::make_unique<SyncProviderAdapter>(provider, options_.clock);
  AsyncAnswerProvider* endpoint = adapter.get();
  CF_ASSIGN_OR_RETURN(const int index,
                      AddInstanceAsync(std::move(name), std::move(joint),
                                       endpoint));
  instances_[static_cast<size_t>(index)].owned_adapter = std::move(adapter);
  return index;
}

common::Result<int> BudgetScheduler::AddInstanceAsync(
    std::string name, JointDistribution joint, AsyncAnswerProvider* provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("answer provider must not be null");
  }
  if (joint.num_facts() == 0) {
    return Status::InvalidArgument("instance has no facts");
  }
  if (!joint.IsNormalized(1e-6)) {
    return Status::InvalidArgument("instance joint is not normalized");
  }
  Instance instance;
  instance.name = std::move(name);
  instance.joint = std::move(joint);
  instance.provider = provider;
  instances_.push_back(std::move(instance));
  return num_instances() - 1;
}

common::Status BudgetScheduler::AddBudget(int tasks) {
  if (tasks < 0) {
    return Status::InvalidArgument("additional budget must be non-negative");
  }
  options_.total_budget += tasks;
  return Status::Ok();
}

common::Status BudgetScheduler::RefreshSelectionTimed(
    Instance& instance, int k, double& elapsed_seconds) {
  elapsed_seconds = 0.0;
  const int effective_k = std::min(k, instance.joint.num_facts());
  if (instance.selection_valid && instance.cached_k == effective_k) {
    return Status::Ok();
  }
  SelectionRequest request;
  request.joint = &instance.joint;
  request.crowd = &crowd_;
  request.k = effective_k;
  const common::Stopwatch timer;
  CF_ASSIGN_OR_RETURN(instance.cached_selection,
                      selector_->Select(request));
  elapsed_seconds = timer.ElapsedSeconds();
  instance.selection_valid = true;
  instance.cached_k = effective_k;
  return Status::Ok();
}

common::Status BudgetScheduler::RefreshSelection(Instance& instance, int k) {
  double elapsed = 0.0;
  CF_RETURN_IF_ERROR(RefreshSelectionTimed(instance, k, elapsed));
  if (elapsed > 0.0) selection_compute_seconds_.push_back(elapsed);
  return Status::Ok();
}

common::Status BudgetScheduler::RefreshStaleSelectionsConcurrently(int k) {
  if (!options_.concurrent_selection || !selector_->ConcurrentSelectSafe()) {
    return Status::Ok();
  }
  std::vector<size_t> stale;
  for (size_t i = 0; i < instances_.size(); ++i) {
    const Instance& instance = instances_[i];
    if (instance.in_flight || instance.dead) continue;
    const int effective_k = std::min(k, instance.joint.num_facts());
    if (!(instance.selection_valid && instance.cached_k == effective_k)) {
      stale.push_back(i);
    }
  }
  if (stale.size() < 2) return Status::Ok();  // nothing to overlap
  // Distinct instances, a concurrency-safe selector, and per-slot result
  // arrays: the workers share nothing mutable, and the ParallelFor join
  // orders every write before the ascending fold below. Each book's
  // selection is exactly what the serial loop would have computed, so
  // this changes wall-clock, never the schedule.
  std::vector<Status> statuses(stale.size());
  std::vector<double> elapsed(stale.size(), 0.0);
  common::ThreadPool::Shared()->ParallelFor(
      0, static_cast<int64_t>(stale.size()),
      [this, k, &stale, &statuses, &elapsed](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) {
          statuses[static_cast<size_t>(s)] = RefreshSelectionTimed(
              instances_[stale[static_cast<size_t>(s)]], k,
              elapsed[static_cast<size_t>(s)]);
        }
      });
  for (size_t s = 0; s < stale.size(); ++s) {
    CF_RETURN_IF_ERROR(statuses[s]);
    if (elapsed[s] > 0.0) selection_compute_seconds_.push_back(elapsed[s]);
  }
  return Status::Ok();
}

common::Result<int> BudgetScheduler::PickBestIdleInstance(int k) {
  // Debug guard on the borrow contract (see EngineOptions): the selector
  // and every instance provider are borrowed and must outlive the
  // scheduler, including while tickets are in flight.
  CF_DCHECK(selector_ != nullptr) << "selector destroyed under the scheduler";
  // Refresh every stale idle selection concurrently when the selector
  // permits; the serial sweep below then runs on warm caches.
  CF_RETURN_IF_ERROR(RefreshStaleSelectionsConcurrently(k));
  // Pick the idle instance whose cached best selection promises the
  // largest expected quality gain per task.
  int best_instance = -1;
  double best_gain = 0.0;
  for (size_t i = 0; i < instances_.size(); ++i) {
    Instance& instance = instances_[i];
    if (instance.in_flight || instance.dead) continue;
    CF_RETURN_IF_ERROR(RefreshSelection(instance, k));
    if (instance.cached_selection.tasks.empty()) continue;
    const double tasks =
        static_cast<double>(instance.cached_selection.tasks.size());
    const double gain =
        (instance.cached_selection.entropy_bits -
         tasks * crowd_.EntropyBits()) /
        tasks;  // per-task expected gain, so small and large k compare fairly
    if (best_instance < 0 || gain > best_gain) {
      best_instance = static_cast<int>(i);
      best_gain = gain;
    }
  }
  return best_instance;
}

void BudgetScheduler::AbandonInFlightTickets() {
  for (Instance& instance : instances_) {
    if (!instance.in_flight) continue;
    // The ticket will never be awaited; tell the provider to drop its
    // bookkeeping so abandoned tickets can't pile up in a long-lived
    // serving process.
    instance.provider->Cancel(instance.ticket);
    instance.in_flight = false;
  }
  cost_reserved_ = cost_spent_;
}

common::Status BudgetScheduler::SubmitSelection(Instance& instance,
                                                double now) {
  CF_DCHECK(!instance.in_flight);
  instance.pending_tasks = instance.cached_selection.tasks;
  instance.pending_gain_bits =
      instance.cached_selection.entropy_bits -
      static_cast<double>(instance.pending_tasks.size()) *
          crowd_.EntropyBits();
  CF_ASSIGN_OR_RETURN(instance.ticket,
                      instance.provider->Submit(instance.pending_tasks,
                                                options_.ticket));
  instance.in_flight = true;
  instance.submitted_at = now;
  cost_reserved_ += static_cast<int>(instance.pending_tasks.size());
  return Status::Ok();
}

common::Result<BudgetScheduler::StepRecord> BudgetScheduler::HarvestTicket(
    Instance& instance, double now) {
  CF_DCHECK(instance.in_flight);
  StepRecord record;
  record.step = steps_run_++;
  record.instance =
      static_cast<int>(&instance - instances_.data());
  record.tasks = instance.pending_tasks;
  record.expected_gain_bits = instance.pending_gain_bits;
  record.latency_seconds = now - instance.submitted_at;
  instance.in_flight = false;
  CF_ASSIGN_OR_RETURN(record.answers,
                      instance.provider->Await(instance.ticket));
  if (record.answers.size() != record.tasks.size()) {
    return Status::Internal(common::StrFormat(
        "provider returned %zu answers for %zu tasks", record.answers.size(),
        record.tasks.size()));
  }
  AnswerSet answer_set{record.tasks, record.answers};
  CF_ASSIGN_OR_RETURN(instance.joint,
                      PosteriorGivenAnswers(instance.joint, answer_set,
                                            crowd_));
  instance.selection_valid = false;  // joint changed
  instance.cost_spent += static_cast<int>(record.tasks.size());
  cost_spent_ += static_cast<int>(record.tasks.size());
  record.cumulative_cost = cost_spent_;
  record.total_utility_bits = TotalUtilityBits();
  return record;
}

common::Result<BudgetScheduler::StepRecord> BudgetScheduler::RunStep() {
  if (!HasBudget()) {
    return Status::FailedPrecondition("global budget exhausted");
  }
  if (instances_.empty()) {
    return Status::FailedPrecondition("no instances registered");
  }
  const int k =
      std::min(options_.tasks_per_step, options_.total_budget - cost_spent_);
  // Blocking mode has nothing in flight; drop any ticket state an aborted
  // pipelined run left behind so those instances schedule again.
  AbandonInFlightTickets();
  CF_ASSIGN_OR_RETURN(const int best_instance, PickBestIdleInstance(k));

  if (best_instance < 0) {
    // Nothing anywhere has positive benefit; signal exhaustion.
    StepRecord record;
    record.step = steps_run_++;
    record.cumulative_cost = cost_spent_;
    record.instance = -1;
    record.total_utility_bits = TotalUtilityBits();
    return record;
  }

  // Submit the winner's ticket and block through the crowd's latency: the
  // paper's synchronous collect, expressed on the async contract.
  Instance& winner = instances_[static_cast<size_t>(best_instance)];
  CF_RETURN_IF_ERROR(SubmitSelection(winner, clock()->NowSeconds()));
  CF_ASSIGN_OR_RETURN(StepRecord record,
                      HarvestTicket(winner, clock()->NowSeconds()));
  // Await slept through the remaining latency; stamp the full wait.
  record.latency_seconds = clock()->NowSeconds() - winner.submitted_at;
  cost_reserved_ = cost_spent_;
  return record;
}

common::Result<std::vector<BudgetScheduler::StepRecord>>
BudgetScheduler::Run() {
  std::vector<StepRecord> records;
  while (HasBudget()) {
    CF_ASSIGN_OR_RETURN(StepRecord record, RunStep());
    const bool exhausted = record.instance < 0;
    records.push_back(std::move(record));
    if (exhausted) break;
  }
  return records;
}

common::Result<std::vector<BudgetScheduler::StepRecord>>
BudgetScheduler::RunPipelined() {
  if (instances_.empty()) {
    return Status::FailedPrecondition("no instances registered");
  }
  // Drop any in-flight state a previously aborted run left behind.
  AbandonInFlightTickets();

  std::vector<StepRecord> records;
  for (;;) {
    CF_ASSIGN_OR_RETURN(const bool more, RunPipelinedStep(records));
    if (!more) break;
  }
  return records;
}

common::Result<bool> BudgetScheduler::RunPipelinedStep(
    std::vector<StepRecord>& records) {
  if (instances_.empty()) {
    return Status::FailedPrecondition("no instances registered");
  }
  int in_flight_count = 0;
  for (const Instance& instance : instances_) {
    if (instance.in_flight) ++in_flight_count;
  }

  // Launch: fill the in-flight window with the best idle instances. The
  // early Poll-break makes the zero-latency schedule merge each batch
  // before the next launch decision, reproducing the blocking loop
  // exactly; real-latency tickets stay pending, so the window fills and
  // answer latencies overlap.
  while (in_flight_count < options_.max_in_flight &&
         cost_reserved_ < options_.total_budget) {
    const int k = std::min(options_.tasks_per_step,
                           options_.total_budget - cost_reserved_);
    CF_ASSIGN_OR_RETURN(const int best, PickBestIdleInstance(k));
    if (best < 0) break;
    Instance& launched = instances_[static_cast<size_t>(best)];
    CF_RETURN_IF_ERROR(SubmitSelection(launched, clock()->NowSeconds()));
    ++in_flight_count;
    CF_ASSIGN_OR_RETURN(const TicketStatus ticket_status,
                        launched.provider->Poll(launched.ticket));
    if (ticket_status.phase != TicketPhase::kInFlight) break;
  }

  if (in_flight_count == 0) {
    if (HasBudget()) {
      // Budget remains but no instance has positive-gain tasks left;
      // emit the same exhaustion marker the blocking loop does.
      StepRecord record;
      record.step = steps_run_++;
      record.cumulative_cost = cost_spent_;
      record.instance = -1;
      record.total_utility_bits = TotalUtilityBits();
      records.push_back(std::move(record));
    }
    return false;
  }

  // Wait: sleep exactly until the earliest outstanding ticket resolves
  // (capped so a misreporting provider cannot stall the loop forever).
  for (;;) {
    bool any_resolved = false;
    double min_wait = std::numeric_limits<double>::infinity();
    for (Instance& instance : instances_) {
      if (!instance.in_flight) continue;
      CF_ASSIGN_OR_RETURN(const TicketStatus ticket_status,
                          instance.provider->Poll(instance.ticket));
      if (ticket_status.phase != TicketPhase::kInFlight) {
        any_resolved = true;
      } else {
        min_wait = std::min(min_wait, ticket_status.seconds_until_ready);
      }
    }
    if (any_resolved) break;
    clock()->SleepSeconds(
        std::min(std::max(min_wait, 1.0e-6), options_.max_poll_seconds));
  }

  // Harvest every resolved ticket (ascending instance order, for
  // determinism), merging answers and re-ranking lazily: only the merged
  // instances' cached selections are invalidated.
  for (Instance& instance : instances_) {
    if (!instance.in_flight) continue;
    CF_ASSIGN_OR_RETURN(const TicketStatus ticket_status,
                        instance.provider->Poll(instance.ticket));
    if (ticket_status.phase == TicketPhase::kInFlight) continue;
    if (ticket_status.phase == TicketPhase::kFailed &&
        options_.on_ticket_failure == TicketFailurePolicy::kSkipInstance) {
      // Kill only this instance: release its budget reservation, drop the
      // ticket's bookkeeping, and keep serving everyone else.
      instance.provider->Cancel(instance.ticket);
      instance.in_flight = false;
      instance.dead = true;
      instance.selection_valid = false;
      cost_reserved_ -= static_cast<int>(instance.pending_tasks.size());
      --in_flight_count;
      continue;
    }
    CF_ASSIGN_OR_RETURN(StepRecord record,
                        HarvestTicket(instance, clock()->NowSeconds()));
    records.push_back(std::move(record));
    --in_flight_count;
  }
  return true;
}

bool BudgetScheduler::instance_dead(int instance) const {
  CF_CHECK(instance >= 0 && instance < num_instances());
  return instances_[static_cast<size_t>(instance)].dead;
}

int BudgetScheduler::dead_instances() const {
  int dead = 0;
  for (const Instance& instance : instances_) {
    if (instance.dead) ++dead;
  }
  return dead;
}

const JointDistribution& BudgetScheduler::joint(int instance) const {
  CF_CHECK(instance >= 0 && instance < num_instances());
  return instances_[static_cast<size_t>(instance)].joint;
}

const std::string& BudgetScheduler::name(int instance) const {
  CF_CHECK(instance >= 0 && instance < num_instances());
  return instances_[static_cast<size_t>(instance)].name;
}

int BudgetScheduler::cost_spent(int instance) const {
  CF_CHECK(instance >= 0 && instance < num_instances());
  return instances_[static_cast<size_t>(instance)].cost_spent;
}

double BudgetScheduler::TotalUtilityBits() const {
  double total = 0.0;
  for (const Instance& instance : instances_) {
    total += -instance.joint.EntropyBits();
  }
  return total;
}

}  // namespace crowdfusion::core
