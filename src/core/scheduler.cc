#include "core/scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/bayes.h"

namespace crowdfusion::core {

using common::Status;

common::Result<BudgetScheduler> BudgetScheduler::Create(CrowdModel crowd,
                                                        TaskSelector* selector,
                                                        Options options) {
  if (selector == nullptr) {
    return Status::InvalidArgument("selector must not be null");
  }
  if (options.total_budget < 0) {
    return Status::InvalidArgument("total_budget must be non-negative");
  }
  if (options.tasks_per_step <= 0) {
    return Status::InvalidArgument("tasks_per_step must be positive");
  }
  return BudgetScheduler(crowd, selector, options);
}

common::Result<int> BudgetScheduler::AddInstance(std::string name,
                                                 JointDistribution joint,
                                                 AnswerProvider* provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("answer provider must not be null");
  }
  if (joint.num_facts() == 0) {
    return Status::InvalidArgument("instance has no facts");
  }
  if (!joint.IsNormalized(1e-6)) {
    return Status::InvalidArgument("instance joint is not normalized");
  }
  Instance instance;
  instance.name = std::move(name);
  instance.joint = std::move(joint);
  instance.provider = provider;
  instances_.push_back(std::move(instance));
  return num_instances() - 1;
}

common::Status BudgetScheduler::RefreshSelection(Instance& instance, int k) {
  if (instance.selection_valid) return Status::Ok();
  SelectionRequest request;
  request.joint = &instance.joint;
  request.crowd = &crowd_;
  request.k = std::min(k, instance.joint.num_facts());
  CF_ASSIGN_OR_RETURN(instance.cached_selection,
                      selector_->Select(request));
  instance.selection_valid = true;
  return Status::Ok();
}

common::Result<BudgetScheduler::StepRecord> BudgetScheduler::RunStep() {
  if (!HasBudget()) {
    return Status::FailedPrecondition("global budget exhausted");
  }
  if (instances_.empty()) {
    return Status::FailedPrecondition("no instances registered");
  }
  const int k =
      std::min(options_.tasks_per_step, options_.total_budget - cost_spent_);

  // Pick the instance whose cached best selection promises the largest
  // expected quality gain per task.
  int best_instance = -1;
  double best_gain = 0.0;
  for (size_t i = 0; i < instances_.size(); ++i) {
    Instance& instance = instances_[i];
    CF_RETURN_IF_ERROR(RefreshSelection(instance, k));
    if (instance.cached_selection.tasks.empty()) continue;
    const double tasks =
        static_cast<double>(instance.cached_selection.tasks.size());
    const double gain =
        (instance.cached_selection.entropy_bits -
         tasks * crowd_.EntropyBits()) /
        tasks;  // per-task expected gain, so small and large k compare fairly
    if (best_instance < 0 || gain > best_gain) {
      best_instance = static_cast<int>(i);
      best_gain = gain;
    }
  }

  StepRecord record;
  record.step = steps_run_++;
  record.cumulative_cost = cost_spent_;
  if (best_instance < 0) {
    // Nothing anywhere has positive benefit; signal exhaustion.
    record.instance = -1;
    record.total_utility_bits = TotalUtilityBits();
    return record;
  }

  Instance& winner = instances_[static_cast<size_t>(best_instance)];
  record.instance = best_instance;
  record.tasks = winner.cached_selection.tasks;
  record.expected_gain_bits =
      winner.cached_selection.entropy_bits -
      static_cast<double>(record.tasks.size()) * crowd_.EntropyBits();

  CF_ASSIGN_OR_RETURN(record.answers,
                      winner.provider->CollectAnswers(record.tasks));
  if (record.answers.size() != record.tasks.size()) {
    return Status::Internal(common::StrFormat(
        "provider returned %zu answers for %zu tasks", record.answers.size(),
        record.tasks.size()));
  }
  AnswerSet answer_set{record.tasks, record.answers};
  CF_ASSIGN_OR_RETURN(winner.joint,
                      PosteriorGivenAnswers(winner.joint, answer_set, crowd_));
  winner.selection_valid = false;  // joint changed
  winner.cost_spent += static_cast<int>(record.tasks.size());
  cost_spent_ += static_cast<int>(record.tasks.size());
  record.cumulative_cost = cost_spent_;
  record.total_utility_bits = TotalUtilityBits();
  return record;
}

common::Result<std::vector<BudgetScheduler::StepRecord>>
BudgetScheduler::Run() {
  std::vector<StepRecord> records;
  while (HasBudget()) {
    CF_ASSIGN_OR_RETURN(StepRecord record, RunStep());
    const bool exhausted = record.instance < 0;
    records.push_back(std::move(record));
    if (exhausted) break;
  }
  return records;
}

const JointDistribution& BudgetScheduler::joint(int instance) const {
  CF_CHECK(instance >= 0 && instance < num_instances());
  return instances_[static_cast<size_t>(instance)].joint;
}

const std::string& BudgetScheduler::name(int instance) const {
  CF_CHECK(instance >= 0 && instance < num_instances());
  return instances_[static_cast<size_t>(instance)].name;
}

int BudgetScheduler::cost_spent(int instance) const {
  CF_CHECK(instance >= 0 && instance < num_instances());
  return instances_[static_cast<size_t>(instance)].cost_spent;
}

double BudgetScheduler::TotalUtilityBits() const {
  double total = 0.0;
  for (const Instance& instance : instances_) {
    total += -instance.joint.EntropyBits();
  }
  return total;
}

}  // namespace crowdfusion::core
