#ifndef CROWDFUSION_CORE_SCHEDULER_H_
#define CROWDFUSION_CORE_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/async_provider.h"
#include "core/crowdfusion.h"
#include "core/task_selector.h"

namespace crowdfusion::core {

/// Global budget allocation across many fact universes (books).
///
/// The paper's evaluation fixes a per-book budget B and observes in its
/// error analysis (Section V-D) that "books with large numbers of
/// statements are more likely to be judged incorrectly ... if a proper
/// strategy can be designed to distribute budgets among all subsets of
/// facts, this can be solved." This scheduler is that strategy: it holds
/// ONE global budget and, at every step, spends the next tasks on the
/// instance whose best task set currently promises the largest expected
/// quality gain ΔQ = H(T) - |T| * H(Crowd). Uncertain, statement-rich
/// books naturally attract more budget; confident books stop consuming it.
///
/// Instances are independent CrowdFusion problems (their joints never
/// interact); the scheduler owns the joints and queries the selector
/// lazily, re-evaluating only the instance whose distribution changed.
///
/// Two serving modes share that policy:
///  * Blocking (`RunStep`/`Run`): one ticket at a time — submit the
///    winner's tasks, block through the crowd's latency, merge. This is
///    the paper's Figure-1 loop verbatim.
///  * Pipelined (`RunPipelined`): keeps up to `max_in_flight` ticket
///    batches outstanding. While one instance's answers are in flight the
///    scheduler selects and submits for the next-best instances, and
///    re-ranks ΔQ lazily as merges land (only the merged instance's
///    cached selection is invalidated). With a zero-latency provider the
///    pipelined schedule reproduces the blocking one exactly; with real
///    latency, selection compute for book B overlaps answer latency for
///    book A.
class BudgetScheduler {
 public:
  /// What RunPipelined does when a ticket fails terminally (the provider's
  /// own retries exhausted, or its deadline expired).
  enum class TicketFailurePolicy {
    /// Abort the whole run with the ticket's status (the historical
    /// behavior and the default).
    kAbort,
    /// Mark only the failed ticket's instance dead — it stops receiving
    /// budget — release the reserved tasks, and keep serving everyone
    /// else.
    kSkipInstance,
  };

  struct Options {
    /// Total tasks across all instances.
    int total_budget = 600;
    /// Tasks per scheduling step (the k handed to the selector).
    int tasks_per_step = 1;
    /// Outstanding ticket batches RunPipelined may keep in flight (>= 1).
    int max_in_flight = 4;
    /// Failure policy for terminally failed pipelined tickets.
    TicketFailurePolicy on_ticket_failure = TicketFailurePolicy::kAbort;
    /// Service contract stamped on every submitted ticket. max_attempts
    /// defaults to 1 here (not TicketOptions' 3) so a failing provider
    /// surfaces its error after exactly one collection call, as the
    /// blocking loop always did; raise it to opt into retries.
    TicketOptions ticket = {.max_attempts = 1};
    /// Time source for poll sleeps; nullptr means Clock::Real(). Tests
    /// inject a ManualClock shared with the providers. Not owned; must
    /// outlive the scheduler.
    common::Clock* clock = nullptr;
    /// Longest single poll sleep while waiting on in-flight tickets, so a
    /// provider under-reporting its readiness can't stall the loop.
    double max_poll_seconds = 0.050;
    /// Overlap selection compute across books: when a launch decision
    /// finds several idle instances with stale selections (the initial
    /// window fill, a multi-merge harvest, streaming arrivals), their
    /// Select() calls run concurrently on the shared ThreadPool instead
    /// of back to back. Only taken when the selector declares
    /// ConcurrentSelectSafe() — concurrent results are then identical to
    /// serial ones, so schedules (and every pinned differential) are
    /// unchanged; the switch exists for A/B benching and bisection.
    bool concurrent_selection = true;
  };

  struct StepRecord {
    int step = 0;
    int instance = -1;
    std::vector<int> tasks;
    std::vector<bool> answers;
    /// Expected gain that won the step, bits.
    double expected_gain_bits = 0.0;
    /// Sum of Q(F) over all instances after the merge.
    double total_utility_bits = 0.0;
    int cumulative_cost = 0;
    /// Submit-to-merge delay of this step's ticket, seconds (0 for
    /// zero-latency providers).
    double latency_seconds = 0.0;
  };

  /// The selector is borrowed and must outlive the scheduler; the
  /// scheduler never deletes it.
  static common::Result<BudgetScheduler> Create(CrowdModel crowd,
                                                TaskSelector* selector,
                                                Options options);

  BudgetScheduler(BudgetScheduler&&) = default;
  BudgetScheduler& operator=(BudgetScheduler&&) = default;

  /// Registers an instance served by a synchronous provider; the scheduler
  /// wraps it in an owned zero-latency SyncProviderAdapter, so both run
  /// modes work. Returns the instance index. The provider is borrowed and
  /// must outlive the scheduler.
  common::Result<int> AddInstance(std::string name, JointDistribution joint,
                                  AnswerProvider* provider);

  /// Registers an instance served natively asynchronously (e.g. a
  /// latency-simulating crowd). The provider is borrowed and must outlive
  /// the scheduler.
  common::Result<int> AddInstanceAsync(std::string name,
                                       JointDistribution joint,
                                       AsyncAnswerProvider* provider);

  int num_instances() const { return static_cast<int>(instances_.size()); }
  bool HasBudget() const { return cost_spent_ < options_.total_budget; }

  /// Raises the global budget by `tasks` (>= 0) — the streaming-arrivals
  /// companion to adding instances mid-run, callable between steps.
  common::Status AddBudget(int tasks);

  /// Runs one blocking step: find the instance with the best expected
  /// gain, submit its selected tasks, block until the answers land, merge.
  /// Precondition: HasBudget() and at least one instance. Returns a record
  /// with instance = -1 if no instance has any positive-gain task left.
  common::Result<StepRecord> RunStep();

  /// Runs blocking steps until the budget is gone or no gain remains.
  common::Result<std::vector<StepRecord>> Run();

  /// Runs the overlap-capable serving loop until the budget is gone or no
  /// gain remains anywhere, keeping up to Options::max_in_flight ticket
  /// batches outstanding. Records are in merge order. A ticket that fails
  /// terminally (after the provider's own retries) aborts the run with its
  /// status under TicketFailurePolicy::kAbort, or kills only its instance
  /// under kSkipInstance.
  common::Result<std::vector<StepRecord>> RunPipelined();

  /// One pipelined serving quantum, for callers that interleave serving
  /// with other work (the service facade's Session::Step): fills the
  /// in-flight window with the best idle instances, sleeps until the
  /// earliest outstanding ticket resolves, and harvests every resolved
  /// ticket, appending the merged records. Returns false when the run is
  /// complete (budget gone or no gain anywhere; the exhaustion marker
  /// record is appended exactly as RunPipelined emits it). Assumes no
  /// aborted run's tickets are pending — start a fresh scheduler, or go
  /// through RunPipelined which clears them.
  common::Result<bool> RunPipelinedStep(std::vector<StepRecord>& records);

  /// Number of instances marked dead by TicketFailurePolicy::kSkipInstance.
  int dead_instances() const;

  /// True when kSkipInstance killed this instance.
  bool instance_dead(int instance) const;

  const JointDistribution& joint(int instance) const;
  const std::string& name(int instance) const;
  int cost_spent(int instance) const;
  int total_cost_spent() const { return cost_spent_; }

  /// Sum of Q(F) over all instances.
  double TotalUtilityBits() const;

  /// Wall seconds of every selector Select() this scheduler ran, in issue
  /// order (concurrent refreshes are recorded in instance order after the
  /// join). Feeds the service layer's selection-compute percentiles.
  const std::vector<double>& selection_compute_seconds() const {
    return selection_compute_seconds_;
  }

 private:
  struct Instance {
    std::string name;
    JointDistribution joint;
    /// Serving endpoint. Either borrowed (AddInstanceAsync) or pointing at
    /// owned_adapter (AddInstance).
    AsyncAnswerProvider* provider = nullptr;
    /// Owns the adapter when the instance was registered with a sync
    /// provider; the wrapped sync provider itself stays borrowed.
    std::unique_ptr<SyncProviderAdapter> owned_adapter;
    int cost_spent = 0;
    /// Set by TicketFailurePolicy::kSkipInstance when this instance's
    /// ticket failed terminally; dead instances never receive budget again.
    bool dead = false;
    /// Cached best selection for the current joint; empty tasks means the
    /// selector found no benefit. Invalidated on merge, and recomputed
    /// when the requested k changes (a selection cached under a larger k
    /// must never be submitted against a smaller remaining budget).
    bool selection_valid = false;
    int cached_k = 0;
    Selection cached_selection;
    /// In-flight ticket state (RunPipelined).
    bool in_flight = false;
    TicketId ticket = 0;
    std::vector<int> pending_tasks;
    double pending_gain_bits = 0.0;
    double submitted_at = 0.0;
  };

  BudgetScheduler(CrowdModel crowd, TaskSelector* selector, Options options)
      : crowd_(crowd), selector_(selector), options_(options) {}

  /// Refreshes the cached selection of one instance if stale, recording
  /// the Select() wall time in `elapsed_seconds` (0 on a cache hit).
  /// Thread-compatible: touches only `instance`, so distinct instances
  /// may refresh concurrently.
  common::Status RefreshSelectionTimed(Instance& instance, int k,
                                       double& elapsed_seconds);

  /// RefreshSelectionTimed plus the timing bookkeeping; scheduler thread
  /// only.
  common::Status RefreshSelection(Instance& instance, int k);

  /// When the selector is ConcurrentSelectSafe and two or more idle alive
  /// instances have stale selections, refreshes them all concurrently on
  /// the shared ThreadPool (compute-vs-compute overlap across books).
  /// Statuses and timings land in per-slot arrays and are folded in
  /// ascending instance order after the join, so error propagation and
  /// the timing log stay deterministic and the scheduler stays movable
  /// (no lock members).
  common::Status RefreshStaleSelectionsConcurrently(int k);

  /// Best-ΔQ-per-task instance among those not in flight, refreshing stale
  /// selections; -1 when no instance has a positive-gain selection.
  common::Result<int> PickBestIdleInstance(int k);

  /// Cancels and clears every in-flight ticket (an aborted run's
  /// leftovers) and re-bases the budget reservation.
  void AbandonInFlightTickets();

  /// Submits `instance`'s cached selection and marks it in flight.
  common::Status SubmitSelection(Instance& instance, double now);

  /// Merges a resolved ticket's answers and emits its StepRecord.
  common::Result<StepRecord> HarvestTicket(Instance& instance, double now);

  common::Clock* clock() const {
    return options_.clock == nullptr ? common::Clock::Real() : options_.clock;
  }

  CrowdModel crowd_;
  TaskSelector* selector_;
  Options options_;
  std::vector<Instance> instances_;
  int cost_spent_ = 0;
  /// cost_spent_ plus tasks reserved by in-flight tickets; launch
  /// decisions budget against this so overlap cannot overspend.
  int cost_reserved_ = 0;
  int steps_run_ = 0;
  std::vector<double> selection_compute_seconds_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_SCHEDULER_H_
