#ifndef CROWDFUSION_CORE_SCHEDULER_H_
#define CROWDFUSION_CORE_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/crowdfusion.h"
#include "core/task_selector.h"

namespace crowdfusion::core {

/// Global budget allocation across many fact universes (books).
///
/// The paper's evaluation fixes a per-book budget B and observes in its
/// error analysis (Section V-D) that "books with large numbers of
/// statements are more likely to be judged incorrectly ... if a proper
/// strategy can be designed to distribute budgets among all subsets of
/// facts, this can be solved." This scheduler is that strategy: it holds
/// ONE global budget and, at every step, spends the next tasks on the
/// instance whose best task set currently promises the largest expected
/// quality gain ΔQ = H(T) - |T| * H(Crowd). Uncertain, statement-rich
/// books naturally attract more budget; confident books stop consuming it.
///
/// Instances are independent CrowdFusion problems (their joints never
/// interact); the scheduler owns the joints and queries the selector
/// lazily, re-evaluating only the instance whose distribution changed.
class BudgetScheduler {
 public:
  struct Options {
    /// Total tasks across all instances.
    int total_budget = 600;
    /// Tasks per scheduling step (the k handed to the selector).
    int tasks_per_step = 1;
  };

  struct StepRecord {
    int step = 0;
    int instance = -1;
    std::vector<int> tasks;
    std::vector<bool> answers;
    /// Expected gain that won the step, bits.
    double expected_gain_bits = 0.0;
    /// Sum of Q(F) over all instances after the merge.
    double total_utility_bits = 0.0;
    int cumulative_cost = 0;
  };

  /// The selector must outlive the scheduler.
  static common::Result<BudgetScheduler> Create(CrowdModel crowd,
                                                TaskSelector* selector,
                                                Options options);

  BudgetScheduler(BudgetScheduler&&) = default;
  BudgetScheduler& operator=(BudgetScheduler&&) = default;

  /// Registers an instance; returns its index. The provider must outlive
  /// the scheduler.
  common::Result<int> AddInstance(std::string name, JointDistribution joint,
                                  AnswerProvider* provider);

  int num_instances() const { return static_cast<int>(instances_.size()); }
  bool HasBudget() const { return cost_spent_ < options_.total_budget; }

  /// Runs one step: find the instance with the best expected gain, ask its
  /// selected tasks, merge. Precondition: HasBudget() and at least one
  /// instance. Returns a record with instance = -1 if no instance has any
  /// positive-gain task left.
  common::Result<StepRecord> RunStep();

  /// Runs until the budget is gone or no gain remains anywhere.
  common::Result<std::vector<StepRecord>> Run();

  const JointDistribution& joint(int instance) const;
  const std::string& name(int instance) const;
  int cost_spent(int instance) const;
  int total_cost_spent() const { return cost_spent_; }

  /// Sum of Q(F) over all instances.
  double TotalUtilityBits() const;

 private:
  struct Instance {
    std::string name;
    JointDistribution joint;
    AnswerProvider* provider = nullptr;
    int cost_spent = 0;
    /// Cached best selection for the current joint; empty tasks means the
    /// selector found no benefit. Invalidated on merge.
    bool selection_valid = false;
    Selection cached_selection;
  };

  BudgetScheduler(CrowdModel crowd, TaskSelector* selector, Options options)
      : crowd_(crowd), selector_(selector), options_(options) {}

  /// Refreshes the cached selection of one instance if stale.
  common::Status RefreshSelection(Instance& instance, int k);

  CrowdModel crowd_;
  TaskSelector* selector_;
  Options options_;
  std::vector<Instance> instances_;
  int cost_spent_ = 0;
  int steps_run_ = 0;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_SCHEDULER_H_
