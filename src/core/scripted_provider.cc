#include "core/scripted_provider.h"

#include "common/string_util.h"

namespace crowdfusion::core {

common::Result<std::vector<bool>> ScriptedProvider::CollectAnswers(
    std::span<const int> fact_ids) {
  ++calls_;
  if (failures_left_ > 0) {
    --failures_left_;
    return common::Status::Unavailable("scripted outage");
  }
  std::vector<bool> answers;
  answers.reserve(fact_ids.size());
  for (const int id : fact_ids) {
    if (id < 0) {
      return common::Status::InvalidArgument(
          common::StrFormat("scripted provider asked about fact %d", id));
    }
    if (options_.script.empty()) {
      answers.push_back(id % 2 == 1);
    } else {
      if (static_cast<size_t>(id) >= options_.script.size()) {
        return common::Status::InvalidArgument(common::StrFormat(
            "scripted provider asked about fact %d but the script covers "
            "%zu facts",
            id, options_.script.size()));
      }
      answers.push_back(options_.script[static_cast<size_t>(id)]);
    }
  }
  return answers;
}

}  // namespace crowdfusion::core
