#ifndef CROWDFUSION_CORE_SCRIPTED_PROVIDER_H_
#define CROWDFUSION_CORE_SCRIPTED_PROVIDER_H_

#include <vector>

#include "core/crowdfusion.h"

namespace crowdfusion::core {

/// Deterministic AnswerProvider for tests, differentials, and config-built
/// runs: fact id `i` is always answered with `script[i]` (or with the
/// parity rule `i % 2 == 1` when the script is empty — the idiom the test
/// suite has used since PR 1). The first `failures_before_success`
/// collection calls fail with kUnavailable, which exercises retry and
/// failure-policy paths without a latency model.
class ScriptedProvider : public AnswerProvider {
 public:
  struct Options {
    /// Per-fact scripted answers; empty means the parity rule.
    std::vector<bool> script;
    /// Collection calls that fail (kUnavailable) before the first success.
    int failures_before_success = 0;

    friend bool operator==(const Options& a, const Options& b) = default;
  };

  ScriptedProvider() = default;
  explicit ScriptedProvider(Options options) : options_(std::move(options)) {
    failures_left_ = options_.failures_before_success;
  }

  common::Result<std::vector<bool>> CollectAnswers(
      std::span<const int> fact_ids) override;

  /// Collection calls made so far (successful or not).
  int calls() const { return calls_; }

  const Options& options() const { return options_; }

 private:
  Options options_;
  int failures_left_ = 0;
  int calls_ = 0;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_SCRIPTED_PROVIDER_H_
