#include "core/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace crowdfusion::core {

using common::Status;

namespace {

constexpr char kJointHeader[] = "crowdfusion-joint v1";
constexpr char kFactsHeader[] = "crowdfusion-facts v1";

bool IsCommentOrBlank(const std::string& line) {
  const std::string trimmed = common::Trim(line);
  return trimmed.empty() || trimmed[0] == '#';
}

}  // namespace

Status SaveJointDistribution(const JointDistribution& joint,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out << kJointHeader << "\n";
  out << "facts " << joint.num_facts() << "\n";
  for (const auto& entry : joint.entries()) {
    out << "entry " << entry.mask << " "
        << common::StrFormat("%.17g", entry.prob) << "\n";
  }
  out.close();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

common::Result<JointDistribution> LoadJointDistribution(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line) || common::Trim(line) != kJointHeader) {
    return Status::InvalidArgument("missing joint header in " + path);
  }
  int num_facts = -1;
  std::vector<JointDistribution::Entry> entries;
  while (std::getline(in, line)) {
    if (IsCommentOrBlank(line)) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "facts") {
      fields >> num_facts;
      if (!fields) return Status::InvalidArgument("bad facts line: " + line);
    } else if (keyword == "entry") {
      JointDistribution::Entry entry;
      fields >> entry.mask >> entry.prob;
      if (!fields) return Status::InvalidArgument("bad entry line: " + line);
      entries.push_back(entry);
    } else {
      return Status::InvalidArgument("unknown keyword: " + keyword);
    }
  }
  if (num_facts < 0) {
    return Status::InvalidArgument("joint file has no facts line");
  }
  return JointDistribution::FromEntries(num_facts, std::move(entries),
                                        /*normalize=*/false,
                                        /*tolerance=*/1e-9);
}

Status SaveFactSet(const FactSet& facts, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  out << kFactsHeader << "\n";
  for (const Fact& fact : facts.facts()) {
    if (fact.subject.find('\t') != std::string::npos ||
        fact.predicate.find('\t') != std::string::npos ||
        fact.object.find('\t') != std::string::npos) {
      return Status::InvalidArgument(
          "fact fields must not contain tab characters: " + fact.ToString());
    }
    out << fact.subject << '\t' << fact.predicate << '\t' << fact.object
        << '\n';
  }
  out.close();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

common::Result<FactSet> LoadFactSet(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line) || common::Trim(line) != kFactsHeader) {
    return Status::InvalidArgument("missing facts header in " + path);
  }
  FactSet facts;
  while (std::getline(in, line)) {
    if (IsCommentOrBlank(line)) continue;
    const auto fields = common::Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument("bad fact line: " + line);
    }
    facts.Add({fields[0], fields[1], fields[2]});
  }
  return facts;
}

}  // namespace crowdfusion::core
