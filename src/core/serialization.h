#ifndef CROWDFUSION_CORE_SERIALIZATION_H_
#define CROWDFUSION_CORE_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "core/fact.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Plain-text persistence for fact sets and joint distributions, so fusion
/// outputs can be checkpointed between rounds or shipped to another
/// process. Format (line-oriented, '#' comments allowed):
///
///   crowdfusion-joint v1
///   facts <n>
///   entry <mask-decimal> <probability>
///   ...
///
/// Probabilities are written with 17 significant digits so a save/load
/// round-trip is bit-exact for doubles.
common::Status SaveJointDistribution(const JointDistribution& joint,
                                     const std::string& path);

common::Result<JointDistribution> LoadJointDistribution(
    const std::string& path);

/// Fact sets persist as tab-separated subject/predicate/object triples:
///
///   crowdfusion-facts v1
///   <subject> \t <predicate> \t <object>
common::Status SaveFactSet(const FactSet& facts, const std::string& path);

common::Result<FactSet> LoadFactSet(const std::string& path);

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_SERIALIZATION_H_
