#include "core/sparse_refiner.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/math_util.h"

namespace crowdfusion::core {

SparsePartitionRefiner::SparsePartitionRefiner(const JointDistribution& joint,
                                               const CrowdModel& crowd,
                                               Options options)
    : num_facts_(joint.num_facts()), crowd_(crowd), options_(options) {
  const auto& entries = joint.entries();
  masks_.reserve(entries.size());
  probs_.reserve(entries.size());
  for (const auto& entry : entries) {
    masks_.push_back(entry.mask);
    probs_.push_back(entry.prob);
  }
  part_of_.assign(masks_.size(), 0);
}

SparsePartitionRefiner::SparsePartitionRefiner(const JointDistribution& joint,
                                               const CrowdModel& crowd)
    : SparsePartitionRefiner(joint, crowd, Options()) {}

std::vector<double> SparsePartitionRefiner::CellSumsWithCandidate(
    int fact) const {
  CF_CHECK(fact >= 0 && fact < num_facts_)
      << "candidate fact id out of range: " << fact;
  std::vector<double> sums(static_cast<size_t>(num_parts_) * 2, 0.0);
  const size_t count = masks_.size();
  // The hot loop of the whole selector: three sequential array reads and
  // one accumulate whose cell index is monotone in i (entries are sorted
  // by part), branch-free judgment-bit extraction.
  for (size_t i = 0; i < count; ++i) {
    const size_t cell = (static_cast<size_t>(part_of_[i]) << 1) |
                        ((masks_[i] >> fact) & 1ULL);
    sums[cell] += probs_[i];
  }
  return sums;
}

std::vector<double> SparsePartitionRefiner::CellSumsWithCandidateSharded(
    int fact, int shards, common::ThreadPool& pool) const {
  CF_CHECK(fact >= 0 && fact < num_facts_)
      << "candidate fact id out of range: " << fact;
  const size_t count = masks_.size();
  const size_t cells = static_cast<size_t>(num_parts_) * 2;
  const size_t per_shard =
      (count + static_cast<size_t>(shards) - 1) / static_cast<size_t>(shards);
  // One cell accumulator per shard; boundaries are fixed by the shard
  // count, so the floating-point reduction order (and thus the result) is
  // deterministic regardless of which worker runs which shard.
  std::vector<std::vector<double>> partials(
      static_cast<size_t>(shards), std::vector<double>(cells, 0.0));
  pool.ParallelFor(
      0, shards,
      [this, fact, count, per_shard, &partials](int64_t shard_begin,
                                                int64_t shard_end) {
        for (int64_t shard = shard_begin; shard < shard_end; ++shard) {
          std::vector<double>& sums = partials[static_cast<size_t>(shard)];
          const size_t begin = static_cast<size_t>(shard) * per_shard;
          const size_t end = std::min(begin + per_shard, count);
          for (size_t i = begin; i < end; ++i) {
            const size_t cell = (static_cast<size_t>(part_of_[i]) << 1) |
                                ((masks_[i] >> fact) & 1ULL);
            sums[cell] += probs_[i];
          }
        }
      },
      shards);
  std::vector<double> sums = std::move(partials.front());
  for (size_t shard = 1; shard < partials.size(); ++shard) {
    for (size_t cell = 0; cell < cells; ++cell) {
      sums[cell] += partials[shard][cell];
    }
  }
  return sums;
}

double SparsePartitionRefiner::EntropyFromCellSums(
    std::vector<double> sums) const {
  const int k = static_cast<int>(committed_.size());
  crowd_.PushThroughChannel(sums, k + 1);
  return common::Entropy(sums);
}

double SparsePartitionRefiner::EntropyWithCandidate(int fact) const {
  CF_CHECK(static_cast<int>(committed_.size()) < kMaxCommittedTasks)
      << "committed set too large to refine";
  return EntropyFromCellSums(CellSumsWithCandidate(fact));
}

int SparsePartitionRefiner::ResolveThreads(size_t num_candidates) const {
  if (options_.num_threads == 1 || num_candidates == 0) return 1;
  const int64_t work =
      static_cast<int64_t>(masks_.size()) *
      static_cast<int64_t>(num_candidates);
  if (work < options_.min_parallel_work) return 1;
  common::ThreadPool* pool =
      options_.pool == nullptr ? common::ThreadPool::Shared() : options_.pool;
  const int available = pool->num_threads() + 1;  // workers + caller
  const int threads =
      options_.num_threads > 0 ? std::min(options_.num_threads, available)
                               : std::min(available, 8);
  return std::max(1, threads);
}

std::vector<double> SparsePartitionRefiner::EntropiesWithCandidates(
    std::span<const int> facts) const {
  std::vector<double> out(facts.size(), 0.0);
  const int threads = ResolveThreads(facts.size());
  if (threads <= 1) {
    for (size_t i = 0; i < facts.size(); ++i) {
      out[i] = EntropyWithCandidate(facts[i]);
    }
    return out;
  }
  CF_CHECK(static_cast<int>(committed_.size()) < kMaxCommittedTasks)
      << "committed set too large to refine";
  common::ThreadPool* pool =
      options_.pool == nullptr ? common::ThreadPool::Shared() : options_.pool;
  if (facts.size() >= static_cast<size_t>(threads)) {
    // Enough candidates to keep every shard busy: shard by candidate.
    // Evaluations only read the shared arrays, so shards are
    // embarrassingly parallel.
    pool->ParallelFor(
        0, static_cast<int64_t>(facts.size()),
        [this, &facts, &out](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            out[static_cast<size_t>(i)] =
                EntropyWithCandidate(facts[static_cast<size_t>(i)]);
          }
        },
        threads);
    return out;
  }
  // Few candidates over a very large support (the tail of a pruned greedy
  // round): shard the O(|O|) entry scan itself instead, one candidate at
  // a time. The shard count is a fixed constant — NOT the pool size — so
  // the floating-point reduction order, and therefore the entropies and
  // any near-tie greedy argmax they feed, are identical on every machine.
  const int entry_shards = static_cast<int>(
      std::min<size_t>(kEntryShards, masks_.size()));
  for (size_t i = 0; i < facts.size(); ++i) {
    out[i] = EntropyFromCellSums(
        CellSumsWithCandidateSharded(facts[i], entry_shards, *pool));
  }
  return out;
}

void SparsePartitionRefiner::Commit(int fact) {
  CF_CHECK(fact >= 0 && fact < num_facts_)
      << "committed fact id out of range: " << fact;
  CF_CHECK(static_cast<int>(committed_.size()) < kMaxCommittedTasks)
      << "committed set capped at " << kMaxCommittedTasks << " tasks";
  const size_t count = masks_.size();
  for (size_t i = 0; i < count; ++i) {
    part_of_[i] = (part_of_[i] << 1) |
                  static_cast<uint32_t>((masks_[i] >> fact) & 1ULL);
  }
  num_parts_ <<= 1;
  committed_.push_back(fact);

  // Restore the sorted-by-cell invariant with a stable counting sort; the
  // cell id space (2^|T|) stays small relative to |O| for any |T| worth
  // refining, and one O(|O| + 2^|T|) pass keeps later scans sequential.
  std::vector<size_t> cell_start(static_cast<size_t>(num_parts_) + 1, 0);
  for (size_t i = 0; i < count; ++i) ++cell_start[part_of_[i] + 1];
  for (size_t c = 1; c < cell_start.size(); ++c) {
    cell_start[c] += cell_start[c - 1];
  }
  std::vector<uint64_t> sorted_masks(count);
  std::vector<double> sorted_probs(count);
  std::vector<uint32_t> sorted_parts(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t pos = cell_start[part_of_[i]]++;
    sorted_masks[pos] = masks_[i];
    sorted_probs[pos] = probs_[i];
    sorted_parts[pos] = part_of_[i];
  }
  masks_ = std::move(sorted_masks);
  probs_ = std::move(sorted_probs);
  part_of_ = std::move(sorted_parts);
}

double SparsePartitionRefiner::CommittedEntropyBits() const {
  const int k = static_cast<int>(committed_.size());
  std::vector<double> sums(static_cast<size_t>(num_parts_), 0.0);
  const size_t count = masks_.size();
  for (size_t i = 0; i < count; ++i) sums[part_of_[i]] += probs_[i];
  crowd_.PushThroughChannel(sums, k);
  return common::Entropy(sums);
}

}  // namespace crowdfusion::core
