#include "core/sparse_refiner.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/scratch.h"

#if CROWDFUSION_SIMD_AVX2_COMPILED
#include <immintrin.h>
#endif

namespace crowdfusion::core {

SparsePartitionRefiner::SparsePartitionRefiner(const JointDistribution& joint,
                                               const CrowdModel& crowd,
                                               Options options)
    : num_facts_(joint.num_facts()),
      crowd_(crowd),
      options_(options),
      use_avx2_(common::ResolveSimd(options.simd)) {
  const auto& entries = joint.entries();
  masks_.reserve(entries.size());
  probs_.reserve(entries.size());
  for (const auto& entry : entries) {
    masks_.push_back(entry.mask);
    probs_.push_back(entry.prob);
  }
  part_of_.assign(masks_.size(), 0);
}

SparsePartitionRefiner::SparsePartitionRefiner(const JointDistribution& joint,
                                               const CrowdModel& crowd)
    : SparsePartitionRefiner(joint, crowd, Options()) {}

std::vector<double> SparsePartitionRefiner::CellSumsWithCandidate(
    int fact) const {
  CF_CHECK(fact >= 0 && fact < num_facts_)
      << "candidate fact id out of range: " << fact;
  std::vector<double> sums(static_cast<size_t>(num_parts_) * 2, 0.0);
  const size_t count = masks_.size();
  // The single-candidate reference scan: three sequential array reads and
  // one accumulate whose cell index is monotone in i (entries are sorted
  // by part), branch-free judgment-bit extraction. The batched tile
  // kernels below are pinned bit-for-bit against this loop.
  for (size_t i = 0; i < count; ++i) {
    const size_t cell = (static_cast<size_t>(part_of_[i]) << 1) |
                        ((masks_[i] >> fact) & 1ULL);
    sums[cell] += probs_[i];
  }
  return sums;
}

void SparsePartitionRefiner::AccumulateTile(const int* facts, int width,
                                            size_t begin, size_t end,
                                            double* tile) const {
#if CROWDFUSION_SIMD_AVX2_COMPILED
  // The AVX2 kernel is written for exactly one full tile; ragged final
  // tiles take the scalar kernel (identical bits either way).
  if (use_avx2_ && width == kCandidateTileWidth) {
    AccumulateTileAvx2(facts, width, begin, end, tile);
    return;
  }
#endif
  AccumulateTileScalar(facts, width, begin, end, tile);
}

void SparsePartitionRefiner::AccumulateTileScalar(const int* facts, int width,
                                                  size_t begin, size_t end,
                                                  double* tile) const {
  // One pass over the support for the whole tile: the three streamed
  // arrays are read once per entry instead of once per candidate, and
  // each lane's adds happen in ascending i order — exactly the order of
  // the single-candidate scan, so every lane is bit-identical to it.
  for (size_t i = begin; i < end; ++i) {
    const uint64_t mask = masks_[i];
    const double prob = probs_[i];
    const size_t base = static_cast<size_t>(part_of_[i]) << 1;
    for (int c = 0; c < width; ++c) {
      const size_t cell = base | ((mask >> facts[c]) & 1ULL);
      tile[cell * kCandidateTileWidth + c] += prob;
    }
  }
}

#if CROWDFUSION_SIMD_AVX2_COMPILED
// Vectorized across the tile's candidate lanes: one broadcast mask is
// variable-shifted by each lane's fact id, the compare mask routes the
// broadcast prob to the bit-1 or bit-0 accumulator (masked lanes add an
// exact +0.0), and because entries are sorted by part each cell is one
// contiguous run — the run is accumulated in four registers and flushed
// to the tile once at the run boundary. Per lane the adds are therefore
// still in ascending i order starting from +0.0, with +0.0 identities
// interleaved: bit-identical to the scalar kernel and the reference scan.
// Masking is bitwise AND/ANDNOT, not multiply, so no FMA contraction can
// perturb the sums.
__attribute__((target("avx2"))) void SparsePartitionRefiner::
    AccumulateTileAvx2(const int* facts, int width, size_t begin, size_t end,
                       double* tile) const {
  static_assert(kCandidateTileWidth == 8,
                "AVX2 kernel assumes two 4-lane halves");
  (void)width;  // dispatcher guarantees width == kCandidateTileWidth
  if (begin >= end) return;
  const __m256i shift_lo =
      _mm256_setr_epi64x(facts[0], facts[1], facts[2], facts[3]);
  const __m256i shift_hi =
      _mm256_setr_epi64x(facts[4], facts[5], facts[6], facts[7]);
  const __m256i one = _mm256_set1_epi64x(1);
  __m256d acc0_lo = _mm256_setzero_pd();
  __m256d acc0_hi = _mm256_setzero_pd();
  __m256d acc1_lo = _mm256_setzero_pd();
  __m256d acc1_hi = _mm256_setzero_pd();
  uint32_t run_part = part_of_[begin];
  for (size_t i = begin; i < end; ++i) {
    const uint32_t part = part_of_[i];
    if (part != run_part) {
      // Run boundary: flush the four accumulators into the tile slots of
      // the finished part's two cells. load-add-store (rather than plain
      // store) keeps the kernel correct when a caller splits one part's
      // run across two invocations, as the entry-sharded path does.
      double* slot0 =
          tile + (static_cast<size_t>(run_part) << 1) * kCandidateTileWidth;
      double* slot1 = slot0 + kCandidateTileWidth;
      _mm256_storeu_pd(slot0,
                       _mm256_add_pd(_mm256_loadu_pd(slot0), acc0_lo));
      _mm256_storeu_pd(slot0 + 4,
                       _mm256_add_pd(_mm256_loadu_pd(slot0 + 4), acc0_hi));
      _mm256_storeu_pd(slot1,
                       _mm256_add_pd(_mm256_loadu_pd(slot1), acc1_lo));
      _mm256_storeu_pd(slot1 + 4,
                       _mm256_add_pd(_mm256_loadu_pd(slot1 + 4), acc1_hi));
      acc0_lo = _mm256_setzero_pd();
      acc0_hi = _mm256_setzero_pd();
      acc1_lo = _mm256_setzero_pd();
      acc1_hi = _mm256_setzero_pd();
      run_part = part;
    }
    const __m256i mask = _mm256_set1_epi64x(static_cast<int64_t>(masks_[i]));
    const __m256d prob = _mm256_set1_pd(probs_[i]);
    const __m256i bit_lo =
        _mm256_and_si256(_mm256_srlv_epi64(mask, shift_lo), one);
    const __m256i bit_hi =
        _mm256_and_si256(_mm256_srlv_epi64(mask, shift_hi), one);
    const __m256d sel_lo =
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(bit_lo, one));
    const __m256d sel_hi =
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(bit_hi, one));
    acc1_lo = _mm256_add_pd(acc1_lo, _mm256_and_pd(sel_lo, prob));
    acc1_hi = _mm256_add_pd(acc1_hi, _mm256_and_pd(sel_hi, prob));
    acc0_lo = _mm256_add_pd(acc0_lo, _mm256_andnot_pd(sel_lo, prob));
    acc0_hi = _mm256_add_pd(acc0_hi, _mm256_andnot_pd(sel_hi, prob));
  }
  double* slot0 =
      tile + (static_cast<size_t>(run_part) << 1) * kCandidateTileWidth;
  double* slot1 = slot0 + kCandidateTileWidth;
  _mm256_storeu_pd(slot0, _mm256_add_pd(_mm256_loadu_pd(slot0), acc0_lo));
  _mm256_storeu_pd(slot0 + 4,
                   _mm256_add_pd(_mm256_loadu_pd(slot0 + 4), acc0_hi));
  _mm256_storeu_pd(slot1, _mm256_add_pd(_mm256_loadu_pd(slot1), acc1_lo));
  _mm256_storeu_pd(slot1 + 4,
                   _mm256_add_pd(_mm256_loadu_pd(slot1 + 4), acc1_hi));
}
#endif  // CROWDFUSION_SIMD_AVX2_COMPILED

void SparsePartitionRefiner::EvaluateTile(const int* facts, int width,
                                          double* out) const {
  for (int c = 0; c < width; ++c) {
    CF_CHECK(facts[c] >= 0 && facts[c] < num_facts_)
        << "candidate fact id out of range: " << facts[c];
  }
  const size_t cells = static_cast<size_t>(num_parts_) * 2;
  std::vector<double>& tile = common::ZeroedThreadScratch(
      common::ScratchSlot::kTileSums, cells * kCandidateTileWidth);
  AccumulateTile(facts, width, 0, masks_.size(), tile.data());
  std::vector<double>& sums =
      common::ZeroedThreadScratch(common::ScratchSlot::kCellSums, cells);
  for (int c = 0; c < width; ++c) {
    // De-interleave lane c into the contiguous cell vector the noise
    // butterfly runs over (plain copies, no arithmetic).
    for (size_t cell = 0; cell < cells; ++cell) {
      sums[cell] = tile[cell * kCandidateTileWidth + c];
    }
    out[c] = EntropyFromCellSums(sums);
  }
}

void SparsePartitionRefiner::EvaluateTileSharded(const int* facts, int width,
                                                 int shards,
                                                 common::ThreadPool& pool,
                                                 double* out) const {
  for (int c = 0; c < width; ++c) {
    CF_CHECK(facts[c] >= 0 && facts[c] < num_facts_)
        << "candidate fact id out of range: " << facts[c];
  }
  const size_t count = masks_.size();
  const size_t cells = static_cast<size_t>(num_parts_) * 2;
  const size_t tile_elems = cells * kCandidateTileWidth;
  const size_t per_shard =
      (count + static_cast<size_t>(shards) - 1) / static_cast<size_t>(shards);
  // One tile accumulator per shard, in refiner-owned scratch (assign()
  // reuses capacity). Shard boundaries are fixed by the shard count and
  // shards write disjoint slices, so no synchronization and a
  // deterministic reduction order regardless of which worker ran what.
  entry_partials_.assign(static_cast<size_t>(shards) * tile_elems, 0.0);
  pool.ParallelFor(
      0, shards,
      [this, facts, width, count, per_shard, tile_elems](int64_t shard_begin,
                                                         int64_t shard_end) {
        for (int64_t shard = shard_begin; shard < shard_end; ++shard) {
          const size_t begin = static_cast<size_t>(shard) * per_shard;
          const size_t end = std::min(begin + per_shard, count);
          AccumulateTile(
              facts, width, begin, end,
              entry_partials_.data() + static_cast<size_t>(shard) * tile_elems);
        }
      },
      shards);
  std::vector<double>& sums =
      common::ZeroedThreadScratch(common::ScratchSlot::kCellSums, cells);
  for (int c = 0; c < width; ++c) {
    for (size_t cell = 0; cell < cells; ++cell) {
      // Ascending-shard reduction: the fixed summation order that makes
      // the entry-sharded path machine-independent.
      double total = entry_partials_[cell * kCandidateTileWidth + c];
      for (int shard = 1; shard < shards; ++shard) {
        total += entry_partials_[static_cast<size_t>(shard) * tile_elems +
                                 cell * kCandidateTileWidth + c];
      }
      sums[cell] = total;
    }
    out[c] = EntropyFromCellSums(sums);
  }
}

double SparsePartitionRefiner::EntropyFromCellSums(
    std::vector<double>& sums) const {
  const int k = static_cast<int>(committed_.size());
  crowd_.PushThroughChannel(sums, k + 1);
  return common::Entropy(sums);
}

double SparsePartitionRefiner::EntropyWithCandidate(int fact) const {
  CF_CHECK(static_cast<int>(committed_.size()) < kMaxCommittedTasks)
      << "committed set too large to refine";
  std::vector<double> sums = CellSumsWithCandidate(fact);
  return EntropyFromCellSums(sums);
}

int SparsePartitionRefiner::ResolveThreads(size_t num_candidates) const {
  if (options_.num_threads == 1 || num_candidates == 0) return 1;
  const int64_t work =
      static_cast<int64_t>(masks_.size()) *
      static_cast<int64_t>(num_candidates);
  if (work < options_.min_parallel_work) return 1;
  common::ThreadPool* pool =
      options_.pool == nullptr ? common::ThreadPool::Shared() : options_.pool;
  const int available = pool->num_threads() + 1;  // workers + caller
  const int threads =
      options_.num_threads > 0 ? std::min(options_.num_threads, available)
                               : std::min(available, 8);
  return std::max(1, threads);
}

std::vector<double> SparsePartitionRefiner::EntropiesWithCandidates(
    std::span<const int> facts) const {
  std::vector<double> out(facts.size(), 0.0);
  if (facts.empty()) return out;
  CF_CHECK(static_cast<int>(committed_.size()) < kMaxCommittedTasks)
      << "committed set too large to refine";
  const size_t num_tiles =
      (facts.size() + kCandidateTileWidth - 1) / kCandidateTileWidth;
  const auto tile_width = [&facts](size_t tile) {
    return static_cast<int>(std::min<size_t>(
        kCandidateTileWidth,
        facts.size() - tile * kCandidateTileWidth));
  };
  const int threads = ResolveThreads(facts.size());
  if (threads <= 1) {
    for (size_t t = 0; t < num_tiles; ++t) {
      EvaluateTile(facts.data() + t * kCandidateTileWidth, tile_width(t),
                   out.data() + t * kCandidateTileWidth);
    }
    return out;
  }
  common::ThreadPool* pool =
      options_.pool == nullptr ? common::ThreadPool::Shared() : options_.pool;
  if (facts.size() >= static_cast<size_t>(threads)) {
    // Enough candidates to keep every shard busy: shard by tile. Tile
    // boundaries are fixed by kCandidateTileWidth alone — never by the
    // thread count — and evaluations only read the shared arrays, so
    // shards are embarrassingly parallel and the output is identical to
    // the serial loop above, bit for bit.
    pool->ParallelFor(
        0, static_cast<int64_t>(num_tiles),
        [this, &facts, &out, &tile_width](int64_t begin, int64_t end) {
          for (int64_t t = begin; t < end; ++t) {
            const size_t b =
                static_cast<size_t>(t) * kCandidateTileWidth;
            EvaluateTile(facts.data() + b,
                         tile_width(static_cast<size_t>(t)), out.data() + b);
          }
        },
        threads);
    return out;
  }
  // Few candidates over a very large support (the tail of a pruned greedy
  // round): shard the O(|O|) entry scan itself. The shard count is a
  // fixed constant — NOT the pool size — so the floating-point reduction
  // order, and therefore the entropies and any near-tie greedy argmax
  // they feed, are identical on every machine.
  const int entry_shards = static_cast<int>(
      std::min<size_t>(kEntryShards, masks_.size()));
  for (size_t t = 0; t < num_tiles; ++t) {
    EvaluateTileSharded(facts.data() + t * kCandidateTileWidth, tile_width(t),
                        entry_shards, *pool,
                        out.data() + t * kCandidateTileWidth);
  }
  return out;
}

void SparsePartitionRefiner::Commit(int fact) {
  CF_CHECK(fact >= 0 && fact < num_facts_)
      << "committed fact id out of range: " << fact;
  CF_CHECK(static_cast<int>(committed_.size()) < kMaxCommittedTasks)
      << "committed set capped at " << kMaxCommittedTasks << " tasks";
  const size_t count = masks_.size();
  for (size_t i = 0; i < count; ++i) {
    part_of_[i] = (part_of_[i] << 1) |
                  static_cast<uint32_t>((masks_[i] >> fact) & 1ULL);
  }
  num_parts_ <<= 1;
  committed_.push_back(fact);

  // Restore the sorted-by-cell invariant with a stable counting sort; the
  // cell id space (2^|T|) stays small relative to |O| for any |T| worth
  // refining, and one O(|O| + 2^|T|) pass keeps later scans sequential.
  // The destination arrays are member scratch double-buffered against the
  // live arrays: fill, then swap — no per-commit allocation after the
  // buffers reach their high-water mark.
  cell_start_.assign(static_cast<size_t>(num_parts_) + 1, 0);
  for (size_t i = 0; i < count; ++i) ++cell_start_[part_of_[i] + 1];
  for (size_t c = 1; c < cell_start_.size(); ++c) {
    cell_start_[c] += cell_start_[c - 1];
  }
  sorted_masks_.resize(count);
  sorted_probs_.resize(count);
  sorted_parts_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t pos = cell_start_[part_of_[i]]++;
    sorted_masks_[pos] = masks_[i];
    sorted_probs_[pos] = probs_[i];
    sorted_parts_[pos] = part_of_[i];
  }
  std::swap(masks_, sorted_masks_);
  std::swap(probs_, sorted_probs_);
  std::swap(part_of_, sorted_parts_);
}

double SparsePartitionRefiner::CommittedEntropyBits() const {
  const int k = static_cast<int>(committed_.size());
  std::vector<double> sums(static_cast<size_t>(num_parts_), 0.0);
  const size_t count = masks_.size();
  for (size_t i = 0; i < count; ++i) sums[part_of_[i]] += probs_[i];
  crowd_.PushThroughChannel(sums, k);
  return common::Entropy(sums);
}

}  // namespace crowdfusion::core
