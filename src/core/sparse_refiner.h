#ifndef CROWDFUSION_CORE_SPARSE_REFINER_H_
#define CROWDFUSION_CORE_SPARSE_REFINER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.h"
#include "common/thread_pool.h"
#include "core/crowd_model.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Algorithm 2 (the greedy's preprocessing stage) evaluated directly on the
/// sparse output support, without ever materializing the 2^n answer joint.
///
/// The dense `PartitionRefiner` partitions the full answer table; for
/// n >> 20 facts that table does not fit anywhere. But the refined answer
/// marginal of the committed set T is also the output-support marginal
/// pushed through |T| binary symmetric channels, so the partition can be
/// maintained over the |O| support entries instead: each entry carries the
/// id of its refined cell (the truth pattern of the committed tasks, in
/// commit order), a candidate evaluation is one O(|O|) scan that splits
/// every cell by the candidate's judgment bit, and the crowd noise is
/// applied to the resulting 2^(|T|+1) cell vector with the usual
/// O(|T| 2^|T|) butterfly — negligible next to the scan for the k used in
/// practice.
///
/// Layout is struct-of-arrays and the entries are kept counting-sorted by
/// cell id after every commit ("sort by refined cell"), so the hot scan
/// reads three parallel arrays sequentially and its cell accumulator walks
/// monotonically.
///
/// Candidate evaluation is BATCHED: one pass over the support accumulates
/// cell sums for a tile of kCandidateTileWidth candidates at once — the
/// tile extracts each candidate's judgment bit from the same loaded mask,
/// so the memory traffic every candidate used to pay alone (three streamed
/// arrays per scan) is amortized across the whole tile. The inner loop is
/// explicitly vectorized (AVX2 masked accumulation across the tile's
/// lanes, selected by runtime dispatch; a portable scalar tile kernel
/// otherwise). Both kernels make each candidate's floating-point adds in
/// ascending support order — masked lanes add exact +0.0 — so batched,
/// SIMD, scalar, and the one-candidate-at-a-time scan are all
/// bit-identical, machine- and dispatch-independent; the goldens pinned
/// against the pre-batched refiner hold without re-blessing.
///
/// Batch evaluation runs on a common::ThreadPool (reused workers, no
/// per-batch thread spawn): large candidate batches shard by tile, while
/// small batches over very large supports shard the O(|O|) entry scan
/// itself (fixed kEntryShards boundaries, per-shard cell accumulators, one
/// fixed-order reduction). The shared arrays are read-only during
/// evaluation so shards need no synchronization, and all kernel scratch is
/// reused — per-thread for tile accumulators, refiner-owned and
/// double-buffered for the entry shards and the commit sort — so the
/// request path stops allocating after warm-up.
///
/// Supports the full n <= JointDistribution::kMaxFacts = 64 fact range.
/// The committed set is capped at kMaxCommittedTasks because the noisy
/// cell vector is dense in 2^(|T|+1).
class SparsePartitionRefiner {
 public:
  struct Options {
    /// Shard cap for batch evaluation. 0 = auto (the pool's worker count
    /// plus the calling thread, capped); 1 = always serial.
    int num_threads = 0;
    /// Minimum support-entries-times-candidates product before a batch
    /// evaluation bothers going parallel.
    int64_t min_parallel_work = int64_t{1} << 16;
    /// Worker pool for parallel evaluation. Borrowed; must outlive the
    /// refiner. nullptr uses the process-wide ThreadPool::Shared().
    common::ThreadPool* pool = nullptr;
    /// Kernel dispatch: kAuto follows the host (and the
    /// CROWDFUSION_DISABLE_SIMD toggles); the forced values exist for the
    /// dispatch differential tests and the scalar-vs-SIMD bench rows.
    common::SimdPolicy simd = common::SimdPolicy::kAuto;
  };

  /// Largest committed-set size |T|; 2^(|T|+1) cells must stay cheap.
  static constexpr int kMaxCommittedTasks = 20;

  /// Fixed shard count for entry-level sharding. A constant (not the pool
  /// size) so the partial-sum reduction order — and with it every entropy
  /// down to the last bit — is machine-independent; the pool merely
  /// executes however many of these shards it can in parallel.
  static constexpr size_t kEntryShards = 8;

  /// Fixed width of one candidate tile (and the interleave stride of the
  /// tile accumulators): 8 doubles = two AVX2 lanesful. Fixed so batch
  /// boundaries never depend on host or thread count — and because every
  /// candidate's adds stay in ascending support order, results do not
  /// depend on the tiling at all; the constant is pinned anyway as part of
  /// the determinism contract.
  static constexpr int kCandidateTileWidth = 8;

  /// Copies the support out of `joint` (the refiner permutes its own copy)
  /// and the crowd model by value; neither argument needs to outlive it.
  SparsePartitionRefiner(const JointDistribution& joint,
                         const CrowdModel& crowd, Options options);
  SparsePartitionRefiner(const JointDistribution& joint,
                         const CrowdModel& crowd);

  int num_facts() const { return num_facts_; }
  int64_t support_size() const { return static_cast<int64_t>(masks_.size()); }

  /// H(T ∪ {fact}) in bits, where T is the committed set. One O(|O|) scan.
  double EntropyWithCandidate(int fact) const;

  /// H(T ∪ {fact}) for every fact in `facts`, evaluated in batched tiles
  /// and sharded across the pool when the batch is large enough: by tile
  /// (bit-identical to mapping EntropyWithCandidate), or by support entry
  /// when candidates are few but |O| is very large (same values up to the
  /// fixed kEntryShards-way summation order — deterministic and
  /// machine-independent, but not bit-identical to the serial scan).
  std::vector<double> EntropiesWithCandidates(std::span<const int> facts) const;

  /// Adds `fact` to the committed set: refines every cell by its judgment
  /// bit and re-sorts the support by the new cell ids.
  void Commit(int fact);

  /// Entropy of the committed task set's answer marginal, H(T).
  double CommittedEntropyBits() const;

  const std::vector<int>& committed() const { return committed_; }
  /// Number of refined cells, 2^|T| (empty cells included).
  uint32_t num_parts() const { return num_parts_; }

  /// True when this refiner's evaluations dispatch the AVX2 kernel.
  bool simd_active() const { return use_avx2_; }

 private:
  /// Unnoised refined cell masses for T ∪ {fact}: cell (part << 1) | bit.
  std::vector<double> CellSumsWithCandidate(int fact) const;

  /// The batched hot kernel: accumulates cell sums for `width` candidates
  /// (1..kCandidateTileWidth) over support entries [begin, end) into
  /// `tile`, laid out tile[cell * kCandidateTileWidth + lane] and sized
  /// for 2 * num_parts_ cells. Adds, never overwrites — callers zero (or
  /// chain) the accumulators. Dispatches AVX2 or the scalar tile kernel;
  /// both make candidate c's adds in ascending i order, so every lane is
  /// bit-identical to the single-candidate scan over the same range.
  void AccumulateTile(const int* facts, int width, size_t begin, size_t end,
                      double* tile) const;
  void AccumulateTileScalar(const int* facts, int width, size_t begin,
                            size_t end, double* tile) const;
#if CROWDFUSION_SIMD_AVX2_COMPILED
  void AccumulateTileAvx2(const int* facts, int width, size_t begin,
                          size_t end, double* tile) const;
#endif

  /// Evaluates one tile over the whole support with per-thread scratch:
  /// out[c] = H(T ∪ {facts[c]}) for c in [0, width).
  void EvaluateTile(const int* facts, int width, double* out) const;

  /// Entry-sharded EvaluateTile: splits the support scan into `shards`
  /// fixed ranges on the pool and reduces the per-shard tile accumulators
  /// in ascending shard order (the refiner-owned scratch holds the
  /// partials). Deterministic for a fixed shard count.
  void EvaluateTileSharded(const int* facts, int width, int shards,
                           common::ThreadPool& pool, double* out) const;

  /// Crowd-noise butterfly + entropy over one candidate's cell sums,
  /// in place.
  double EntropyFromCellSums(std::vector<double>& sums) const;

  int ResolveThreads(size_t num_candidates) const;

  int num_facts_ = 0;
  CrowdModel crowd_;
  Options options_;
  bool use_avx2_ = false;
  // Parallel arrays over the support, sorted by part_of_ value.
  std::vector<uint64_t> masks_;
  std::vector<double> probs_;
  std::vector<uint32_t> part_of_;
  uint32_t num_parts_ = 1;
  std::vector<int> committed_;
  // Reused kernel/commit scratch (not part of logical state, so mutable:
  // the evaluation API is const). `entry_partials_` backs the one
  // entry-sharded evaluation in flight — shards write disjoint slices;
  // the refiner is single-caller like any other non-thread-safe value
  // type, so no lock is needed. The sorted_* triplet double-buffers the
  // commit counting sort: filled, then swapped with the live arrays.
  mutable std::vector<double> entry_partials_;
  std::vector<size_t> cell_start_;
  std::vector<uint64_t> sorted_masks_;
  std::vector<double> sorted_probs_;
  std::vector<uint32_t> sorted_parts_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_SPARSE_REFINER_H_
