#ifndef CROWDFUSION_CORE_SPARSE_REFINER_H_
#define CROWDFUSION_CORE_SPARSE_REFINER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/crowd_model.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Algorithm 2 (the greedy's preprocessing stage) evaluated directly on the
/// sparse output support, without ever materializing the 2^n answer joint.
///
/// The dense `PartitionRefiner` partitions the full answer table; for
/// n >> 20 facts that table does not fit anywhere. But the refined answer
/// marginal of the committed set T is also the output-support marginal
/// pushed through |T| binary symmetric channels, so the partition can be
/// maintained over the |O| support entries instead: each entry carries the
/// id of its refined cell (the truth pattern of the committed tasks, in
/// commit order), a candidate evaluation is one O(|O|) scan that splits
/// every cell by the candidate's judgment bit, and the crowd noise is
/// applied to the resulting 2^(|T|+1) cell vector with the usual
/// O(|T| 2^|T|) butterfly — negligible next to the scan for the k used in
/// practice.
///
/// Layout is struct-of-arrays and the entries are kept counting-sorted by
/// cell id after every commit ("sort by refined cell"), so the hot scan
/// reads three parallel arrays sequentially and its cell accumulator walks
/// monotonically. Batch evaluation runs on a common::ThreadPool (reused
/// workers, no per-batch thread spawn): large candidate batches shard by
/// candidate, while small batches over very large supports shard the
/// O(|O|) entry scan itself (per-shard cell accumulators, one reduction).
/// The shared arrays are read-only during evaluation so shards need no
/// synchronization.
///
/// Supports the full n <= JointDistribution::kMaxFacts = 64 fact range.
/// The committed set is capped at kMaxCommittedTasks because the noisy
/// cell vector is dense in 2^(|T|+1).
class SparsePartitionRefiner {
 public:
  struct Options {
    /// Shard cap for batch evaluation. 0 = auto (the pool's worker count
    /// plus the calling thread, capped); 1 = always serial.
    int num_threads = 0;
    /// Minimum support-entries-times-candidates product before a batch
    /// evaluation bothers going parallel.
    int64_t min_parallel_work = int64_t{1} << 16;
    /// Worker pool for parallel evaluation. Borrowed; must outlive the
    /// refiner. nullptr uses the process-wide ThreadPool::Shared().
    common::ThreadPool* pool = nullptr;
  };

  /// Largest committed-set size |T|; 2^(|T|+1) cells must stay cheap.
  static constexpr int kMaxCommittedTasks = 20;

  /// Fixed shard count for entry-level sharding. A constant (not the pool
  /// size) so the partial-sum reduction order — and with it every entropy
  /// down to the last bit — is machine-independent; the pool merely
  /// executes however many of these shards it can in parallel.
  static constexpr size_t kEntryShards = 8;

  /// Copies the support out of `joint` (the refiner permutes its own copy)
  /// and the crowd model by value; neither argument needs to outlive it.
  SparsePartitionRefiner(const JointDistribution& joint,
                         const CrowdModel& crowd, Options options);
  SparsePartitionRefiner(const JointDistribution& joint,
                         const CrowdModel& crowd);

  int num_facts() const { return num_facts_; }
  int64_t support_size() const { return static_cast<int64_t>(masks_.size()); }

  /// H(T ∪ {fact}) in bits, where T is the committed set. One O(|O|) scan.
  double EntropyWithCandidate(int fact) const;

  /// H(T ∪ {fact}) for every fact in `facts`, sharded across the pool
  /// when the batch is large enough: by candidate (bit-identical to
  /// mapping EntropyWithCandidate), or by support entry when candidates
  /// are few but |O| is very large (same values up to the fixed
  /// kEntryShards-way summation order — deterministic and
  /// machine-independent, but not bit-identical to the serial scan).
  std::vector<double> EntropiesWithCandidates(std::span<const int> facts) const;

  /// Adds `fact` to the committed set: refines every cell by its judgment
  /// bit and re-sorts the support by the new cell ids.
  void Commit(int fact);

  /// Entropy of the committed task set's answer marginal, H(T).
  double CommittedEntropyBits() const;

  const std::vector<int>& committed() const { return committed_; }
  /// Number of refined cells, 2^|T| (empty cells included).
  uint32_t num_parts() const { return num_parts_; }

 private:
  /// Unnoised refined cell masses for T ∪ {fact}: cell (part << 1) | bit.
  std::vector<double> CellSumsWithCandidate(int fact) const;

  /// Entry-sharded CellSumsWithCandidate: splits the support scan into
  /// `shards` fixed ranges on the pool and reduces the per-shard cell
  /// accumulators. Deterministic for a fixed shard count.
  std::vector<double> CellSumsWithCandidateSharded(
      int fact, int shards, common::ThreadPool& pool) const;

  double EntropyFromCellSums(std::vector<double> sums) const;

  int ResolveThreads(size_t num_candidates) const;

  int num_facts_ = 0;
  CrowdModel crowd_;
  Options options_;
  // Parallel arrays over the support, sorted by part_of_ value.
  std::vector<uint64_t> masks_;
  std::vector<double> probs_;
  std::vector<uint32_t> part_of_;
  uint32_t num_parts_ = 1;
  std::vector<int> committed_;
};

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_SPARSE_REFINER_H_
