#include "core/spec_json.h"

#include "common/json_util.h"

namespace crowdfusion::core {

using common::JsonValue;

JsonValue ProviderSpecToJson(const ProviderSpec& spec) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("kind", spec.kind);
  json.Set("truths", common::JsonFromBoolVec(spec.truths));
  json.Set("categories", common::JsonFromIntVec(spec.categories));
  json.Set("accuracy", spec.accuracy);
  json.Set("biased", spec.biased);
  json.Set("seed", common::JsonU64(spec.seed));
  json.Set("latency_median_seconds", spec.latency_median_seconds);
  json.Set("latency_sigma", spec.latency_sigma);
  json.Set("failure_probability", spec.failure_probability);
  json.Set("straggler_probability", spec.straggler_probability);
  json.Set("straggler_factor", spec.straggler_factor);
  json.Set("latency_seed", common::JsonU64(spec.latency_seed));
  json.Set("script", common::JsonFromBoolVec(spec.script));
  json.Set("failures_before_success", spec.failures_before_success);
  json.Set("endpoint", spec.endpoint);
  json.Set("universe_kind", spec.universe_kind);
  json.Set("endpoints", common::JsonFromStringVec(spec.endpoints));
  json.Set("await_timeout_seconds", spec.await_timeout_seconds);
  return json;
}

common::Result<ProviderSpec> ProviderSpecFromJson(const JsonValue& json) {
  CF_RETURN_IF_ERROR(
      common::JsonRequireObject(json, "provider").status());
  ProviderSpec spec;
  CF_RETURN_IF_ERROR(common::JsonReadString(json, "kind", &spec.kind));
  CF_RETURN_IF_ERROR(common::JsonReadBoolVec(json, "truths", &spec.truths));
  CF_RETURN_IF_ERROR(
      common::JsonReadIntVec(json, "categories", &spec.categories));
  CF_RETURN_IF_ERROR(
      common::JsonReadDouble(json, "accuracy", &spec.accuracy));
  CF_RETURN_IF_ERROR(common::JsonReadBool(json, "biased", &spec.biased));
  CF_RETURN_IF_ERROR(common::JsonReadU64(json, "seed", &spec.seed));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "latency_median_seconds",
                                            &spec.latency_median_seconds));
  CF_RETURN_IF_ERROR(
      common::JsonReadDouble(json, "latency_sigma", &spec.latency_sigma));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "failure_probability",
                                            &spec.failure_probability));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "straggler_probability",
                                            &spec.straggler_probability));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "straggler_factor",
                                            &spec.straggler_factor));
  CF_RETURN_IF_ERROR(
      common::JsonReadU64(json, "latency_seed", &spec.latency_seed));
  CF_RETURN_IF_ERROR(common::JsonReadBoolVec(json, "script", &spec.script));
  CF_RETURN_IF_ERROR(common::JsonReadInt(json, "failures_before_success",
                                         &spec.failures_before_success));
  CF_RETURN_IF_ERROR(
      common::JsonReadString(json, "endpoint", &spec.endpoint));
  CF_RETURN_IF_ERROR(
      common::JsonReadString(json, "universe_kind", &spec.universe_kind));
  CF_RETURN_IF_ERROR(
      common::JsonReadStringVec(json, "endpoints", &spec.endpoints));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "await_timeout_seconds",
                                            &spec.await_timeout_seconds));
  return spec;
}

}  // namespace crowdfusion::core
