#include "core/spec_json.h"

#include <algorithm>
#include <iterator>

#include "common/json_util.h"

namespace crowdfusion::core {

using common::JsonValue;

JsonValue AdversarySpecToJson(const AdversarySpec& spec) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("enabled", spec.enabled);
  json.Set("num_workers", spec.num_workers);
  json.Set("colluder_fraction", spec.colluder_fraction);
  json.Set("collusion_target_fraction", spec.collusion_target_fraction);
  json.Set("sybil_fraction", spec.sybil_fraction);
  json.Set("spammer_fraction", spec.spammer_fraction);
  json.Set("parrot_fraction", spec.parrot_fraction);
  json.Set("drift_per_answer", spec.drift_per_answer);
  json.Set("drift_floor", spec.drift_floor);
  json.Set("drift_ceiling", spec.drift_ceiling);
  json.Set("seed", common::JsonU64(spec.seed));
  return json;
}

common::Result<AdversarySpec> AdversarySpecFromJson(const JsonValue& json) {
  CF_RETURN_IF_ERROR(
      common::JsonRequireObject(json, "adversary").status());
  static constexpr const char* kKnownKeys[] = {
      "enabled",          "num_workers",
      "colluder_fraction", "collusion_target_fraction",
      "sybil_fraction",   "spammer_fraction",
      "parrot_fraction",  "drift_per_answer",
      "drift_floor",      "drift_ceiling",
      "seed",
  };
  for (const auto& [key, value] : json.object()) {
    if (std::find(std::begin(kKnownKeys), std::end(kKnownKeys), key) ==
        std::end(kKnownKeys)) {
      return common::Status::InvalidArgument(
          "unknown adversary key \"" + key + "\"");
    }
  }
  AdversarySpec spec;
  CF_RETURN_IF_ERROR(common::JsonReadBool(json, "enabled", &spec.enabled));
  CF_RETURN_IF_ERROR(
      common::JsonReadInt(json, "num_workers", &spec.num_workers));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "colluder_fraction",
                                            &spec.colluder_fraction));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(
      json, "collusion_target_fraction", &spec.collusion_target_fraction));
  CF_RETURN_IF_ERROR(
      common::JsonReadDouble(json, "sybil_fraction", &spec.sybil_fraction));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "spammer_fraction",
                                            &spec.spammer_fraction));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "parrot_fraction",
                                            &spec.parrot_fraction));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "drift_per_answer",
                                            &spec.drift_per_answer));
  CF_RETURN_IF_ERROR(
      common::JsonReadDouble(json, "drift_floor", &spec.drift_floor));
  CF_RETURN_IF_ERROR(
      common::JsonReadDouble(json, "drift_ceiling", &spec.drift_ceiling));
  CF_RETURN_IF_ERROR(common::JsonReadU64(json, "seed", &spec.seed));
  return spec;
}

JsonValue ProviderSpecToJson(const ProviderSpec& spec) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("kind", spec.kind);
  json.Set("truths", common::JsonFromBoolVec(spec.truths));
  json.Set("categories", common::JsonFromIntVec(spec.categories));
  json.Set("accuracy", spec.accuracy);
  json.Set("biased", spec.biased);
  json.Set("seed", common::JsonU64(spec.seed));
  json.Set("latency_median_seconds", spec.latency_median_seconds);
  json.Set("latency_sigma", spec.latency_sigma);
  json.Set("failure_probability", spec.failure_probability);
  json.Set("straggler_probability", spec.straggler_probability);
  json.Set("straggler_factor", spec.straggler_factor);
  json.Set("latency_seed", common::JsonU64(spec.latency_seed));
  json.Set("adversary", AdversarySpecToJson(spec.adversary));
  json.Set("script", common::JsonFromBoolVec(spec.script));
  json.Set("failures_before_success", spec.failures_before_success);
  json.Set("endpoint", spec.endpoint);
  json.Set("universe_kind", spec.universe_kind);
  json.Set("endpoints", common::JsonFromStringVec(spec.endpoints));
  json.Set("await_timeout_seconds", spec.await_timeout_seconds);
  return json;
}

common::Result<ProviderSpec> ProviderSpecFromJson(const JsonValue& json) {
  CF_RETURN_IF_ERROR(
      common::JsonRequireObject(json, "provider").status());
  ProviderSpec spec;
  CF_RETURN_IF_ERROR(common::JsonReadString(json, "kind", &spec.kind));
  CF_RETURN_IF_ERROR(common::JsonReadBoolVec(json, "truths", &spec.truths));
  CF_RETURN_IF_ERROR(
      common::JsonReadIntVec(json, "categories", &spec.categories));
  CF_RETURN_IF_ERROR(
      common::JsonReadDouble(json, "accuracy", &spec.accuracy));
  CF_RETURN_IF_ERROR(common::JsonReadBool(json, "biased", &spec.biased));
  CF_RETURN_IF_ERROR(common::JsonReadU64(json, "seed", &spec.seed));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "latency_median_seconds",
                                            &spec.latency_median_seconds));
  CF_RETURN_IF_ERROR(
      common::JsonReadDouble(json, "latency_sigma", &spec.latency_sigma));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "failure_probability",
                                            &spec.failure_probability));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "straggler_probability",
                                            &spec.straggler_probability));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "straggler_factor",
                                            &spec.straggler_factor));
  CF_RETURN_IF_ERROR(
      common::JsonReadU64(json, "latency_seed", &spec.latency_seed));
  if (const JsonValue* adversary = json.Find("adversary");
      adversary != nullptr) {
    CF_ASSIGN_OR_RETURN(spec.adversary, AdversarySpecFromJson(*adversary));
  }
  CF_RETURN_IF_ERROR(common::JsonReadBoolVec(json, "script", &spec.script));
  CF_RETURN_IF_ERROR(common::JsonReadInt(json, "failures_before_success",
                                         &spec.failures_before_success));
  CF_RETURN_IF_ERROR(
      common::JsonReadString(json, "endpoint", &spec.endpoint));
  CF_RETURN_IF_ERROR(
      common::JsonReadString(json, "universe_kind", &spec.universe_kind));
  CF_RETURN_IF_ERROR(
      common::JsonReadStringVec(json, "endpoints", &spec.endpoints));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "await_timeout_seconds",
                                            &spec.await_timeout_seconds));
  return spec;
}

}  // namespace crowdfusion::core
