#ifndef CROWDFUSION_CORE_SPEC_JSON_H_
#define CROWDFUSION_CORE_SPEC_JSON_H_

#include "common/json.h"
#include "common/status.h"
#include "core/registry.h"

namespace crowdfusion::core {

/// JSON form of the provider template (core::ProviderSpec) — ONE field
/// list shared by every wire that ships provider specs: the service
/// request format (`provider` member of crowdfusion-request-v1) and the
/// net crowd wire (universe registration). Field conventions follow
/// common/json_util.h: absent members keep C++ defaults, seeds are
/// int64-or-decimal-string lossless, wrong types are kInvalidArgument.
common::JsonValue ProviderSpecToJson(const ProviderSpec& spec);
common::Result<ProviderSpec> ProviderSpecFromJson(
    const common::JsonValue& json);

/// The nested "adversary" block of a provider spec. Unlike the tolerant
/// provider object around it, this block REJECTS unknown members
/// (kInvalidArgument naming the key): an adversary config is an attack
/// description, and a typoed knob silently reverting to "honest" would
/// make a hostile scenario quietly benign.
common::JsonValue AdversarySpecToJson(const AdversarySpec& spec);
common::Result<AdversarySpec> AdversarySpecFromJson(
    const common::JsonValue& json);

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_SPEC_JSON_H_
