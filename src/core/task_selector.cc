#include "core/task_selector.h"

#include <unordered_set>

#include "common/string_util.h"

namespace crowdfusion::core {

using common::Status;

common::Result<std::vector<int>> ResolveCandidates(
    const SelectionRequest& request) {
  if (request.joint == nullptr) {
    return Status::InvalidArgument("SelectionRequest.joint is null");
  }
  if (request.crowd == nullptr) {
    return Status::InvalidArgument("SelectionRequest.crowd is null");
  }
  if (request.k <= 0) {
    return Status::InvalidArgument(
        common::StrFormat("k must be positive, got %d", request.k));
  }
  if (!request.joint->IsNormalized(1e-6)) {
    return Status::FailedPrecondition(
        "joint distribution is not normalized");
  }
  std::vector<int> candidates = request.candidates;
  if (candidates.empty()) {
    candidates.resize(static_cast<size_t>(request.joint->num_facts()));
    for (int i = 0; i < request.joint->num_facts(); ++i) {
      candidates[static_cast<size_t>(i)] = i;
    }
  } else {
    std::unordered_set<int> seen;
    for (int id : candidates) {
      if (id < 0 || id >= request.joint->num_facts()) {
        return Status::OutOfRange(
            common::StrFormat("candidate fact id %d out of range", id));
      }
      if (!seen.insert(id).second) {
        return Status::InvalidArgument(
            common::StrFormat("candidate fact id %d repeated", id));
      }
    }
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate facts to select from");
  }
  return candidates;
}

}  // namespace crowdfusion::core
