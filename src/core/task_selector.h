#ifndef CROWDFUSION_CORE_TASK_SELECTOR_H_
#define CROWDFUSION_CORE_TASK_SELECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/crowd_model.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Inputs of one task-selection round (Definition 4): pick at most k facts
/// to ask the crowd so that the answer entropy H(T) is maximized.
struct SelectionRequest {
  /// Current output distribution. Must be normalized.
  const JointDistribution* joint = nullptr;
  /// Crowd accuracy model.
  const CrowdModel* crowd = nullptr;
  /// Number of tasks to select (k). Clamped to the candidate count.
  int k = 1;
  /// Optional explicit candidate fact ids; empty means all facts.
  std::vector<int> candidates;
};

/// Per-round instrumentation, reported by every selector. Drives the
/// Table V runtime reproduction and the pruning ablation.
struct SelectionStats {
  /// Candidate task sets (OPT) or candidate facts (greedy) whose entropy
  /// was actually evaluated.
  int64_t evaluations = 0;
  /// Candidates eliminated by the Theorem 3 pruning bound.
  int64_t pruned = 0;
  /// Wall-clock selection time, seconds.
  double elapsed_seconds = 0.0;
  /// Seconds of `elapsed_seconds` spent in preprocessing (answer joint
  /// construction), when enabled.
  double preprocessing_seconds = 0.0;
  /// True if the round ran on the sparse-support partition refiner rather
  /// than the dense 2^n answer table.
  bool sparse_preprocessing = false;
};

/// Result of one selection round.
struct Selection {
  /// Chosen fact ids, in selection order. May have fewer than k entries if
  /// the greedy stopped early (K* < k, Algorithm 1 line 6).
  std::vector<int> tasks;
  /// H(T) of the chosen set, bits.
  double entropy_bits = 0.0;
  SelectionStats stats;
};

/// Interface implemented by OPT, the greedy approximation, and the random
/// baseline. Selectors are stateless across rounds; all state travels in
/// the request.
class TaskSelector {
 public:
  virtual ~TaskSelector() = default;

  virtual common::Result<Selection> Select(const SelectionRequest& request) = 0;

  /// Short name for reports ("OPT", "Approx.", "Approx.&Prune", ...).
  virtual std::string name() const = 0;

  /// True when concurrent Select() calls on this instance are safe AND
  /// yield results identical to serial calls in any order. The default is
  /// conservative: selectors that carry mutable per-instance state — the
  /// randomized baselines advance an RNG stream per call, so concurrent
  /// calls would both race and reorder their draws — must stay serial.
  /// Deterministic stateless selectors (greedy, OPT) override to true,
  /// which lets the scheduler overlap selection compute across books.
  virtual bool ConcurrentSelectSafe() const { return false; }
};

/// Validates a request and resolves the candidate list (all facts when
/// request.candidates is empty). Shared by all selectors.
common::Result<std::vector<int>> ResolveCandidates(
    const SelectionRequest& request);

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_TASK_SELECTOR_H_
