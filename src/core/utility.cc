#include "core/utility.h"

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "core/answer_model.h"
#include "core/sparse_refiner.h"

namespace crowdfusion::core {

using common::Status;

double QualityBits(const JointDistribution& joint) {
  return -joint.EntropyBits();
}

double TaskEntropyBits(const JointDistribution& joint,
                       std::span<const int> tasks, const CrowdModel& crowd) {
  return AnswerEntropyBits(joint, tasks, crowd);
}

double ExpectedQualityGain(const JointDistribution& joint,
                           std::span<const int> tasks,
                           const CrowdModel& crowd) {
  return TaskEntropyBits(joint, tasks, crowd) -
         static_cast<double>(tasks.size()) * crowd.EntropyBits();
}

double MarginalGain(const JointDistribution& joint,
                    std::span<const int> selected, int candidate,
                    const CrowdModel& crowd) {
  std::vector<int> extended(selected.begin(), selected.end());
  extended.push_back(candidate);
  return TaskEntropyBits(joint, extended, crowd) -
         TaskEntropyBits(joint, selected, crowd);
}

common::Result<std::vector<double>> MarginalGainProfile(
    const JointDistribution& joint, std::span<const int> selected,
    std::span<const int> candidates, const CrowdModel& crowd,
    int num_threads) {
  if (static_cast<int>(selected.size()) >=
      SparsePartitionRefiner::kMaxCommittedTasks) {
    return Status::InvalidArgument(common::StrFormat(
        "selected set of %zu tasks exceeds the refiner cap of %d",
        selected.size(), SparsePartitionRefiner::kMaxCommittedTasks));
  }
  for (int id : selected) {
    if (id < 0 || id >= joint.num_facts()) {
      return Status::OutOfRange("selected fact id out of range");
    }
  }
  for (int id : candidates) {
    if (id < 0 || id >= joint.num_facts()) {
      return Status::OutOfRange("candidate fact id out of range");
    }
  }
  SparsePartitionRefiner::Options options;
  options.num_threads = num_threads;
  SparsePartitionRefiner refiner(joint, crowd, options);
  for (int id : selected) refiner.Commit(id);
  const double h_selected = refiner.CommittedEntropyBits();
  std::vector<double> gains = refiner.EntropiesWithCandidates(candidates);
  for (double& gain : gains) gain -= h_selected;
  return gains;
}

common::Result<std::vector<double>> FoiAnswerJointTable(
    const JointDistribution& joint, std::span<const int> foi,
    std::span<const int> tasks, const CrowdModel& crowd) {
  const int ni = static_cast<int>(foi.size());
  const int nt = static_cast<int>(tasks.size());
  const int m = ni + nt;
  if (m > JointDistribution::kMaxDenseFacts) {
    return Status::InvalidArgument(
        "|FOI| + |tasks| too large for dense joint table");
  }
  for (int id : foi) {
    if (id < 0 || id >= joint.num_facts()) {
      return Status::OutOfRange("FOI fact id out of range");
    }
  }
  for (int id : tasks) {
    if (id < 0 || id >= joint.num_facts()) {
      return Status::OutOfRange("task fact id out of range");
    }
  }
  const std::vector<int> foi_pos(foi.begin(), foi.end());
  const std::vector<int> task_pos(tasks.begin(), tasks.end());
  std::vector<double> table(1ULL << m, 0.0);
  for (const auto& entry : joint.entries()) {
    const uint64_t idx_foi = common::ExtractBits(entry.mask, foi_pos);
    const uint64_t idx_task = common::ExtractBits(entry.mask, task_pos);
    table[idx_foi | (idx_task << ni)] += entry.prob;
  }
  // Only the task coordinates (the high block) pass through the crowd's
  // noisy channel; FOI truths stay latent.
  const uint64_t noisy =
      nt == 0 ? 0ULL : (((1ULL << nt) - 1) << ni);
  crowd.PushThroughChannelOnCoords(table, m, noisy);
  return table;
}

common::Result<double> FoiTaskJointEntropyBits(const JointDistribution& joint,
                                               std::span<const int> foi,
                                               std::span<const int> tasks,
                                               const CrowdModel& crowd) {
  CF_ASSIGN_OR_RETURN(std::vector<double> table,
                      FoiAnswerJointTable(joint, foi, tasks, crowd));
  return common::Entropy(table);
}

common::Result<double> QueryBasedUtility(const JointDistribution& joint,
                                         std::span<const int> foi,
                                         std::span<const int> tasks,
                                         const CrowdModel& crowd) {
  CF_ASSIGN_OR_RETURN(double h_joint,
                      FoiTaskJointEntropyBits(joint, foi, tasks, crowd));
  const double h_tasks = TaskEntropyBits(joint, tasks, crowd);
  return h_tasks - h_joint;
}

}  // namespace crowdfusion::core
