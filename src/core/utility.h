#ifndef CROWDFUSION_CORE_UTILITY_H_
#define CROWDFUSION_CORE_UTILITY_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/crowd_model.h"
#include "core/joint_distribution.h"

namespace crowdfusion::core {

/// Utility functions of Sections II/III/IV. All entropies in bits.

/// PWS-quality Q(F) = -H(F) (Definition 1).
double QualityBits(const JointDistribution& joint);

/// H(T): entropy of the crowd answer distribution of the task set
/// (Equation 4's objective). Fast path.
double TaskEntropyBits(const JointDistribution& joint,
                       std::span<const int> tasks, const CrowdModel& crowd);

/// Expected utility improvement of asking T (Section III-B):
///   ΔQ(F) = H(T) - H(T|F) = H(T) - |T| * H(Crowd).
double ExpectedQualityGain(const JointDistribution& joint,
                           std::span<const int> tasks,
                           const CrowdModel& crowd);

/// Greedy marginal gain ρ_j(T) = H(T ∪ {j}) - H(T) (Section III-D).
double MarginalGain(const JointDistribution& joint,
                    std::span<const int> selected, int candidate,
                    const CrowdModel& crowd);

/// All candidates' marginal gains ρ_j(T) at once via one sparse
/// partition-refinement pass per candidate (Algorithm 2's inner loop as a
/// library call): O(|selected| + |candidates|) scans of the support
/// instead of 2 * |candidates| full H(T) evaluations, sharded across
/// `num_threads` when the batch is large (0 = auto, 1 = serial). Works for
/// any n <= 64. Fails on out-of-range ids or |selected| + 1 beyond the
/// refiner's committed-set cap.
common::Result<std::vector<double>> MarginalGainProfile(
    const JointDistribution& joint, std::span<const int> selected,
    std::span<const int> candidates, const CrowdModel& crowd,
    int num_threads = 0);

/// Query-based utility machinery (Section IV). `foi` is the
/// facts-of-interest set I; `tasks` is the candidate task set T.

/// The joint table over (latent FOI truths, noisy task answers): a dense
/// vector of 2^{|I|+|T|} probabilities where the low |I| bits index the FOI
/// truth assignment and the high |T| bits index the answer pattern. Facts
/// in I ∩ T contribute two coordinates (their latent truth and their noisy
/// answer). Requires |I| + |T| <= kMaxDenseFacts.
common::Result<std::vector<double>> FoiAnswerJointTable(
    const JointDistribution& joint, std::span<const int> foi,
    std::span<const int> tasks, const CrowdModel& crowd);

/// H(I, T): joint entropy of FOI truths and task answers.
common::Result<double> FoiTaskJointEntropyBits(const JointDistribution& joint,
                                               std::span<const int> foi,
                                               std::span<const int> tasks,
                                               const CrowdModel& crowd);

/// Query-based utility Q(I|T) = H(T) - H(I, T) (Section IV-B). With an
/// empty task set this reduces to -H(I) = Q(I).
common::Result<double> QueryBasedUtility(const JointDistribution& joint,
                                         std::span<const int> foi,
                                         std::span<const int> tasks,
                                         const CrowdModel& crowd);

}  // namespace crowdfusion::core

#endif  // CROWDFUSION_CORE_UTILITY_H_
