#include "crowd/accuracy_estimator.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace crowdfusion::crowd {

using common::Status;

common::Result<core::CrowdModel> AccuracyEstimate::ToCrowdModel() const {
  if (trials == 0) {
    return Status::FailedPrecondition("no pre-test trials recorded");
  }
  return core::CrowdModel::Create(common::Clamp(mean, 0.5, 1.0));
}

AccuracyEstimate WilsonEstimate(int correct, int trials, double z) {
  AccuracyEstimate estimate;
  estimate.trials = trials;
  estimate.correct = correct;
  if (trials <= 0) return estimate;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(correct) / n;
  estimate.mean = p;
  const double z2 = z * z;
  const double denominator = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denominator;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denominator;
  estimate.lower = common::Clamp(center - margin, 0.0, 1.0);
  estimate.upper = common::Clamp(center + margin, 0.0, 1.0);
  return estimate;
}

common::Result<AccuracyEstimate> EstimateAccuracy(
    core::AnswerProvider& provider, const std::vector<int>& gold_fact_ids,
    const std::vector<bool>& gold_truths, int repetitions) {
  if (gold_fact_ids.empty()) {
    return Status::InvalidArgument("gold task set is empty");
  }
  if (gold_fact_ids.size() != gold_truths.size()) {
    return Status::InvalidArgument(common::StrFormat(
        "%zu gold tasks but %zu truths", gold_fact_ids.size(),
        gold_truths.size()));
  }
  if (repetitions <= 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  int correct = 0;
  int trials = 0;
  for (int r = 0; r < repetitions; ++r) {
    CF_ASSIGN_OR_RETURN(std::vector<bool> answers,
                        provider.CollectAnswers(gold_fact_ids));
    if (answers.size() != gold_fact_ids.size()) {
      return Status::Internal("provider returned wrong answer count");
    }
    for (size_t i = 0; i < answers.size(); ++i) {
      ++trials;
      if (answers[i] == gold_truths[i]) ++correct;
    }
  }
  return WilsonEstimate(correct, trials);
}

}  // namespace crowdfusion::crowd
