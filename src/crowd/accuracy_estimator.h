#ifndef CROWDFUSION_CROWD_ACCURACY_ESTIMATOR_H_
#define CROWDFUSION_CROWD_ACCURACY_ESTIMATOR_H_

#include <vector>

#include "common/status.h"
#include "core/crowd_model.h"
#include "core/crowdfusion.h"

namespace crowdfusion::crowd {

/// Estimated crowd accuracy from a gold pre-test, with a Wilson score
/// confidence interval.
struct AccuracyEstimate {
  /// Point estimate (correct / trials).
  double mean = 0.0;
  /// Wilson interval at the requested confidence.
  double lower = 0.0;
  double upper = 1.0;
  int trials = 0;
  int correct = 0;

  /// A CrowdModel from the point estimate, clamped into [0.5, 1] (the
  /// paper's model domain; an estimate below 0.5 means the task design is
  /// broken, not that the model should invert answers).
  common::Result<core::CrowdModel> ToCrowdModel() const;
};

/// Wilson score interval for a binomial proportion; z defaults to the
/// two-sided 95% quantile.
AccuracyEstimate WilsonEstimate(int correct, int trials, double z = 1.96);

/// Runs the paper's recommended calibration ("estimate the reliability by a
/// pre-test with groundtruth", Section V-C3): publishes each gold task
/// `repetitions` times to the provider and scores the answers against the
/// known truths. `gold_fact_ids` index into the provider's fact universe.
common::Result<AccuracyEstimate> EstimateAccuracy(
    core::AnswerProvider& provider, const std::vector<int>& gold_fact_ids,
    const std::vector<bool>& gold_truths, int repetitions = 5);

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_ACCURACY_ESTIMATOR_H_
