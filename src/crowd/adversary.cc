#include "crowd/adversary.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace crowdfusion::crowd {

using common::Status;

const char* AdversaryRoleName(AdversaryRole role) {
  switch (role) {
    case AdversaryRole::kHonest:
      return "honest";
    case AdversaryRole::kColluder:
      return "colluder";
    case AdversaryRole::kSybil:
      return "sybil";
    case AdversaryRole::kSpammer:
      return "spammer";
    case AdversaryRole::kParrot:
      return "parrot";
  }
  return "unknown";
}

namespace {

Status ValidateFraction(const char* name, double value) {
  if (!(value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument(
        common::StrFormat("adversary %s must be in [0, 1]", name));
  }
  return Status::Ok();
}

}  // namespace

AdversaryModel::AdversaryModel(core::AdversarySpec spec,
                               std::vector<WorkerState> workers)
    : spec_(spec), workers_(std::move(workers)), rng_(spec.seed) {}

common::Result<std::unique_ptr<AdversaryModel>> AdversaryModel::Create(
    core::AdversarySpec spec) {
  if (spec.num_workers <= 0) {
    return Status::InvalidArgument("adversary num_workers must be positive");
  }
  CF_RETURN_IF_ERROR(
      ValidateFraction("colluder_fraction", spec.colluder_fraction));
  CF_RETURN_IF_ERROR(ValidateFraction("collusion_target_fraction",
                                      spec.collusion_target_fraction));
  CF_RETURN_IF_ERROR(ValidateFraction("sybil_fraction", spec.sybil_fraction));
  CF_RETURN_IF_ERROR(
      ValidateFraction("spammer_fraction", spec.spammer_fraction));
  CF_RETURN_IF_ERROR(
      ValidateFraction("parrot_fraction", spec.parrot_fraction));
  const double hostile = spec.colluder_fraction + spec.sybil_fraction +
                         spec.spammer_fraction + spec.parrot_fraction;
  if (hostile > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "adversary role fractions must sum to at most 1");
  }
  if (!(spec.drift_floor >= 0.0 && spec.drift_ceiling <= 1.0 &&
        spec.drift_floor <= spec.drift_ceiling)) {
    return Status::InvalidArgument(
        "adversary drift window must satisfy 0 <= floor <= ceiling <= 1");
  }

  // Partition the pool into role blocks, hostile roles first. Rounding is
  // floor-based per role so the hostile blocks can never exceed the pool.
  const int n = spec.num_workers;
  std::vector<WorkerState> workers(static_cast<size_t>(n));
  const auto block = [n](double fraction) {
    return static_cast<int>(std::floor(fraction * n + 1e-9));
  };
  int next = 0;
  const auto assign = [&](AdversaryRole role, int count) {
    for (int i = 0; i < count && next < n; ++i, ++next) {
      workers[static_cast<size_t>(next)].role = role;
    }
  };
  assign(AdversaryRole::kColluder, block(spec.colluder_fraction));
  assign(AdversaryRole::kSybil, block(spec.sybil_fraction));
  assign(AdversaryRole::kSpammer, block(spec.spammer_fraction));
  assign(AdversaryRole::kParrot, block(spec.parrot_fraction));
  return std::unique_ptr<AdversaryModel>(
      new AdversaryModel(spec, std::move(workers)));
}

AdversaryRole AdversaryModel::role(int worker) const {
  CF_DCHECK(worker >= 0 && worker < num_workers());
  return workers_[static_cast<size_t>(worker)].role;
}

int AdversaryModel::CountRole(AdversaryRole role) const {
  return static_cast<int>(
      std::count_if(workers_.begin(), workers_.end(),
                    [role](const WorkerState& w) { return w.role == role; }));
}

bool AdversaryModel::IsCollusionTarget(int fact_id) const {
  if (spec_.collusion_target_fraction <= 0.0) return false;
  if (spec_.collusion_target_fraction >= 1.0) return true;
  // SplitMix64 finalizer over (seed, fact id): a per-fact uniform that
  // every colluder computes identically regardless of collection order.
  uint64_t x = spec_.seed ^
               (0x9E3779B97F4A7C15ULL *
                (static_cast<uint64_t>(static_cast<uint32_t>(fact_id)) + 1));
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return u < spec_.collusion_target_fraction;
}

double AdversaryModel::HonestAccuracy(int worker,
                                      data::StatementCategory category,
                                      const WorkerBias& honest_bias) const {
  const double base = honest_bias.AccuracyFor(category);
  const double drifted =
      base + spec_.drift_per_answer * static_cast<double>(answers_by(worker));
  return std::clamp(drifted, spec_.drift_floor, spec_.drift_ceiling);
}

int64_t AdversaryModel::answers_by(int worker) const {
  CF_DCHECK(worker >= 0 && worker < num_workers());
  return workers_[static_cast<size_t>(worker)].answers;
}

bool AdversaryModel::DrawWithAccuracy(double accuracy, bool truth) {
  return rng_.NextBernoulli(accuracy) ? truth : !truth;
}

bool AdversaryModel::Judge(int fact_id, bool truth,
                           data::StatementCategory category,
                           const WorkerBias& honest_bias) {
  const int worker =
      static_cast<int>(rng_.NextBounded(static_cast<uint64_t>(num_workers())));
  return JudgeAs(worker, fact_id, truth, category, honest_bias);
}

bool AdversaryModel::JudgeAs(int worker, int fact_id, bool truth,
                             data::StatementCategory category,
                             const WorkerBias& honest_bias) {
  CF_DCHECK(worker >= 0 && worker < num_workers());
  WorkerState& state = workers_[static_cast<size_t>(worker)];
  bool answer = false;
  switch (state.role) {
    case AdversaryRole::kHonest:
      answer = DrawWithAccuracy(HonestAccuracy(worker, category, honest_bias),
                                truth);
      break;
    case AdversaryRole::kColluder:
      // Cover traffic keeps the clique's non-target accuracy high, which
      // is exactly what earns it trust to spend on the targeted facts.
      answer = IsCollusionTarget(fact_id)
                   ? !truth
                   : DrawWithAccuracy(honest_bias.AccuracyFor(category),
                                      truth);
      break;
    case AdversaryRole::kSybil: {
      auto [it, inserted] = sybil_answers_.try_emplace(fact_id, false);
      if (inserted) {
        // The master stream answers once per fact; clones replay it.
        it->second =
            DrawWithAccuracy(honest_bias.AccuracyFor(category), truth);
      }
      answer = it->second;
      break;
    }
    case AdversaryRole::kSpammer:
      answer = rng_.NextBernoulli(0.5);
      break;
    case AdversaryRole::kParrot: {
      const auto it = fact_tallies_.find(fact_id);
      // Majority of the log so far; empty history and ties parrot "true".
      answer =
          it == fact_tallies_.end() || it->second.first >= it->second.second;
      break;
    }
  }

  ++state.answers;
  auto& [votes_true, votes_false] = fact_tallies_[fact_id];
  (answer ? votes_true : votes_false) += 1;
  log_.push_back(Judgment{fact_id, worker, answer, truth});
  return answer;
}

}  // namespace crowdfusion::crowd
