#ifndef CROWDFUSION_CROWD_ADVERSARY_H_
#define CROWDFUSION_CROWD_ADVERSARY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/registry.h"
#include "crowd/worker.h"
#include "data/statement.h"

namespace crowdfusion::crowd {

/// Role of one virtual worker in an adversarial pool.
enum class AdversaryRole {
  /// Judges with the crowd's bias table, subject to per-answer drift.
  kHonest,
  /// Correct on ordinary facts (cover traffic), coordinated on the wrong
  /// answer for the clique's targeted facts.
  kColluder,
  /// Replays the sybil master stream's per-fact answer verbatim.
  kSybil,
  /// Fair coin, independent of the truth.
  kSpammer,
  /// Majority of every answer logged so far for the fact.
  kParrot,
};

const char* AdversaryRoleName(AdversaryRole role);

/// A seeded hostile-worker layer over the simulated crowds: SimulatedCrowd
/// and CrowdPlatform delegate each judgment here when an adversary is
/// configured (and run their historical code byte-for-byte when not — the
/// adversary-off differential contract).
///
/// The model owns a virtual worker pool partitioned into roles by the
/// spec's fractions (colluders first, then sybils, spammers, parrots;
/// every remaining worker is honest). All randomness comes from the
/// model's own RNG stream seeded by AdversarySpec::seed, and every
/// judgment is appended to a (fact, worker, answer) log so accuracy
/// estimators (Wilson, Dawid-Skene) can be scored against the model's
/// ground-truth behaviour, including honest-worker drift.
///
/// Thread-compatible like the crowds that embed it: judgments must be
/// externally serialized.
class AdversaryModel {
 public:
  /// One logged judgment, in collection order.
  struct Judgment {
    int fact_id = -1;
    int worker = -1;
    bool answer = false;
    bool truth = false;
  };

  /// Validates the spec (fractions in [0, 1] summing to at most 1, a
  /// positive pool, ordered drift clamps) and builds the pool.
  static common::Result<std::unique_ptr<AdversaryModel>> Create(
      core::AdversarySpec spec);

  /// One judgment by a pool worker the model picks itself (uniformly, from
  /// its own stream) — the SimulatedCrowd path, where the aggregate
  /// "worker" has no identity.
  bool Judge(int fact_id, bool truth, data::StatementCategory category,
             const WorkerBias& honest_bias);

  /// One judgment by a caller-assigned worker — the CrowdPlatform path,
  /// where the platform already sampled real worker indices. Precondition:
  /// 0 <= worker < num_workers().
  bool JudgeAs(int worker, int fact_id, bool truth,
               data::StatementCategory category,
               const WorkerBias& honest_bias);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  AdversaryRole role(int worker) const;
  /// Workers holding the given role.
  int CountRole(AdversaryRole role) const;

  /// True when the colluding clique coordinates the wrong answer on this
  /// fact. Deterministic in (spec.seed, fact_id) and independent of
  /// collection order, so all colluders agree by construction.
  bool IsCollusionTarget(int fact_id) const;

  /// Ground-truth P(correct) an HONEST worker would judge with right now,
  /// given the crowd's bias table: the category accuracy shifted by
  /// drift_per_answer x answers this worker has given, clamped to the
  /// spec's drift window. The ruler estimator tests measure against.
  double HonestAccuracy(int worker, data::StatementCategory category,
                        const WorkerBias& honest_bias) const;

  /// Answers the given worker has contributed so far.
  int64_t answers_by(int worker) const;

  /// Every judgment served, in collection order — the estimator-scoring
  /// feed (crowd::Judgment-shaped: task = fact_id).
  const std::vector<Judgment>& log() const { return log_; }

  const core::AdversarySpec& spec() const { return spec_; }

 private:
  struct WorkerState {
    AdversaryRole role = AdversaryRole::kHonest;
    int64_t answers = 0;
  };

  AdversaryModel(core::AdversarySpec spec, std::vector<WorkerState> workers);

  /// Truth with probability `accuracy`, flipped otherwise — the honest
  /// Bernoulli error model, on the adversary's stream.
  bool DrawWithAccuracy(double accuracy, bool truth);

  core::AdversarySpec spec_;
  std::vector<WorkerState> workers_;
  common::Rng rng_;
  /// Per-fact master answer replayed by every sybil.
  std::unordered_map<int, bool> sybil_answers_;
  /// Per-fact (true votes, false votes) over the whole log, for parrots.
  std::unordered_map<int, std::pair<int64_t, int64_t>> fact_tallies_;
  std::vector<Judgment> log_;
};

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_ADVERSARY_H_
