#include "crowd/dawid_skene.h"

#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace crowdfusion::crowd {

using common::Status;

common::Result<DawidSkeneResult> RunDawidSkene(
    int num_tasks, int num_workers, const std::vector<Judgment>& judgments,
    const DawidSkeneOptions& options) {
  if (num_tasks <= 0 || num_workers <= 0) {
    return Status::InvalidArgument("need at least one task and one worker");
  }
  if (judgments.empty()) {
    return Status::InvalidArgument("no judgments supplied");
  }
  if (!(options.task_prior > 0.0 && options.task_prior < 1.0)) {
    return Status::InvalidArgument("task_prior must be in (0, 1)");
  }
  for (const Judgment& j : judgments) {
    if (j.task < 0 || j.task >= num_tasks) {
      return Status::OutOfRange(
          common::StrFormat("judgment task id %d out of range", j.task));
    }
    if (j.worker < 0 || j.worker >= num_workers) {
      return Status::OutOfRange(
          common::StrFormat("judgment worker id %d out of range", j.worker));
    }
  }

  DawidSkeneResult result;
  result.worker_accuracy.assign(static_cast<size_t>(num_workers),
                                options.initial_accuracy);
  result.task_posterior.assign(static_cast<size_t>(num_tasks),
                               options.task_prior);

  const double floor = options.accuracy_floor;
  const double log_prior_true = std::log(options.task_prior);
  const double log_prior_false = std::log(1.0 - options.task_prior);

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    // E-step: posterior per task from worker-accuracy likelihoods.
    std::vector<double> log_true(static_cast<size_t>(num_tasks),
                                 log_prior_true);
    std::vector<double> log_false(static_cast<size_t>(num_tasks),
                                  log_prior_false);
    for (const Judgment& j : judgments) {
      const double accuracy = common::Clamp(
          result.worker_accuracy[static_cast<size_t>(j.worker)], floor,
          1.0 - floor);
      const double log_acc = std::log(accuracy);
      const double log_err = std::log(1.0 - accuracy);
      if (j.answer) {
        log_true[static_cast<size_t>(j.task)] += log_acc;
        log_false[static_cast<size_t>(j.task)] += log_err;
      } else {
        log_true[static_cast<size_t>(j.task)] += log_err;
        log_false[static_cast<size_t>(j.task)] += log_acc;
      }
    }
    for (int t = 0; t < num_tasks; ++t) {
      const double m = std::max(log_true[static_cast<size_t>(t)],
                                log_false[static_cast<size_t>(t)]);
      const double pt = std::exp(log_true[static_cast<size_t>(t)] - m);
      const double pf = std::exp(log_false[static_cast<size_t>(t)] - m);
      result.task_posterior[static_cast<size_t>(t)] = pt / (pt + pf);
    }

    // M-step: accuracy = posterior-weighted agreement rate.
    std::vector<double> agreement(static_cast<size_t>(num_workers), 0.0);
    std::vector<double> weight(static_cast<size_t>(num_workers), 0.0);
    for (const Judgment& j : judgments) {
      const double p = result.task_posterior[static_cast<size_t>(j.task)];
      agreement[static_cast<size_t>(j.worker)] +=
          j.answer ? p : (1.0 - p);
      weight[static_cast<size_t>(j.worker)] += 1.0;
    }
    double max_delta = 0.0;
    for (int w = 0; w < num_workers; ++w) {
      if (weight[static_cast<size_t>(w)] <= 0.0) continue;
      const double updated = common::Clamp(
          agreement[static_cast<size_t>(w)] / weight[static_cast<size_t>(w)],
          floor, 1.0 - floor);
      max_delta = std::max(
          max_delta,
          std::fabs(updated -
                    result.worker_accuracy[static_cast<size_t>(w)]));
      result.worker_accuracy[static_cast<size_t>(w)] = updated;
    }
    ++result.iterations;
    if (max_delta < options.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace crowdfusion::crowd
