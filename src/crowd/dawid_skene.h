#ifndef CROWDFUSION_CROWD_DAWID_SKENE_H_
#define CROWDFUSION_CROWD_DAWID_SKENE_H_

#include <vector>

#include "common/status.h"

namespace crowdfusion::crowd {

/// One worker's binary judgment of one task.
struct Judgment {
  int task = -1;
  int worker = -1;
  bool answer = false;
};

/// Result of the one-coin Dawid–Skene EM: per-task truth posteriors and
/// per-worker symmetric accuracies.
struct DawidSkeneResult {
  /// P(task is true), indexed by task id.
  std::vector<double> task_posterior;
  /// Estimated accuracy per worker, indexed by worker id.
  std::vector<double> worker_accuracy;
  int iterations = 0;
  bool converged = false;
};

struct DawidSkeneOptions {
  int max_iterations = 50;
  double epsilon = 1e-6;
  /// Initial worker accuracy before the first M-step.
  double initial_accuracy = 0.8;
  /// Prior probability that a task is true.
  double task_prior = 0.5;
  /// Accuracies are clamped into [floor, 1 - floor] to keep the E-step
  /// numerically sane; a worker estimated below 0.5 effectively votes
  /// inverted, which the model allows (unlike the paper's Pc domain).
  double accuracy_floor = 0.05;
};

/// One-coin Dawid–Skene EM over redundant binary judgments: alternates
/// between task-truth posteriors (E-step, Bayes with per-worker accuracy
/// likelihoods) and worker accuracies (M-step, posterior-weighted agreement
/// rates). This generalizes the paper's single shared Pc (Definition 2) to
/// heterogeneous workers and gives CrowdPlatform a principled aggregator
/// beyond majority voting.
common::Result<DawidSkeneResult> RunDawidSkene(
    int num_tasks, int num_workers, const std::vector<Judgment>& judgments,
    const DawidSkeneOptions& options = {});

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_DAWID_SKENE_H_
