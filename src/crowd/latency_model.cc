#include "crowd/latency_model.h"

#include <algorithm>
#include <cmath>

namespace crowdfusion::crowd {

LatencyModel::LatencyModel(LatencyOptions options)
    : options_(options), rng_(options.seed ^ 0xA51C0DEULL) {}

double LatencyModel::SampleTaskSeconds(double worker_scale) {
  if (!has_latency()) return 0.0;
  double seconds = options_.median_seconds *
                   std::exp(options_.sigma * rng_.NextGaussian()) *
                   std::max(0.0, worker_scale);
  if (options_.straggler_probability > 0 &&
      rng_.NextBernoulli(options_.straggler_probability)) {
    seconds *= options_.straggler_factor;
  }
  return seconds;
}

bool LatencyModel::SampleFailure() {
  return options_.failure_probability > 0 &&
         rng_.NextBernoulli(options_.failure_probability);
}

double LatencyModel::SampleWorkerScale() {
  return rng_.NextUniform(0.6, 1.6);
}

uint64_t LatencyModel::SampleIndex(uint64_t bound) {
  return rng_.NextBounded(bound);
}

}  // namespace crowdfusion::crowd
