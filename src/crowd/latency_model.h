#ifndef CROWDFUSION_CROWD_LATENCY_MODEL_H_
#define CROWDFUSION_CROWD_LATENCY_MODEL_H_

#include <cstdint>

#include "common/random.h"

namespace crowdfusion::crowd {

/// Shape of the simulated crowd's answer latency and flakiness. Real
/// platforms answer in seconds-to-minutes with a heavy right tail; the
/// model is lognormal (median * e^(sigma*N(0,1))) per task, scaled by the
/// assigned worker's speed, with optional stragglers (tasks that take
/// `straggler_factor` times longer — the "worker walked away" case that
/// per-ticket deadlines exist to cut off) and injectable hard failures
/// (an attempt that never returns answers and must be retried).
struct LatencyOptions {
  /// Explicitly activates the model even when every latency knob is zero.
  /// Historically "enabled" was inferred from median_seconds > 0 alone,
  /// which silently discarded zero-latency configs that only inject
  /// failures or stragglers; set this (or any nonzero probability below)
  /// to run those. A default-constructed options block stays disabled.
  bool enabled = false;
  /// Median per-task latency, seconds. 0 means tickets resolve at submit
  /// time (failures may still be injected when the model is enabled).
  double median_seconds = 0.0;
  /// Lognormal spread; 0 makes every task take exactly the median.
  double sigma = 0.5;
  /// Probability that a whole attempt fails outright (kUnavailable) and
  /// the provider retries under the ticket's bounded-retry contract.
  double failure_probability = 0.0;
  /// Probability a task is a straggler.
  double straggler_probability = 0.0;
  /// Latency multiplier for stragglers.
  double straggler_factor = 10.0;
  uint64_t seed = 4242;
};

/// Seeded sampler over LatencyOptions. Latency draws come from their own
/// RNG stream, so enabling latency never perturbs the judgment stream —
/// a crowd with and without latency gives identical answers.
class LatencyModel {
 public:
  LatencyModel() : LatencyModel(LatencyOptions{}) {}
  explicit LatencyModel(LatencyOptions options);

  /// Whether the model does anything at all: explicitly enabled, or any
  /// latency/failure/straggler knob is nonzero. (The historical
  /// median_seconds-only test conflated "no latency" with "disabled" and
  /// dropped failure-only configs on the floor.)
  bool enabled() const {
    return options_.enabled || has_latency() ||
           options_.failure_probability > 0 ||
           options_.straggler_probability > 0;
  }
  /// Whether tasks take nonzero simulated time. Latency draws are gated
  /// on this — never on enabled() — so a zero-latency failure-injecting
  /// model consumes no stream draws for timing.
  bool has_latency() const { return options_.median_seconds > 0; }
  const LatencyOptions& options() const { return options_; }

  /// Latency of one task handled by a worker of the given relative speed
  /// (1.0 = typical; larger = slower). 0 when the model has no latency.
  double SampleTaskSeconds(double worker_scale = 1.0);

  /// True when an attempt should fail outright.
  bool SampleFailure();

  /// A per-worker speed scale, uniform in [0.6, 1.6) — slow and fast
  /// workers for a platform pool.
  double SampleWorkerScale();

  /// Uniform index in [0, bound), from the latency stream (so assigning
  /// workers to tickets never perturbs the judgment stream). Precondition:
  /// bound > 0.
  uint64_t SampleIndex(uint64_t bound);

 private:
  LatencyOptions options_;
  common::Rng rng_;
};

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_LATENCY_MODEL_H_
