#include "crowd/platform.h"

#include <algorithm>

#include "common/string_util.h"

namespace crowdfusion::crowd {

using common::Status;

common::Result<CrowdPlatform> CrowdPlatform::Create(
    std::vector<Worker> workers, std::vector<bool> truths,
    std::vector<data::StatementCategory> categories, Options options) {
  if (workers.empty()) {
    return Status::InvalidArgument("worker pool is empty");
  }
  if (truths.empty()) {
    return Status::InvalidArgument("fact universe is empty");
  }
  if (!categories.empty() && categories.size() != truths.size()) {
    return Status::InvalidArgument(
        "categories must be empty or match truths in size");
  }
  if (options.redundancy < 1) {
    return Status::InvalidArgument("redundancy must be >= 1");
  }
  return CrowdPlatform(std::move(workers), std::move(truths),
                       std::move(categories), options);
}

common::Result<std::vector<bool>> CrowdPlatform::CollectAnswers(
    std::span<const int> fact_ids) {
  std::vector<bool> answers;
  answers.reserve(fact_ids.size());
  const int pool = static_cast<int>(workers_.size());
  const int redundancy = std::min(options_.redundancy, pool);
  for (int id : fact_ids) {
    if (id < 0 || id >= static_cast<int>(truths_.size())) {
      return Status::OutOfRange(
          common::StrFormat("fact id %d outside the platform's universe", id));
    }
    const bool truth = truths_[static_cast<size_t>(id)];
    const data::StatementCategory category =
        categories_.empty() ? data::StatementCategory::kClean
                            : categories_[static_cast<size_t>(id)];
    TaskLog log;
    log.fact_id = id;
    log.worker_indices = rng_.SampleWithoutReplacement(pool, redundancy);
    int votes_true = 0;
    for (int w : log.worker_indices) {
      const bool judgment =
          workers_[static_cast<size_t>(w)].Judge(truth, category, rng_);
      log.judgments.push_back(judgment);
      if (judgment) ++votes_true;
      ++judgments_collected_;
    }
    const int votes_false = redundancy - votes_true;
    bool aggregated = false;
    if (votes_true != votes_false) {
      aggregated = votes_true > votes_false;
    } else {
      aggregated = rng_.NextBernoulli(0.5);  // Fair-coin tie break.
    }
    log.aggregated = aggregated;
    task_log_.push_back(std::move(log));
    ++aggregated_total_;
    if (aggregated == truth) ++aggregated_correct_;
    answers.push_back(aggregated);
  }
  return answers;
}

double CrowdPlatform::AggregatedAccuracy() const {
  return aggregated_total_ == 0
             ? 0.0
             : static_cast<double>(aggregated_correct_) /
                   static_cast<double>(aggregated_total_);
}

}  // namespace crowdfusion::crowd
