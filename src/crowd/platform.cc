#include "crowd/platform.h"

#include <algorithm>

#include "common/string_util.h"

namespace crowdfusion::crowd {

using common::Status;

common::Result<CrowdPlatform> CrowdPlatform::Create(
    std::vector<Worker> workers, std::vector<bool> truths,
    std::vector<data::StatementCategory> categories, Options options) {
  if (workers.empty()) {
    return Status::InvalidArgument("worker pool is empty");
  }
  if (truths.empty()) {
    return Status::InvalidArgument("fact universe is empty");
  }
  if (!categories.empty() && categories.size() != truths.size()) {
    return Status::InvalidArgument(
        "categories must be empty or match truths in size");
  }
  if (options.redundancy < 1) {
    return Status::InvalidArgument("redundancy must be >= 1");
  }
  return CrowdPlatform(std::move(workers), std::move(truths),
                       std::move(categories), options);
}

common::Result<std::vector<bool>> CrowdPlatform::CollectAnswers(
    std::span<const int> fact_ids) {
  std::vector<bool> answers;
  answers.reserve(fact_ids.size());
  const int pool = static_cast<int>(workers_.size());
  const int redundancy = std::min(options_.redundancy, pool);
  for (int id : fact_ids) {
    if (id < 0 || id >= static_cast<int>(truths_.size())) {
      return Status::OutOfRange(
          common::StrFormat("fact id %d outside the platform's universe", id));
    }
    const bool truth = truths_[static_cast<size_t>(id)];
    const data::StatementCategory category =
        categories_.empty() ? data::StatementCategory::kClean
                            : categories_[static_cast<size_t>(id)];
    TaskLog log;
    log.fact_id = id;
    log.worker_indices = rng_.SampleWithoutReplacement(pool, redundancy);
    int votes_true = 0;
    for (int w : log.worker_indices) {
      // Honest platforms keep the historical draw and stream untouched
      // (the adversary-off differential).
      const bool judgment =
          adversary_ == nullptr
              ? workers_[static_cast<size_t>(w)].Judge(truth, category, rng_)
              : adversary_->JudgeAs(w, id, truth, category,
                                    workers_[static_cast<size_t>(w)].bias());
      log.judgments.push_back(judgment);
      if (judgment) ++votes_true;
      ++judgments_collected_;
    }
    const int votes_false = redundancy - votes_true;
    bool aggregated = false;
    if (votes_true != votes_false) {
      aggregated = votes_true > votes_false;
    } else {
      aggregated = rng_.NextBernoulli(0.5);  // Fair-coin tie break.
    }
    log.aggregated = aggregated;
    task_log_.push_back(std::move(log));
    ++aggregated_total_;
    if (aggregated == truth) ++aggregated_correct_;
    answers.push_back(aggregated);
  }
  return answers;
}

common::Status CrowdPlatform::ConfigureAdversary(core::AdversarySpec spec) {
  if (!spec.enabled) {
    return Status::InvalidArgument(
        "refusing to install a disabled adversary; leave the platform "
        "honest instead");
  }
  // Roles attach to the real pool: worker index w in the task log IS
  // adversary worker w.
  spec.num_workers = static_cast<int>(workers_.size());
  CF_ASSIGN_OR_RETURN(adversary_, AdversaryModel::Create(spec));
  return Status::Ok();
}

void CrowdPlatform::ConfigureAsync(LatencyOptions latency,
                                   common::Clock* clock) {
  latency_ = LatencyModel(latency);
  async_clock_ = clock;
  ledger_ = std::make_unique<core::TicketLedger>(clock);
  worker_speed_.resize(workers_.size());
  for (double& speed : worker_speed_) speed = latency_.SampleWorkerScale();
}

core::TicketLedger& CrowdPlatform::ledger() {
  if (ledger_ == nullptr) {
    ledger_ = std::make_unique<core::TicketLedger>(async_clock_);
  }
  return *ledger_;
}

double CrowdPlatform::SampleBatchLatencySeconds(size_t batch_size) {
  if (!latency_.has_latency()) return 0.0;
  const int redundancy =
      std::min(options_.redundancy, static_cast<int>(workers_.size()));
  double batch_seconds = 0.0;
  for (size_t task = 0; task < batch_size; ++task) {
    for (int r = 0; r < redundancy; ++r) {
      const double scale =
          worker_speed_.empty()
              ? 1.0
              : worker_speed_[static_cast<size_t>(
                    latency_.SampleIndex(worker_speed_.size()))];
      batch_seconds =
          std::max(batch_seconds, latency_.SampleTaskSeconds(scale));
    }
  }
  return batch_seconds;
}

common::Result<core::TicketId> CrowdPlatform::Submit(
    std::span<const int> fact_ids, const core::TicketOptions& options) {
  // Resolved eagerly in submission order: judgments come from the sync
  // path's RNG stream; latency and failures from the latency model's own.
  core::TicketLedger::Outcome outcome = core::SimulateTicketAttempts(
      options,
      [this, fact_ids](int) -> common::Result<std::vector<bool>> {
        if (latency_.SampleFailure()) {
          return Status::Unavailable("injected platform failure");
        }
        return CollectAnswers(fact_ids);
      },
      [this, fact_ids](int) {
        return SampleBatchLatencySeconds(fact_ids.size());
      });
  return ledger().Add(std::move(outcome));
}

common::Result<core::TicketStatus> CrowdPlatform::Poll(
    core::TicketId ticket) {
  return ledger().Poll(ticket);
}

common::Result<std::vector<bool>> CrowdPlatform::Await(
    core::TicketId ticket) {
  return ledger().Await(ticket);
}

void CrowdPlatform::Cancel(core::TicketId ticket) {
  ledger().Forget(ticket);
}

double CrowdPlatform::AggregatedAccuracy() const {
  return aggregated_total_ == 0
             ? 0.0
             : static_cast<double>(aggregated_correct_) /
                   static_cast<double>(aggregated_total_);
}

}  // namespace crowdfusion::crowd
