#ifndef CROWDFUSION_CROWD_PLATFORM_H_
#define CROWDFUSION_CROWD_PLATFORM_H_

#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "core/async_provider.h"
#include "core/crowdfusion.h"
#include "crowd/adversary.h"
#include "crowd/latency_model.h"
#include "crowd/worker.h"
#include "data/statement.h"

namespace crowdfusion::crowd {

/// A fuller crowdsourcing-platform simulation than SimulatedCrowd: a pool
/// of heterogeneous workers, each task assigned to `redundancy` distinct
/// workers sampled from the pool, judgments aggregated by majority vote
/// (ties broken by a fair coin). Extends the paper's single-answer model
/// to the standard replication practice of real platforms; with
/// redundancy = 1 it reduces exactly to the paper's model.
///
/// Like SimulatedCrowd, the platform speaks the async ticket contract
/// natively (ConfigureAsync): every worker in the pool gets a seeded speed
/// scale, a task waits for the slowest of its `redundancy` assigned
/// workers, and the slowest task gates the batch — so higher redundancy
/// buys answer quality at the price of latency. Submit/CollectAnswers
/// must be externally serialized; Poll/Await are internally synchronized.
class CrowdPlatform : public core::AnswerProvider,
                      public core::AsyncAnswerProvider {
 public:
  struct Options {
    /// Distinct workers asked per task. Clamped to the pool size.
    int redundancy = 1;
    uint64_t seed = 99;
  };

  /// One log row per task assignment.
  struct TaskLog {
    int fact_id = -1;
    std::vector<int> worker_indices;
    std::vector<bool> judgments;
    bool aggregated = false;
  };

  /// Requires a non-empty worker pool and fact universe.
  static common::Result<CrowdPlatform> Create(
      std::vector<Worker> workers, std::vector<bool> truths,
      std::vector<data::StatementCategory> categories, Options options);

  common::Result<std::vector<bool>> CollectAnswers(
      std::span<const int> fact_ids) override;

  /// Installs the latency/failure model and clock for the async interface.
  /// Without this call, Submit works with zero latency on the real clock.
  /// `clock` is borrowed and must outlive the platform; nullptr means
  /// Clock::Real().
  void ConfigureAsync(LatencyOptions latency,
                      common::Clock* clock = nullptr);

  /// Installs a hostile worker layer over the REAL pool: the adversary's
  /// roles are assigned to this platform's worker indices (the spec's
  /// num_workers is overridden with the pool size), so task assignment,
  /// redundancy, and majority voting run unchanged while judgments come
  /// from each worker's role. Honest platforms (no call) run the
  /// historical code byte-for-byte.
  common::Status ConfigureAdversary(core::AdversarySpec spec);

  /// The installed adversary, or nullptr for an honest platform.
  const AdversaryModel* adversary() const { return adversary_.get(); }
  AdversaryModel* adversary() { return adversary_.get(); }

  common::Result<core::TicketId> Submit(
      std::span<const int> fact_ids,
      const core::TicketOptions& options) override;
  using core::AsyncAnswerProvider::Submit;
  common::Result<core::TicketStatus> Poll(core::TicketId ticket) override;
  common::Result<std::vector<bool>> Await(core::TicketId ticket) override;
  void Cancel(core::TicketId ticket) override;

  const std::vector<TaskLog>& task_log() const { return task_log_; }
  int64_t judgments_collected() const { return judgments_collected_; }

  /// Empirical fraction of aggregated answers matching the ground truth.
  double AggregatedAccuracy() const;

 private:
  CrowdPlatform(std::vector<Worker> workers, std::vector<bool> truths,
                std::vector<data::StatementCategory> categories,
                Options options)
      : workers_(std::move(workers)),
        truths_(std::move(truths)),
        categories_(std::move(categories)),
        options_(options),
        rng_(options.seed) {}

  core::TicketLedger& ledger();
  /// Latency until every assigned worker of every task in a batch of
  /// `batch_size` answered: max over redundancy × batch_size draws, each
  /// scaled by a randomly assigned worker's speed.
  double SampleBatchLatencySeconds(size_t batch_size);

  std::vector<Worker> workers_;
  std::vector<bool> truths_;
  std::vector<data::StatementCategory> categories_;
  Options options_;
  common::Rng rng_;
  std::unique_ptr<AdversaryModel> adversary_;
  std::vector<TaskLog> task_log_;
  int64_t judgments_collected_ = 0;
  int64_t aggregated_correct_ = 0;
  int64_t aggregated_total_ = 0;
  LatencyModel latency_;
  /// Seeded per-worker speed scales (1.0 = typical), drawn at
  /// ConfigureAsync.
  std::vector<double> worker_speed_;
  common::Clock* async_clock_ = nullptr;
  std::unique_ptr<core::TicketLedger> ledger_;
};

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_PLATFORM_H_
