#ifndef CROWDFUSION_CROWD_PLATFORM_H_
#define CROWDFUSION_CROWD_PLATFORM_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/crowdfusion.h"
#include "crowd/worker.h"
#include "data/statement.h"

namespace crowdfusion::crowd {

/// A fuller crowdsourcing-platform simulation than SimulatedCrowd: a pool
/// of heterogeneous workers, each task assigned to `redundancy` distinct
/// workers sampled from the pool, judgments aggregated by majority vote
/// (ties broken by a fair coin). Extends the paper's single-answer model
/// to the standard replication practice of real platforms; with
/// redundancy = 1 it reduces exactly to the paper's model.
class CrowdPlatform : public core::AnswerProvider {
 public:
  struct Options {
    /// Distinct workers asked per task. Clamped to the pool size.
    int redundancy = 1;
    uint64_t seed = 99;
  };

  /// One log row per task assignment.
  struct TaskLog {
    int fact_id = -1;
    std::vector<int> worker_indices;
    std::vector<bool> judgments;
    bool aggregated = false;
  };

  /// Requires a non-empty worker pool and fact universe.
  static common::Result<CrowdPlatform> Create(
      std::vector<Worker> workers, std::vector<bool> truths,
      std::vector<data::StatementCategory> categories, Options options);

  common::Result<std::vector<bool>> CollectAnswers(
      std::span<const int> fact_ids) override;

  const std::vector<TaskLog>& task_log() const { return task_log_; }
  int64_t judgments_collected() const { return judgments_collected_; }

  /// Empirical fraction of aggregated answers matching the ground truth.
  double AggregatedAccuracy() const;

 private:
  CrowdPlatform(std::vector<Worker> workers, std::vector<bool> truths,
                std::vector<data::StatementCategory> categories,
                Options options)
      : workers_(std::move(workers)),
        truths_(std::move(truths)),
        categories_(std::move(categories)),
        options_(options),
        rng_(options.seed) {}

  std::vector<Worker> workers_;
  std::vector<bool> truths_;
  std::vector<data::StatementCategory> categories_;
  Options options_;
  common::Rng rng_;
  std::vector<TaskLog> task_log_;
  int64_t judgments_collected_ = 0;
  int64_t aggregated_correct_ = 0;
  int64_t aggregated_total_ = 0;
};

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_PLATFORM_H_
