#include "crowd/provider_registry.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "crowd/latency_model.h"
#include "crowd/simulated_crowd.h"
#include "data/statement.h"

namespace crowdfusion::crowd {

using common::Status;

namespace {

common::Result<core::ProviderHandle> MakeSimulatedCrowd(
    const core::ProviderSpec& spec, common::Clock* clock) {
  if (spec.truths.empty()) {
    return Status::InvalidArgument(
        "simulated_crowd provider requires per-instance truths");
  }
  if (!(spec.accuracy > 0.0 && spec.accuracy < 1.0)) {
    return Status::InvalidArgument(
        "simulated_crowd accuracy must be in (0, 1)");
  }
  std::vector<data::StatementCategory> categories;
  categories.reserve(spec.categories.size());
  for (const int category : spec.categories) {
    if (category < 0 ||
        category > static_cast<int>(data::StatementCategory::kMissingAuthor)) {
      return Status::InvalidArgument(
          common::StrFormat("bad statement category %d", category));
    }
    categories.push_back(static_cast<data::StatementCategory>(category));
  }
  if (!categories.empty() && categories.size() != spec.truths.size()) {
    return Status::InvalidArgument(
        "categories must be empty or match truths in size");
  }

  WorkerBias bias;
  if (spec.biased) {
    bias.base_accuracy = spec.accuracy;  // Section V-D category skews apply
  } else {
    bias = WorkerBias::Uniform(spec.accuracy);
  }
  auto provider = std::make_shared<SimulatedCrowd>(
      spec.truths, std::move(categories), bias, spec.seed);
  if (spec.adversary.enabled) {
    CF_RETURN_IF_ERROR(provider->ConfigureAdversary(spec.adversary));
  }
  LatencyOptions latency;
  latency.median_seconds = spec.latency_median_seconds;
  latency.sigma = spec.latency_sigma;
  latency.failure_probability = spec.failure_probability;
  latency.straggler_probability = spec.straggler_probability;
  latency.straggler_factor = spec.straggler_factor;
  latency.seed = spec.latency_seed;
  // LatencyModel::enabled() sees every knob, so a zero-latency spec that
  // only injects failures activates the async model too (historically it
  // was silently ignored unless median_seconds > 0).
  if (LatencyModel(latency).enabled()) {
    provider->ConfigureAsync(latency, clock);
  }

  core::ProviderHandle handle;
  handle.sync = provider.get();
  handle.async = provider.get();
  handle.served_correct = [provider] {
    return std::pair<int64_t, int64_t>(provider->answers_served(),
                                       provider->answers_correct());
  };
  handle.owner = std::move(provider);
  return handle;
}

}  // namespace

common::Status RegisterCrowdProviders(core::ProviderRegistry& registry,
                                      common::Clock* clock) {
  return registry.Register(
      "simulated_crowd", [clock](const core::ProviderSpec& spec) {
        return MakeSimulatedCrowd(spec, clock);
      });
}

core::ProviderRegistry FullProviderRegistry(common::Clock* clock) {
  core::ProviderRegistry registry = core::BuiltinProviderRegistry();
  CF_CHECK_OK(RegisterCrowdProviders(registry, clock));
  return registry;
}

}  // namespace crowdfusion::crowd
