#ifndef CROWDFUSION_CROWD_PROVIDER_REGISTRY_H_
#define CROWDFUSION_CROWD_PROVIDER_REGISTRY_H_

#include "common/status.h"
#include "core/registry.h"

namespace crowdfusion::crowd {

/// Registers this layer's providers into a core::ProviderRegistry:
///
///   "simulated_crowd" — a crowd::SimulatedCrowd judging the spec's
///   `truths`/`categories` with the spec's accuracy (uniform, or the
///   Section V-D biased pool when spec.biased), seeded by spec.seed.
///   When spec.latency_median_seconds > 0 the crowd's async latency model
///   is configured too, so the handle's async view simulates real answer
///   delays; the sync view always answers immediately.
///
/// `clock` is borrowed by every provider the registered factory creates
/// (latency simulation); nullptr means Clock::Real().
common::Status RegisterCrowdProviders(core::ProviderRegistry& registry,
                                      common::Clock* clock = nullptr);

/// BuiltinProviderRegistry() from core, plus this layer's providers — the
/// registry the service facade serves from.
core::ProviderRegistry FullProviderRegistry(common::Clock* clock = nullptr);

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_PROVIDER_REGISTRY_H_
