#include "crowd/simulated_crowd.h"

#include "common/string_util.h"

namespace crowdfusion::crowd {

using common::Status;

SimulatedCrowd::SimulatedCrowd(std::vector<bool> truths,
                               std::vector<data::StatementCategory> categories,
                               WorkerBias bias, uint64_t seed)
    : truths_(std::move(truths)),
      categories_(std::move(categories)),
      worker_("simulated", bias),
      rng_(seed) {}

SimulatedCrowd SimulatedCrowd::WithUniformAccuracy(std::vector<bool> truths,
                                                   double pc, uint64_t seed) {
  return SimulatedCrowd(std::move(truths), {}, WorkerBias::Uniform(pc), seed);
}

common::Result<std::vector<bool>> SimulatedCrowd::CollectAnswers(
    std::span<const int> fact_ids) {
  std::vector<bool> answers;
  answers.reserve(fact_ids.size());
  for (int id : fact_ids) {
    if (id < 0 || id >= static_cast<int>(truths_.size())) {
      return Status::OutOfRange(
          common::StrFormat("fact id %d outside the crowd's universe", id));
    }
    const bool truth = truths_[static_cast<size_t>(id)];
    const data::StatementCategory category =
        categories_.empty() ? data::StatementCategory::kClean
                            : categories_[static_cast<size_t>(id)];
    const bool answer = worker_.Judge(truth, category, rng_);
    ++answers_served_;
    if (answer == truth) ++answers_correct_;
    answers.push_back(answer);
  }
  return answers;
}

double SimulatedCrowd::EmpiricalAccuracy() const {
  return answers_served_ == 0
             ? 0.0
             : static_cast<double>(answers_correct_) /
                   static_cast<double>(answers_served_);
}

}  // namespace crowdfusion::crowd
