#include "crowd/simulated_crowd.h"

#include <algorithm>

#include "common/string_util.h"

namespace crowdfusion::crowd {

using common::Status;

SimulatedCrowd::SimulatedCrowd(std::vector<bool> truths,
                               std::vector<data::StatementCategory> categories,
                               WorkerBias bias, uint64_t seed)
    : truths_(std::move(truths)),
      categories_(std::move(categories)),
      worker_("simulated", bias),
      rng_(seed) {}

SimulatedCrowd SimulatedCrowd::WithUniformAccuracy(std::vector<bool> truths,
                                                   double pc, uint64_t seed) {
  return SimulatedCrowd(std::move(truths), {}, WorkerBias::Uniform(pc), seed);
}

common::Result<std::vector<bool>> SimulatedCrowd::CollectAnswers(
    std::span<const int> fact_ids) {
  std::vector<bool> answers;
  answers.reserve(fact_ids.size());
  for (int id : fact_ids) {
    if (id < 0 || id >= static_cast<int>(truths_.size())) {
      return Status::OutOfRange(
          common::StrFormat("fact id %d outside the crowd's universe", id));
    }
    const bool truth = truths_[static_cast<size_t>(id)];
    const data::StatementCategory category =
        categories_.empty() ? data::StatementCategory::kClean
                            : categories_[static_cast<size_t>(id)];
    // The honest branch must stay byte-identical to the pre-adversary
    // crowd: same draw, same stream (the adversary-off differential).
    const bool answer =
        adversary_ == nullptr
            ? worker_.Judge(truth, category, rng_)
            : adversary_->Judge(id, truth, category, worker_.bias());
    ++answers_served_;
    if (answer == truth) ++answers_correct_;
    answers.push_back(answer);
  }
  return answers;
}

common::Status SimulatedCrowd::ConfigureAdversary(
    const core::AdversarySpec& spec) {
  if (!spec.enabled) {
    return Status::InvalidArgument(
        "refusing to install a disabled adversary; leave the crowd honest "
        "instead");
  }
  CF_ASSIGN_OR_RETURN(adversary_, AdversaryModel::Create(spec));
  return Status::Ok();
}

void SimulatedCrowd::ConfigureAsync(LatencyOptions latency,
                                    common::Clock* clock) {
  latency_ = LatencyModel(latency);
  async_clock_ = clock;
  ledger_ = std::make_unique<core::TicketLedger>(clock);
}

core::TicketLedger& SimulatedCrowd::ledger() {
  if (ledger_ == nullptr) {
    ledger_ = std::make_unique<core::TicketLedger>(async_clock_);
  }
  return *ledger_;
}

common::Result<core::TicketId> SimulatedCrowd::Submit(
    std::span<const int> fact_ids, const core::TicketOptions& options) {
  // The whole ticket is resolved here, in submission order: judgments come
  // from the sync path's RNG stream (so sync ≡ async answer-for-answer)
  // and latency/failures from the latency model's own stream. A failed
  // attempt abandons the batch before any judgment is drawn.
  core::TicketLedger::Outcome outcome = core::SimulateTicketAttempts(
      options,
      [this, fact_ids](int) -> common::Result<std::vector<bool>> {
        if (latency_.SampleFailure()) {
          return Status::Unavailable("injected crowd failure");
        }
        return CollectAnswers(fact_ids);
      },
      [this, fact_ids](int) {
        // The batch goes out in parallel; the slowest task gates it.
        double batch_seconds = 0.0;
        for (size_t i = 0; i < fact_ids.size(); ++i) {
          batch_seconds =
              std::max(batch_seconds, latency_.SampleTaskSeconds());
        }
        return batch_seconds;
      });
  return ledger().Add(std::move(outcome));
}

common::Result<core::TicketStatus> SimulatedCrowd::Poll(
    core::TicketId ticket) {
  return ledger().Poll(ticket);
}

common::Result<std::vector<bool>> SimulatedCrowd::Await(
    core::TicketId ticket) {
  return ledger().Await(ticket);
}

void SimulatedCrowd::Cancel(core::TicketId ticket) {
  ledger().Forget(ticket);
}

double SimulatedCrowd::EmpiricalAccuracy() const {
  return answers_served_ == 0
             ? 0.0
             : static_cast<double>(answers_correct_) /
                   static_cast<double>(answers_served_);
}

}  // namespace crowdfusion::crowd
