#ifndef CROWDFUSION_CROWD_SIMULATED_CROWD_H_
#define CROWDFUSION_CROWD_SIMULATED_CROWD_H_

#include <vector>

#include "common/random.h"
#include "core/crowdfusion.h"
#include "crowd/worker.h"
#include "data/statement.h"

namespace crowdfusion::crowd {

/// The gMission substitute: an AnswerProvider that samples crowd judgments
/// from the ground truth under the paper's Bernoulli error model
/// (Definition 2), optionally with the Section V-D per-category biases.
///
/// One instance serves one fact universe (e.g. one book): fact id i refers
/// to truths[i] / categories[i]. All algorithms observe only the returned
/// answers, so swapping a real platform in requires only another
/// AnswerProvider.
class SimulatedCrowd : public core::AnswerProvider {
 public:
  /// `categories` may be empty, in which case every fact is kClean.
  SimulatedCrowd(std::vector<bool> truths,
                 std::vector<data::StatementCategory> categories,
                 WorkerBias bias, uint64_t seed);

  /// Unbiased crowd with uniform accuracy pc (the experiment knob).
  static SimulatedCrowd WithUniformAccuracy(std::vector<bool> truths,
                                            double pc, uint64_t seed);

  common::Result<std::vector<bool>> CollectAnswers(
      std::span<const int> fact_ids) override;

  /// Total judgments served so far.
  int64_t answers_served() const { return answers_served_; }
  /// Of those, how many matched the ground truth (empirical accuracy).
  int64_t answers_correct() const { return answers_correct_; }
  double EmpiricalAccuracy() const;

 private:
  std::vector<bool> truths_;
  std::vector<data::StatementCategory> categories_;
  Worker worker_;
  common::Rng rng_;
  int64_t answers_served_ = 0;
  int64_t answers_correct_ = 0;
};

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_SIMULATED_CROWD_H_
