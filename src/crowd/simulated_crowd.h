#ifndef CROWDFUSION_CROWD_SIMULATED_CROWD_H_
#define CROWDFUSION_CROWD_SIMULATED_CROWD_H_

#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/async_provider.h"
#include "core/crowdfusion.h"
#include "crowd/adversary.h"
#include "crowd/latency_model.h"
#include "crowd/worker.h"
#include "data/statement.h"

namespace crowdfusion::crowd {

/// The gMission substitute: an AnswerProvider that samples crowd judgments
/// from the ground truth under the paper's Bernoulli error model
/// (Definition 2), optionally with the Section V-D per-category biases.
///
/// One instance serves one fact universe (e.g. one book): fact id i refers
/// to truths[i] / categories[i]. All algorithms observe only the returned
/// answers, so swapping a real platform in requires only another
/// AnswerProvider.
///
/// The crowd also speaks the asynchronous contract natively: Submit
/// registers a ticket whose answers land after a seeded simulated latency
/// (LatencyOptions, ConfigureAsync), with injectable attempt failures
/// retried under the ticket's bounded-retry/deadline terms. Judgments are
/// drawn at submit time from the same RNG stream the synchronous path
/// uses, so a zero-latency async run answers identically to the blocking
/// one. Submit/CollectAnswers calls must come from one thread at a time;
/// Poll/Await are internally synchronized.
class SimulatedCrowd : public core::AnswerProvider,
                       public core::AsyncAnswerProvider {
 public:
  /// `categories` may be empty, in which case every fact is kClean.
  SimulatedCrowd(std::vector<bool> truths,
                 std::vector<data::StatementCategory> categories,
                 WorkerBias bias, uint64_t seed);

  /// Unbiased crowd with uniform accuracy pc (the experiment knob).
  static SimulatedCrowd WithUniformAccuracy(std::vector<bool> truths,
                                            double pc, uint64_t seed);

  common::Result<std::vector<bool>> CollectAnswers(
      std::span<const int> fact_ids) override;

  /// Installs the latency/failure model and clock for the async interface
  /// (and resets any outstanding tickets). Without this call, Submit works
  /// with zero latency on the real clock. `clock` is borrowed and must
  /// outlive the crowd; nullptr means Clock::Real().
  void ConfigureAsync(LatencyOptions latency,
                      common::Clock* clock = nullptr);

  /// Installs a hostile worker layer: every subsequent judgment is drawn
  /// by the AdversaryModel (from its own RNG stream) instead of the
  /// honest aggregate worker. Without this call — or with
  /// spec.enabled == false, which is rejected — the honest path runs
  /// byte-for-byte as before, so adversary-off stays differentially
  /// identical to the pre-adversary crowd.
  common::Status ConfigureAdversary(const core::AdversarySpec& spec);

  /// The installed adversary, or nullptr for an honest crowd.
  const AdversaryModel* adversary() const { return adversary_.get(); }
  AdversaryModel* adversary() { return adversary_.get(); }

  common::Result<core::TicketId> Submit(
      std::span<const int> fact_ids,
      const core::TicketOptions& options) override;
  using core::AsyncAnswerProvider::Submit;
  common::Result<core::TicketStatus> Poll(core::TicketId ticket) override;
  common::Result<std::vector<bool>> Await(core::TicketId ticket) override;
  void Cancel(core::TicketId ticket) override;

  /// Total judgments served so far.
  int64_t answers_served() const { return answers_served_; }
  /// Of those, how many matched the ground truth (empirical accuracy).
  int64_t answers_correct() const { return answers_correct_; }
  double EmpiricalAccuracy() const;

 private:
  core::TicketLedger& ledger();

  std::vector<bool> truths_;
  std::vector<data::StatementCategory> categories_;
  Worker worker_;
  common::Rng rng_;
  std::unique_ptr<AdversaryModel> adversary_;
  int64_t answers_served_ = 0;
  int64_t answers_correct_ = 0;
  LatencyModel latency_;
  common::Clock* async_clock_ = nullptr;
  std::unique_ptr<core::TicketLedger> ledger_;
};

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_SIMULATED_CROWD_H_
