#include "crowd/worker.h"

namespace crowdfusion::crowd {

WorkerBias WorkerBias::Uniform(double p) {
  WorkerBias bias;
  bias.base_accuracy = p;
  bias.reordered_accuracy = p;
  bias.additional_info_accuracy = p;
  bias.misspelling_accuracy = p;
  return bias;
}

double WorkerBias::AccuracyFor(data::StatementCategory category) const {
  switch (category) {
    case data::StatementCategory::kReordered:
      return reordered_accuracy;
    case data::StatementCategory::kAdditionalInfo:
      return additional_info_accuracy;
    case data::StatementCategory::kMisspelling:
      return misspelling_accuracy;
    default:
      return base_accuracy;
  }
}

bool Worker::Judge(bool ground_truth, data::StatementCategory category,
                   common::Rng& rng) const {
  const double accuracy = bias_.AccuracyFor(category);
  const bool correct = rng.NextBernoulli(accuracy);
  return correct ? ground_truth : !ground_truth;
}

}  // namespace crowdfusion::crowd
