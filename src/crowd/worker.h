#ifndef CROWDFUSION_CROWD_WORKER_H_
#define CROWDFUSION_CROWD_WORKER_H_

#include <string>

#include "common/random.h"
#include "data/statement.h"

namespace crowdfusion::crowd {

/// Per-category answer behaviour of simulated workers, calibrated to the
/// paper's error analysis (Section V-D): a worker's chance of judging a
/// statement *correctly* depends on the statement category. The paper
/// measured overall accuracy ≈ 0.86 with three systematically confusing
/// categories:
///  * Reordered (true) statements are often marked false;
///  * AdditionalInfo (false) statements are marked true by > 40% of
///    workers;
///  * Misspelling (false) statements are marked correct by more than half
///    of workers.
struct WorkerBias {
  /// P(correct judgment) for ordinary statements.
  double base_accuracy = 0.86;
  /// P(correct) for reordered-but-true statements.
  double reordered_accuracy = 0.55;
  /// P(correct) for additional-information statements.
  double additional_info_accuracy = 0.58;
  /// P(correct) for misspelled statements (below 0.5: the crowd is
  /// systematically wrong on these, as observed in the paper).
  double misspelling_accuracy = 0.45;

  /// Unbiased Bernoulli(p) crowd for all categories.
  static WorkerBias Uniform(double p);

  /// P(correct) for a statement of the given category.
  double AccuracyFor(data::StatementCategory category) const;
};

/// One simulated crowd worker.
class Worker {
 public:
  Worker(std::string id, WorkerBias bias) : id_(std::move(id)), bias_(bias) {}

  const std::string& id() const { return id_; }
  const WorkerBias& bias() const { return bias_; }

  /// Answers "is this statement true?" given the ground truth and the
  /// statement's category: returns the correct judgment with the
  /// category's accuracy, the flipped one otherwise.
  bool Judge(bool ground_truth, data::StatementCategory category,
             common::Rng& rng) const;

 private:
  std::string id_;
  WorkerBias bias_;
};

}  // namespace crowdfusion::crowd

#endif  // CROWDFUSION_CROWD_WORKER_H_
