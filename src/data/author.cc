#include "data/author.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace crowdfusion::data {

using common::Join;
using common::Split;
using common::ToLower;
using common::Trim;

std::string RenderAuthor(const AuthorName& author, NameFormat format) {
  switch (format) {
    case NameFormat::kFirstLast:
      return author.first + " " + author.last;
    case NameFormat::kLastCommaFirst:
      return author.last + ", " + author.first;
    case NameFormat::kAllCapsLastCommaFirst: {
      std::string out = author.last + ", " + author.first;
      std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
      });
      return out;
    }
  }
  return "";
}

std::string RenderAuthorList(const AuthorList& authors, NameFormat format) {
  std::vector<std::string> parts;
  parts.reserve(authors.size());
  for (const AuthorName& a : authors) parts.push_back(RenderAuthor(a, format));
  return Join(parts, "; ");
}

ParsedStatement ParseAuthorListStatement(const std::string& text) {
  ParsedStatement parsed;
  std::string body = text;
  // Any parenthesized annotation marks "additional information".
  const size_t paren = body.find('(');
  if (paren != std::string::npos) {
    parsed.has_annotation = true;
    body = body.substr(0, paren);
  }
  for (const std::string& piece : Split(body, ';')) {
    const std::string author_text = Trim(piece);
    if (author_text.empty()) continue;
    AuthorName name;
    const size_t comma = author_text.find(',');
    if (comma != std::string::npos) {
      // "Last, First"
      name.last = Trim(author_text.substr(0, comma));
      name.first = Trim(author_text.substr(comma + 1));
    } else {
      // "First Last" (last token is the last name).
      const size_t space = author_text.rfind(' ');
      if (space == std::string::npos) {
        name.last = author_text;
      } else {
        name.first = Trim(author_text.substr(0, space));
        name.last = Trim(author_text.substr(space + 1));
      }
    }
    parsed.authors.push_back(std::move(name));
  }
  return parsed;
}

std::string CanonicalKey(const AuthorList& authors) {
  std::vector<std::string> keys;
  keys.reserve(authors.size());
  for (const AuthorName& a : authors) {
    keys.push_back(ToLower(a.first) + " " + ToLower(a.last));
  }
  std::sort(keys.begin(), keys.end());
  return Join(keys, "|");
}

bool SameAuthors(const AuthorList& a, const AuthorList& b) {
  return CanonicalKey(a) == CanonicalKey(b);
}

}  // namespace crowdfusion::data
