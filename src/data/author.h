#ifndef CROWDFUSION_DATA_AUTHOR_H_
#define CROWDFUSION_DATA_AUTHOR_H_

#include <string>
#include <vector>

namespace crowdfusion::data {

/// One author of a book.
struct AuthorName {
  std::string first;
  std::string last;

  friend bool operator==(const AuthorName& a, const AuthorName& b) = default;
};

using AuthorList = std::vector<AuthorName>;

/// Rendering formats seen in the real Book dataset: "Tyrone Adams" vs
/// "Adams, Tyrone" vs "ADAMS, TYRONE".
enum class NameFormat {
  kFirstLast,      // "Tyrone Adams"
  kLastCommaFirst, // "Adams, Tyrone"
  kAllCapsLastCommaFirst,  // "ADAMS, TYRONE"
};

/// Renders one author in the given format.
std::string RenderAuthor(const AuthorName& author, NameFormat format);

/// Renders a full author list, authors separated by "; ".
std::string RenderAuthorList(const AuthorList& authors, NameFormat format);

/// Parses a rendered author-list statement back into names. Handles all
/// NameFormat variants; parenthesized trailing annotations (the
/// "additional information" error category) are preserved in
/// `trailing_annotation` so the ground-truth labeler can reject them.
struct ParsedStatement {
  AuthorList authors;
  bool has_annotation = false;
};
ParsedStatement ParseAuthorListStatement(const std::string& text);

/// Canonical order-insensitive, case-insensitive key of an author list.
/// Two statements are the same list iff their keys match — this implements
/// the paper's ground-truth rule that author order does not matter.
std::string CanonicalKey(const AuthorList& authors);

/// True iff the two lists contain the same author names (order- and
/// case-insensitive, exact spelling).
bool SameAuthors(const AuthorList& a, const AuthorList& b);

}  // namespace crowdfusion::data

#endif  // CROWDFUSION_DATA_AUTHOR_H_
