#include "data/book_dataset.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace crowdfusion::data {

using common::Rng;
using common::Status;

namespace {

constexpr const char* kFirstNames[] = {
    "James",  "Mary",   "Robert", "Patricia", "John",   "Jennifer",
    "Michael", "Linda",  "David",  "Elizabeth", "William", "Barbara",
    "Richard", "Susan",  "Joseph", "Jessica",  "Thomas",  "Sarah",
    "Charles", "Karen",  "Daniel", "Lisa",     "Matthew", "Nancy",
    "Anthony", "Betty",  "Mark",   "Margaret", "Donald",  "Sandra",
    "Steven",  "Ashley", "Paul",   "Kimberly", "Andrew",  "Emily",
    "Joshua",  "Donna",  "Kenneth", "Michelle"};

constexpr const char* kLastNames[] = {
    "Smith",   "Johnson",  "Williams", "Brown",    "Jones",    "Garcia",
    "Miller",  "Davis",    "Rodriguez", "Martinez", "Hernandez", "Lopez",
    "Gonzalez", "Wilson",  "Anderson", "Thomas",   "Taylor",   "Moore",
    "Jackson", "Martin",   "Lee",      "Perez",    "Thompson", "White",
    "Harris",  "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
    "Walker",  "Young",    "Allen",    "King",     "Wright",   "Scott",
    "Torres",  "Nguyen",   "Hill",     "Flores",   "Green",    "Adams",
    "Nelson",  "Baker",    "Hall",     "Rivera",   "Campbell", "Mitchell",
    "Carter",  "Roberts",  "Loshin",   "Rucker",   "Courage",  "Baxter",
    "Scollard", "Kernighan", "Ritchie", "Stroustrup", "Knuth",  "Cormen"};

constexpr const char* kTextbookTopics[] = {
    "Algorithms", "Databases", "Operating Systems", "Networks",
    "Compilers", "Statistics", "Linear Algebra", "Machine Learning"};

constexpr const char* kTradeTopics[] = {
    "the World Wide Web", "Digital Photography", "Home Cooking",
    "Travel in Asia", "Personal Finance", "Gardening", "Chess",
    "Science Fiction"};

constexpr const char* kOrganizations[] = {
    "SAN JOSE STATE UNIVERSITY, USA", "MIT PRESS", "OXFORD UNIVERSITY, UK",
    "ACME PUBLISHING GROUP", "HKUST, HONG KONG"};

constexpr NameFormat kFormats[] = {NameFormat::kFirstLast,
                                   NameFormat::kLastCommaFirst,
                                   NameFormat::kAllCapsLastCommaFirst};

AuthorName RandomAuthor(Rng& rng) {
  return AuthorName{
      kFirstNames[rng.NextBounded(std::size(kFirstNames))],
      kLastNames[rng.NextBounded(std::size(kLastNames))]};
}

/// One-character edit in the last name (the Loshin -> "Loshin, Peter" /
/// "Pete" class of error is modeled as a character-level misspelling).
AuthorList MisspellOneAuthor(AuthorList authors, Rng& rng) {
  AuthorName& victim =
      authors[rng.NextBounded(static_cast<uint64_t>(authors.size()))];
  std::string& name = victim.last.size() > 2 ? victim.last : victim.first;
  if (name.empty()) {
    name.push_back('x');
    return authors;
  }
  const size_t pos = 1 + rng.NextBounded(static_cast<uint64_t>(
                             name.size() - 1 > 0 ? name.size() - 1 : 1));
  switch (rng.NextBounded(3)) {
    case 0:  // substitute
      name[pos % name.size()] =
          static_cast<char>('a' + rng.NextBounded(26));
      break;
    case 1:  // insert
      name.insert(pos % (name.size() + 1), 1,
                  static_cast<char>('a' + rng.NextBounded(26)));
      break;
    default:  // delete
      name.erase(pos % name.size(), 1);
      break;
  }
  return authors;
}

/// A distinct true-variant statement: random format, possibly reordered.
Statement MakeTrueStatement(const AuthorList& authors, double reorder_prob,
                            Rng& rng) {
  Statement statement;
  AuthorList rendered = authors;
  bool reordered = false;
  if (authors.size() > 1 && rng.NextBernoulli(reorder_prob)) {
    // Shuffle until the order differs from canonical.
    for (int attempt = 0; attempt < 8 && !reordered; ++attempt) {
      rng.Shuffle(rendered);
      reordered = !(rendered == authors);
    }
  }
  statement.category = reordered ? StatementCategory::kReordered
                                 : StatementCategory::kClean;
  statement.is_true = true;
  statement.text = RenderAuthorList(
      rendered, kFormats[rng.NextBounded(std::size(kFormats))]);
  return statement;
}

Statement MakeFalseStatement(const AuthorList& authors,
                             const BookDatasetOptions& options, Rng& rng) {
  Statement statement;
  statement.is_true = false;
  const int category = rng.SampleDiscrete(
      {options.weight_additional_info, options.weight_misspelling,
       options.weight_wrong_author, options.weight_missing_author});
  const NameFormat format = kFormats[rng.NextBounded(std::size(kFormats))];
  switch (category) {
    case 0: {
      statement.category = StatementCategory::kAdditionalInfo;
      statement.text =
          RenderAuthorList(authors, format) + " (" +
          kOrganizations[rng.NextBounded(std::size(kOrganizations))] + ")";
      break;
    }
    case 1: {
      statement.category = StatementCategory::kMisspelling;
      statement.text =
          RenderAuthorList(MisspellOneAuthor(authors, rng), format);
      break;
    }
    case 2: {
      statement.category = StatementCategory::kWrongAuthor;
      AuthorList wrong = authors;
      wrong[rng.NextBounded(static_cast<uint64_t>(wrong.size()))] =
          RandomAuthor(rng);
      statement.text = RenderAuthorList(wrong, format);
      break;
    }
    default: {
      statement.category = StatementCategory::kMissingAuthor;
      AuthorList fewer = authors;
      if (fewer.size() > 1) {
        fewer.erase(fewer.begin() +
                    static_cast<long>(rng.NextBounded(
                        static_cast<uint64_t>(fewer.size()))));
      } else {
        // Single-author book: "missing author" degenerates to an empty
        // list; replace with a wrong author instead.
        statement.category = StatementCategory::kWrongAuthor;
        fewer[0] = RandomAuthor(rng);
      }
      statement.text = RenderAuthorList(fewer, format);
      break;
    }
  }
  return statement;
}

}  // namespace

double BookDataset::FractionTrueClaims() const {
  int64_t true_claims = 0;
  int64_t total_claims = 0;
  for (const Book& book : books) {
    for (size_t i = 0; i < book.statements.size(); ++i) {
      const int vid = book.value_ids[i];
      const int64_t copies =
          static_cast<int64_t>(claims.value_sources(vid).size());
      total_claims += copies;
      if (book.statements[i].is_true) true_claims += copies;
    }
  }
  return total_claims == 0
             ? 0.0
             : static_cast<double>(true_claims) /
                   static_cast<double>(total_claims);
}

common::Result<BookDataset> GenerateBookDataset(
    const BookDatasetOptions& options) {
  if (options.num_books <= 0 || options.num_sources <= 0) {
    return Status::InvalidArgument("need at least one book and one source");
  }
  if (options.min_authors < 1 || options.max_authors < options.min_authors) {
    return Status::InvalidArgument("invalid author count range");
  }
  if (options.true_variants < 1 || options.false_variants < 1) {
    return Status::InvalidArgument(
        "need at least one true and one false variant per book");
  }
  if (options.coverage <= 0.0 || options.coverage > 1.0) {
    return Status::InvalidArgument("coverage must be in (0, 1]");
  }

  Rng rng(options.seed);
  BookDataset dataset;
  dataset.options = options;

  // Sources with domain-dependent reliability.
  for (int s = 0; s < options.num_sources; ++s) {
    SourceProfile profile;
    profile.name = common::StrFormat("bookstore_%02d.example.com", s);
    const double strong = rng.NextUniform(options.strong_accuracy_low,
                                          options.strong_accuracy_high);
    if (rng.NextBernoulli(options.skewed_source_fraction)) {
      const double weak = rng.NextUniform(options.weak_accuracy_low,
                                          options.weak_accuracy_high);
      const bool strong_on_textbooks = rng.NextBernoulli(0.5);
      profile.accuracy_textbook = strong_on_textbooks ? strong : weak;
      profile.accuracy_non_textbook = strong_on_textbooks ? weak : strong;
    } else {
      profile.accuracy_textbook = strong;
      profile.accuracy_non_textbook = strong;
    }
    dataset.sources.push_back(profile);
    dataset.claims.AddSource(profile.name);
  }

  // Books, statement pools, and claims.
  for (int b = 0; b < options.num_books; ++b) {
    Book book;
    book.is_textbook = rng.NextBernoulli(options.textbook_fraction);
    const char* topic =
        book.is_textbook
            ? kTextbookTopics[rng.NextBounded(std::size(kTextbookTopics))]
            : kTradeTopics[rng.NextBounded(std::size(kTradeTopics))];
    book.title = common::StrFormat("%s %s, Vol. %d",
                                   book.is_textbook ? "Introduction to"
                                                    : "A Guide to",
                                   topic, b + 1);
    book.isbn = common::StrFormat("97800%05d", b);
    const int num_authors = static_cast<int>(
        rng.NextInt(options.min_authors, options.max_authors));
    while (static_cast<int>(book.true_authors.size()) < num_authors) {
      AuthorName candidate = RandomAuthor(rng);
      if (std::find(book.true_authors.begin(), book.true_authors.end(),
                    candidate) == book.true_authors.end()) {
        book.true_authors.push_back(std::move(candidate));
      }
    }

    // Shared statement pools: erring sources copy from the same false
    // variants, so false values accumulate support like on the real Web.
    std::vector<Statement> true_pool;
    for (int i = 0; i < options.true_variants; ++i) {
      const Statement s = MakeTrueStatement(
          book.true_authors, i == 0 ? 0.0 : options.reorder_fraction, rng);
      if (std::none_of(true_pool.begin(), true_pool.end(),
                       [&](const Statement& t) { return t.text == s.text; })) {
        true_pool.push_back(s);
      }
    }
    std::vector<Statement> false_pool;
    for (int i = 0; i < options.false_variants * 2 &&
                    static_cast<int>(false_pool.size()) <
                        options.false_variants;
         ++i) {
      Statement s = MakeFalseStatement(book.true_authors, options, rng);
      // Guard against corruption accidentally producing a true statement
      // (e.g. a misspelling that undoes itself).
      s.is_true = LabelStatement(s.text, book.true_authors);
      if (s.is_true) continue;
      if (std::none_of(false_pool.begin(), false_pool.end(),
                       [&](const Statement& t) { return t.text == s.text; })) {
        false_pool.push_back(std::move(s));
      }
    }
    if (false_pool.empty()) {
      Statement s;
      s.category = StatementCategory::kWrongAuthor;
      AuthorList wrong = book.true_authors;
      wrong[0] = AuthorName{"Nemo", "Nobody"};
      s.text = RenderAuthorList(wrong, NameFormat::kFirstLast);
      s.is_true = false;
      false_pool.push_back(std::move(s));
    }

    const int entity = dataset.claims.AddEntity(book.isbn);
    CF_CHECK(entity == b);

    // Sources claim statements.
    for (int s = 0; s < options.num_sources; ++s) {
      if (!rng.NextBernoulli(options.coverage)) continue;
      const SourceProfile& profile = dataset.sources[static_cast<size_t>(s)];
      const double accuracy = book.is_textbook
                                  ? profile.accuracy_textbook
                                  : profile.accuracy_non_textbook;
      const std::vector<Statement>& pool =
          rng.NextBernoulli(accuracy) ? true_pool : false_pool;
      const Statement& statement =
          pool[rng.NextBounded(static_cast<uint64_t>(pool.size()))];
      CF_ASSIGN_OR_RETURN(const int vid,
                          dataset.claims.AddValue(entity, statement.text));
      CF_RETURN_IF_ERROR(dataset.claims.AddClaim(s, vid));
      // Track the statement if it is new to this book.
      if (std::find(book.value_ids.begin(), book.value_ids.end(), vid) ==
          book.value_ids.end()) {
        book.value_ids.push_back(vid);
        book.statements.push_back(statement);
      }
    }
    dataset.books.push_back(std::move(book));
  }

  // Global ground-truth arrays, cross-checked with the independent labeler.
  dataset.value_truth.assign(static_cast<size_t>(dataset.claims.num_values()),
                             false);
  dataset.value_category.assign(
      static_cast<size_t>(dataset.claims.num_values()),
      StatementCategory::kClean);
  for (const Book& book : dataset.books) {
    for (size_t i = 0; i < book.statements.size(); ++i) {
      const int vid = book.value_ids[i];
      const bool labeled =
          LabelStatement(book.statements[i].text, book.true_authors);
      CF_CHECK(labeled == book.statements[i].is_true)
          << "label mismatch for statement: " << book.statements[i].text;
      dataset.value_truth[static_cast<size_t>(vid)] = labeled;
      dataset.value_category[static_cast<size_t>(vid)] =
          book.statements[i].category;
    }
  }
  return dataset;
}

}  // namespace crowdfusion::data
