#ifndef CROWDFUSION_DATA_BOOK_DATASET_H_
#define CROWDFUSION_DATA_BOOK_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/statement.h"
#include "fusion/claim_database.h"

namespace crowdfusion::data {

/// Synthetic substitute for the Book dataset (lunadong.com fusion
/// datasets) used in the paper's evaluation: online bookstores (sources)
/// make author-list claims about books; a claim's statement may be a true
/// variant (different format/order) or one of the paper's false
/// categories. Source reliability is domain-dependent — the paper's
/// eCampus.com example is a source consistent on textbooks but wrong on
/// every non-textbook — which is exactly the pathology that defeats
/// machine-only fusion and motivates the crowd.
struct BookDatasetOptions {
  int num_books = 100;
  int num_sources = 30;
  int min_authors = 1;
  int max_authors = 4;
  /// Fraction of books in the "textbook" domain.
  double textbook_fraction = 0.5;
  /// Probability that a given source covers a given book.
  double coverage = 0.5;
  /// Accuracy range of a source on its strong domain. The defaults are
  /// calibrated so that ≈50% of raw claims are correct, matching the
  /// paper's statistic for the real Web data.
  double strong_accuracy_low = 0.55;
  double strong_accuracy_high = 0.9;
  /// Accuracy range on its weak domain (eCampus-style skew).
  double weak_accuracy_low = 0.05;
  double weak_accuracy_high = 0.35;
  /// Fraction of sources that are domain-skewed (strong on one domain,
  /// weak on the other); the rest use the strong range on both domains.
  double skewed_source_fraction = 0.7;
  /// Per-book pools of distinct statement variants. The number of facts
  /// per book is at most true_variants + false_variants; erring sources
  /// sample from the shared false pool, reproducing the Web's
  /// copying/propagation of wrong values.
  int true_variants = 3;
  int false_variants = 4;
  /// Probability a true statement uses a non-canonical author order
  /// (the "Wrong Order" category) rather than the canonical one.
  double reorder_fraction = 0.35;
  /// Relative weights of false-statement corruption categories.
  double weight_additional_info = 0.25;
  double weight_misspelling = 0.25;
  double weight_wrong_author = 0.3;
  double weight_missing_author = 0.2;
  uint64_t seed = 7;

  friend bool operator==(const BookDatasetOptions& a,
                         const BookDatasetOptions& b) = default;
};

/// One generated book with its candidate statements. The statement order
/// matches the book's fact ids (fact i of the book's joint distribution is
/// statements[i]) and the global value ids in the claim database.
struct Book {
  std::string title;
  std::string isbn;
  bool is_textbook = false;
  AuthorList true_authors;
  /// Distinct statements claimed by at least one source.
  std::vector<Statement> statements;
  /// Global value id in the claim database for each statement.
  std::vector<int> value_ids;
};

/// Per-source generation metadata (for inspecting the reliability skew).
struct SourceProfile {
  std::string name;
  double accuracy_textbook = 0.0;
  double accuracy_non_textbook = 0.0;
};

struct BookDataset {
  BookDatasetOptions options;
  std::vector<Book> books;
  std::vector<SourceProfile> sources;
  fusion::ClaimDatabase claims;
  /// Ground truth per global value id.
  std::vector<bool> value_truth;
  std::vector<StatementCategory> value_category;

  /// Fraction of raw claims (not distinct statements) that are true;
  /// the paper reports ≈50% for the real Web data.
  double FractionTrueClaims() const;
};

/// Generates a dataset. Deterministic in options.seed.
common::Result<BookDataset> GenerateBookDataset(
    const BookDatasetOptions& options);

}  // namespace crowdfusion::data

#endif  // CROWDFUSION_DATA_BOOK_DATASET_H_
