#include "data/correlation_model.h"

#include <map>
#include <string>

#include "common/math_util.h"
#include "common/string_util.h"
#include "data/author.h"

namespace crowdfusion::data {

using common::Status;
using core::JointDistribution;

namespace {

/// The latent-truth component: a sparse distribution whose worlds are
/// "canonical list h is the true list" plus a null world.
common::Result<JointDistribution> BuildLatentTruth(
    const std::vector<double>& marginals,
    const std::vector<Statement>& statements, double null_mass) {
  const int n = static_cast<int>(statements.size());
  // Group statements by canonical key; annotated statements are not true
  // under any hypothesis.
  std::map<std::string, uint64_t> world_of_key;
  std::vector<std::string> keys(statements.size());
  for (int i = 0; i < n; ++i) {
    const ParsedStatement parsed =
        ParseAuthorListStatement(statements[static_cast<size_t>(i)].text);
    if (parsed.has_annotation) {
      keys[static_cast<size_t>(i)] = "";
      continue;
    }
    keys[static_cast<size_t>(i)] = CanonicalKey(parsed.authors);
  }
  std::map<std::string, double> weight_of_key;
  for (int i = 0; i < n; ++i) {
    const std::string& key = keys[static_cast<size_t>(i)];
    if (key.empty()) continue;
    world_of_key[key] |= 1ULL << i;
    weight_of_key[key] += marginals[static_cast<size_t>(i)] + 1e-6;
  }
  std::vector<JointDistribution::Entry> entries;
  double total_weight = 0.0;
  for (const auto& [key, weight] : weight_of_key) total_weight += weight;
  if (total_weight <= 0.0 || world_of_key.empty()) {
    // No parseable hypothesis: all mass on the all-false world.
    return JointDistribution::FromEntries(n, {{0, 1.0}});
  }
  const double hypothesis_mass = 1.0 - null_mass;
  for (const auto& [key, mask] : world_of_key) {
    entries.push_back(
        {mask, hypothesis_mass * weight_of_key[key] / total_weight});
  }
  if (null_mass > 0.0) entries.push_back({0, null_mass});
  return JointDistribution::FromEntries(n, std::move(entries),
                                        /*normalize=*/true);
}

common::Result<JointDistribution> MixDistributions(
    const JointDistribution& a, const JointDistribution& b, double lambda) {
  std::vector<JointDistribution::Entry> entries;
  entries.reserve(a.entries().size() + b.entries().size());
  for (const auto& e : a.entries()) {
    entries.push_back({e.mask, lambda * e.prob});
  }
  for (const auto& e : b.entries()) {
    entries.push_back({e.mask, (1.0 - lambda) * e.prob});
  }
  return JointDistribution::FromEntries(a.num_facts(), std::move(entries),
                                        /*normalize=*/true);
}

}  // namespace

common::Result<JointDistribution> BuildBookJoint(
    const std::vector<double>& marginals,
    const std::vector<Statement>& statements,
    const CorrelationModelOptions& options) {
  if (marginals.size() != statements.size()) {
    return Status::InvalidArgument(common::StrFormat(
        "got %zu marginals for %zu statements", marginals.size(),
        statements.size()));
  }
  if (statements.empty()) {
    return Status::InvalidArgument("book has no statements");
  }
  if (static_cast<int>(statements.size()) > options.max_facts) {
    return Status::InvalidArgument(common::StrFormat(
        "book has %zu statements, cap is %d", statements.size(),
        options.max_facts));
  }
  for (double p : marginals) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("marginal outside [0, 1]");
    }
  }

  switch (options.kind) {
    case CorrelationKind::kIndependent:
      return JointDistribution::FromIndependentMarginals(marginals);
    case CorrelationKind::kLatentTruth:
      return BuildLatentTruth(marginals, statements,
                              options.null_hypothesis_mass);
    case CorrelationKind::kMixture: {
      CF_ASSIGN_OR_RETURN(
          JointDistribution independent,
          JointDistribution::FromIndependentMarginals(marginals));
      CF_ASSIGN_OR_RETURN(
          JointDistribution latent,
          BuildLatentTruth(marginals, statements,
                           options.null_hypothesis_mass));
      return MixDistributions(latent, independent, options.mixture_lambda);
    }
  }
  return Status::Internal("unknown correlation kind");
}

}  // namespace crowdfusion::data
