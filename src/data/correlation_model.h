#ifndef CROWDFUSION_DATA_CORRELATION_MODEL_H_
#define CROWDFUSION_DATA_CORRELATION_MODEL_H_

#include <vector>

#include "common/status.h"
#include "core/joint_distribution.h"
#include "data/statement.h"

namespace crowdfusion::data {

using core::JointDistribution;

/// Builds the per-book joint output distribution that CrowdFusion consumes
/// from (a) the machine-only fusion marginals and (b) the structure of the
/// statements themselves. The paper takes the joint as given ("can be
/// extended to the joint distribution as required", Section VII); this
/// module provides the three natural constructions.
enum class CorrelationKind {
  /// Facts are independent Bernoullis with the fusion marginals. No
  /// correlation — the weakest but assumption-free prior.
  kIndependent,
  /// Latent-truth model: hypothesize that exactly one canonical author
  /// list is correct. Each distinct parsed canonical key among the
  /// statements is a hypothesis; under hypothesis h, statement j is true
  /// iff its canonical key equals h and it carries no annotation. The
  /// hypothesis prior is proportional to the summed marginals of its
  /// supporting statements. This produces the strong positive correlation
  /// between format variants of one list and negative correlation between
  /// conflicting lists (the paper's Obama example, instantiated for book
  /// data).
  kLatentTruth,
  /// Mixture: lambda * LatentTruth + (1 - lambda) * Independent. Keeps the
  /// correlations while retaining full support so that no crowd answer is
  /// ever impossible evidence.
  kMixture,
};

struct CorrelationModelOptions {
  CorrelationKind kind = CorrelationKind::kMixture;
  /// Weight of the latent-truth component in kMixture.
  double mixture_lambda = 0.6;
  /// Mass of the residual "no hypothesis is right" world in the
  /// latent-truth component.
  double null_hypothesis_mass = 0.05;
  /// Hard cap on facts per joint (dense representation is 2^n).
  int max_facts = JointDistribution::kMaxDenseFacts;

  friend bool operator==(const CorrelationModelOptions& a,
                         const CorrelationModelOptions& b) = default;
};

/// Builds the joint distribution of one book's statements. `marginals[i]`
/// is the fusion probability that statement `statements[i]` is true. The
/// two vectors must be the same size, non-empty, and within the fact cap.
common::Result<JointDistribution> BuildBookJoint(
    const std::vector<double>& marginals,
    const std::vector<Statement>& statements,
    const CorrelationModelOptions& options);

}  // namespace crowdfusion::data

#endif  // CROWDFUSION_DATA_CORRELATION_MODEL_H_
