#include "data/dataset_io.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/string_util.h"

namespace crowdfusion::data {

using common::Status;

namespace {

common::Result<StatementCategory> ParseCategory(const std::string& name) {
  static constexpr StatementCategory kAll[] = {
      StatementCategory::kClean,          StatementCategory::kReordered,
      StatementCategory::kAdditionalInfo, StatementCategory::kMisspelling,
      StatementCategory::kWrongAuthor,    StatementCategory::kMissingAuthor};
  for (StatementCategory c : kAll) {
    if (name == StatementCategoryName(c)) return c;
  }
  return Status::InvalidArgument("unknown statement category: " + name);
}

}  // namespace

Status SaveBookDataset(const BookDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  for (const Book& book : dataset.books) {
    for (size_t i = 0; i < book.statements.size(); ++i) {
      const int vid = book.value_ids[i];
      for (int sid : dataset.claims.value_sources(vid)) {
        out << book.isbn << '\t' << book.title << '\t'
            << dataset.claims.source_name(sid) << '\t'
            << book.statements[i].text << '\t'
            << (book.statements[i].is_true ? 1 : 0) << '\t'
            << StatementCategoryName(book.statements[i].category) << '\n';
      }
    }
  }
  out.close();

  std::ofstream truth(path + ".truth");
  if (!truth.is_open()) {
    return Status::NotFound("cannot open for writing: " + path + ".truth");
  }
  for (const Book& book : dataset.books) {
    truth << book.isbn << '\t'
          << RenderAuthorList(book.true_authors, NameFormat::kFirstLast)
          << '\n';
  }
  return Status::Ok();
}

common::Result<BookDataset> LoadBookDataset(const std::string& path) {
  std::ifstream truth_in(path + ".truth");
  if (!truth_in.is_open()) {
    return Status::NotFound("cannot open: " + path + ".truth");
  }
  std::map<std::string, AuthorList> truth_of_isbn;
  std::vector<std::string> isbn_order;
  std::string line;
  while (std::getline(truth_in, line)) {
    if (line.empty()) continue;
    const auto fields = common::Split(line, '\t');
    if (fields.size() != 2) {
      return Status::InvalidArgument("malformed truth line: " + line);
    }
    truth_of_isbn[fields[0]] =
        ParseAuthorListStatement(fields[1]).authors;
    isbn_order.push_back(fields[0]);
  }

  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);

  BookDataset dataset;
  std::map<std::string, int> book_index;
  std::map<std::string, int> source_index;
  for (const std::string& isbn : isbn_order) {
    Book book;
    book.isbn = isbn;
    book.true_authors = truth_of_isbn[isbn];
    book_index[isbn] = static_cast<int>(dataset.books.size());
    dataset.claims.AddEntity(isbn);
    dataset.books.push_back(std::move(book));
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = common::Split(line, '\t');
    if (fields.size() != 6) {
      return Status::InvalidArgument("malformed claim line: " + line);
    }
    const auto book_it = book_index.find(fields[0]);
    if (book_it == book_index.end()) {
      return Status::InvalidArgument("claim for unknown isbn: " + fields[0]);
    }
    Book& book = dataset.books[static_cast<size_t>(book_it->second)];
    book.title = fields[1];

    int source_id = 0;
    if (auto it = source_index.find(fields[2]); it != source_index.end()) {
      source_id = it->second;
    } else {
      source_id = dataset.claims.AddSource(fields[2]);
      source_index[fields[2]] = source_id;
      dataset.sources.push_back({fields[2], 0.0, 0.0});
    }

    CF_ASSIGN_OR_RETURN(const int vid,
                        dataset.claims.AddValue(book_it->second, fields[3]));
    CF_RETURN_IF_ERROR(dataset.claims.AddClaim(source_id, vid));

    if (std::find(book.value_ids.begin(), book.value_ids.end(), vid) ==
        book.value_ids.end()) {
      Statement statement;
      statement.text = fields[3];
      statement.is_true = fields[4] == "1";
      CF_ASSIGN_OR_RETURN(statement.category, ParseCategory(fields[5]));
      book.value_ids.push_back(vid);
      book.statements.push_back(std::move(statement));
    }
  }

  dataset.value_truth.assign(static_cast<size_t>(dataset.claims.num_values()),
                             false);
  dataset.value_category.assign(
      static_cast<size_t>(dataset.claims.num_values()),
      StatementCategory::kClean);
  for (const Book& book : dataset.books) {
    for (size_t i = 0; i < book.statements.size(); ++i) {
      dataset.value_truth[static_cast<size_t>(book.value_ids[i])] =
          book.statements[i].is_true;
      dataset.value_category[static_cast<size_t>(book.value_ids[i])] =
          book.statements[i].category;
    }
  }
  return dataset;
}

}  // namespace crowdfusion::data
