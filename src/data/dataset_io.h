#ifndef CROWDFUSION_DATA_DATASET_IO_H_
#define CROWDFUSION_DATA_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "data/book_dataset.h"

namespace crowdfusion::data {

/// Persists a generated dataset in the TSV layout of the original Book
/// dataset (one claim per line):
///   isbn \t title \t source \t statement \t label \t category
/// and a companion "<path>.truth" file with the gold author list per book:
///   isbn \t canonical author list
common::Status SaveBookDataset(const BookDataset& dataset,
                               const std::string& path);

/// Loads a dataset previously written by SaveBookDataset. Claims, ground
/// truth, and categories round-trip; generation metadata (source accuracy
/// profiles) does not, and `options` keeps only defaults.
common::Result<BookDataset> LoadBookDataset(const std::string& path);

}  // namespace crowdfusion::data

#endif  // CROWDFUSION_DATA_DATASET_IO_H_
