#include "data/lunadong_format.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "common/string_util.h"

namespace crowdfusion::data {

using common::Status;

StatementCategory InferCategory(const std::string& statement_text,
                                const AuthorList& gold_authors) {
  const ParsedStatement parsed = ParseAuthorListStatement(statement_text);
  if (parsed.has_annotation) return StatementCategory::kAdditionalInfo;
  if (SameAuthors(parsed.authors, gold_authors)) {
    // True statement: canonical order or reordered?
    if (parsed.authors == gold_authors) return StatementCategory::kClean;
    return StatementCategory::kReordered;
  }
  // False: close in edit distance to the gold rendering => misspelling.
  const std::string gold_rendering = common::ToLower(
      RenderAuthorList(gold_authors, NameFormat::kFirstLast));
  const std::string statement_lower = common::ToLower(statement_text);
  if (common::EditDistance(statement_lower, gold_rendering) <= 2) {
    return StatementCategory::kMisspelling;
  }
  if (parsed.authors.size() < gold_authors.size()) {
    return StatementCategory::kMissingAuthor;
  }
  return StatementCategory::kWrongAuthor;
}

common::Result<BookDataset> LoadLunadongBookDataset(
    const std::string& claims_path, const std::string& gold_path,
    LunadongLoadStats* stats) {
  LunadongLoadStats local_stats;

  // Gold standard: ISBN -> author list.
  std::ifstream gold_in(gold_path);
  if (!gold_in.is_open()) {
    return Status::NotFound("cannot open gold file: " + gold_path);
  }
  std::map<std::string, AuthorList> gold;
  std::string line;
  while (std::getline(gold_in, line)) {
    if (common::Trim(line).empty()) continue;
    const auto fields = common::Split(line, '\t');
    if (fields.size() < 2) {
      ++local_stats.skipped_lines;
      continue;
    }
    gold[common::Trim(fields[0])] =
        ParseAuthorListStatement(fields[1]).authors;
  }

  std::ifstream claims_in(claims_path);
  if (!claims_in.is_open()) {
    return Status::NotFound("cannot open claims file: " + claims_path);
  }

  BookDataset dataset;
  std::map<std::string, int> book_index;
  std::map<std::string, int> source_index;
  while (std::getline(claims_in, line)) {
    if (common::Trim(line).empty()) continue;
    const auto fields = common::Split(line, '\t');
    if (fields.size() < 4) {
      ++local_stats.skipped_lines;
      continue;
    }
    const std::string source_name = common::Trim(fields[0]);
    const std::string isbn = common::Trim(fields[1]);
    const std::string& title = fields[2];
    const std::string statement_text = common::Trim(fields[3]);
    if (source_name.empty() || isbn.empty() || statement_text.empty()) {
      ++local_stats.skipped_lines;
      continue;
    }

    int book_id = 0;
    if (auto it = book_index.find(isbn); it != book_index.end()) {
      book_id = it->second;
    } else {
      book_id = static_cast<int>(dataset.books.size());
      book_index[isbn] = book_id;
      Book book;
      book.isbn = isbn;
      book.title = title;
      if (auto gold_it = gold.find(isbn); gold_it != gold.end()) {
        book.true_authors = gold_it->second;
        ++local_stats.books_with_gold;
      }
      dataset.books.push_back(std::move(book));
      dataset.claims.AddEntity(isbn);
    }
    Book& book = dataset.books[static_cast<size_t>(book_id)];

    int source_id = 0;
    if (auto it = source_index.find(source_name); it != source_index.end()) {
      source_id = it->second;
    } else {
      source_id = dataset.claims.AddSource(source_name);
      source_index[source_name] = source_id;
      dataset.sources.push_back({source_name, 0.0, 0.0});
    }

    CF_ASSIGN_OR_RETURN(const int vid,
                        dataset.claims.AddValue(book_id, statement_text));
    CF_RETURN_IF_ERROR(dataset.claims.AddClaim(source_id, vid));
    ++local_stats.claims;

    if (std::find(book.value_ids.begin(), book.value_ids.end(), vid) ==
        book.value_ids.end()) {
      Statement statement;
      statement.text = statement_text;
      statement.is_true =
          !book.true_authors.empty() &&
          LabelStatement(statement_text, book.true_authors);
      statement.category =
          book.true_authors.empty()
              ? StatementCategory::kWrongAuthor
              : InferCategory(statement_text, book.true_authors);
      book.value_ids.push_back(vid);
      book.statements.push_back(std::move(statement));
    }
  }
  if (dataset.books.empty()) {
    return Status::InvalidArgument("claims file contained no usable claims");
  }

  dataset.value_truth.assign(static_cast<size_t>(dataset.claims.num_values()),
                             false);
  dataset.value_category.assign(
      static_cast<size_t>(dataset.claims.num_values()),
      StatementCategory::kClean);
  for (const Book& book : dataset.books) {
    for (size_t i = 0; i < book.statements.size(); ++i) {
      dataset.value_truth[static_cast<size_t>(book.value_ids[i])] =
          book.statements[i].is_true;
      dataset.value_category[static_cast<size_t>(book.value_ids[i])] =
          book.statements[i].category;
    }
  }

  local_stats.books = static_cast<int>(dataset.books.size());
  local_stats.sources = dataset.claims.num_sources();
  if (stats != nullptr) *stats = local_stats;
  return dataset;
}

}  // namespace crowdfusion::data
