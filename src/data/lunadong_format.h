#ifndef CROWDFUSION_DATA_LUNADONG_FORMAT_H_
#define CROWDFUSION_DATA_LUNADONG_FORMAT_H_

#include <string>

#include "common/status.h"
#include "data/book_dataset.h"

namespace crowdfusion::data {

/// Loader for the original Book dataset layout published at
/// lunadong.com/fusionDataSets.htm, so that users who have the real data
/// can feed it into this pipeline directly. Two files:
///
/// claims file (tab-separated, one claim per line):
///   source \t ISBN \t title \t author-list-statement
///
/// gold file ("golden" author lists, tab-separated):
///   ISBN \t author-list
///
/// Books present in the claims file but missing from the gold file are
/// kept with `has_gold` false and all their statements labeled false; the
/// paper likewise evaluates only items covered by the gold standard.
/// Statements are labeled with the same order-insensitive rule as the
/// synthetic generator (`LabelStatement`); categories are inferred:
/// annotation ⇒ AdditionalInfo, same names reordered ⇒ Reordered,
/// within edit distance 2 of the gold rendering ⇒ Misspelling, otherwise
/// WrongAuthor/MissingAuthor by author count.
struct LunadongLoadStats {
  int books = 0;
  int books_with_gold = 0;
  int sources = 0;
  int claims = 0;
  int skipped_lines = 0;
};

common::Result<BookDataset> LoadLunadongBookDataset(
    const std::string& claims_path, const std::string& gold_path,
    LunadongLoadStats* stats = nullptr);

/// Infers the error category of a statement given the gold author list.
StatementCategory InferCategory(const std::string& statement_text,
                                const AuthorList& gold_authors);

}  // namespace crowdfusion::data

#endif  // CROWDFUSION_DATA_LUNADONG_FORMAT_H_
