#include "data/statement.h"

namespace crowdfusion::data {

const char* StatementCategoryName(StatementCategory category) {
  switch (category) {
    case StatementCategory::kClean:
      return "Clean";
    case StatementCategory::kReordered:
      return "Reordered";
    case StatementCategory::kAdditionalInfo:
      return "AdditionalInfo";
    case StatementCategory::kMisspelling:
      return "Misspelling";
    case StatementCategory::kWrongAuthor:
      return "WrongAuthor";
    case StatementCategory::kMissingAuthor:
      return "MissingAuthor";
  }
  return "Unknown";
}

bool CategoryIsTrue(StatementCategory category) {
  return category == StatementCategory::kClean ||
         category == StatementCategory::kReordered;
}

bool LabelStatement(const std::string& text, const AuthorList& true_authors) {
  const ParsedStatement parsed = ParseAuthorListStatement(text);
  if (parsed.has_annotation) return false;
  return SameAuthors(parsed.authors, true_authors);
}

}  // namespace crowdfusion::data
