#ifndef CROWDFUSION_DATA_STATEMENT_H_
#define CROWDFUSION_DATA_STATEMENT_H_

#include <string>

#include "data/author.h"

namespace crowdfusion::data {

/// Error taxonomy of author-list statements, following the paper's error
/// analysis (Section V-D). The ground-truth rules are the paper's:
///  * a reordered author list is still TRUE ("Wrong Order" confuses the
///    crowd but does not make a statement false);
///  * appended organization/publisher info makes a statement FALSE;
///  * a misspelled name makes a statement FALSE;
///  * wrong or missing authors make a statement FALSE.
enum class StatementCategory {
  kClean = 0,       // true, canonical order
  kReordered,       // true, non-canonical order ("Wrong Order")
  kAdditionalInfo,  // false: "(SAN JOSE STATE UNIVERSITY, USA)" style tail
  kMisspelling,     // false: one edited character in a name
  kWrongAuthor,     // false: an author replaced by someone else
  kMissingAuthor,   // false: an author dropped
};

/// Display name ("Clean", "Reordered", ...).
const char* StatementCategoryName(StatementCategory category);

/// True iff statements of this category are true in the ground truth.
bool CategoryIsTrue(StatementCategory category);

/// One author-list statement about a book, as claimed by sources.
struct Statement {
  std::string text;
  StatementCategory category = StatementCategory::kClean;
  /// Ground-truth label (redundant with category; kept explicit so the
  /// independent labeler can be cross-checked against generation).
  bool is_true = true;
};

/// The independent ground-truth labeler: decides a statement's truth from
/// its text and the book's true author list alone (the rule used to label
/// the real dataset's gold standard). Returns true iff the statement's
/// parsed author multiset equals the true list exactly (order- and
/// case-insensitive) and the statement carries no annotation.
bool LabelStatement(const std::string& text, const AuthorList& true_authors);

}  // namespace crowdfusion::data

#endif  // CROWDFUSION_DATA_STATEMENT_H_
