#include "eval/experiment.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/registry.h"
#include "service/fusion_service.h"

namespace crowdfusion::eval {

using common::Status;

const char* InitializerName(Initializer initializer) {
  switch (initializer) {
    case Initializer::kCrh:
      return "CRH";
    case Initializer::kMajorityVote:
      return "MajorityVote";
    case Initializer::kTruthFinder:
      return "TruthFinder";
    case Initializer::kAccu:
      return "Accu";
    case Initializer::kSums:
      return "Sums";
    case Initializer::kAverageLog:
      return "AverageLog";
    case Initializer::kInvestment:
      return "Investment";
  }
  return "Unknown";
}

const char* SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kGreedy:
      return "Approx.";
    case SelectorKind::kGreedyPrune:
      return "Approx.&Prune";
    case SelectorKind::kGreedyPre:
      return "Approx.&Pre.";
    case SelectorKind::kGreedyPrunePre:
      return "Approx.&Prune&Pre.";
    case SelectorKind::kOpt:
      return "OPT";
    case SelectorKind::kRandom:
      return "Random";
  }
  return "Unknown";
}

namespace {

/// The fuser-registry key of an Initializer (the config spelling).
const char* InitializerKey(Initializer initializer) {
  switch (initializer) {
    case Initializer::kCrh:
      return "crh";
    case Initializer::kMajorityVote:
      return "majority_vote";
    case Initializer::kTruthFinder:
      return "truthfinder";
    case Initializer::kAccu:
      return "accu";
    case Initializer::kSums:
      return "sums";
    case Initializer::kAverageLog:
      return "averagelog";
    case Initializer::kInvestment:
      return "investment";
  }
  return "unknown";
}

/// The selector-registry spec of a SelectorKind.
core::SelectorSpec SelectorSpecFor(SelectorKind kind, uint64_t seed) {
  core::SelectorSpec spec;
  spec.seed = seed;
  switch (kind) {
    case SelectorKind::kGreedy:
      spec.kind = "greedy";
      spec.use_pruning = false;
      spec.use_preprocessing = false;
      break;
    case SelectorKind::kGreedyPrune:
      spec.kind = "greedy";
      spec.use_pruning = true;
      spec.use_preprocessing = false;
      break;
    case SelectorKind::kGreedyPre:
      spec.kind = "greedy";
      spec.use_pruning = false;
      spec.use_preprocessing = true;
      break;
    case SelectorKind::kGreedyPrunePre:
      spec.kind = "greedy";
      spec.use_pruning = true;
      spec.use_preprocessing = true;
      break;
    case SelectorKind::kOpt:
      // The fast entropy path (quality comparisons); the Table V harness
      // constructs its paper-faithful brute-force variants directly.
      spec.kind = "opt";
      break;
    case SelectorKind::kRandom:
      spec.kind = "random";
      break;
  }
  return spec;
}

/// Translates ExperimentOptions into the one typed request the service
/// facade consumes — the experiment harness is a thin client now.
service::FusionRequest BuildRequest(const ExperimentOptions& options,
                                    service::RunMode mode) {
  service::FusionRequest request;
  request.mode = mode;
  service::DatasetSpec dataset;
  dataset.generate = options.dataset;
  dataset.correlation = options.correlation;
  dataset.fuser.kind = InitializerKey(options.initializer);
  dataset.max_facts_per_book = options.max_facts_per_book;
  request.dataset = std::move(dataset);
  request.selector = SelectorSpecFor(options.selector, options.selector_seed);
  request.provider.kind = "simulated_crowd";
  request.provider.accuracy = options.true_accuracy;
  request.provider.biased = options.biased_crowd;
  request.provider.seed = options.crowd_seed;
  request.provider.latency_median_seconds =
      mode == service::RunMode::kPipelined
          ? options.crowd_median_latency_seconds
          : 0.0;
  // The pipelined experiments' historical latency-stream lineage.
  request.provider.latency_seed = options.crowd_seed ^ 0x1A7E9C1ULL;
  request.assumed_pc = options.assumed_pc;
  request.budget.budget_per_instance = options.budget_per_book;
  request.budget.tasks_per_step = options.tasks_per_round;
  request.pipeline.max_in_flight = options.max_in_flight;
  return request;
}

common::Status ValidateOptions(const ExperimentOptions& options) {
  if (options.budget_per_book < 0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  if (options.tasks_per_round <= 0) {
    return Status::InvalidArgument("tasks_per_round must be positive");
  }
  return Status::Ok();
}

/// Scores the session's current joints against its gold labels — one
/// quality-vs-cost curve point (the Figures 2-4 series).
CurvePoint ScoreSession(const service::Session& session, int total_cost) {
  CurvePoint point;
  point.cost = total_cost;
  ConfusionCounts counts;
  double utility = 0.0;
  for (int i = 0; i < session.num_instances(); ++i) {
    counts += CountConfusion(session.joint(i).Marginals(), session.truths(i));
    utility += -session.joint(i).EntropyBits();
  }
  const PrecisionRecallF1 prf = ComputeF1(counts);
  point.f1 = prf.f1;
  point.precision = prf.precision;
  point.recall = prf.recall;
  point.utility_bits = utility;
  return point;
}

void FillWorkloadStats(const service::Session& session,
                       ExperimentResult& result) {
  result.books_evaluated = session.num_instances();
  for (int i = 0; i < session.num_instances(); ++i) {
    result.total_facts += session.num_facts(i);
  }
  const auto [served, correct] = session.answers_served_correct();
  result.crowd_empirical_accuracy =
      served > 0 ? static_cast<double>(correct) / static_cast<double>(served)
                 : 0.0;
}

}  // namespace

std::unique_ptr<core::TaskSelector> MakeSelector(SelectorKind kind,
                                                 uint64_t seed) {
  static const core::SelectorRegistry registry =
      core::BuiltinSelectorRegistry();
  const core::SelectorSpec spec = SelectorSpecFor(kind, seed);
  auto selector = registry.Create(spec.kind, spec);
  CF_CHECK(selector.ok()) << selector.status();
  return std::move(selector).value();
}

common::Result<ExperimentResult> RunExperiment(
    const ExperimentOptions& options) {
  CF_RETURN_IF_ERROR(ValidateOptions(options));
  service::FusionService service;
  CF_ASSIGN_OR_RETURN(
      const std::unique_ptr<service::Session> session,
      service.CreateSession(BuildRequest(options, service::RunMode::kEngine)));

  ExperimentResult result;
  result.label = common::StrFormat(
      "%s k=%d Pc=%.2f", SelectorKindName(options.selector),
      options.tasks_per_round, options.assumed_pc);

  const CurvePoint initial = ScoreSession(*session, 0);
  result.curve.push_back(initial);
  result.initial_quality = {initial.precision, initial.recall, initial.f1};
  result.initial_utility_bits = initial.utility_bits;

  // Each Step is one global round: every live book advances one engine
  // round, so curve costs are the paper's global task counts.
  while (!session->done()) {
    CF_ASSIGN_OR_RETURN(const std::vector<service::StepOutcome> outcomes,
                        session->Step());
    if (outcomes.empty()) break;
    result.curve.push_back(
        ScoreSession(*session, session->total_cost_spent()));
  }

  const CurvePoint& final_point = result.curve.back();
  result.final_quality = {final_point.precision, final_point.recall,
                          final_point.f1};
  result.final_utility_bits = final_point.utility_bits;
  result.selection_seconds = session->selection_seconds();
  FillWorkloadStats(*session, result);
  return result;
}

common::Result<PrecisionRecallF1> ScoreInitializer(
    const ExperimentOptions& options) {
  service::FusionService service;
  service::FusionRequest request =
      BuildRequest(options, service::RunMode::kEngine);
  request.budget.budget_per_instance = 0;  // the zero-cost baseline
  CF_ASSIGN_OR_RETURN(const std::unique_ptr<service::Session> session,
                      service.CreateSession(std::move(request)));
  const CurvePoint point = ScoreSession(*session, 0);
  return PrecisionRecallF1{point.precision, point.recall, point.f1};
}

common::Result<ExperimentResult> RunPipelinedExperiment(
    const ExperimentOptions& options) {
  CF_RETURN_IF_ERROR(ValidateOptions(options));
  service::FusionService service;
  CF_ASSIGN_OR_RETURN(const std::unique_ptr<service::Session> session,
                      service.CreateSession(BuildRequest(
                          options, service::RunMode::kPipelined)));

  ExperimentResult result;
  result.label = common::StrFormat(
      "%s pipelined m=%d k=%d Pc=%.2f", SelectorKindName(options.selector),
      options.max_in_flight, options.tasks_per_round, options.assumed_pc);

  const CurvePoint initial = ScoreSession(*session, 0);
  result.curve.push_back(initial);
  result.initial_quality = {initial.precision, initial.recall, initial.f1};
  result.initial_utility_bits = initial.utility_bits;

  while (!session->done()) {
    CF_RETURN_IF_ERROR(session->Step().status());
  }

  const CurvePoint final_point =
      ScoreSession(*session, session->total_cost_spent());
  result.curve.push_back(final_point);
  result.final_quality = {final_point.precision, final_point.recall,
                          final_point.f1};
  result.final_utility_bits = final_point.utility_bits;
  // The pipelined trajectory has no per-selection timing; report the
  // serving wall-clock, as the pre-facade harness did.
  result.selection_seconds = session->wall_seconds();
  FillWorkloadStats(*session, result);
  return result;
}

}  // namespace crowdfusion::eval
