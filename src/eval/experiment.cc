#include "eval/experiment.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/bayes.h"
#include "core/crowd_model.h"
#include "core/greedy_selector.h"
#include "core/opt_selector.h"
#include "core/random_selector.h"
#include "core/scheduler.h"
#include "crowd/simulated_crowd.h"
#include "fusion/accu.h"
#include "fusion/crh.h"
#include "fusion/majority_vote.h"
#include "fusion/truthfinder.h"
#include "fusion/web_link_fusers.h"

namespace crowdfusion::eval {

using common::Status;
using core::CrowdModel;
using core::JointDistribution;

const char* InitializerName(Initializer initializer) {
  switch (initializer) {
    case Initializer::kCrh:
      return "CRH";
    case Initializer::kMajorityVote:
      return "MajorityVote";
    case Initializer::kTruthFinder:
      return "TruthFinder";
    case Initializer::kAccu:
      return "Accu";
    case Initializer::kSums:
      return "Sums";
    case Initializer::kAverageLog:
      return "AverageLog";
    case Initializer::kInvestment:
      return "Investment";
  }
  return "Unknown";
}

const char* SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kGreedy:
      return "Approx.";
    case SelectorKind::kGreedyPrune:
      return "Approx.&Prune";
    case SelectorKind::kGreedyPre:
      return "Approx.&Pre.";
    case SelectorKind::kGreedyPrunePre:
      return "Approx.&Prune&Pre.";
    case SelectorKind::kOpt:
      return "OPT";
    case SelectorKind::kRandom:
      return "Random";
  }
  return "Unknown";
}

std::unique_ptr<core::TaskSelector> MakeSelector(SelectorKind kind,
                                                 uint64_t seed) {
  core::GreedySelector::Options greedy;
  switch (kind) {
    case SelectorKind::kGreedy:
      break;
    case SelectorKind::kGreedyPrune:
      greedy.use_pruning = true;
      break;
    case SelectorKind::kGreedyPre:
      greedy.use_preprocessing = true;
      break;
    case SelectorKind::kGreedyPrunePre:
      greedy.use_pruning = true;
      greedy.use_preprocessing = true;
      break;
    case SelectorKind::kOpt:
      return std::make_unique<core::OptSelector>();
    case SelectorKind::kRandom:
      return std::make_unique<core::RandomSelector>(seed);
  }
  return std::make_unique<core::GreedySelector>(greedy);
}

namespace {

std::unique_ptr<fusion::Fuser> MakeFuser(Initializer initializer) {
  switch (initializer) {
    case Initializer::kCrh:
      return std::make_unique<fusion::CrhFuser>();
    case Initializer::kMajorityVote:
      return std::make_unique<fusion::MajorityVoteFuser>();
    case Initializer::kTruthFinder:
      return std::make_unique<fusion::TruthFinderFuser>();
    case Initializer::kAccu:
      return std::make_unique<fusion::AccuFuser>();
    case Initializer::kSums:
      return std::make_unique<fusion::SumsFuser>();
    case Initializer::kAverageLog:
      return std::make_unique<fusion::AverageLogFuser>();
    case Initializer::kInvestment:
      return std::make_unique<fusion::InvestmentFuser>();
  }
  return nullptr;
}

/// Per-book working state during a run.
struct BookState {
  const data::Book* book = nullptr;
  JointDistribution joint;
  std::unique_ptr<crowd::SimulatedCrowd> crowd;
  std::vector<bool> truths;  // per in-book fact
  int cost_spent = 0;
  int num_facts = 0;
};

struct PreparedRun {
  data::BookDataset dataset;
  std::vector<BookState> states;
};

common::Result<PreparedRun> Prepare(const ExperimentOptions& options) {
  PreparedRun run;
  CF_ASSIGN_OR_RETURN(run.dataset,
                      data::GenerateBookDataset(options.dataset));
  std::unique_ptr<fusion::Fuser> fuser = MakeFuser(options.initializer);
  if (fuser == nullptr) return Status::InvalidArgument("bad initializer");
  CF_ASSIGN_OR_RETURN(fusion::FusionResult fused,
                      fuser->Fuse(run.dataset.claims));
  CF_RETURN_IF_ERROR(ValidateFusionResult(run.dataset.claims, fused));

  uint64_t crowd_seed = options.crowd_seed;
  for (const data::Book& book : run.dataset.books) {
    BookState state;
    state.book = &book;
    state.num_facts = std::min<int>(static_cast<int>(book.statements.size()),
                                    options.max_facts_per_book);
    if (state.num_facts == 0) continue;

    std::vector<double> marginals(static_cast<size_t>(state.num_facts));
    std::vector<data::Statement> statements(
        book.statements.begin(), book.statements.begin() + state.num_facts);
    std::vector<data::StatementCategory> categories(
        static_cast<size_t>(state.num_facts));
    state.truths.resize(static_cast<size_t>(state.num_facts));
    for (int i = 0; i < state.num_facts; ++i) {
      const int vid = book.value_ids[static_cast<size_t>(i)];
      marginals[static_cast<size_t>(i)] =
          fused.value_probability[static_cast<size_t>(vid)];
      categories[static_cast<size_t>(i)] =
          run.dataset.value_category[static_cast<size_t>(vid)];
      state.truths[static_cast<size_t>(i)] =
          run.dataset.value_truth[static_cast<size_t>(vid)];
    }
    CF_ASSIGN_OR_RETURN(
        state.joint,
        data::BuildBookJoint(marginals, statements, options.correlation));

    const crowd::WorkerBias bias =
        options.biased_crowd
            ? [&] {
                crowd::WorkerBias b;  // Section V-D defaults...
                b.base_accuracy = options.true_accuracy;
                return b;
              }()
            : crowd::WorkerBias::Uniform(options.true_accuracy);
    state.crowd = std::make_unique<crowd::SimulatedCrowd>(
        state.truths, categories, bias, crowd_seed++);
    run.states.push_back(std::move(state));
  }
  if (run.states.empty()) {
    return Status::InvalidArgument("no books with facts were generated");
  }
  return run;
}

CurvePoint Score(const std::vector<BookState>& states, int total_cost) {
  CurvePoint point;
  point.cost = total_cost;
  ConfusionCounts counts;
  double utility = 0.0;
  for (const BookState& state : states) {
    const std::vector<double> marginals = state.joint.Marginals();
    counts += CountConfusion(marginals, state.truths);
    utility += -state.joint.EntropyBits();
  }
  const PrecisionRecallF1 prf = ComputeF1(counts);
  point.f1 = prf.f1;
  point.precision = prf.precision;
  point.recall = prf.recall;
  point.utility_bits = utility;
  return point;
}

}  // namespace

common::Result<ExperimentResult> RunExperiment(
    const ExperimentOptions& options) {
  if (options.budget_per_book < 0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  if (options.tasks_per_round <= 0) {
    return Status::InvalidArgument("tasks_per_round must be positive");
  }
  CF_ASSIGN_OR_RETURN(PreparedRun run, Prepare(options));
  CF_ASSIGN_OR_RETURN(CrowdModel crowd, CrowdModel::Create(options.assumed_pc));
  std::unique_ptr<core::TaskSelector> selector =
      MakeSelector(options.selector, options.selector_seed);

  ExperimentResult result;
  result.label = common::StrFormat(
      "%s k=%d Pc=%.2f", SelectorKindName(options.selector),
      options.tasks_per_round, options.assumed_pc);
  result.books_evaluated = static_cast<int>(run.states.size());
  for (const BookState& state : run.states) {
    result.total_facts += state.num_facts;
  }

  int total_cost = 0;
  CurvePoint initial = Score(run.states, total_cost);
  result.curve.push_back(initial);
  result.initial_quality = {initial.precision, initial.recall, initial.f1};
  result.initial_utility_bits = initial.utility_bits;

  // Advance every book one round per global round, so curve costs are the
  // paper's global task counts.
  const int rounds = (options.budget_per_book + options.tasks_per_round - 1) /
                     options.tasks_per_round;
  common::Stopwatch selection_timer;
  double selection_seconds = 0.0;
  for (int round = 0; round < rounds; ++round) {
    bool any_progress = false;
    for (BookState& state : run.states) {
      const int remaining = options.budget_per_book - state.cost_spent;
      if (remaining <= 0) continue;
      const int k = std::min(
          {options.tasks_per_round, state.num_facts, remaining});
      core::SelectionRequest request;
      request.joint = &state.joint;
      request.crowd = &crowd;
      request.k = k;
      selection_timer.Restart();
      CF_ASSIGN_OR_RETURN(core::Selection selection,
                          selector->Select(request));
      selection_seconds += selection_timer.ElapsedSeconds();
      if (selection.tasks.empty()) {
        // Selector sees no gain; spend the budget anyway? The paper stops
        // asking (K* < k); we mark the book done.
        state.cost_spent = options.budget_per_book;
        continue;
      }
      CF_ASSIGN_OR_RETURN(std::vector<bool> answers,
                          state.crowd->CollectAnswers(selection.tasks));
      core::AnswerSet answer_set{selection.tasks, answers};
      CF_ASSIGN_OR_RETURN(
          state.joint,
          core::PosteriorGivenAnswers(state.joint, answer_set, crowd));
      state.cost_spent += static_cast<int>(selection.tasks.size());
      total_cost += static_cast<int>(selection.tasks.size());
      any_progress = true;
    }
    result.curve.push_back(Score(run.states, total_cost));
    if (!any_progress) break;
  }

  const CurvePoint& final_point = result.curve.back();
  result.final_quality = {final_point.precision, final_point.recall,
                          final_point.f1};
  result.final_utility_bits = final_point.utility_bits;
  result.selection_seconds = selection_seconds;

  int64_t served = 0;
  int64_t correct = 0;
  for (const BookState& state : run.states) {
    served += state.crowd->answers_served();
    correct += state.crowd->answers_correct();
  }
  result.crowd_empirical_accuracy =
      served > 0 ? static_cast<double>(correct) / static_cast<double>(served)
                 : 0.0;
  return result;
}

common::Result<PrecisionRecallF1> ScoreInitializer(
    const ExperimentOptions& options) {
  CF_ASSIGN_OR_RETURN(PreparedRun run, Prepare(options));
  const CurvePoint point = Score(run.states, 0);
  return PrecisionRecallF1{point.precision, point.recall, point.f1};
}

common::Result<ExperimentResult> RunPipelinedExperiment(
    const ExperimentOptions& options) {
  if (options.budget_per_book < 0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  if (options.tasks_per_round <= 0) {
    return Status::InvalidArgument("tasks_per_round must be positive");
  }
  CF_ASSIGN_OR_RETURN(PreparedRun run, Prepare(options));
  CF_ASSIGN_OR_RETURN(CrowdModel crowd,
                      CrowdModel::Create(options.assumed_pc));
  std::unique_ptr<core::TaskSelector> selector =
      MakeSelector(options.selector, options.selector_seed);

  core::BudgetScheduler::Options scheduler_options;
  scheduler_options.total_budget =
      options.budget_per_book * static_cast<int>(run.states.size());
  scheduler_options.tasks_per_step = options.tasks_per_round;
  scheduler_options.max_in_flight = options.max_in_flight;
  CF_ASSIGN_OR_RETURN(
      core::BudgetScheduler scheduler,
      core::BudgetScheduler::Create(crowd, selector.get(),
                                    scheduler_options));
  uint64_t latency_seed = options.crowd_seed ^ 0x1A7E9C1ULL;
  for (BookState& state : run.states) {
    crowd::LatencyOptions latency;
    latency.median_seconds = options.crowd_median_latency_seconds;
    latency.seed = latency_seed++;
    state.crowd->ConfigureAsync(latency);
    CF_RETURN_IF_ERROR(scheduler
                           .AddInstanceAsync(state.book->isbn, state.joint,
                                             state.crowd.get())
                           .status());
  }

  ExperimentResult result;
  result.label = common::StrFormat(
      "%s pipelined m=%d k=%d Pc=%.2f", SelectorKindName(options.selector),
      options.max_in_flight, options.tasks_per_round, options.assumed_pc);
  result.books_evaluated = static_cast<int>(run.states.size());
  for (const BookState& state : run.states) {
    result.total_facts += state.num_facts;
  }

  CurvePoint initial = Score(run.states, 0);
  result.curve.push_back(initial);
  result.initial_quality = {initial.precision, initial.recall, initial.f1};
  result.initial_utility_bits = initial.utility_bits;

  common::Stopwatch run_timer;
  CF_ASSIGN_OR_RETURN(const auto records, scheduler.RunPipelined());
  result.selection_seconds = run_timer.ElapsedSeconds();
  (void)records;

  // Copy the refined joints back so Score sees the served state.
  for (size_t i = 0; i < run.states.size(); ++i) {
    run.states[i].joint = scheduler.joint(static_cast<int>(i));
  }
  CurvePoint final_point = Score(run.states, scheduler.total_cost_spent());
  result.curve.push_back(final_point);
  result.final_quality = {final_point.precision, final_point.recall,
                          final_point.f1};
  result.final_utility_bits = final_point.utility_bits;

  int64_t served = 0;
  int64_t correct = 0;
  for (const BookState& state : run.states) {
    served += state.crowd->answers_served();
    correct += state.crowd->answers_correct();
  }
  result.crowd_empirical_accuracy =
      served > 0 ? static_cast<double>(correct) / static_cast<double>(served)
                 : 0.0;
  return result;
}

}  // namespace crowdfusion::eval
