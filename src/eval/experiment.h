#ifndef CROWDFUSION_EVAL_EXPERIMENT_H_
#define CROWDFUSION_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/task_selector.h"
#include "data/book_dataset.h"
#include "data/correlation_model.h"
#include "eval/metrics.h"

namespace crowdfusion::eval {

/// Which machine-only fusion method initializes the joint distributions.
enum class Initializer {
  kCrh,
  kMajorityVote,
  kTruthFinder,
  kAccu,
  kSums,
  kAverageLog,
  kInvestment,
};

/// Which task selector drives the rounds.
enum class SelectorKind {
  kGreedy,
  kGreedyPrune,
  kGreedyPre,
  kGreedyPrunePre,
  kOpt,
  kRandom,
};

const char* InitializerName(Initializer initializer);
const char* SelectorKindName(SelectorKind kind);

/// Instantiates a selector. OPT gets the fast entropy path here (quality
/// comparisons); the Table V harness constructs its own paper-faithful
/// variants directly.
std::unique_ptr<core::TaskSelector> MakeSelector(SelectorKind kind,
                                                 uint64_t seed);

/// Configuration of one end-to-end run over a Book dataset, mirroring
/// Section V-A: per-book budget B, k tasks per round, crowd accuracy Pc.
struct ExperimentOptions {
  data::BookDatasetOptions dataset;
  data::CorrelationModelOptions correlation;
  Initializer initializer = Initializer::kCrh;
  SelectorKind selector = SelectorKind::kGreedyPrunePre;
  /// B: total tasks per book.
  int budget_per_book = 60;
  /// k: tasks per round.
  int tasks_per_round = 1;
  /// Pc the system's Bayesian update assumes.
  double assumed_pc = 0.8;
  /// Accuracy of the simulated workers (may differ from assumed_pc).
  double true_accuracy = 0.8;
  /// Use the Section V-D category-biased crowd instead of the uniform one;
  /// base accuracy is still `true_accuracy`.
  bool biased_crowd = false;
  uint64_t crowd_seed = 1234;
  uint64_t selector_seed = 77;
  /// Books with more statements than this are truncated to their first
  /// max_facts_per_book statements (dense joint guard).
  int max_facts_per_book = 16;
  /// RunPipelinedExperiment only: outstanding ticket batches the serving
  /// scheduler keeps in flight.
  int max_in_flight = 4;
  /// RunPipelinedExperiment only: median simulated crowd latency, seconds
  /// (0 = instant answers; the differential setting).
  double crowd_median_latency_seconds = 0.0;
};

/// One point of a quality-vs-cost curve (the Figures 2-4 series):
/// aggregated over all books after each global round.
struct CurvePoint {
  int cost = 0;            // total tasks spent across all books
  double f1 = 0.0;         // global F1 over every statement
  double utility_bits = 0; // summed Q(F) over all books
  double precision = 0.0;
  double recall = 0.0;
};

struct ExperimentResult {
  std::string label;
  std::vector<CurvePoint> curve;  // curve[0] is the initial state (cost 0)
  PrecisionRecallF1 initial_quality;
  PrecisionRecallF1 final_quality;
  double initial_utility_bits = 0.0;
  double final_utility_bits = 0.0;
  /// Selection wall-clock across all rounds and books, seconds.
  double selection_seconds = 0.0;
  /// Empirical accuracy of the simulated crowd over the run.
  double crowd_empirical_accuracy = 0.0;
  int books_evaluated = 0;
  int total_facts = 0;
};

/// Runs the full pipeline: generate dataset -> machine-only fusion ->
/// correlation model -> multi-round CrowdFusion on every book, advancing
/// all books one round at a time so the curve's x-axis is the global task
/// count (as in the paper's figures).
common::Result<ExperimentResult> RunExperiment(
    const ExperimentOptions& options);

/// Runs the machine-only initializer alone and scores it; the zero-cost
/// baseline of every figure.
common::Result<PrecisionRecallF1> ScoreInitializer(
    const ExperimentOptions& options);

/// The serving-engine variant of RunExperiment: every generated book is
/// registered with ONE pipelined core::BudgetScheduler holding the global
/// budget budget_per_book × books (the Section V-D allocation strategy),
/// with up to `max_in_flight` crowd ticket batches outstanding and
/// simulated answer latency of `crowd_median_latency_seconds`. The curve
/// holds the initial and final points; the per-step trajectory is the
/// scheduler's record stream.
common::Result<ExperimentResult> RunPipelinedExperiment(
    const ExperimentOptions& options);

}  // namespace crowdfusion::eval

#endif  // CROWDFUSION_EVAL_EXPERIMENT_H_
