#include "eval/metrics.h"

#include "common/logging.h"

namespace crowdfusion::eval {

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& other) {
  tp += other.tp;
  fp += other.fp;
  tn += other.tn;
  fn += other.fn;
  return *this;
}

ConfusionCounts CountConfusion(std::span<const double> probs,
                               const std::vector<bool>& truth,
                               double threshold) {
  CF_CHECK(probs.size() == truth.size());
  ConfusionCounts counts;
  for (size_t i = 0; i < probs.size(); ++i) {
    const bool predicted = probs[i] >= threshold;
    if (predicted && truth[i]) {
      ++counts.tp;
    } else if (predicted && !truth[i]) {
      ++counts.fp;
    } else if (!predicted && truth[i]) {
      ++counts.fn;
    } else {
      ++counts.tn;
    }
  }
  return counts;
}

PrecisionRecallF1 ComputeF1(const ConfusionCounts& counts) {
  PrecisionRecallF1 out;
  const double predicted_positive = static_cast<double>(counts.tp + counts.fp);
  const double actual_positive = static_cast<double>(counts.tp + counts.fn);
  out.precision = predicted_positive > 0
                      ? static_cast<double>(counts.tp) / predicted_positive
                      : 0.0;
  out.recall = actual_positive > 0
                   ? static_cast<double>(counts.tp) / actual_positive
                   : 0.0;
  out.f1 = (out.precision + out.recall) > 0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

double ComputeAccuracy(const ConfusionCounts& counts) {
  const double total =
      static_cast<double>(counts.tp + counts.fp + counts.tn + counts.fn);
  return total > 0
             ? static_cast<double>(counts.tp + counts.tn) / total
             : 0.0;
}

}  // namespace crowdfusion::eval
