#ifndef CROWDFUSION_EVAL_METRICS_H_
#define CROWDFUSION_EVAL_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace crowdfusion::eval {

/// Confusion counts of thresholded truth predictions against ground truth.
struct ConfusionCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;

  ConfusionCounts& operator+=(const ConfusionCounts& other);
};

/// Counts a batch: fact i is predicted true iff probs[i] >= threshold.
ConfusionCounts CountConfusion(std::span<const double> probs,
                               const std::vector<bool>& truth,
                               double threshold = 0.5);

struct PrecisionRecallF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Precision/recall/F1 with the usual 0-denominator conventions (empty
/// positive sets give 0).
PrecisionRecallF1 ComputeF1(const ConfusionCounts& counts);

/// Plain accuracy (tp + tn) / total; 0 for empty counts.
double ComputeAccuracy(const ConfusionCounts& counts);

}  // namespace crowdfusion::eval

#endif  // CROWDFUSION_EVAL_METRICS_H_
