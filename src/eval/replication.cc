#include "eval/replication.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace crowdfusion::eval {

using common::Status;

SummaryStat SummaryStat::FromSamples(const std::vector<double>& samples) {
  SummaryStat stat;
  if (samples.empty()) return stat;
  double total = 0.0;
  stat.min = samples.front();
  stat.max = samples.front();
  for (double s : samples) {
    total += s;
    stat.min = std::min(stat.min, s);
    stat.max = std::max(stat.max, s);
  }
  stat.mean = total / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sum_sq = 0.0;
    for (double s : samples) {
      sum_sq += (s - stat.mean) * (s - stat.mean);
    }
    stat.stddev =
        std::sqrt(sum_sq / static_cast<double>(samples.size() - 1));
  }
  return stat;
}

common::Result<ReplicatedResult> ReplicateExperiment(
    const ExperimentOptions& base_options, int replications) {
  if (replications <= 0) {
    return Status::InvalidArgument("replications must be positive");
  }
  ReplicatedResult result;
  result.replications = replications;
  std::vector<double> f1_samples;
  std::vector<double> utility_samples;
  std::vector<double> accuracy_samples;
  for (int r = 0; r < replications; ++r) {
    ExperimentOptions options = base_options;
    options.crowd_seed = base_options.crowd_seed + static_cast<uint64_t>(r);
    CF_ASSIGN_OR_RETURN(ExperimentResult run, RunExperiment(options));
    f1_samples.push_back(run.final_quality.f1);
    utility_samples.push_back(run.final_utility_bits);
    accuracy_samples.push_back(run.crowd_empirical_accuracy);
    if (r == 0) {
      result.label = run.label + common::StrFormat(" x%d", replications);
    }
    result.runs.push_back(std::move(run));
  }
  result.final_f1 = SummaryStat::FromSamples(f1_samples);
  result.final_utility_bits = SummaryStat::FromSamples(utility_samples);
  result.crowd_accuracy = SummaryStat::FromSamples(accuracy_samples);
  return result;
}

}  // namespace crowdfusion::eval
