#ifndef CROWDFUSION_EVAL_REPLICATION_H_
#define CROWDFUSION_EVAL_REPLICATION_H_

#include <vector>

#include "common/status.h"
#include "eval/experiment.h"

namespace crowdfusion::eval {

/// Mean and sample standard deviation of one scalar across replications.
struct SummaryStat {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  static SummaryStat FromSamples(const std::vector<double>& samples);
};

/// Aggregate of repeated experiment runs that differ only in crowd
/// randomness.
struct ReplicatedResult {
  std::string label;
  int replications = 0;
  SummaryStat final_f1;
  SummaryStat final_utility_bits;
  SummaryStat crowd_accuracy;
  /// The individual runs, for curve-level inspection.
  std::vector<ExperimentResult> runs;
};

/// Runs the experiment `replications` times with crowd seeds
/// base_options.crowd_seed + r, keeping everything else (dataset seed,
/// selector seed) fixed — the paper's "programs are run for three times to
/// get an average" protocol, with dispersion reported so that shape claims
/// in EXPERIMENTS.md can be checked against run-to-run noise.
common::Result<ReplicatedResult> ReplicateExperiment(
    const ExperimentOptions& base_options, int replications);

}  // namespace crowdfusion::eval

#endif  // CROWDFUSION_EVAL_REPLICATION_H_
