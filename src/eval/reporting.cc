#include "eval/reporting.h"

#include <algorithm>

#include "common/csv_writer.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace crowdfusion::eval {

namespace {

/// Picks <= max_rows indices spread over the longest curve, always
/// including the first and last point.
std::vector<size_t> SampleIndices(size_t length, int max_rows) {
  std::vector<size_t> indices;
  if (length == 0) return indices;
  const size_t rows = std::min<size_t>(static_cast<size_t>(max_rows), length);
  for (size_t r = 0; r < rows; ++r) {
    indices.push_back(r * (length - 1) / (rows > 1 ? rows - 1 : 1));
  }
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

const CurvePoint& PointAtOrLast(const ExperimentResult& series, size_t idx) {
  const size_t clamped = std::min(idx, series.curve.size() - 1);
  return series.curve[clamped];
}

}  // namespace

void PrintCurves(std::ostream& os, const std::string& title,
                 const std::vector<ExperimentResult>& series, int max_rows) {
  os << "=== " << title << " ===\n";
  if (series.empty()) {
    os << "(no series)\n";
    return;
  }
  size_t longest = 0;
  for (const auto& s : series) longest = std::max(longest, s.curve.size());

  std::vector<std::string> header = {"Cost"};
  for (const auto& s : series) header.push_back(s.label + " F1");
  for (const auto& s : series) header.push_back(s.label + " Utility");
  common::TablePrinter table(std::move(header));

  for (size_t idx : SampleIndices(longest, max_rows)) {
    std::vector<std::string> row;
    row.push_back(common::StrFormat(
        "%d", PointAtOrLast(series.front(), idx).cost));
    for (const auto& s : series) {
      row.push_back(common::StrFormat("%.4f", PointAtOrLast(s, idx).f1));
    }
    for (const auto& s : series) {
      row.push_back(
          common::StrFormat("%.2f", PointAtOrLast(s, idx).utility_bits));
    }
    table.AddRow(std::move(row));
  }
  table.Print(os);
}

common::Status WriteCurvesCsv(const std::string& path,
                              const std::vector<ExperimentResult>& series) {
  CF_ASSIGN_OR_RETURN(
      common::CsvWriter writer,
      common::CsvWriter::Open(
          path, {"series", "cost", "f1", "precision", "recall",
                 "utility_bits"}));
  for (const auto& s : series) {
    for (const CurvePoint& p : s.curve) {
      CF_RETURN_IF_ERROR(writer.WriteRow(
          {s.label, common::StrFormat("%d", p.cost),
           common::StrFormat("%.6f", p.f1),
           common::StrFormat("%.6f", p.precision),
           common::StrFormat("%.6f", p.recall),
           common::StrFormat("%.6f", p.utility_bits)}));
    }
  }
  writer.Close();
  return common::Status::Ok();
}

void PrintSummary(std::ostream& os,
                  const std::vector<ExperimentResult>& series) {
  common::TablePrinter table({"Series", "Books", "Facts", "F1 start",
                              "F1 end", "Utility start", "Utility end",
                              "Crowd acc.", "Select s"});
  for (const auto& s : series) {
    table.AddRow({s.label, common::StrFormat("%d", s.books_evaluated),
                  common::StrFormat("%d", s.total_facts),
                  common::StrFormat("%.4f", s.initial_quality.f1),
                  common::StrFormat("%.4f", s.final_quality.f1),
                  common::StrFormat("%.2f", s.initial_utility_bits),
                  common::StrFormat("%.2f", s.final_utility_bits),
                  common::StrFormat("%.4f", s.crowd_empirical_accuracy),
                  common::StrFormat("%.3f", s.selection_seconds)});
  }
  table.Print(os);
}

}  // namespace crowdfusion::eval
