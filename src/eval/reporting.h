#ifndef CROWDFUSION_EVAL_REPORTING_H_
#define CROWDFUSION_EVAL_REPORTING_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "eval/experiment.h"

namespace crowdfusion::eval {

/// Prints a set of quality-vs-cost curves as one aligned table: one row per
/// sampled cost checkpoint, one F1 and one utility column per series. This
/// is the textual form of the paper's figure panels.
void PrintCurves(std::ostream& os, const std::string& title,
                 const std::vector<ExperimentResult>& series,
                 int max_rows = 16);

/// Dumps every series point to a CSV (columns: series,cost,f1,precision,
/// recall,utility_bits) for external plotting.
common::Status WriteCurvesCsv(const std::string& path,
                              const std::vector<ExperimentResult>& series);

/// One-line summary per series: initial/final F1 and utility, crowd stats.
void PrintSummary(std::ostream& os,
                  const std::vector<ExperimentResult>& series);

}  // namespace crowdfusion::eval

#endif  // CROWDFUSION_EVAL_REPORTING_H_
