#include "eval/scenario.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/spec_json.h"
#include "eval/metrics.h"
#include "service/fusion_service.h"

namespace crowdfusion::eval {

using common::JsonValue;
using common::Status;

namespace {

/// The 7 machine-only fusers, in golden order (the Initializer order of
/// eval/experiment.h).
constexpr const char* kFusers[] = {
    "crh",  "majority_vote", "truthfinder", "accu",
    "sums", "averagelog",    "investment",
};

/// Rounds for golden emission: 6 decimals is far beyond the metric's
/// resolution (count ratios over tens of facts) and keeps the JSON
/// byte-stable and readable.
double RoundMetric(double value) { return std::round(value * 1e6) / 1e6; }

/// Metric doubles travel in the golden JSON as fixed 6-decimal strings
/// ("0.821429"), not raw doubles: the repo's JSON dumper emits 17
/// significant digits for losslessness, which would make the goldens
/// unreadable (0.82142899999999996) for no extra information.
JsonValue MetricJson(double value) {
  return common::StrFormat("%.6f", RoundMetric(value));
}

struct ScenarioConfig {
  std::string description;
  core::AdversarySpec adversary;
  /// "streaming" only: instances held back for mid-run arrival.
  int arrivals = 0;
};

/// Scenario registry. Every run shares one workload (6 seeded books, 8
/// facts each) and one budget (10 tasks per book) so the reports differ
/// only in the crowd's hostility.
common::Result<ScenarioConfig> MakeScenarioConfig(const std::string& name) {
  ScenarioConfig config;
  core::AdversarySpec& adversary = config.adversary;
  if (name == "baseline") {
    config.description =
        "honest crowd, adversary disabled: the control regime";
    return config;
  }
  if (name == "collusion") {
    config.description =
        "half the pool colludes on the wrong answer for an agreed half "
        "of the facts, answering honestly elsewhere as cover";
    adversary.enabled = true;
    adversary.colluder_fraction = 0.5;
    adversary.collusion_target_fraction = 0.5;
    adversary.seed = 21;
    return config;
  }
  if (name == "sybil") {
    config.description =
        "3/4 of the pool are sybil clones replaying one master answer "
        "stream, so a single master error is hammered in three times "
        "over";
    adversary.enabled = true;
    adversary.sybil_fraction = 0.75;
    adversary.seed = 22;
    return config;
  }
  if (name == "spam") {
    config.description =
        "3/10 of the pool answer a fair coin and 1/5 parrot the running "
        "majority, amplifying early mistakes";
    adversary.enabled = true;
    adversary.spammer_fraction = 0.3;
    adversary.parrot_fraction = 0.2;
    adversary.seed = 23;
    return config;
  }
  if (name == "drift") {
    config.description =
        "a two-worker pool fatigues fast: accuracy decays 12 points per "
        "answer down to a 0.15 floor, so late answers are poison";
    adversary.enabled = true;
    adversary.num_workers = 2;
    adversary.drift_per_answer = -0.12;
    adversary.drift_floor = 0.15;
    adversary.seed = 24;
    return config;
  }
  if (name == "streaming") {
    config.description =
        "half the books arrive mid-run under a light colluding clique; "
        "the session re-plans selection over the grown universe";
    adversary.enabled = true;
    adversary.colluder_fraction = 0.25;
    adversary.collusion_target_fraction = 0.5;
    adversary.seed = 25;
    config.arrivals = 3;
    return config;
  }
  std::string known;
  for (const std::string& scenario : ScenarioNames()) {
    if (!known.empty()) known += ", ";
    known += scenario;
  }
  return Status::InvalidArgument("unknown scenario \"" + name +
                                 "\" (known: " + known + ")");
}

/// The shared request template: engine mode (deterministic, zero
/// latency, no threads), seeded 6-book dataset, 10 tasks per book.
service::FusionRequest BaseRequest(const std::string& name,
                                   const ScenarioConfig& config,
                                   const char* fuser) {
  service::FusionRequest request;
  request.mode = service::RunMode::kEngine;
  request.label = "scenario-" + name + "-" + fuser;
  service::DatasetSpec dataset;
  dataset.generate.num_books = 6;
  dataset.generate.num_sources = 12;
  dataset.generate.seed = 901;
  dataset.fuser.kind = fuser;
  dataset.max_facts_per_book = 8;
  request.dataset = std::move(dataset);
  request.assumed_pc = 0.8;
  request.provider.kind = "simulated_crowd";
  request.provider.accuracy = 0.85;
  request.provider.seed = 4321;
  request.provider.adversary = config.adversary;
  request.budget.budget_per_instance = 10;
  request.budget.tasks_per_step = 1;
  return request;
}

ScenarioCurvePoint ScoreSession(const service::Session& session) {
  ConfusionCounts counts;
  for (int i = 0; i < session.num_instances(); ++i) {
    counts += CountConfusion(session.joint(i).Marginals(), session.truths(i));
  }
  ScenarioCurvePoint point;
  point.cost = session.total_cost_spent();
  point.accuracy = RoundMetric(ComputeAccuracy(counts));
  point.precision = RoundMetric(ComputeF1(counts).precision);
  return point;
}

/// Steps the session dry, appending one curve sample per global pass.
common::Status DrainSession(service::Session& session,
                            std::vector<ScenarioCurvePoint>& curve) {
  while (!session.done()) {
    CF_ASSIGN_OR_RETURN(const std::vector<service::StepOutcome> outcomes,
                        session.Step());
    if (outcomes.empty()) break;
    curve.push_back(ScoreSession(session));
  }
  return Status::Ok();
}

common::Result<ScenarioFuserReport> RunFuser(
    const service::FusionService& fusion, const std::string& name,
    const ScenarioConfig& config, const char* fuser,
    ScenarioReport& report) {
  ScenarioFuserReport result;
  result.fuser = fuser;
  service::FusionRequest request = BaseRequest(name, config, fuser);

  std::vector<service::InstanceSpec> held_back;
  if (config.arrivals > 0) {
    // Streaming: materialize the whole workload, hold back the tail, and
    // feed it to the live session once the head is drained.
    CF_ASSIGN_OR_RETURN(std::vector<service::InstanceSpec> workload,
                        fusion.MaterializeWorkload(request));
    if (config.arrivals >= static_cast<int>(workload.size())) {
      return Status::InvalidArgument(
          "scenario holds back the entire workload");
    }
    const auto split = workload.end() - config.arrivals;
    held_back.assign(std::move_iterator(split),
                     std::move_iterator(workload.end()));
    workload.erase(split, workload.end());
    request.dataset.reset();
    request.instances = std::move(workload);
  }

  CF_ASSIGN_OR_RETURN(const std::unique_ptr<service::Session> session,
                      fusion.CreateSession(std::move(request)));

  const ScenarioCurvePoint initial = ScoreSession(*session);
  result.curve.push_back(initial);
  result.initial_accuracy = initial.accuracy;
  result.initial_precision = initial.precision;

  CF_RETURN_IF_ERROR(DrainSession(*session, result.curve));
  if (!held_back.empty()) {
    // Mid-run arrivals: engine mode grants each new instance the
    // request's budget_per_instance, and the drained session revives.
    CF_RETURN_IF_ERROR(
        session->AddInstances(std::move(held_back)).status());
    result.curve.push_back(ScoreSession(*session));
    CF_RETURN_IF_ERROR(DrainSession(*session, result.curve));
  }

  const ScenarioCurvePoint& final_point = result.curve.back();
  result.final_accuracy = final_point.accuracy;
  result.final_precision = final_point.precision;
  result.cost_spent = session->total_cost_spent();
  const auto [served, correct] = session->answers_served_correct();
  result.answers_served = served;
  result.answers_correct = correct;
  result.crowd_empirical_accuracy = RoundMetric(
      served > 0 ? static_cast<double>(correct) / static_cast<double>(served)
                 : 0.0);

  report.num_instances = session->num_instances();
  report.total_facts = 0;
  for (int i = 0; i < session->num_instances(); ++i) {
    report.total_facts += session->num_facts(i);
  }
  return result;
}

}  // namespace

std::vector<std::string> ScenarioNames() {
  return {"baseline", "collusion", "sybil", "spam", "drift", "streaming"};
}

common::Result<ScenarioReport> RunScenario(const std::string& name) {
  CF_ASSIGN_OR_RETURN(const ScenarioConfig config, MakeScenarioConfig(name));
  ScenarioReport report;
  report.name = name;
  report.description = config.description;
  report.adversary = config.adversary;
  report.arrivals = config.arrivals;

  // One service for the whole scenario: sessions borrow its registries.
  service::FusionService fusion;
  for (const char* fuser : kFusers) {
    CF_ASSIGN_OR_RETURN(ScenarioFuserReport result,
                        RunFuser(fusion, name, config, fuser, report));
    report.fusers.push_back(std::move(result));
  }
  return report;
}

JsonValue ScenarioReportToJson(const ScenarioReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("schema", "crowdfusion-scenario-v1");
  json.Set("name", report.name);
  json.Set("description", report.description);
  json.Set("adversary", core::AdversarySpecToJson(report.adversary));
  json.Set("num_instances", report.num_instances);
  json.Set("total_facts", report.total_facts);
  json.Set("arrivals", report.arrivals);
  JsonValue fusers = JsonValue::MakeArray();
  for (const ScenarioFuserReport& fuser : report.fusers) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("fuser", fuser.fuser);
    entry.Set("initial_accuracy", MetricJson(fuser.initial_accuracy));
    entry.Set("initial_precision", MetricJson(fuser.initial_precision));
    entry.Set("final_accuracy", MetricJson(fuser.final_accuracy));
    entry.Set("final_precision", MetricJson(fuser.final_precision));
    entry.Set("cost_spent", fuser.cost_spent);
    entry.Set("answers_served", fuser.answers_served);
    entry.Set("answers_correct", fuser.answers_correct);
    entry.Set("crowd_empirical_accuracy",
              MetricJson(fuser.crowd_empirical_accuracy));
    // Curve rows are [cost, accuracy, precision] triples: compact enough
    // to keep the goldens reviewable.
    JsonValue curve = JsonValue::MakeArray();
    for (const ScenarioCurvePoint& point : fuser.curve) {
      JsonValue row = JsonValue::MakeArray();
      row.Append(point.cost);
      row.Append(MetricJson(point.accuracy));
      row.Append(MetricJson(point.precision));
      curve.Append(std::move(row));
    }
    entry.Set("curve", std::move(curve));
    fusers.Append(std::move(entry));
  }
  json.Set("fusers", std::move(fusers));
  return json;
}

std::string SerializeScenarioReport(const ScenarioReport& report) {
  return ScenarioReportToJson(report).Dump(2) + "\n";
}

}  // namespace crowdfusion::eval
