#ifndef CROWDFUSION_EVAL_SCENARIO_H_
#define CROWDFUSION_EVAL_SCENARIO_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/registry.h"

namespace crowdfusion::eval {

/// Named adversarial crowd scenarios, golden-pinned end to end.
///
/// Each scenario fixes one hostile-crowd regime (a core::AdversarySpec
/// plus workload/budget knobs) and runs it across every machine-only
/// fuser in the registry, producing an accuracy/precision-vs-budget
/// report whose JSON serialization is byte-stable across runs: seeded
/// generation, zero simulated latency (no Box-Muller draws anywhere near
/// the judgment path), count-ratio metrics only, and metric doubles
/// emitted as fixed 6-decimal strings ("0.821429") so the goldens stay
/// readable. The checked-in goldens under ci/scenario_goldens/
/// are the single source of truth; regenerate with
///   UPDATE_GOLDENS=1 ctest -R scenario_golden
/// or `crowdfusion_cli scenario --all --out-dir ci/scenario_goldens`
/// after an intentional behavior change.
///
/// The scenario names (see ScenarioNames()):
///  * "baseline"  — honest crowd, the control every hostile regime is
///                  read against.
///  * "collusion" — a colluding clique answers wrong in unison on an
///                  agreed half of the facts.
///  * "sybil"     — half the pool are sybils cloning one answer stream.
///  * "spam"      — random spammers plus majority-parroting workers.
///  * "drift"     — per-worker accuracy decays as they answer (fatigue),
///                  clamped to the spec's floor.
///  * "streaming" — new fact universes arrive mid-run; the session
///                  re-plans selection over the grown universe via
///                  Session::AddInstances.

/// One (cost, quality) sample: taken after each global engine pass.
struct ScenarioCurvePoint {
  int cost = 0;
  double accuracy = 0.0;
  double precision = 0.0;

  friend bool operator==(const ScenarioCurvePoint& a,
                         const ScenarioCurvePoint& b) = default;
};

/// One fuser's trajectory under the scenario's crowd.
struct ScenarioFuserReport {
  std::string fuser;
  /// Machine-only quality before any crowd task is spent.
  double initial_accuracy = 0.0;
  double initial_precision = 0.0;
  /// Quality when the budget is exhausted (or no positive-gain task
  /// remains).
  double final_accuracy = 0.0;
  double final_precision = 0.0;
  int cost_spent = 0;
  /// Crowd answers served / of those agreeing with ground truth. Under a
  /// hostile crowd the empirical accuracy is the attack's footprint.
  int64_t answers_served = 0;
  int64_t answers_correct = 0;
  double crowd_empirical_accuracy = 0.0;
  std::vector<ScenarioCurvePoint> curve;

  friend bool operator==(const ScenarioFuserReport& a,
                         const ScenarioFuserReport& b) = default;
};

struct ScenarioReport {
  std::string name;
  std::string description;
  core::AdversarySpec adversary;
  int num_instances = 0;
  int total_facts = 0;
  /// "streaming" only: instances held back and injected mid-run.
  int arrivals = 0;
  std::vector<ScenarioFuserReport> fusers;

  friend bool operator==(const ScenarioReport& a,
                         const ScenarioReport& b) = default;
};

/// The scenario registry, in golden order.
std::vector<std::string> ScenarioNames();

/// Runs one named scenario across every fuser. kInvalidArgument for an
/// unknown name (the message lists the known ones).
common::Result<ScenarioReport> RunScenario(const std::string& name);

/// Deterministic report serialization (pre-rounded doubles, insertion
/// order fixed) — the bytes the goldens pin is Dump(2) of this plus a
/// trailing newline.
common::JsonValue ScenarioReportToJson(const ScenarioReport& report);

/// Dump(2) + trailing newline: exactly the golden file contents.
std::string SerializeScenarioReport(const ScenarioReport& report);

}  // namespace crowdfusion::eval

#endif  // CROWDFUSION_EVAL_SCENARIO_H_
