#include "fusion/accu.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace crowdfusion::fusion {

common::Result<FusionResult> AccuFuser::Fuse(const ClaimDatabase& db) {
  const int num_values = db.num_values();
  const int num_sources = db.num_sources();
  const double floor = options_.probability_floor;

  std::vector<double> accuracy(static_cast<size_t>(num_sources),
                               options_.initial_accuracy);
  std::vector<double> posterior(static_cast<size_t>(num_values), 0.5);

  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    // Per-entity posterior over candidate values.
    for (int e = 0; e < db.num_entities(); ++e) {
      const auto& values = db.entity_values(e);
      const double m = std::max<double>(2.0, values.size());
      std::vector<double> log_score(values.size(), 0.0);
      double max_log = -1e300;
      for (size_t i = 0; i < values.size(); ++i) {
        double score = 0.0;
        for (int s : db.value_sources(values[i])) {
          const double a = common::Clamp(accuracy[static_cast<size_t>(s)],
                                         floor, 1.0 - floor);
          score += std::log(m * a / (1.0 - a));
        }
        log_score[i] = score;
        max_log = std::max(max_log, score);
      }
      double total = 0.0;
      for (double& ls : log_score) {
        ls = std::exp(ls - max_log);
        total += ls;
      }
      for (size_t i = 0; i < values.size(); ++i) {
        posterior[static_cast<size_t>(values[i])] = log_score[i] / total;
      }
    }
    // Re-estimate source accuracies.
    double max_delta = 0.0;
    for (int s = 0; s < num_sources; ++s) {
      const auto& claims = db.source_values(s);
      if (claims.empty()) continue;
      double total = 0.0;
      for (int v : claims) total += posterior[static_cast<size_t>(v)];
      const double new_accuracy = common::Clamp(
          total / static_cast<double>(claims.size()), floor, 1.0 - floor);
      max_delta = std::max(
          max_delta,
          std::fabs(new_accuracy - accuracy[static_cast<size_t>(s)]));
      accuracy[static_cast<size_t>(s)] = new_accuracy;
    }
    if (max_delta < options_.epsilon) {
      ++iterations;
      break;
    }
  }

  FusionResult result;
  result.method = name();
  result.iterations = iterations;
  result.value_probability.resize(static_cast<size_t>(num_values));
  for (int v = 0; v < num_values; ++v) {
    result.value_probability[static_cast<size_t>(v)] =
        common::Clamp(posterior[static_cast<size_t>(v)], floor, 1.0 - floor);
  }
  result.source_weight = accuracy;
  return result;
}

}  // namespace crowdfusion::fusion
