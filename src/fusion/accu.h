#ifndef CROWDFUSION_FUSION_ACCU_H_
#define CROWDFUSION_FUSION_ACCU_H_

#include "fusion/fusion_result.h"

namespace crowdfusion::fusion {

/// The ACCU Bayesian model (Dong, Berti-Equille & Srivastava, VLDB'09,
/// without copy detection): assumes one true value per entity among the m
/// observed candidates; a source with accuracy A_s picks the truth with
/// probability A_s and otherwise a uniformly random false value. The
/// posterior per value accumulates log "accuracy scores"
///   ln( m * A_s / (1 - A_s) )
/// over its claiming sources and normalizes per entity; source accuracies
/// are re-estimated as the mean posterior of claimed values. The
/// single-truth assumption is deliberately wrong for the multi-truth Book
/// data — it exists as an alternative initializer showing CrowdFusion is
/// initializer-agnostic.
class AccuFuser : public Fuser {
 public:
  struct Options {
    int max_iterations = 20;
    double initial_accuracy = 0.8;
    double epsilon = 1e-6;
    double probability_floor = 0.02;
  };

  AccuFuser() = default;
  explicit AccuFuser(Options options) : options_(options) {}

  common::Result<FusionResult> Fuse(const ClaimDatabase& db) override;

  std::string name() const override { return "Accu"; }

 private:
  Options options_;
};

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_ACCU_H_
