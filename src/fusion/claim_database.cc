#include "fusion/claim_database.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace crowdfusion::fusion {

using common::Status;

int ClaimDatabase::AddSource(std::string name) {
  source_names_.push_back(std::move(name));
  source_values_.emplace_back();
  return num_sources() - 1;
}

int ClaimDatabase::AddEntity(std::string name) {
  entity_names_.push_back(std::move(name));
  entity_values_.emplace_back();
  return num_entities() - 1;
}

common::Result<int> ClaimDatabase::AddValue(int entity_id, std::string text) {
  if (entity_id < 0 || entity_id >= num_entities()) {
    return Status::OutOfRange(
        common::StrFormat("entity id %d out of range", entity_id));
  }
  for (int vid : entity_values_[static_cast<size_t>(entity_id)]) {
    if (value_texts_[static_cast<size_t>(vid)] == text) return vid;
  }
  value_texts_.push_back(std::move(text));
  value_entity_.push_back(entity_id);
  value_sources_.emplace_back();
  const int vid = num_values() - 1;
  entity_values_[static_cast<size_t>(entity_id)].push_back(vid);
  return vid;
}

Status ClaimDatabase::AddClaim(int source_id, int value_id) {
  if (source_id < 0 || source_id >= num_sources()) {
    return Status::OutOfRange(
        common::StrFormat("source id %d out of range", source_id));
  }
  if (value_id < 0 || value_id >= num_values()) {
    return Status::OutOfRange(
        common::StrFormat("value id %d out of range", value_id));
  }
  auto& sources = value_sources_[static_cast<size_t>(value_id)];
  if (std::find(sources.begin(), sources.end(), source_id) != sources.end()) {
    return Status::Ok();  // Idempotent duplicate claim.
  }
  sources.push_back(source_id);
  source_values_[static_cast<size_t>(source_id)].push_back(value_id);
  ++num_claims_;
  return Status::Ok();
}

const std::string& ClaimDatabase::source_name(int id) const {
  CF_CHECK(id >= 0 && id < num_sources());
  return source_names_[static_cast<size_t>(id)];
}

const std::string& ClaimDatabase::entity_name(int id) const {
  CF_CHECK(id >= 0 && id < num_entities());
  return entity_names_[static_cast<size_t>(id)];
}

const std::string& ClaimDatabase::value_text(int value_id) const {
  CF_CHECK(value_id >= 0 && value_id < num_values());
  return value_texts_[static_cast<size_t>(value_id)];
}

int ClaimDatabase::value_entity(int value_id) const {
  CF_CHECK(value_id >= 0 && value_id < num_values());
  return value_entity_[static_cast<size_t>(value_id)];
}

const std::vector<int>& ClaimDatabase::entity_values(int entity_id) const {
  CF_CHECK(entity_id >= 0 && entity_id < num_entities());
  return entity_values_[static_cast<size_t>(entity_id)];
}

const std::vector<int>& ClaimDatabase::value_sources(int value_id) const {
  CF_CHECK(value_id >= 0 && value_id < num_values());
  return value_sources_[static_cast<size_t>(value_id)];
}

const std::vector<int>& ClaimDatabase::source_values(int source_id) const {
  CF_CHECK(source_id >= 0 && source_id < num_sources());
  return source_values_[static_cast<size_t>(source_id)];
}

std::vector<int> ClaimDatabase::EntitySources(int entity_id) const {
  std::vector<int> sources;
  for (int vid : entity_values(entity_id)) {
    for (int sid : value_sources(vid)) {
      if (std::find(sources.begin(), sources.end(), sid) == sources.end()) {
        sources.push_back(sid);
      }
    }
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

}  // namespace crowdfusion::fusion
