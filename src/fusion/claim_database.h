#ifndef CROWDFUSION_FUSION_CLAIM_DATABASE_H_
#define CROWDFUSION_FUSION_CLAIM_DATABASE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace crowdfusion::fusion {

/// The input of machine-only data fusion: a set of *sources* making
/// *claims* about *entities*, where each claim asserts one candidate
/// *value* (in the Book dataset, a full author-list statement). Multiple
/// values of one entity may simultaneously be true (different formats of
/// the same author list), which is why CrowdFusion models per-value truth
/// probabilities rather than a single winner per entity.
class ClaimDatabase {
 public:
  struct Claim {
    int source_id = -1;
    int entity_id = -1;
    int value_id = -1;  // global value id
  };

  /// Registers a source; returns its id.
  int AddSource(std::string name);

  /// Registers an entity; returns its id.
  int AddEntity(std::string name);

  /// Registers a candidate value for `entity_id`; returns its global value
  /// id. Duplicate texts for the same entity return the existing id.
  common::Result<int> AddValue(int entity_id, std::string text);

  /// Records that `source_id` asserts `value_id`. Duplicate (source, value)
  /// claims are idempotent.
  common::Status AddClaim(int source_id, int value_id);

  int num_sources() const { return static_cast<int>(source_names_.size()); }
  int num_entities() const { return static_cast<int>(entity_names_.size()); }
  int num_values() const { return static_cast<int>(value_texts_.size()); }
  int num_claims() const { return num_claims_; }

  const std::string& source_name(int id) const;
  const std::string& entity_name(int id) const;
  const std::string& value_text(int value_id) const;
  int value_entity(int value_id) const;

  /// Global value ids belonging to an entity.
  const std::vector<int>& entity_values(int entity_id) const;
  /// Source ids claiming a value.
  const std::vector<int>& value_sources(int value_id) const;
  /// Global value ids claimed by a source.
  const std::vector<int>& source_values(int source_id) const;

  /// Sources making at least one claim on the entity.
  std::vector<int> EntitySources(int entity_id) const;

 private:
  std::vector<std::string> source_names_;
  std::vector<std::string> entity_names_;
  std::vector<std::string> value_texts_;
  std::vector<int> value_entity_;
  std::vector<std::vector<int>> entity_values_;
  std::vector<std::vector<int>> value_sources_;
  std::vector<std::vector<int>> source_values_;
  int num_claims_ = 0;
};

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_CLAIM_DATABASE_H_
