#include "fusion/crh.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace crowdfusion::fusion {

namespace {

/// Labels the top ceil(m/2) values of each entity true, ranked by `score`
/// (ties broken towards the smaller value id for determinism).
std::vector<bool> LabelTopHalf(const ClaimDatabase& db,
                               const std::vector<double>& score) {
  std::vector<bool> label(static_cast<size_t>(db.num_values()), false);
  for (int e = 0; e < db.num_entities(); ++e) {
    std::vector<int> values = db.entity_values(e);
    std::stable_sort(values.begin(), values.end(), [&](int a, int b) {
      return score[static_cast<size_t>(a)] > score[static_cast<size_t>(b)];
    });
    const size_t keep = (values.size() + 1) / 2;
    for (size_t i = 0; i < keep; ++i) {
      label[static_cast<size_t>(values[i])] = true;
    }
  }
  return label;
}

}  // namespace

common::Result<FusionResult> CrhFuser::Fuse(const ClaimDatabase& db) {
  const int num_values = db.num_values();
  const int num_sources = db.num_sources();

  // Modified initialization: majority voting marks the top 50% of each
  // entity's values correct.
  std::vector<double> support(static_cast<size_t>(num_values), 0.0);
  for (int v = 0; v < num_values; ++v) {
    support[static_cast<size_t>(v)] =
        static_cast<double>(db.value_sources(v).size());
  }
  std::vector<bool> label = LabelTopHalf(db, support);

  std::vector<double> weight(static_cast<size_t>(num_sources), 1.0);
  std::vector<double> weighted_support(static_cast<size_t>(num_values), 0.0);
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    // Weight assignment: w_s = -log(loss_s / max loss).
    double max_loss = options_.min_loss;
    std::vector<double> loss(static_cast<size_t>(num_sources), 0.0);
    for (int s = 0; s < num_sources; ++s) {
      const auto& claims = db.source_values(s);
      if (claims.empty()) {
        loss[static_cast<size_t>(s)] = max_loss;
        continue;
      }
      int wrong = 0;
      for (int v : claims) {
        if (!label[static_cast<size_t>(v)]) ++wrong;
      }
      const double l = std::max(
          options_.min_loss,
          static_cast<double>(wrong) / static_cast<double>(claims.size()));
      loss[static_cast<size_t>(s)] = l;
      max_loss = std::max(max_loss, l);
    }
    for (int s = 0; s < num_sources; ++s) {
      // Add a small offset so the worst source keeps a tiny positive
      // weight rather than exactly zero.
      weight[static_cast<size_t>(s)] =
          -std::log(loss[static_cast<size_t>(s)] / (max_loss * 1.05));
    }

    // Truth computation: re-label the top half by weighted support.
    std::fill(weighted_support.begin(), weighted_support.end(), 0.0);
    for (int v = 0; v < num_values; ++v) {
      for (int s : db.value_sources(v)) {
        weighted_support[static_cast<size_t>(v)] +=
            weight[static_cast<size_t>(s)];
      }
    }
    std::vector<bool> new_label = LabelTopHalf(db, weighted_support);
    const bool converged = new_label == label;
    label = std::move(new_label);
    if (converged) {
      ++iterations;
      break;
    }
  }

  // Calibrated output probabilities: blend the weighted vote share with the
  // converged binary label, clamped away from 0/1.
  FusionResult result;
  result.method = name();
  result.iterations = iterations;
  result.value_probability.assign(static_cast<size_t>(num_values), 0.0);
  for (int e = 0; e < db.num_entities(); ++e) {
    double coverage = 0.0;
    for (int s : db.EntitySources(e)) {
      coverage += weight[static_cast<size_t>(s)];
    }
    for (int vid : db.entity_values(e)) {
      const double share =
          (weighted_support[static_cast<size_t>(vid)] + options_.smoothing) /
          (coverage + 2.0 * options_.smoothing);
      const double labeled = label[static_cast<size_t>(vid)] ? 1.0 : 0.0;
      const double p = options_.label_blend * labeled +
                       (1.0 - options_.label_blend) * share;
      result.value_probability[static_cast<size_t>(vid)] = common::Clamp(
          p, options_.probability_floor, 1.0 - options_.probability_floor);
    }
  }

  // Normalize source weights to [0, 1] for reporting.
  double max_weight = 0.0;
  for (double w : weight) max_weight = std::max(max_weight, w);
  result.source_weight.assign(static_cast<size_t>(num_sources), 0.0);
  if (max_weight > 0.0) {
    for (int s = 0; s < num_sources; ++s) {
      result.source_weight[static_cast<size_t>(s)] =
          weight[static_cast<size_t>(s)] / max_weight;
    }
  }
  return result;
}

}  // namespace crowdfusion::fusion
