#ifndef CROWDFUSION_FUSION_CRH_H_
#define CROWDFUSION_FUSION_CRH_H_

#include "fusion/fusion_result.h"

namespace crowdfusion::fusion {

/// The CRH framework (Li et al., SIGMOD'14) with the modification the paper
/// applies for multi-truth book data (Section V-A): because vanilla CRH
/// supports a single true value per entity, the top 50% of an entity's
/// values by majority voting are first marked correct, then CRH's weight
/// assignment and truth computation iterate on those binary labels:
///
///   weight assignment:  w_s = -log( loss_s / max_s' loss_s' )
///                       with loss_s = its claims' labeled-false rate,
///   truth computation:  per entity, re-label the top half of values by
///                       weighted support as true.
///
/// The final per-value probability blends the weighted vote share with the
/// converged binary label so that the output is a calibrated probability
/// distribution (what CrowdFusion consumes) instead of hard labels.
class CrhFuser : public Fuser {
 public:
  struct Options {
    int max_iterations = 25;
    /// Numerical floor for a source's loss so that perfect sources do not
    /// produce infinite weights.
    double min_loss = 1e-3;
    /// Additive smoothing for vote shares.
    double smoothing = 0.5;
    /// Final probability = label_blend * label + (1 - label_blend) * share.
    double label_blend = 0.5;
    /// Clamp output probabilities into [eps, 1 - eps]; CrowdFusion's
    /// Bayesian update must never see an absolutely certain prior.
    double probability_floor = 0.02;
  };

  CrhFuser() = default;
  explicit CrhFuser(Options options) : options_(options) {}

  common::Result<FusionResult> Fuse(const ClaimDatabase& db) override;

  std::string name() const override { return "CRH"; }

 private:
  Options options_;
};

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_CRH_H_
