#include "fusion/fusion_result.h"

#include "common/string_util.h"

namespace crowdfusion::fusion {

using common::Status;

Status ValidateFusionResult(const ClaimDatabase& db,
                            const FusionResult& result) {
  if (result.value_probability.size() !=
      static_cast<size_t>(db.num_values())) {
    return Status::InvalidArgument(common::StrFormat(
        "fusion result has %zu value probabilities, database has %d values",
        result.value_probability.size(), db.num_values()));
  }
  for (size_t i = 0; i < result.value_probability.size(); ++i) {
    const double p = result.value_probability[i];
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument(common::StrFormat(
          "value %zu has probability %g outside [0, 1]", i, p));
    }
  }
  return Status::Ok();
}

}  // namespace crowdfusion::fusion
