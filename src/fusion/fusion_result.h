#ifndef CROWDFUSION_FUSION_FUSION_RESULT_H_
#define CROWDFUSION_FUSION_FUSION_RESULT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fusion/claim_database.h"

namespace crowdfusion::fusion {

/// Output of a machine-only fusion method: a probability of truth for every
/// value, plus the learned source weights. This is exactly the "prior
/// probability distribution calculated by existing data fusion models" that
/// CrowdFusion takes as input (Section I).
struct FusionResult {
  std::string method;
  /// P(value is true), indexed by global value id.
  std::vector<double> value_probability;
  /// Learned per-source weight/trustworthiness (semantics depend on the
  /// method; normalized to [0, 1] where meaningful).
  std::vector<double> source_weight;
  int iterations = 0;
};

/// Interface shared by all machine-only fusion baselines.
class Fuser {
 public:
  virtual ~Fuser() = default;

  virtual common::Result<FusionResult> Fuse(const ClaimDatabase& db) = 0;

  virtual std::string name() const = 0;
};

/// Validates that a fusion result covers the database (one probability per
/// value, all within [0, 1]).
common::Status ValidateFusionResult(const ClaimDatabase& db,
                                    const FusionResult& result);

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_FUSION_RESULT_H_
