#include "fusion/majority_vote.h"

namespace crowdfusion::fusion {

common::Result<FusionResult> MajorityVoteFuser::Fuse(const ClaimDatabase& db) {
  FusionResult result;
  result.method = name();
  result.value_probability.assign(static_cast<size_t>(db.num_values()), 0.0);
  result.source_weight.assign(static_cast<size_t>(db.num_sources()), 1.0);
  const double alpha = options_.smoothing;
  for (int e = 0; e < db.num_entities(); ++e) {
    const double coverage =
        static_cast<double>(db.EntitySources(e).size());
    for (int vid : db.entity_values(e)) {
      const double votes = static_cast<double>(db.value_sources(vid).size());
      result.value_probability[static_cast<size_t>(vid)] =
          (votes + alpha) / (coverage + 2.0 * alpha);
    }
  }
  result.iterations = 1;
  return result;
}

}  // namespace crowdfusion::fusion
