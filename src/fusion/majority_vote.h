#ifndef CROWDFUSION_FUSION_MAJORITY_VOTE_H_
#define CROWDFUSION_FUSION_MAJORITY_VOTE_H_

#include "fusion/fusion_result.h"

namespace crowdfusion::fusion {

/// The simplest fusion baseline: every source has weight 1; a value's
/// probability is its smoothed share of the sources covering the entity.
/// Used both standalone and as the initialization step of the paper's
/// modified CRH ("mark top 50% of author lists by majority voting").
class MajorityVoteFuser : public Fuser {
 public:
  struct Options {
    /// Additive (Laplace) smoothing applied to the vote share.
    double smoothing = 0.5;
  };

  MajorityVoteFuser() = default;
  explicit MajorityVoteFuser(Options options) : options_(options) {}

  common::Result<FusionResult> Fuse(const ClaimDatabase& db) override;

  std::string name() const override { return "MajorityVote"; }

 private:
  Options options_;
};

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_MAJORITY_VOTE_H_
