#include "fusion/registry.h"

#include "common/logging.h"
#include "fusion/accu.h"
#include "fusion/crh.h"
#include "fusion/majority_vote.h"
#include "fusion/truthfinder.h"
#include "fusion/web_link_fusers.h"

namespace crowdfusion::fusion {

using common::Status;

namespace {

common::Status ValidateIterations(const FuserSpec& spec) {
  if (spec.max_iterations < 0) {
    return Status::InvalidArgument("max_iterations must be non-negative");
  }
  return Status::Ok();
}

common::Result<std::unique_ptr<Fuser>> MakeCrh(const FuserSpec& spec) {
  CF_RETURN_IF_ERROR(ValidateIterations(spec));
  CrhFuser::Options options;
  if (spec.max_iterations > 0) options.max_iterations = spec.max_iterations;
  return std::unique_ptr<Fuser>(std::make_unique<CrhFuser>(options));
}

common::Result<std::unique_ptr<Fuser>> MakeMajorityVote(
    const FuserSpec& spec) {
  CF_RETURN_IF_ERROR(ValidateIterations(spec));
  return std::unique_ptr<Fuser>(std::make_unique<MajorityVoteFuser>());
}

common::Result<std::unique_ptr<Fuser>> MakeAccu(const FuserSpec& spec) {
  CF_RETURN_IF_ERROR(ValidateIterations(spec));
  AccuFuser::Options options;
  if (spec.max_iterations > 0) options.max_iterations = spec.max_iterations;
  return std::unique_ptr<Fuser>(std::make_unique<AccuFuser>(options));
}

common::Result<std::unique_ptr<Fuser>> MakeTruthFinder(
    const FuserSpec& spec) {
  CF_RETURN_IF_ERROR(ValidateIterations(spec));
  TruthFinderFuser::Options options;
  if (spec.max_iterations > 0) options.max_iterations = spec.max_iterations;
  return std::unique_ptr<Fuser>(
      std::make_unique<TruthFinderFuser>(std::move(options)));
}

template <typename FuserT>
common::Result<std::unique_ptr<Fuser>> MakeWebLink(const FuserSpec& spec) {
  CF_RETURN_IF_ERROR(ValidateIterations(spec));
  WebLinkOptions options;
  if (spec.max_iterations > 0) options.max_iterations = spec.max_iterations;
  return std::unique_ptr<Fuser>(std::make_unique<FuserT>(options));
}

}  // namespace

FuserRegistry BuiltinFuserRegistry() {
  FuserRegistry registry("fuser");
  CF_CHECK_OK(registry.Register("crh", MakeCrh));
  CF_CHECK_OK(registry.Register("majority_vote", MakeMajorityVote));
  CF_CHECK_OK(registry.Register("accu", MakeAccu));
  CF_CHECK_OK(registry.Register("truthfinder", MakeTruthFinder));
  CF_CHECK_OK(registry.Register("sums", MakeWebLink<SumsFuser>));
  CF_CHECK_OK(registry.Register("averagelog", MakeWebLink<AverageLogFuser>));
  CF_CHECK_OK(registry.Register("investment", MakeWebLink<InvestmentFuser>));
  return registry;
}

}  // namespace crowdfusion::fusion
