#ifndef CROWDFUSION_FUSION_REGISTRY_H_
#define CROWDFUSION_FUSION_REGISTRY_H_

#include <memory>
#include <string>

#include "common/registry.h"
#include "fusion/fusion_result.h"

namespace crowdfusion::fusion {

/// Config-shaped description of a machine-only fuser. All builtin fusers
/// run fine on their defaults; the spec carries the one knob they share.
struct FuserSpec {
  /// Registry key: "crh", "majority_vote", "accu", "truthfinder", "sums",
  /// "averagelog", "investment".
  std::string kind = "crh";
  /// Iteration cap for the iterative methods; 0 keeps each fuser's
  /// default. Ignored by single-pass fusers (majority_vote).
  int max_iterations = 0;

  friend bool operator==(const FuserSpec& a, const FuserSpec& b) = default;
};

/// String-keyed factory registry over machine-only fusion methods.
using FuserRegistry =
    common::FactoryRegistry<std::unique_ptr<Fuser>, FuserSpec>;

/// A fresh registry holding every fuser defined in this layer:
/// "crh", "majority_vote", "accu", "truthfinder", "sums", "averagelog",
/// "investment".
FuserRegistry BuiltinFuserRegistry();

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_REGISTRY_H_
