#include "fusion/source_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace crowdfusion::fusion {

using common::Status;

common::Result<std::vector<SourceReport>> EvaluateSources(
    const ClaimDatabase& db, const std::vector<bool>& value_truth,
    const FusionResult* fusion) {
  if (value_truth.size() != static_cast<size_t>(db.num_values())) {
    return Status::InvalidArgument(common::StrFormat(
        "%zu truth labels for %d values", value_truth.size(),
        db.num_values()));
  }
  if (fusion != nullptr) {
    CF_RETURN_IF_ERROR(ValidateFusionResult(db, *fusion));
    if (fusion->source_weight.size() !=
        static_cast<size_t>(db.num_sources())) {
      return Status::InvalidArgument("fusion result lacks source weights");
    }
  }

  std::vector<SourceReport> reports(static_cast<size_t>(db.num_sources()));
  for (int s = 0; s < db.num_sources(); ++s) {
    SourceReport& report = reports[static_cast<size_t>(s)];
    report.source_id = s;
    for (int v : db.source_values(s)) {
      ++report.claims;
      if (value_truth[static_cast<size_t>(v)]) ++report.correct_claims;
    }
    report.accuracy =
        report.claims > 0
            ? static_cast<double>(report.correct_claims) / report.claims
            : 0.0;
  }

  if (fusion != nullptr) {
    // Rank sources by learned weight, descending.
    std::vector<int> order(static_cast<size_t>(db.num_sources()));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return fusion->source_weight[static_cast<size_t>(a)] >
             fusion->source_weight[static_cast<size_t>(b)];
    });
    for (size_t rank = 0; rank < order.size(); ++rank) {
      reports[static_cast<size_t>(order[rank])].weight_rank =
          static_cast<int>(rank);
    }
  }
  return reports;
}

common::Result<double> WeightAccuracyRankCorrelation(
    const ClaimDatabase& db, const std::vector<bool>& value_truth,
    const FusionResult& fusion) {
  CF_ASSIGN_OR_RETURN(std::vector<SourceReport> reports,
                      EvaluateSources(db, value_truth, &fusion));
  // Restrict to sources with claims.
  std::vector<const SourceReport*> active;
  for (const SourceReport& report : reports) {
    if (report.claims > 0) active.push_back(&report);
  }
  const size_t n = active.size();
  if (n < 2) {
    return Status::FailedPrecondition(
        "need at least two sources with claims for a rank correlation");
  }

  // Fractional ranks (average over ties) for both orderings.
  auto fractional_ranks = [&](auto key) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return key(*active[a]) > key(*active[b]);
    });
    std::vector<double> rank(n, 0.0);
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n &&
             key(*active[order[j + 1]]) == key(*active[order[i]])) {
        ++j;
      }
      const double average = (static_cast<double>(i) +
                              static_cast<double>(j)) /
                             2.0;
      for (size_t t = i; t <= j; ++t) rank[order[t]] = average;
      i = j + 1;
    }
    return rank;
  };

  const std::vector<double> accuracy_rank =
      fractional_ranks([](const SourceReport& r) { return r.accuracy; });
  const std::vector<double> weight_rank = fractional_ranks(
      [&](const SourceReport& r) {
        return fusion.source_weight[static_cast<size_t>(r.source_id)];
      });

  // Pearson correlation of the rank vectors (Spearman's rho with ties).
  double mean_a = 0.0;
  double mean_w = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += accuracy_rank[i];
    mean_w += weight_rank[i];
  }
  mean_a /= static_cast<double>(n);
  mean_w /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_w = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = accuracy_rank[i] - mean_a;
    const double dw = weight_rank[i] - mean_w;
    cov += da * dw;
    var_a += da * da;
    var_w += dw * dw;
  }
  if (var_a <= 0.0 || var_w <= 0.0) {
    return Status::FailedPrecondition(
        "rank correlation undefined: a ranking is constant");
  }
  return cov / std::sqrt(var_a * var_w);
}

}  // namespace crowdfusion::fusion
