#ifndef CROWDFUSION_FUSION_SOURCE_METRICS_H_
#define CROWDFUSION_FUSION_SOURCE_METRICS_H_

#include <vector>

#include "common/status.h"
#include "fusion/claim_database.h"
#include "fusion/fusion_result.h"

namespace crowdfusion::fusion {

/// Per-source diagnostics against a gold standard — the analysis behind
/// the paper's eCampus.com observation (a source 55% consistent on
/// textbooks, 0% on non-textbooks). Given ground-truth labels per value,
/// reports each source's claim accuracy overall and per entity group.
struct SourceReport {
  int source_id = -1;
  int claims = 0;
  int correct_claims = 0;
  double accuracy = 0.0;
  /// Rank of the source's learned weight within the fusion result
  /// (0 = highest weight); -1 when no fusion result is supplied.
  int weight_rank = -1;
};

/// Computes per-source claim accuracies. `value_truth[v]` is the gold
/// label of value v. When `fusion` is non-null, each report also carries
/// the rank of the source's learned weight, so tests (and users) can check
/// that learned weights track true accuracies.
common::Result<std::vector<SourceReport>> EvaluateSources(
    const ClaimDatabase& db, const std::vector<bool>& value_truth,
    const FusionResult* fusion = nullptr);

/// Spearman rank correlation between the sources' true accuracies and
/// their learned weights: +1 means the fuser ordered sources perfectly.
/// Sources without claims are excluded. Fails when fewer than two sources
/// have claims.
common::Result<double> WeightAccuracyRankCorrelation(
    const ClaimDatabase& db, const std::vector<bool>& value_truth,
    const FusionResult& fusion);

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_SOURCE_METRICS_H_
