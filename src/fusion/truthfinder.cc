#include "fusion/truthfinder.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace crowdfusion::fusion {

common::Result<FusionResult> TruthFinderFuser::Fuse(const ClaimDatabase& db) {
  const int num_values = db.num_values();
  const int num_sources = db.num_sources();
  const double floor = options_.probability_floor;

  std::vector<double> trust(static_cast<size_t>(num_sources),
                            options_.initial_trust);
  std::vector<double> confidence(static_cast<size_t>(num_values), 0.5);

  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    // Value confidence from source trustworthiness scores.
    std::vector<double> raw(static_cast<size_t>(num_values), 0.0);
    for (int v = 0; v < num_values; ++v) {
      double score = 0.0;
      for (int s : db.value_sources(v)) {
        const double t =
            common::Clamp(trust[static_cast<size_t>(s)], floor, 1.0 - floor);
        score += -std::log(1.0 - t);
      }
      raw[static_cast<size_t>(v)] = score;
    }
    // Inter-value implication within each entity.
    std::vector<double> adjusted = raw;
    if (options_.implication) {
      for (int e = 0; e < db.num_entities(); ++e) {
        const auto& values = db.entity_values(e);
        for (int va : values) {
          double influence = 0.0;
          for (int vb : values) {
            if (va == vb) continue;
            influence += options_.implication(vb, va) *
                         raw[static_cast<size_t>(vb)];
          }
          adjusted[static_cast<size_t>(va)] +=
              options_.implication_weight * influence;
        }
      }
    }
    for (int v = 0; v < num_values; ++v) {
      const double s = adjusted[static_cast<size_t>(v)];
      confidence[static_cast<size_t>(v)] =
          1.0 / (1.0 + std::exp(-options_.dampening * s + options_.offset));
    }

    // Source trustworthiness from value confidence.
    double max_delta = 0.0;
    for (int s = 0; s < num_sources; ++s) {
      const auto& claims = db.source_values(s);
      if (claims.empty()) continue;
      double total = 0.0;
      for (int v : claims) total += confidence[static_cast<size_t>(v)];
      const double new_trust =
          common::Clamp(total / static_cast<double>(claims.size()), floor,
                        1.0 - floor);
      max_delta =
          std::max(max_delta,
                   std::fabs(new_trust - trust[static_cast<size_t>(s)]));
      trust[static_cast<size_t>(s)] = new_trust;
    }
    if (max_delta < options_.epsilon) {
      ++iterations;
      break;
    }
  }

  FusionResult result;
  result.method = name();
  result.iterations = iterations;
  result.value_probability.resize(static_cast<size_t>(num_values));
  for (int v = 0; v < num_values; ++v) {
    result.value_probability[static_cast<size_t>(v)] =
        common::Clamp(confidence[static_cast<size_t>(v)], floor, 1.0 - floor);
  }
  result.source_weight = trust;
  return result;
}

}  // namespace crowdfusion::fusion
