#ifndef CROWDFUSION_FUSION_TRUTHFINDER_H_
#define CROWDFUSION_FUSION_TRUTHFINDER_H_

#include <functional>

#include "fusion/fusion_result.h"

namespace crowdfusion::fusion {

/// TruthFinder (Yin, Han & Yu, TKDE'08): iterates between source
/// trustworthiness t_s and value confidence σ(v):
///
///   τ_s   = -ln(1 - t_s)                       (trustworthiness score)
///   σ*(v) = Σ_{s claims v} τ_s  (+ implication from similar values)
///   σ(v)  = 1 / (1 + exp(-γ σ*(v) + μ))        (dampened logistic)
///   t_s   = mean of σ(v) over s's claims
///
/// An optional `implication` callback adds the paper's inter-value
/// influence: similar values (e.g. the same author list in another order)
/// reinforce each other; conflicting values inhibit each other.
class TruthFinderFuser : public Fuser {
 public:
  struct Options {
    int max_iterations = 30;
    double initial_trust = 0.8;
    /// Dampening factor γ (the original paper uses 0.3).
    double dampening = 0.3;
    /// Logistic offset; with μ ≈ τ(initial_trust) an unclaimed value sits
    /// near probability 0.5 before evidence accumulates.
    double offset = 1.6;
    /// Implication weight ρ.
    double implication_weight = 0.5;
    /// Convergence threshold on the max trust change.
    double epsilon = 1e-6;
    /// Clamp for probabilities and trust.
    double probability_floor = 0.02;
    /// Optional similarity in [-1, 1] between two values of the same
    /// entity. Null disables implication.
    std::function<double(int value_a, int value_b)> implication;
  };

  TruthFinderFuser() = default;
  explicit TruthFinderFuser(Options options) : options_(std::move(options)) {}

  common::Result<FusionResult> Fuse(const ClaimDatabase& db) override;

  std::string name() const override { return "TruthFinder"; }

 private:
  Options options_;
};

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_TRUTHFINDER_H_
