#include "fusion/web_link_fusers.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace crowdfusion::fusion {

namespace {

/// Normalizes a vector by its maximum (no-op if all zero).
void NormalizeByMax(std::vector<double>& values) {
  double max_value = 0.0;
  for (double v : values) max_value = std::max(max_value, v);
  if (max_value <= 0.0) return;
  for (double& v : values) v /= max_value;
}

/// Converts belief scores to per-entity probability shares in
/// [floor, 1 - floor].
FusionResult FinishResult(const ClaimDatabase& db, std::string method,
                          const std::vector<double>& belief,
                          const std::vector<double>& trust, int iterations,
                          double floor) {
  FusionResult result;
  result.method = std::move(method);
  result.iterations = iterations;
  result.source_weight = trust;
  result.value_probability.assign(static_cast<size_t>(db.num_values()), 0.0);
  for (int e = 0; e < db.num_entities(); ++e) {
    double total = 0.0;
    for (int vid : db.entity_values(e)) {
      total += belief[static_cast<size_t>(vid)];
    }
    for (int vid : db.entity_values(e)) {
      const double share =
          total > 0.0 ? belief[static_cast<size_t>(vid)] / total
                      : 1.0 / static_cast<double>(db.entity_values(e).size());
      result.value_probability[static_cast<size_t>(vid)] =
          common::Clamp(share, floor, 1.0 - floor);
    }
  }
  return result;
}

double MaxAbsDelta(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double delta = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    delta = std::max(delta, std::fabs(a[i] - b[i]));
  }
  return delta;
}

}  // namespace

common::Result<FusionResult> SumsFuser::Fuse(const ClaimDatabase& db) {
  std::vector<double> trust(static_cast<size_t>(db.num_sources()), 1.0);
  std::vector<double> belief(static_cast<size_t>(db.num_values()), 0.0);
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    for (int v = 0; v < db.num_values(); ++v) {
      double score = 0.0;
      for (int s : db.value_sources(v)) score += trust[static_cast<size_t>(s)];
      belief[static_cast<size_t>(v)] = score;
    }
    NormalizeByMax(belief);
    std::vector<double> new_trust(static_cast<size_t>(db.num_sources()), 0.0);
    for (int s = 0; s < db.num_sources(); ++s) {
      for (int v : db.source_values(s)) {
        new_trust[static_cast<size_t>(s)] += belief[static_cast<size_t>(v)];
      }
    }
    NormalizeByMax(new_trust);
    const double delta = MaxAbsDelta(trust, new_trust);
    trust = std::move(new_trust);
    if (delta < options_.epsilon) {
      ++iterations;
      break;
    }
  }
  return FinishResult(db, name(), belief, trust, iterations,
                      options_.probability_floor);
}

common::Result<FusionResult> AverageLogFuser::Fuse(const ClaimDatabase& db) {
  std::vector<double> trust(static_cast<size_t>(db.num_sources()), 1.0);
  std::vector<double> belief(static_cast<size_t>(db.num_values()), 0.0);
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    for (int v = 0; v < db.num_values(); ++v) {
      double score = 0.0;
      for (int s : db.value_sources(v)) score += trust[static_cast<size_t>(s)];
      belief[static_cast<size_t>(v)] = score;
    }
    NormalizeByMax(belief);
    std::vector<double> new_trust(static_cast<size_t>(db.num_sources()), 0.0);
    for (int s = 0; s < db.num_sources(); ++s) {
      const auto& claims = db.source_values(s);
      if (claims.empty()) continue;
      double total = 0.0;
      for (int v : claims) total += belief[static_cast<size_t>(v)];
      const double count = static_cast<double>(claims.size());
      new_trust[static_cast<size_t>(s)] =
          std::log(1.0 + count) * (total / count);
    }
    NormalizeByMax(new_trust);
    const double delta = MaxAbsDelta(trust, new_trust);
    trust = std::move(new_trust);
    if (delta < options_.epsilon) {
      ++iterations;
      break;
    }
  }
  return FinishResult(db, name(), belief, trust, iterations,
                      options_.probability_floor);
}

common::Result<FusionResult> InvestmentFuser::Fuse(const ClaimDatabase& db) {
  std::vector<double> trust(static_cast<size_t>(db.num_sources()), 1.0);
  std::vector<double> belief(static_cast<size_t>(db.num_values()), 0.0);
  int iterations = 0;
  for (; iterations < options_.max_iterations; ++iterations) {
    // Investment of each source in each of its claims.
    std::vector<double> invested(static_cast<size_t>(db.num_values()), 0.0);
    for (int s = 0; s < db.num_sources(); ++s) {
      const auto& claims = db.source_values(s);
      if (claims.empty()) continue;
      const double stake = trust[static_cast<size_t>(s)] /
                           static_cast<double>(claims.size());
      for (int v : claims) invested[static_cast<size_t>(v)] += stake;
    }
    for (int v = 0; v < db.num_values(); ++v) {
      belief[static_cast<size_t>(v)] =
          std::pow(invested[static_cast<size_t>(v)],
                   options_.investment_exponent);
    }
    NormalizeByMax(belief);
    // Sources earn belief back proportionally to their investment share.
    std::vector<double> new_trust(static_cast<size_t>(db.num_sources()), 0.0);
    for (int s = 0; s < db.num_sources(); ++s) {
      const auto& claims = db.source_values(s);
      if (claims.empty()) continue;
      const double stake = trust[static_cast<size_t>(s)] /
                           static_cast<double>(claims.size());
      for (int v : claims) {
        if (invested[static_cast<size_t>(v)] <= 0.0) continue;
        new_trust[static_cast<size_t>(s)] +=
            belief[static_cast<size_t>(v)] * stake /
            invested[static_cast<size_t>(v)];
      }
    }
    NormalizeByMax(new_trust);
    const double delta = MaxAbsDelta(trust, new_trust);
    trust = std::move(new_trust);
    if (delta < options_.epsilon) {
      ++iterations;
      break;
    }
  }
  return FinishResult(db, name(), belief, trust, iterations,
                      options_.probability_floor);
}

}  // namespace crowdfusion::fusion
