#ifndef CROWDFUSION_FUSION_WEB_LINK_FUSERS_H_
#define CROWDFUSION_FUSION_WEB_LINK_FUSERS_H_

#include "fusion/fusion_result.h"

namespace crowdfusion::fusion {

/// The web-link-analysis family of truth-discovery baselines (Pasternack &
/// Roth, COLING'10), referenced by the truth-discovery surveys the paper
/// builds on. All three iterate source trustworthiness T(s) against claim
/// belief B(v) with different update rules; beliefs are converted to
/// per-entity probability shares so CrowdFusion can consume any of them as
/// an initializer.
struct WebLinkOptions {
  int max_iterations = 30;
  double epsilon = 1e-8;
  /// Investment's belief growth exponent (the original paper uses 1.2).
  double investment_exponent = 1.2;
  /// Output probabilities are clamped into [floor, 1 - floor].
  double probability_floor = 0.02;
};

/// Sums (Hubs & Authorities): B(v) = Σ_{s claims v} T(s),
/// T(s) = Σ_{v claimed by s} B(v), normalized by the maximum each round.
class SumsFuser : public Fuser {
 public:
  SumsFuser() = default;
  explicit SumsFuser(WebLinkOptions options) : options_(options) {}

  common::Result<FusionResult> Fuse(const ClaimDatabase& db) override;

  std::string name() const override { return "Sums"; }

 private:
  WebLinkOptions options_;
};

/// Average-Log: like Sums but a source's trustworthiness scales with
/// log(1 + #claims) * average belief, damping prolific low-quality
/// sources.
class AverageLogFuser : public Fuser {
 public:
  AverageLogFuser() = default;
  explicit AverageLogFuser(WebLinkOptions options) : options_(options) {}

  common::Result<FusionResult> Fuse(const ClaimDatabase& db) override;

  std::string name() const override { return "AverageLog"; }

 private:
  WebLinkOptions options_;
};

/// Investment: each source spreads its trustworthiness uniformly over its
/// claims; a claim's belief is the invested total raised to an exponent
/// g > 1 (rewarding concentration), and sources earn back belief in
/// proportion to their share of the investment.
class InvestmentFuser : public Fuser {
 public:
  InvestmentFuser() = default;
  explicit InvestmentFuser(WebLinkOptions options) : options_(options) {}

  common::Result<FusionResult> Fuse(const ClaimDatabase& db) override;

  std::string name() const override { return "Investment"; }

 private:
  WebLinkOptions options_;
};

}  // namespace crowdfusion::fusion

#endif  // CROWDFUSION_FUSION_WEB_LINK_FUSERS_H_
