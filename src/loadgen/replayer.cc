#include "loadgen/replayer.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "net/http.h"
#include "net/http_client.h"

namespace crowdfusion::loadgen {

using common::Status;

namespace {

struct WorkerResult {
  int64_t attempted = 0;
  int64_t ok = 0;
  int64_t err_4xx = 0;
  int64_t err_5xx = 0;
  int64_t err_transport = 0;
  double last_done_seconds = 0.0;
  common::LatencyHistogram histogram;
};

void RunWorker(const Trace& trace, const ReplayOptions& options,
               const std::vector<double>& schedule, common::Clock* clock,
               double start_seconds, int worker, int stride,
               WorkerResult* result) {
  net::HttpClient::Options client_options;
  client_options.host = options.host;
  client_options.port = options.port;
  client_options.timeout_seconds = options.timeout_seconds;
  net::HttpClient client(client_options);

  for (size_t i = static_cast<size_t>(worker); i < trace.records.size();
       i += static_cast<size_t>(stride)) {
    const TraceRecord& record = trace.records[i];
    const double send_at = start_seconds + schedule[i];
    const double wait = send_at - clock->NowSeconds();
    if (wait > 0.0) clock->SleepSeconds(wait);

    net::HttpRequest request;
    request.method = record.method;
    request.target = record.target;
    request.body = record.body;
    if (!record.body.empty()) {
      request.headers.push_back({"Content-Type", "application/json"});
    }
    auto response = client.Call(request);
    const double done = clock->NowSeconds();

    ++result->attempted;
    // Latency runs from the scheduled send time, not the actual one:
    // open-loop coordinated-omission correction.
    result->histogram.Record(done - send_at);
    result->last_done_seconds = std::max(result->last_done_seconds, done);
    if (!response.ok()) {
      ++result->err_transport;
      client.Reset();
    } else if (response->status_code >= 500) {
      ++result->err_5xx;
    } else if (response->status_code >= 400) {
      ++result->err_4xx;
    } else {
      ++result->ok;
    }
  }
}

}  // namespace

common::Result<ReplayReport> Replay(const Trace& trace,
                                    const ReplayOptions& options) {
  if (trace.records.empty()) {
    return Status::InvalidArgument("cannot replay an empty trace");
  }
  if (options.port <= 0) {
    return Status::InvalidArgument("replay needs a target port");
  }
  if (options.target_qps < 0.0) {
    return Status::InvalidArgument("target_qps must be >= 0");
  }

  std::vector<double> schedule(trace.records.size());
  for (size_t i = 0; i < trace.records.size(); ++i) {
    schedule[i] = options.target_qps > 0.0
                      ? static_cast<double>(i) / options.target_qps
                      : trace.records[i].t;
  }

  const int connections = std::clamp(
      options.connections, 1, static_cast<int>(trace.records.size()));
  common::Clock* clock =
      options.clock != nullptr ? options.clock : common::Clock::Real();
  const double start_seconds = clock->NowSeconds();

  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  for (int w = 0; w < connections; ++w) {
    workers.emplace_back(RunWorker, std::cref(trace), std::cref(options),
                         std::cref(schedule), clock, start_seconds, w,
                         connections, &results[static_cast<size_t>(w)]);
  }
  for (std::thread& worker : workers) worker.join();

  ReplayReport report;
  double last_done = start_seconds;
  for (const WorkerResult& result : results) {
    report.attempted += result.attempted;
    report.ok += result.ok;
    report.err_4xx += result.err_4xx;
    report.err_5xx += result.err_5xx;
    report.err_transport += result.err_transport;
    report.histogram.Merge(result.histogram);
    last_done = std::max(last_done, result.last_done_seconds);
  }
  report.wall_seconds = std::max(1e-9, last_done - start_seconds);
  report.achieved_qps =
      static_cast<double>(report.attempted) / report.wall_seconds;
  report.p50_ms = report.histogram.PercentileMs(0.50);
  report.p95_ms = report.histogram.PercentileMs(0.95);
  report.p99_ms = report.histogram.PercentileMs(0.99);
  report.p999_ms = report.histogram.PercentileMs(0.999);
  return report;
}

}  // namespace crowdfusion::loadgen
