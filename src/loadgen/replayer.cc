#include "loadgen/replayer.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "net/http.h"
#include "net/http_client.h"

namespace crowdfusion::loadgen {

using common::Status;

namespace {

struct WorkerResult {
  int64_t attempted = 0;
  int64_t ok = 0;
  int64_t err_4xx = 0;
  int64_t err_5xx = 0;
  int64_t shed_503 = 0;
  int64_t err_transport = 0;
  double last_done_seconds = 0.0;
  common::LatencyHistogram histogram;
};

void RunWorker(const Trace& trace, const ReplayOptions& options,
               const std::vector<double>& schedule, common::Clock* clock,
               double start_seconds, int worker, int stride,
               WorkerResult* result) {
  net::HttpClient::Options client_options;
  client_options.host = options.host;
  client_options.port = options.port;
  client_options.timeout_seconds = options.timeout_seconds;
  net::HttpClient client(client_options);

  // When this connection finished its previous exchange. A send that
  // starts late because prev_done overran its schedule slot is the
  // server's fault and is charged below (coordinated-omission
  // correction); a send that starts late because the host woke the
  // worker's sleep tardily is generator noise and is not.
  double prev_done = clock->NowSeconds();

  for (size_t i = static_cast<size_t>(worker); i < schedule.size();
       i += static_cast<size_t>(stride)) {
    const TraceRecord& record = trace.records[i % trace.records.size()];
    const double send_at = start_seconds + schedule[i];
    const double wait = send_at - clock->NowSeconds();
    if (wait > 0.0) clock->SleepSeconds(wait);
    const double sent_at = clock->NowSeconds();

    net::HttpRequest request;
    request.method = record.method;
    request.target = record.target;
    request.body = record.body;
    if (!record.body.empty()) {
      request.headers.push_back({"Content-Type", "application/json"});
    }
    auto response = client.Call(request);
    const double done = clock->NowSeconds();

    ++result->attempted;
    // Open-loop latency = service time plus any server-caused backlog
    // (the connection was still busy when this record's slot arrived).
    // Under an exact clock this equals done - send_at — the classic
    // coordinated-omission correction — but unlike done - send_at it
    // does not charge the client's own sleep-wakeup overshoot to the
    // server, which on a noisy 1-CPU host can exceed 20 ms and would
    // otherwise dominate the reported tail.
    const double backlog = std::max(0.0, prev_done - send_at);
    result->histogram.Record((done - sent_at) + backlog);
    prev_done = done;
    result->last_done_seconds = std::max(result->last_done_seconds, done);
    if (!response.ok()) {
      ++result->err_transport;
      client.Reset();
    } else if (response->status_code == 503 &&
               response->FindHeader("Retry-After") != nullptr) {
      // The reactor's canned load-shed answer; deliberate, not an error.
      ++result->shed_503;
    } else if (response->status_code >= 500) {
      ++result->err_5xx;
    } else if (response->status_code >= 400) {
      ++result->err_4xx;
    } else {
      ++result->ok;
    }
  }
}

}  // namespace

common::Result<ReplayReport> Replay(const Trace& trace,
                                    const ReplayOptions& options) {
  if (trace.records.empty()) {
    return Status::InvalidArgument("cannot replay an empty trace");
  }
  if (options.port <= 0) {
    return Status::InvalidArgument("replay needs a target port");
  }
  if (options.target_qps < 0.0) {
    return Status::InvalidArgument("target_qps must be >= 0");
  }
  if (options.repeat < 1) {
    return Status::InvalidArgument("repeat must be >= 1");
  }

  const size_t n = trace.records.size();
  const size_t total = n * static_cast<size_t>(options.repeat);
  // Recorded pacing across repeats: each pass is shifted by the trace
  // span plus one average inter-record gap, so back-to-back passes keep
  // the recorded rhythm instead of firing two records simultaneously.
  const double span = trace.records.back().t - trace.records.front().t;
  const double pass_period =
      n > 1 ? span + span / static_cast<double>(n - 1) : 1.0;
  std::vector<double> schedule(total);
  for (size_t i = 0; i < total; ++i) {
    schedule[i] =
        options.target_qps > 0.0
            ? static_cast<double>(i) / options.target_qps
            : trace.records[i % n].t +
                  static_cast<double>(i / n) * pass_period;
  }

  const int connections =
      std::clamp(options.connections, 1, static_cast<int>(total));
  common::Clock* clock =
      options.clock != nullptr ? options.clock : common::Clock::Real();
  const double start_seconds = clock->NowSeconds();

  std::vector<WorkerResult> results(static_cast<size_t>(connections));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(connections));
  for (int w = 0; w < connections; ++w) {
    workers.emplace_back(RunWorker, std::cref(trace), std::cref(options),
                         std::cref(schedule), clock, start_seconds, w,
                         connections, &results[static_cast<size_t>(w)]);
  }
  for (std::thread& worker : workers) worker.join();

  ReplayReport report;
  double last_done = start_seconds;
  for (const WorkerResult& result : results) {
    report.attempted += result.attempted;
    report.ok += result.ok;
    report.err_4xx += result.err_4xx;
    report.err_5xx += result.err_5xx;
    report.shed_503 += result.shed_503;
    report.err_transport += result.err_transport;
    report.histogram.Merge(result.histogram);
    last_done = std::max(last_done, result.last_done_seconds);
  }
  report.wall_seconds = std::max(1e-9, last_done - start_seconds);
  report.achieved_qps =
      static_cast<double>(report.attempted) / report.wall_seconds;
  report.p50_ms = report.histogram.PercentileMs(0.50);
  report.p95_ms = report.histogram.PercentileMs(0.95);
  report.p99_ms = report.histogram.PercentileMs(0.99);
  report.p999_ms = report.histogram.PercentileMs(0.999);
  return report;
}

}  // namespace crowdfusion::loadgen
