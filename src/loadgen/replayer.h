#ifndef CROWDFUSION_LOADGEN_REPLAYER_H_
#define CROWDFUSION_LOADGEN_REPLAYER_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/latency_histogram.h"
#include "common/status.h"
#include "loadgen/trace.h"

namespace crowdfusion::loadgen {

/// Open-loop trace replay against a live HTTP front-end: requests fire on
/// a fixed schedule regardless of how fast responses come back, so a slow
/// server queues work instead of silently throttling the generator, and
/// latency is measured from the SCHEDULED send time (coordinated-omission
/// correction — a request that waited behind a stalled connection charges
/// the stall to the server).
struct ReplayOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Requests per second to fire. > 0 rewrites the schedule to a uniform
  /// i / target_qps spacing; 0 replays at the trace's recorded
  /// timestamps.
  double target_qps = 0.0;
  /// Worker threads, one persistent HTTP connection each. Records are
  /// dealt round-robin so every worker follows the global schedule.
  int connections = 4;
  /// Per-request client ceiling (connect + send + full response read).
  double timeout_seconds = 10.0;
  /// Replays the trace this many times back to back (one concatenated
  /// schedule), so a short recorded trace can drive an arbitrarily long
  /// or arbitrarily fast soak. Must be >= 1.
  int repeat = 1;
  /// nullptr means Clock::Real(); borrowed. Injected by pacing tests.
  common::Clock* clock = nullptr;
};

struct ReplayReport {
  int64_t attempted = 0;
  /// 2xx/3xx responses.
  int64_t ok = 0;
  int64_t err_4xx = 0;
  int64_t err_5xx = 0;
  /// 503s carrying Retry-After: the reactor's explicit load-shed answer.
  /// Counted separately from err_5xx — shedding under overload is the
  /// server doing its job, not failing.
  int64_t shed_503 = 0;
  /// No usable response at all (connect/send/read failure or timeout).
  int64_t err_transport = 0;
  /// First scheduled send to last response, seconds.
  double wall_seconds = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  /// Per-worker histograms merged in ascending worker order, so the
  /// percentiles above are deterministic for a given set of samples.
  common::LatencyHistogram histogram;
};

/// Blocks until every record has been attempted. The trace must have at
/// least one record; options must name a port.
common::Result<ReplayReport> Replay(const Trace& trace,
                                    const ReplayOptions& options);

}  // namespace crowdfusion::loadgen

#endif  // CROWDFUSION_LOADGEN_REPLAYER_H_
