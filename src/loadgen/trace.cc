#include "loadgen/trace.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "common/json_util.h"
#include "common/random.h"
#include "common/string_util.h"

namespace crowdfusion::loadgen {

using common::JsonValue;
using common::Result;
using common::Status;

namespace {

bool KnownMethod(const std::string& method) {
  return method == "GET" || method == "POST" || method == "DELETE" ||
         method == "PUT";
}

}  // namespace

std::string SerializeTraceHeader() {
  JsonValue header = JsonValue::MakeObject();
  header.Set("schema", kTraceSchema);
  return header.Dump();
}

std::string SerializeTraceRecord(const TraceRecord& record) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("t", record.t);
  json.Set("method", record.method);
  json.Set("target", record.target);
  if (!record.body.empty()) json.Set("body", record.body);
  return json.Dump();
}

Result<TraceRecord> ParseTraceRecord(const std::string& line) {
  CF_ASSIGN_OR_RETURN(const JsonValue json, JsonValue::Parse(line));
  CF_RETURN_IF_ERROR(
      common::JsonRequireObject(json, "trace record").status());
  TraceRecord record;
  bool have_t = false;
  bool have_target = false;
  for (const auto& [key, value] : json.object()) {
    if (key == "t") {
      CF_ASSIGN_OR_RETURN(record.t, value.GetDouble());
      have_t = true;
    } else if (key == "method") {
      CF_ASSIGN_OR_RETURN(record.method, value.GetString());
    } else if (key == "target") {
      CF_ASSIGN_OR_RETURN(record.target, value.GetString());
      have_target = true;
    } else if (key == "body") {
      CF_ASSIGN_OR_RETURN(record.body, value.GetString());
    } else {
      return Status::InvalidArgument("unknown trace record key \"" + key +
                                     "\"");
    }
  }
  if (!have_t) return Status::InvalidArgument("trace record missing \"t\"");
  if (!std::isfinite(record.t) || record.t < 0.0) {
    return Status::InvalidArgument(
        "trace record \"t\" must be finite and >= 0");
  }
  if (!KnownMethod(record.method)) {
    return Status::InvalidArgument("unknown trace method \"" +
                                   record.method + "\"");
  }
  if (!have_target || record.target.empty() || record.target.front() != '/') {
    return Status::InvalidArgument(
        "trace record \"target\" must be an origin-form path");
  }
  return record;
}

Result<Trace> ParseTrace(std::istream& in) {
  Trace trace;
  std::string line;
  int line_number = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (common::Trim(line).empty()) continue;
    if (!have_header) {
      auto header = JsonValue::Parse(line);
      if (!header.ok()) {
        return Status::InvalidArgument(common::StrFormat(
            "trace line %d: %s", line_number,
            header.status().ToString().c_str()));
      }
      auto object = common::JsonRequireObject(*header, "trace header");
      if (!object.ok()) return object.status();
      std::string schema;
      CF_RETURN_IF_ERROR(
          common::JsonReadString(*header, "schema", &schema));
      if (schema != kTraceSchema) {
        return Status::InvalidArgument(
            "trace header schema must be \"" + std::string(kTraceSchema) +
            "\", got \"" + schema + "\"");
      }
      for (const auto& [key, value] : header->object()) {
        (void)value;
        if (key != "schema") {
          return Status::InvalidArgument("unknown trace header key \"" +
                                         key + "\"");
        }
      }
      have_header = true;
      continue;
    }
    auto record = ParseTraceRecord(line);
    if (!record.ok()) {
      return Status::InvalidArgument(
          common::StrFormat("trace line %d: %s", line_number,
                            record.status().ToString().c_str()));
    }
    if (!trace.records.empty() && record->t < trace.records.back().t) {
      return Status::InvalidArgument(common::StrFormat(
          "trace line %d: timestamps must be non-decreasing", line_number));
    }
    trace.records.push_back(std::move(record).value());
  }
  if (!have_header) {
    return Status::InvalidArgument("trace has no header line");
  }
  return trace;
}

Result<Trace> LoadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace file " + path);
  }
  return ParseTrace(in);
}

Status SaveTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  out << SerializeTraceHeader() << "\n";
  for (const TraceRecord& record : trace.records) {
    out << SerializeTraceRecord(record) << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

// --- TraceRecorder -------------------------------------------------------

common::Result<std::unique_ptr<TraceRecorder>> TraceRecorder::Open(
    const std::string& path, common::Clock* clock) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open trace file " + path +
                            " for writing");
  }
  out << SerializeTraceHeader() << "\n";
  out.flush();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return std::unique_ptr<TraceRecorder>(
      new TraceRecorder(std::move(out), clock));
}

TraceRecorder::TraceRecorder(std::ofstream out, common::Clock* clock)
    : out_(std::move(out)),
      clock_(clock == nullptr ? common::Clock::Real() : clock) {}

void TraceRecorder::Record(const std::string& method,
                           const std::string& target,
                           const std::string& body) {
  const double now = clock_->NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!have_epoch_) {
    have_epoch_ = true;
    epoch_seconds_ = now;
  }
  TraceRecord record;
  // The clock is monotonic, but two racing handlers may observe their
  // `now` out of order with the lock acquisition; clamp so the written
  // file always satisfies the non-decreasing contract.
  record.t = std::max(0.0, now - epoch_seconds_);
  if (records_written_ > 0 && record.t < last_t_) record.t = last_t_;
  record.method = method;
  record.target = target;
  record.body = body;
  out_ << SerializeTraceRecord(record) << "\n";
  out_.flush();
  last_t_ = record.t;
  ++records_written_;
}

int64_t TraceRecorder::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_written_;
}

// --- synthetic traces ----------------------------------------------------

namespace {

/// A minimal crowdfusion-request-v1 body built by hand (loadgen sits
/// below the service layer, so it cannot call request_json.h): one
/// uniform-joint instance, scripted provider, engine mode. The
/// tests/service suite pins that these bodies parse as real requests.
std::string SyntheticFusionBody(const SyntheticTraceOptions& options,
                                int index, common::Rng& rng) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("schema", "crowdfusion-request-v1");
  request.Set("mode", "engine");
  request.Set("label",
              common::StrFormat("synthetic-%d", index));
  request.Set("assumed_pc", 0.8);

  JsonValue selector = JsonValue::MakeObject();
  selector.Set("kind", "greedy");
  request.Set("selector", std::move(selector));

  JsonValue provider = JsonValue::MakeObject();
  provider.Set("kind", "scripted");
  request.Set("provider", std::move(provider));

  JsonValue budget = JsonValue::MakeObject();
  budget.Set("budget_per_instance", options.budget_per_instance);
  budget.Set("tasks_per_step", 1);
  request.Set("budget", std::move(budget));

  const int facts = std::max(1, std::min(options.facts, 10));
  const int64_t joint_size = int64_t{1} << facts;
  JsonValue entries = JsonValue::MakeArray();
  for (int64_t mask = 0; mask < joint_size; ++mask) {
    JsonValue entry = JsonValue::MakeArray();
    entry.Append(common::StrFormat("%lld", static_cast<long long>(mask)));
    entry.Append(1.0 / static_cast<double>(joint_size));
    entries.Append(std::move(entry));
  }
  JsonValue joint = JsonValue::MakeObject();
  joint.Set("num_facts", facts);
  joint.Set("entries", std::move(entries));

  JsonValue truths = JsonValue::MakeArray();
  for (int f = 0; f < facts; ++f) truths.Append(rng.NextBernoulli(0.5));

  JsonValue instance = JsonValue::MakeObject();
  instance.Set("name", common::StrFormat("book-%d", index));
  instance.Set("joint", std::move(joint));
  instance.Set("truths", std::move(truths));
  JsonValue instances = JsonValue::MakeArray();
  instances.Append(std::move(instance));
  request.Set("instances", std::move(instances));
  return request.Dump();
}

}  // namespace

Trace MakeSyntheticTrace(const SyntheticTraceOptions& options) {
  Trace trace;
  common::Rng rng(options.seed);
  const double qps = options.qps > 0.0 ? options.qps : 100.0;
  const int num_records = std::max(1, options.num_records);
  trace.records.reserve(static_cast<size_t>(num_records));
  for (int i = 0; i < num_records; ++i) {
    TraceRecord record;
    record.t = static_cast<double>(i) / qps;
    if (options.healthz_every > 0 && i % options.healthz_every == 0) {
      record.method = "GET";
      record.target = "/healthz";
    } else {
      record.method = "POST";
      record.target = "/v1/fusion:run";
      record.body = SyntheticFusionBody(options, i, rng);
    }
    trace.records.push_back(std::move(record));
  }
  return trace;
}

}  // namespace crowdfusion::loadgen
