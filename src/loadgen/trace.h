#ifndef CROWDFUSION_LOADGEN_TRACE_H_
#define CROWDFUSION_LOADGEN_TRACE_H_

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace crowdfusion::loadgen {

/// Versioned JSONL request-trace format — the capture/replay substrate of
/// the load-replay harness (ROADMAP item 4). A trace file is one header
/// line followed by one record per line:
///
///   {"schema": "crowdfusion-trace-v1"}
///   {"t": 0, "method": "GET", "target": "/healthz"}
///   {"t": 0.004, "method": "POST", "target": "/v1/fusion:run",
///    "body": "{...}"}
///
/// `t` is seconds relative to the first recorded request (finite, >= 0,
/// non-decreasing down the file), `method` one of GET/POST/DELETE/PUT,
/// `target` an origin-form path, `body` an optional opaque string (for
/// this repo's wire: serialized request JSON). Parsing is strict in the
/// request_json style: wrong types and unknown keys are
/// kInvalidArgument naming the key, truncation/corruption never crashes
/// (fuzz-pinned).

inline constexpr const char* kTraceSchema = "crowdfusion-trace-v1";

struct TraceRecord {
  /// Seconds since the first request of the trace.
  double t = 0.0;
  std::string method = "GET";
  std::string target;
  std::string body;

  friend bool operator==(const TraceRecord& a,
                         const TraceRecord& b) = default;
};

struct Trace {
  std::vector<TraceRecord> records;

  /// Recorded span: t of the last record (0 for <= 1 record).
  double SpanSeconds() const {
    return records.empty() ? 0.0 : records.back().t;
  }

  friend bool operator==(const Trace& a, const Trace& b) = default;
};

/// One compact line, no trailing newline.
std::string SerializeTraceHeader();
std::string SerializeTraceRecord(const TraceRecord& record);

common::Result<TraceRecord> ParseTraceRecord(const std::string& line);

/// Parses a whole trace (header line + records; blank lines are
/// skipped). Errors name the offending 1-based line.
common::Result<Trace> ParseTrace(std::istream& in);
common::Result<Trace> LoadTraceFile(const std::string& path);
common::Status SaveTraceFile(const Trace& trace, const std::string& path);

/// Append-only trace capture, the `serve --record-trace` hook: thread-safe
/// (HTTP handlers record concurrently), timestamps relative to the FIRST
/// recorded request (a server that idles before traffic does not bake the
/// idle gap into the trace), one flushed line per request so a kill -9
/// loses at most the in-flight line.
class TraceRecorder {
 public:
  /// Truncates `path` and writes the header. `clock` nullptr means
  /// Clock::Real(); borrowed.
  static common::Result<std::unique_ptr<TraceRecorder>> Open(
      const std::string& path, common::Clock* clock = nullptr);

  void Record(const std::string& method, const std::string& target,
              const std::string& body);

  int64_t records_written() const;

 private:
  TraceRecorder(std::ofstream out, common::Clock* clock);

  mutable std::mutex mutex_;
  std::ofstream out_;
  common::Clock* clock_;
  bool have_epoch_ = false;
  double epoch_seconds_ = 0.0;
  double last_t_ = 0.0;
  int64_t records_written_ = 0;
};

/// Deterministic synthetic traces, so the soak gate and the pipe bench
/// need no recorded traffic to run.
struct SyntheticTraceOptions {
  int num_records = 64;
  /// Request spacing: record i carries t = i / qps.
  double qps = 100.0;
  /// Every healthz_every-th record is a GET /healthz probe (0 = none);
  /// the rest are small scripted-provider POST /v1/fusion:run bodies.
  int healthz_every = 8;
  /// Facts per fusion request (joint size 2^facts — keep small).
  int facts = 4;
  int budget_per_instance = 2;
  uint64_t seed = 7;
};
Trace MakeSyntheticTrace(const SyntheticTraceOptions& options);

}  // namespace crowdfusion::loadgen

#endif  // CROWDFUSION_LOADGEN_TRACE_H_
