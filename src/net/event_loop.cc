#include "net/event_loop.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace crowdfusion::net {

using common::Status;

namespace {

thread_local bool t_on_loop_thread = false;

constexpr uint64_t kListenerToken = ~uint64_t{0};
constexpr uint64_t kWakeToken = ~uint64_t{0} - 1;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t MakeToken(int slot, uint32_t generation) {
  return (static_cast<uint64_t>(generation) << 32) |
         static_cast<uint32_t>(slot);
}

/// Same JSON envelope as net/wire.h's error responses: built through
/// JsonValue so hostile bytes echoed into the message still emit valid
/// JSON. Allocates — used for canned bytes (Start) and parse errors only.
HttpResponse MakeErrorResponse(int code, const std::string& message) {
  HttpResponse response;
  response.status_code = code;
  response.headers.push_back({"Content-Type", "application/json"});
  common::JsonValue error = common::JsonValue::MakeObject();
  error.Set("code", static_cast<int64_t>(code));
  error.Set("message", message);
  common::JsonValue body = common::JsonValue::MakeObject();
  body.Set("error", std::move(error));
  response.body = body.Dump();
  return response;
}

std::string BuildCanned(int code, const std::string& message, bool close,
                        int retry_after_seconds) {
  HttpResponse response = MakeErrorResponse(code, message);
  if (retry_after_seconds >= 0) {
    response.headers.push_back(
        {"Retry-After", std::to_string(retry_after_seconds)});
  }
  response.headers.push_back({"Connection", close ? "close" : "keep-alive"});
  return SerializeResponse(response);
}

/// Serializes `response` + the server's Connection decision into `*out`
/// without mutating the response or allocating beyond `out` growth (the
/// hot-path sibling of AppendResponse). A handler-set Connection header
/// wins; otherwise the computed keep-alive/close is appended.
void AppendResponseBytes(const HttpResponse& response, bool close,
                         std::string* out) {
  char scratch[64];
  int n = std::snprintf(scratch, sizeof(scratch), "HTTP/1.1 %d ",
                        response.status_code);
  out->append(scratch, static_cast<size_t>(n));
  if (response.reason.empty()) {
    out->append(ReasonPhrase(response.status_code));
  } else {
    out->append(response.reason);
  }
  out->append("\r\n");
  for (const HttpHeader& header : response.headers) {
    out->append(header.name);
    out->append(": ");
    out->append(header.value);
    out->append("\r\n");
  }
  if (response.FindHeader("Connection") == nullptr) {
    out->append(close ? "Connection: close\r\n" : "Connection: keep-alive\r\n");
  }
  if (response.FindHeader("Content-Length") == nullptr) {
    n = std::snprintf(scratch, sizeof(scratch), "Content-Length: %zu\r\n",
                      response.body.size());
    out->append(scratch, static_cast<size_t>(n));
  }
  out->append("\r\n");
  out->append(response.body);
}

}  // namespace

// ---------------------------------------------------------------------------
// CompletionQueue
// ---------------------------------------------------------------------------

bool CompletionQueue::Post(uint64_t token, HttpResponse&& response) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wake_fd_ < 0) return false;
  items_.push_back(Item{token, std::move(response)});
  if (!wake_pending_) {
    wake_pending_ = true;
    const char byte = 'c';
    (void)!::write(wake_fd_, &byte, 1);
  }
  return true;
}

// ---------------------------------------------------------------------------
// EventLoop lifecycle
// ---------------------------------------------------------------------------

EventLoop::EventLoop(RequestDispatcher* dispatcher, ServerConfig config)
    : dispatcher_(dispatcher), config_(std::move(config)) {
  CF_CHECK(dispatcher_ != nullptr) << "EventLoop needs a dispatcher";
  wheel_.fill(-1);
}

EventLoop::~EventLoop() { Stop(); }

bool EventLoop::OnLoopThread() { return t_on_loop_thread; }

common::Status EventLoop::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (running_) return Status::FailedPrecondition("event loop already started");
  CF_RETURN_IF_ERROR(config_.Validate());
  CF_ASSIGN_OR_RETURN(
      listener_,
      Listener::Bind(config_.host, config_.port, config_.listen_backlog));
  ::fcntl(listener_.fd(), F_SETFL, O_NONBLOCK);
  port_ = listener_.port();

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    listener_.Close();
    return Status::Unavailable("epoll_create1 failed");
  }
  if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    listener_.Close();
    return Status::Unavailable("pipe2 failed");
  }

  completions_ = std::make_shared<CompletionQueue>();
  completions_->wake_fd_ = wake_pipe_[1];

  reject_503_ = BuildCanned(
      503, "connection limit reached; try again shortly", /*close=*/true,
      config_.retry_after_seconds);
  shed_503_keep_ = BuildCanned(
      503, "server is at queue-depth capacity; retry shortly",
      /*close=*/false, config_.retry_after_seconds);
  shed_503_close_ = BuildCanned(
      503, "server is at queue-depth capacity; retry shortly",
      /*close=*/true, config_.retry_after_seconds);
  timeout_408_ = BuildCanned(
      408, "request was not received within the read deadline",
      /*close=*/true, /*retry_after_seconds=*/-1);

  conns_.clear();
  free_slots_.clear();
  wheel_.fill(-1);
  events_.resize(256);
  read_buf_.resize(64 * 1024);
  processing_.clear();
  in_flight_ = 0;
  listener_paused_until_ = 0.0;
  connections_current_.store(0, std::memory_order_relaxed);

  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerToken;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev);

  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  running_ = true;
  return Status::Ok();
}

void EventLoop::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  {
    // Reuse the completion wake path; also flips wake_fd_ off so late
    // Posts from workers are dropped instead of written to a dead pipe.
    std::lock_guard<std::mutex> lock(completions_->mutex_);
    const char byte = 's';
    (void)!::write(completions_->wake_fd_, &byte, 1);
    completions_->wake_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
  // The loop thread is gone; tear down every connection from here.
  for (auto& conn : conns_) {
    if (conn->state != State::kClosed) {
      conn->socket.Close();
      conn->state = State::kClosed;
      ++conn->generation;
    }
  }
  connections_current_.store(0, std::memory_order_relaxed);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  listener_.Close();
  running_ = false;
}

// ---------------------------------------------------------------------------
// The loop
// ---------------------------------------------------------------------------

void EventLoop::Run() {
  t_on_loop_thread = true;
  double now = Now();
  last_tick_ = static_cast<int64_t>(now / kTickSeconds);
  while (!stop_.load(std::memory_order_acquire)) {
    // Sleep to the next wheel tick so timeouts keep ~50 ms resolution
    // even when no I/O arrives.
    const double next_tick = (last_tick_ + 1) * kTickSeconds;
    const int timeout_ms = std::clamp(
        static_cast<int>((next_tick - Now()) * 1000.0) + 1, 1, 50);
    const int n_events = ::epoll_wait(epoll_fd_, events_.data(),
                                      static_cast<int>(events_.size()),
                                      timeout_ms);
    if (stop_.load(std::memory_order_acquire)) break;
    if (n_events < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n_events; ++i) {
      const uint64_t token = events_[i].data.u64;
      if (token == kListenerToken) {
        HandleListenerReady();
      } else if (token == kWakeToken) {
        HandleWake();
      } else {
        // Lookup also drops events queued for a connection that died
        // (and possibly had its slot recycled) earlier in this batch.
        Conn* conn = LookupConn(token);
        if (conn != nullptr) HandleConnEvent(conn, events_[i].events);
      }
    }
    now = Now();
    AdvanceWheel(now);
  }
  t_on_loop_thread = false;
}

void EventLoop::HandleListenerReady() {
  for (;;) {
    const int fd =
        ::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Hard accept error (EMFILE under fd exhaustion): the listener
      // stays readable, so a level-triggered loop would spin. Deregister
      // it briefly; AdvanceWheel re-adds it after the pause.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
      listener_paused_until_ = Now() + 0.05;
      return;
    }
    if (connections_current_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      // Best-effort canned reject; a full socket buffer just loses it.
      (void)!::send(fd, reject_503_.data(), reject_503_.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_current_.fetch_add(1, std::memory_order_relaxed);

    const int slot = AllocSlot();
    Conn* conn = conns_[slot].get();
    conn->socket = Socket(fd);
    conn->token = MakeToken(slot, conn->generation);
    conn->state = State::kIdle;
    conn->close_after_write = false;
    conn->keep_alive = true;
    conn->read_armed = false;
    conn->out_offset = 0;
    ArmTimer(conn, Now() + config_.idle_timeout_seconds);

    struct epoll_event ev = {};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = conn->token;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conn->epoll_events = ev.events;
  }
}

void EventLoop::HandleWake() {
  char drain[256];
  while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
  }
  {
    std::lock_guard<std::mutex> lock(completions_->mutex_);
    processing_.swap(completions_->items_);
    completions_->wake_pending_ = false;
  }
  for (CompletionQueue::Item& item : processing_) {
    ProcessCompletion(item.token, std::move(item.response));
  }
  // Destroys the moved-from responses (frees worker-allocated strings —
  // frees, not allocations) while both vectors keep their capacity.
  processing_.clear();
}

void EventLoop::HandleConnEvent(Conn* conn, uint32_t events) {
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    CloseConn(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0 && conn->state == State::kWriting) {
    Drive(conn);
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0) {
    if (conn->state == State::kHandling) {
      // EPOLLRDHUP while the handler runs: nothing to do yet (pipelined
      // bytes stay in the kernel buffer until the response drains), but
      // squelch the level-triggered repeat.
      SetInterest(conn, 0);
      return;
    }
    if (conn->state == State::kIdle || conn->state == State::kReading) {
      Drive(conn);
    }
  }
}

void EventLoop::Drive(Conn* conn) {
  for (;;) {
    switch (conn->state) {
      case State::kWriting: {
        if (!FlushSome(conn)) return;  // blocked (armed) or closed
        if (conn->close_after_write) {
          CloseConn(conn);
          return;
        }
        conn->state = State::kReading;
        SetInterest(conn, EPOLLIN | EPOLLRDHUP);
        continue;
      }
      case State::kIdle:
      case State::kReading: {
        TryParse(conn);
        if (conn->state == State::kWriting ||
            conn->state == State::kHandling) {
          continue;
        }
        const ReadResult r = ReadSome(conn);
        if (r == ReadResult::kHaveBytes) continue;
        return;  // kNoData (timers armed, epoll waits) or kGone
      }
      case State::kHandling:
        SetInterest(conn, EPOLLRDHUP);
        return;
      case State::kClosed:
        return;
    }
  }
}

void EventLoop::TryParse(Conn* conn) {
  auto ready = conn->parser.Next(&conn->request);
  if (!ready.ok()) {
    // Unrecoverable framing: answer once with the mapped status (431/413/
    // 400), then close. Error path — allocation is fine here.
    HttpResponse response = MakeErrorResponse(
        HttpStatusForParseError(ready.status()), ready.status().message());
    AppendResponseBytes(response, /*close=*/true, &conn->out);
    conn->close_after_write = true;
    conn->read_armed = false;
    conn->state = State::kWriting;
    CancelTimer(conn);
    return;
  }
  if (!*ready) {
    if (conn->parser.buffered_bytes() == 0) {
      if (conn->state != State::kIdle) {
        conn->state = State::kIdle;
        conn->read_armed = false;
        ArmTimer(conn, Now() + config_.idle_timeout_seconds);
      }
    } else if (!conn->read_armed) {
      ArmReadTimers(conn);
    }
    return;
  }
  // One complete request.
  conn->read_armed = false;
  conn->keep_alive = conn->request.KeepAlive();
  if (in_flight_ >= config_.max_queue_depth) {
    requests_shed_.fetch_add(1, std::memory_order_relaxed);
    conn->out.append(conn->keep_alive ? shed_503_keep_ : shed_503_close_);
    conn->close_after_write = !conn->keep_alive;
    conn->state = State::kWriting;
    CancelTimer(conn);
    return;
  }
  ++in_flight_;
  requests_dispatched_.fetch_add(1, std::memory_order_relaxed);
  conn->state = State::kHandling;
  CancelTimer(conn);
  dispatcher_->DispatchRequest(conn->token, &conn->request);
}

EventLoop::ReadResult EventLoop::ReadSome(Conn* conn) {
  for (;;) {
    const ssize_t n =
        ::recv(conn->socket.fd(), read_buf_.data(), read_buf_.size(), 0);
    if (n > 0) {
      if (conn->state == State::kIdle) conn->state = State::kReading;
      conn->parser.Consume(
          std::string_view(read_buf_.data(), static_cast<size_t>(n)));
      return ReadResult::kHaveBytes;
    }
    if (n == 0) {
      // Peer EOF with no complete request buffered (TryParse ran first):
      // nothing further can ever complete — close.
      CloseConn(conn);
      return ReadResult::kGone;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadResult::kNoData;
    CloseConn(conn);
    return ReadResult::kGone;
  }
}

bool EventLoop::FlushSome(Conn* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n = ::send(conn->socket.fd(),
                             conn->out.data() + conn->out_offset,
                             conn->out.size() - conn->out_offset,
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SetInterest(conn, EPOLLOUT);
      // Re-armed on every EAGAIN: the timeout bounds a write *stall*,
      // not total response time.
      ArmTimer(conn, Now() + config_.write_timeout_seconds);
      return false;
    }
    CloseConn(conn);  // EPIPE / ECONNRESET
    return false;
  }
  conn->out.clear();  // keeps capacity — the per-connection reuse
  conn->out_offset = 0;
  CancelTimer(conn);
  return true;
}

void EventLoop::ProcessCompletion(uint64_t token, HttpResponse&& response) {
  --in_flight_;
  Conn* conn = LookupConn(token);
  if (conn == nullptr || conn->state != State::kHandling) return;
  const bool close = !conn->keep_alive || response.WantsClose();
  conn->close_after_write = close;
  AppendResponseBytes(response, close, &conn->out);
  conn->state = State::kWriting;
  Drive(conn);
}

void EventLoop::CloseConn(Conn* conn) {
  if (conn->state == State::kClosed) return;
  CancelTimer(conn);
  conn->socket.Close();  // also removes the fd from epoll
  conn->state = State::kClosed;
  ++conn->generation;  // invalidates the token of any in-flight handler
  conn->parser.Reset();
  conn->out.clear();
  conn->out_offset = 0;
  conn->close_after_write = false;
  conn->read_armed = false;
  conn->epoll_events = 0;
  free_slots_.push_back(conn->slot);
  connections_current_.fetch_sub(1, std::memory_order_relaxed);
}

EventLoop::Conn* EventLoop::LookupConn(uint64_t token) {
  const uint32_t slot = static_cast<uint32_t>(token & 0xffffffffu);
  if (slot >= conns_.size()) return nullptr;
  Conn* conn = conns_[slot].get();
  if (conn->token != token || conn->state == State::kClosed) return nullptr;
  return conn;
}

int EventLoop::AllocSlot() {
  if (!free_slots_.empty()) {
    const int slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  // Grows only at the connection high-water mark; steady state always
  // hits the free list.
  conns_.push_back(std::make_unique<Conn>(config_.limits));
  conns_.back()->slot = static_cast<int>(conns_.size()) - 1;
  return conns_.back()->slot;
}

void EventLoop::SetInterest(Conn* conn, uint32_t events) {
  if (conn->epoll_events == events) return;
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.u64 = conn->token;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->socket.fd(), &ev);
  conn->epoll_events = events;
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

void EventLoop::ArmTimer(Conn* conn, double deadline) {
  CancelTimer(conn);
  conn->deadline = deadline;
  // File into the tick AFTER the deadline (round up): when the wheel
  // visits that slot, now >= tick start >= deadline, so the entry fires
  // on its first visit. Rounding down would leave a deadline landing
  // mid-tick unexpired at visit time — and then parked for a full wheel
  // rotation (25.6 s) before being looked at again.
  int64_t tick = static_cast<int64_t>(deadline / kTickSeconds) + 1;
  // Never file into a tick the wheel already passed — it would not be
  // visited again for a full rotation.
  if (tick <= last_tick_) tick = last_tick_ + 1;
  const int wheel_slot = static_cast<int>(tick % kWheelSlots);
  conn->timer_slot = wheel_slot;
  conn->timer_prev = -1;
  conn->timer_next = wheel_[wheel_slot];
  if (wheel_[wheel_slot] >= 0) {
    conns_[wheel_[wheel_slot]]->timer_prev = conn->slot;
  }
  wheel_[wheel_slot] = conn->slot;
}

void EventLoop::CancelTimer(Conn* conn) {
  if (conn->timer_slot < 0) return;
  if (conn->timer_prev >= 0) {
    conns_[conn->timer_prev]->timer_next = conn->timer_next;
  } else {
    wheel_[conn->timer_slot] = conn->timer_next;
  }
  if (conn->timer_next >= 0) {
    conns_[conn->timer_next]->timer_prev = conn->timer_prev;
  }
  conn->timer_slot = -1;
  conn->timer_prev = -1;
  conn->timer_next = -1;
  conn->deadline = 0.0;
}

void EventLoop::ArmReadTimers(Conn* conn) {
  const double now = Now();
  conn->header_deadline = now + config_.header_timeout_seconds;
  conn->frame_deadline = now + config_.read_timeout_seconds;
  conn->read_armed = true;
  const double first = conn->parser.HasBufferedHeaderEnd()
                           ? conn->frame_deadline
                           : std::min(conn->header_deadline,
                                      conn->frame_deadline);
  ArmTimer(conn, first);
}

void EventLoop::AdvanceWheel(double now) {
  if (listener_paused_until_ > 0.0 && now >= listener_paused_until_) {
    listener_paused_until_ = 0.0;
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerToken;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  }
  const int64_t now_tick = static_cast<int64_t>(now / kTickSeconds);
  if (now_tick <= last_tick_) return;
  int64_t steps = now_tick - last_tick_;
  if (steps > kWheelSlots) steps = kWheelSlots;  // one full rotation max
  for (int64_t s = 1; s <= steps; ++s) {
    const int wheel_slot = static_cast<int>((last_tick_ + s) % kWheelSlots);
    int index = wheel_[wheel_slot];
    while (index >= 0) {
      Conn* conn = conns_[index].get();
      const int next = conn->timer_next;
      if (conn->deadline <= now + 1e-9) {
        CancelTimer(conn);
        FireTimer(conn, now);
      }
      // Entries with a future deadline stay filed; the wheel revisits
      // them next rotation.
      index = next;
    }
  }
  last_tick_ = now_tick;
}

void EventLoop::FireTimer(Conn* conn, double now) {
  switch (conn->state) {
    case State::kIdle:
      CloseConn(conn);  // keep-alive idleness expired
      return;
    case State::kReading: {
      // The armed deadline was the *earliest* candidate; re-check which
      // one actually applies now that some bytes may have arrived.
      const double effective =
          conn->parser.HasBufferedHeaderEnd()
              ? conn->frame_deadline
              : std::min(conn->header_deadline, conn->frame_deadline);
      if (now + 1e-9 < effective) {
        ArmTimer(conn, effective);  // header completed in time; wait on
        return;                     // the frame deadline
      }
      conn->out.append(timeout_408_);
      conn->close_after_write = true;
      conn->read_armed = false;
      conn->state = State::kWriting;
      Drive(conn);
      return;
    }
    case State::kWriting:
      CloseConn(conn);  // write stalled past the deadline
      return;
    case State::kHandling:
    case State::kClosed:
      return;  // no timers are armed in these states
  }
}

}  // namespace crowdfusion::net
