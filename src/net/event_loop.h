#ifndef CROWDFUSION_NET_EVENT_LOOP_H_
#define CROWDFUSION_NET_EVENT_LOOP_H_

#include <sys/epoll.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/http.h"
#include "net/server_config.h"
#include "net/socket.h"

namespace crowdfusion::net {

class EventLoop;

/// The worker -> reactor completion channel. Workers Post() finished
/// responses from any thread; the loop thread drains them (woken by a
/// self-pipe byte) and writes them onto their connections. Outlives the
/// loop via shared_ptr so a straggling ResponseWriter can Post after
/// Stop() — the post is then dropped, never a use-after-free.
class CompletionQueue {
 public:
  /// Thread-safe. Returns false (dropping the response) once the loop
  /// that minted the token has stopped.
  bool Post(uint64_t token, HttpResponse&& response);

 private:
  friend class EventLoop;
  struct Item {
    uint64_t token = 0;
    HttpResponse response;
  };

  std::mutex mutex_;
  std::vector<Item> items_;
  /// Write end of the loop's wake pipe; -1 once the loop stopped.
  int wake_fd_ = -1;
  /// Coalesces wake bytes: one per drain cycle, not one per Post.
  bool wake_pending_ = false;
};

/// How the loop hands a parsed request upward (HttpServer implements it
/// with a bounded ring + ThreadPool workers). Called on the loop thread;
/// must not block. The implementation takes the request by swapping it
/// out of `*request` (leaving its own recycled HttpRequest behind, so
/// string/header capacities circulate and the loop thread never
/// allocates), and must eventually cause CompletionQueue::Post(token) —
/// the loop bounds calls so that dispatched-but-unanswered requests never
/// exceed ServerConfig::max_queue_depth.
class RequestDispatcher {
 public:
  virtual ~RequestDispatcher() = default;
  virtual void DispatchRequest(uint64_t token, HttpRequest* request) = 0;
};

/// A single-threaded epoll reactor owning every socket of one server:
/// non-blocking accept, incremental parse into HttpRequestParser,
/// buffered non-blocking writes, and idle/header/read/write timeouts on a
/// hashed timer wheel (~50 ms resolution). One loop thread multiplexes
/// 10k+ keep-alive connections; handler compute never runs here — parsed
/// requests go up through RequestDispatcher and finished responses come
/// back through the CompletionQueue.
///
/// Per-connection state machine:
///   kIdle     between requests (idle timeout armed)
///   kReading  a request is partially buffered (header + frame timeouts
///             armed at its first byte; slow-drip cannot extend them)
///   kHandling dispatched, awaiting the completion (reads parked so
///             pipelined bytes wait in the kernel buffer — natural flow
///             control; only EPOLLRDHUP interest remains)
///   kWriting  flushing the serialized response (write-stall timeout on
///             EAGAIN)
///
/// Backpressure, all answered from prebuilt byte strings:
///   * accepts beyond max_connections: canned 503 + close, counted in
///     connections_rejected()
///   * parsed requests beyond max_queue_depth in flight: canned 503 +
///     Retry-After on a still-open keep-alive connection, counted in
///     requests_shed()
///   * header/frame timeouts: canned 408 + close
///
/// Steady-state allocation: zero on the loop thread. Connection slots
/// (parser buffer, request, response buffer) are recycled through a free
/// list, the parser assigns into recycled strings, responses serialize
/// via AppendResponse into the per-connection out buffer, and completion
/// batches swap between two persistent vectors. tests/net/event_loop_test
/// pins this with a global operator-new hook + OnLoopThread().
class EventLoop {
 public:
  /// `dispatcher` is borrowed and must outlive the loop.
  EventLoop(RequestDispatcher* dispatcher, ServerConfig config);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Validates the config, binds, and spawns the loop thread.
  /// FailedPrecondition if already started. Restartable after Stop().
  common::Status Start();

  /// Joins the loop thread and closes every connection. Responses still
  /// in flight on workers are dropped (their Posts no-op). Idempotent.
  void Stop();

  /// The bound port; valid after Start().
  int port() const { return port_; }

  std::shared_ptr<CompletionQueue> completions() const { return completions_; }

  /// True on the reactor thread — the allocation-pin test hook.
  static bool OnLoopThread();

  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }
  int64_t requests_dispatched() const {
    return requests_dispatched_.load(std::memory_order_relaxed);
  }
  int64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }
  /// Currently open (admitted) connections.
  int connections_current() const {
    return connections_current_.load(std::memory_order_relaxed);
  }

 private:
  enum class State { kClosed, kIdle, kReading, kHandling, kWriting };

  struct Conn {
    explicit Conn(HttpLimits limits) : parser(limits) {}
    Socket socket;
    HttpRequestParser parser;
    /// Parse target; swapped with the dispatcher's recycled request.
    HttpRequest request;
    /// Serialized response bytes pending flush.
    std::string out;
    size_t out_offset = 0;
    int slot = -1;
    uint32_t generation = 1;
    uint64_t token = 0;
    State state = State::kClosed;
    bool close_after_write = false;
    bool keep_alive = true;
    /// Whether header/frame deadlines are armed for the current request.
    bool read_armed = false;
    uint32_t epoll_events = 0;
    /// Armed wheel deadline plus the per-request pair it derives from.
    double deadline = 0.0;
    double header_deadline = 0.0;
    double frame_deadline = 0.0;
    /// Intrusive doubly-linked timer-wheel list, by connection slot.
    int timer_slot = -1;
    int timer_prev = -1;
    int timer_next = -1;
  };

  enum class ReadResult { kHaveBytes, kNoData, kGone };

  void Run();
  void HandleListenerReady();
  void HandleWake();
  void HandleConnEvent(Conn* conn, uint32_t events);
  /// The per-connection driver: iterates the state machine until the
  /// connection blocks (EAGAIN), parks in kHandling/kIdle, or closes.
  /// Deliberately iterative — a hostile pipeliner cannot recurse it.
  void Drive(Conn* conn);
  void TryParse(Conn* conn);
  ReadResult ReadSome(Conn* conn);
  /// Flushes conn->out; true when fully drained, false when blocked
  /// (EPOLLOUT + write timeout armed) or the connection died.
  bool FlushSome(Conn* conn);
  void ProcessCompletion(uint64_t token, HttpResponse&& response);
  void CloseConn(Conn* conn);
  Conn* LookupConn(uint64_t token);
  int AllocSlot();
  void SetInterest(Conn* conn, uint32_t events);

  void ArmTimer(Conn* conn, double deadline);
  void CancelTimer(Conn* conn);
  void ArmReadTimers(Conn* conn);
  void AdvanceWheel(double now);
  void FireTimer(Conn* conn, double now);

  RequestDispatcher* dispatcher_;
  ServerConfig config_;
  int port_ = 0;

  Listener listener_;
  int epoll_fd_ = -1;
  /// [0] = loop read end, [1] = CompletionQueue write end.
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::mutex lifecycle_mutex_;

  std::shared_ptr<CompletionQueue> completions_;
  /// Loop-local drain target, swapped with CompletionQueue::items_.
  std::vector<CompletionQueue::Item> processing_;

  /// Connection slots; index = Conn::slot, recycled through free_slots_.
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<int> free_slots_;
  std::vector<struct epoll_event> events_;
  std::vector<char> read_buf_;
  /// Dispatched-but-unanswered requests (loop thread only).
  int in_flight_ = 0;

  static constexpr double kTickSeconds = 0.05;
  static constexpr int kWheelSlots = 512;
  std::array<int, kWheelSlots> wheel_;
  int64_t last_tick_ = 0;
  /// Set on a hard accept error (EMFILE): the listener is deregistered
  /// until this instant so a level-triggered epoll cannot spin on it.
  double listener_paused_until_ = 0.0;

  /// Prebuilt reject/shed/timeout wire bytes (built in Start()).
  std::string reject_503_;
  std::string shed_503_keep_;
  std::string shed_503_close_;
  std::string timeout_408_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> requests_dispatched_{0};
  std::atomic<int64_t> requests_shed_{0};
  std::atomic<int> connections_current_{0};
};

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_EVENT_LOOP_H_
