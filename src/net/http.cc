#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/string_util.h"

namespace crowdfusion::net {

using common::Status;

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* FindHeaderIn(const std::vector<HttpHeader>& headers,
                                std::string_view name) {
  for (const HttpHeader& header : headers) {
    if (EqualsIgnoreCase(header.name, name)) return &header.value;
  }
  return nullptr;
}

/// RFC 9110 token characters, the legal alphabet of methods and header
/// names.
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), IsTokenChar);
}

/// OWS trim without the std::string that common::Trim would allocate —
/// the parser assigns the trimmed view straight into a reused string.
std::string_view TrimView(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

/// Parses the header block after the start line: lines of "name: value"
/// terminated by CRLF, up to the blank line (which the caller located).
/// Assigns into `headers`' existing elements (growing only past the high-
/// water mark) so a recycled request parses without allocating.
common::Status ParseHeaderLines(std::string_view block,
                                std::vector<HttpHeader>* headers) {
  size_t count = 0;
  while (!block.empty()) {
    const size_t eol = block.find("\r\n");
    if (eol == std::string_view::npos) {
      return Status::InvalidArgument("header line missing CRLF");
    }
    const std::string_view line = block.substr(0, eol);
    block.remove_prefix(eol + 2);
    if (line.empty()) continue;  // defensive; caller strips the blank line
    if (line.front() == ' ' || line.front() == '\t') {
      return Status::InvalidArgument("obsolete header folding rejected");
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("header line missing ':'");
    }
    const std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) {
      return Status::InvalidArgument("malformed header name");
    }
    if (count == headers->size()) headers->emplace_back();
    HttpHeader& header = (*headers)[count++];
    header.name.assign(name);
    header.value.assign(TrimView(line.substr(colon + 1)));
  }
  headers->resize(count);
  return Status::Ok();
}

/// Marker distinguishing the two ResourceExhausted overflows; every
/// header-cap error below spells it, and HttpStatusForParseError keys on
/// it (both live in this file — keep them together).
constexpr const char* kHeaderOverflowMarker = "header block";

/// Resolves the body length of a buffered message: 0 when no
/// Content-Length, the parsed length otherwise. Transfer-Encoding is not
/// supported by this server and is rejected outright.
common::Result<size_t> BodyLength(const std::vector<HttpHeader>& headers,
                                  const HttpLimits& limits) {
  if (FindHeaderIn(headers, "Transfer-Encoding") != nullptr) {
    return Status::InvalidArgument("Transfer-Encoding is not supported");
  }
  const std::string* value = FindHeaderIn(headers, "Content-Length");
  if (value == nullptr) return static_cast<size_t>(0);
  if (value->empty() ||
      !std::all_of(value->begin(), value->end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c));
      })) {
    return Status::InvalidArgument("malformed Content-Length");
  }
  // Reject before converting so a 100-digit length cannot overflow.
  if (value->size() > 15) {
    return Status::ResourceExhausted("declared body too large");
  }
  const size_t length = static_cast<size_t>(std::stoll(*value));
  if (length > limits.max_body_bytes) {
    return Status::ResourceExhausted(
        common::StrFormat("declared body of %zu bytes exceeds the %zu-byte "
                          "cap",
                          length, limits.max_body_bytes));
  }
  return length;
}

struct FramedMessage {
  std::string_view start_line;
  std::string_view body;
  size_t total_bytes = 0;
};

/// Locates and frames one complete message (start line + headers + body)
/// at the front of `data`, parsing the header block into the caller's
/// reusable `headers` vector. Returns false when more bytes are needed
/// (`headers` may still have been written — caller-side scratch).
common::Result<bool> FrameMessage(std::string_view data,
                                  const HttpLimits& limits,
                                  std::vector<HttpHeader>* headers,
                                  FramedMessage* out) {
  const size_t header_end = data.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (data.size() > limits.max_header_bytes) {
      return Status::ResourceExhausted(
          common::StrFormat("%s exceeds the %zu-byte cap",
                            kHeaderOverflowMarker,
                            limits.max_header_bytes));
    }
    return false;
  }
  if (header_end + 4 > limits.max_header_bytes) {
    return Status::ResourceExhausted(
        common::StrFormat("%s exceeds the %zu-byte cap",
                          kHeaderOverflowMarker, limits.max_header_bytes));
  }
  const size_t line_end = data.find("\r\n");
  out->start_line = data.substr(0, line_end);
  CF_RETURN_IF_ERROR(ParseHeaderLines(
      data.substr(line_end + 2, header_end + 2 - (line_end + 2)), headers));
  CF_ASSIGN_OR_RETURN(const size_t body_length, BodyLength(*headers, limits));
  const size_t body_start = header_end + 4;
  if (data.size() - body_start < body_length) return false;
  out->body = data.substr(body_start, body_length);
  out->total_bytes = body_start + body_length;
  return true;
}

void Compact(std::string* buffer, size_t* consumed) {
  if (*consumed > 4096 && *consumed >= buffer->size() / 2) {
    buffer->erase(0, *consumed);
    *consumed = 0;
  }
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindHeaderIn(headers, name);
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  return FindHeaderIn(headers, name);
}

bool HttpResponse::WantsClose() const {
  const std::string* connection = FindHeader("Connection");
  return connection != nullptr && EqualsIgnoreCase(*connection, "close");
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("Connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && EqualsIgnoreCase(*connection, "keep-alive");
  }
  return connection == nullptr || !EqualsIgnoreCase(*connection, "close");
}

const char* ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 410: return "Gone";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

int HttpStatusForParseError(const common::Status& status) {
  if (status.code() == common::StatusCode::kResourceExhausted) {
    return status.message().find(kHeaderOverflowMarker) != std::string::npos
               ? 431
               : 413;
  }
  return 400;
}

void AppendResponse(const HttpResponse& response, std::string* out) {
  char scratch[64];
  int n = std::snprintf(scratch, sizeof(scratch), "HTTP/1.1 %d ",
                        response.status_code);
  out->append(scratch, static_cast<size_t>(n));
  if (response.reason.empty()) {
    out->append(ReasonPhrase(response.status_code));
  } else {
    out->append(response.reason);
  }
  out->append("\r\n");
  for (const HttpHeader& header : response.headers) {
    out->append(header.name);
    out->append(": ");
    out->append(header.value);
    out->append("\r\n");
  }
  if (response.FindHeader("Content-Length") == nullptr) {
    n = std::snprintf(scratch, sizeof(scratch), "Content-Length: %zu\r\n",
                      response.body.size());
    out->append(scratch, static_cast<size_t>(n));
  }
  out->append("\r\n");
  out->append(response.body);
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out;
  AppendResponse(response, &out);
  return out;
}

std::string SerializeRequest(const HttpRequest& request,
                             std::string_view host) {
  std::string out = request.method + " " + request.target + " " +
                    request.version + "\r\n";
  if (request.FindHeader("Host") == nullptr) {
    out += "Host: ";
    out += host;
    out += "\r\n";
  }
  for (const HttpHeader& header : request.headers) {
    out += header.name;
    out += ": ";
    out += header.value;
    out += "\r\n";
  }
  if (request.FindHeader("Content-Length") == nullptr &&
      (!request.body.empty() || request.method == "POST" ||
       request.method == "PUT")) {
    out += common::StrFormat("Content-Length: %zu\r\n", request.body.size());
  }
  out += "\r\n";
  out += request.body;
  return out;
}

// ---------------------------------------------------------------------------
// HttpRequestParser
// ---------------------------------------------------------------------------

HttpRequestParser::HttpRequestParser(HttpLimits limits) : limits_(limits) {}

void HttpRequestParser::Consume(std::string_view bytes) {
  buffer_.append(bytes);
}

common::Result<bool> HttpRequestParser::Next(HttpRequest* out) {
  if (!sticky_error_.ok()) return sticky_error_;
  const std::string_view data =
      std::string_view(buffer_).substr(consumed_);
  FramedMessage message;
  auto framed = FrameMessage(data, limits_, &out->headers, &message);
  if (!framed.ok()) {
    sticky_error_ = framed.status();
    return sticky_error_;
  }
  if (!*framed) return false;

  // Request line: METHOD SP target SP HTTP/1.x
  const std::string_view line = message.start_line;
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    sticky_error_ = Status::InvalidArgument("malformed request line");
    return sticky_error_;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) {
    sticky_error_ = Status::InvalidArgument("malformed request method");
    return sticky_error_;
  }
  if (target.empty() || target.front() != '/') {
    sticky_error_ =
        Status::InvalidArgument("request target must be origin-form");
    return sticky_error_;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    sticky_error_ = Status::InvalidArgument("unsupported HTTP version");
    return sticky_error_;
  }

  out->method.assign(method);
  out->target.assign(target);
  out->version.assign(version);
  out->body.assign(message.body);
  consumed_ += message.total_bytes;
  Compact(&buffer_, &consumed_);
  return true;
}

// ---------------------------------------------------------------------------
// HttpResponseParser
// ---------------------------------------------------------------------------

HttpResponseParser::HttpResponseParser(HttpLimits limits) : limits_(limits) {}

void HttpResponseParser::Consume(std::string_view bytes) {
  buffer_.append(bytes);
}

common::Result<bool> HttpResponseParser::Next(HttpResponse* out) {
  if (!sticky_error_.ok()) return sticky_error_;
  const std::string_view data =
      std::string_view(buffer_).substr(consumed_);
  FramedMessage message;
  auto framed = FrameMessage(data, limits_, &out->headers, &message);
  if (!framed.ok()) {
    sticky_error_ = framed.status();
    return sticky_error_;
  }
  if (!*framed) return false;

  // Status line: HTTP/1.x SP 3-digit-code SP reason (reason may be empty
  // and may contain spaces).
  const std::string_view line = message.start_line;
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos ||
      (line.substr(0, sp1) != "HTTP/1.1" &&
       line.substr(0, sp1) != "HTTP/1.0")) {
    sticky_error_ = Status::InvalidArgument("malformed status line");
    return sticky_error_;
  }
  const std::string_view rest = line.substr(sp1 + 1);
  const size_t sp2 = rest.find(' ');
  const std::string_view code_text =
      sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
  if (code_text.size() != 3 ||
      !std::all_of(code_text.begin(), code_text.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c));
      })) {
    sticky_error_ = Status::InvalidArgument("malformed status code");
    return sticky_error_;
  }
  out->status_code = (code_text[0] - '0') * 100 + (code_text[1] - '0') * 10 +
                     (code_text[2] - '0');
  if (sp2 == std::string_view::npos) {
    out->reason.clear();
  } else {
    out->reason.assign(rest.substr(sp2 + 1));
  }
  out->body.assign(message.body);
  consumed_ += message.total_bytes;
  Compact(&buffer_, &consumed_);
  return true;
}

}  // namespace crowdfusion::net
