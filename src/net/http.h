#ifndef CROWDFUSION_NET_HTTP_H_
#define CROWDFUSION_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace crowdfusion::net {

/// One HTTP header field. Name comparisons are case-insensitive per RFC
/// 9110; stored spelling is preserved.
struct HttpHeader {
  std::string name;
  std::string value;

  friend bool operator==(const HttpHeader& a, const HttpHeader& b) = default;
};

/// Parser hard caps. The request parser enforces these while buffering, so
/// a hostile peer can neither balloon memory with an unbounded header
/// block nor stream an unbounded body.
struct HttpLimits {
  /// Request line + all header bytes (up to the blank line).
  size_t max_header_bytes = 16 * 1024;
  /// Content-Length ceiling.
  size_t max_body_bytes = 8 * 1024 * 1024;
};

struct HttpRequest {
  std::string method;
  /// Request target as received, e.g. "/v1/sessions/s-1/step".
  std::string target;
  std::string version = "HTTP/1.1";
  std::vector<HttpHeader> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;

  /// HTTP/1.1 keep-alive semantics: persistent unless "Connection: close"
  /// (HTTP/1.0 is persistent only with "Connection: keep-alive").
  bool KeepAlive() const;

  friend bool operator==(const HttpRequest& a, const HttpRequest& b) = default;
};

struct HttpResponse {
  int status_code = 200;
  /// Derived from status_code when empty.
  std::string reason;
  std::vector<HttpHeader> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const;

  /// True when the response carries "Connection: close" — a handler's
  /// instruction that the server must not reuse the connection.
  bool WantsClose() const;

  friend bool operator==(const HttpResponse& a,
                         const HttpResponse& b) = default;
};

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
const char* ReasonPhrase(int status_code);

/// HTTP status a server should answer for a parser failure: 431 for a
/// header-block overflow, 413 for a body overflow, 400 for malformed
/// framing. Lives beside the parser (not in the server) so the mapping
/// and the error sites stay in one file and cannot drift apart.
int HttpStatusForParseError(const common::Status& status);

/// Serializes a response (adding Content-Length; reason derived when
/// empty). The server appends its own Connection header before calling.
std::string SerializeResponse(const HttpResponse& response);

/// Appends the serialized response to `*out` without any allocation
/// beyond growing `out` itself — the reactor's hot path, where `out` is a
/// per-connection buffer whose capacity persists across requests.
void AppendResponse(const HttpResponse& response, std::string* out);

/// Serializes a request (adding Content-Length and Host when absent).
std::string SerializeRequest(const HttpRequest& request, std::string_view host);

/// Incremental HTTP/1.1 request parser: feed raw bytes as they arrive,
/// take parsed requests out as they complete. Tolerates pipelining (the
/// internal buffer may hold several requests; each Next() pops one) and
/// arbitrary chunk boundaries (the fuzz tests feed byte-at-a-time).
///
/// Error contract: malformed syntax is InvalidArgument, an oversized
/// header block or declared body is ResourceExhausted; both are sticky —
/// the connection cannot be resynchronized and must be closed.
///
/// Allocation contract (the reactor depends on it): Next() assigns into
/// `out`'s existing strings and header slots, so feeding a recycled
/// HttpRequest whose capacities already fit costs zero allocations. The
/// flip side: `out` is scratch — it may be clobbered even when Next()
/// returns false (e.g. headers parsed but the body still incomplete).
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = HttpLimits());

  /// Appends bytes to the parse buffer. Cheap; validation happens in Next.
  void Consume(std::string_view bytes);

  /// Attempts to pop one complete request. Returns true and fills `out`
  /// when a full request was buffered, false when more bytes are needed.
  common::Result<bool> Next(HttpRequest* out);

  /// Bytes currently buffered (un-consumed by Next).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// True when the buffered bytes already contain the end of the next
  /// request's header block — i.e. an incomplete request is stuck in its
  /// body, not its headers. Distinguishes the reactor's header timeout
  /// (slow-loris) from its whole-frame read timeout.
  bool HasBufferedHeaderEnd() const {
    return buffer_.find("\r\n\r\n", consumed_) != std::string::npos;
  }

  /// Returns the parser to its freshly constructed state while keeping
  /// the buffer capacity — connection-slot recycling in the reactor.
  void Reset() {
    buffer_.clear();
    consumed_ = 0;
    sticky_error_ = common::Status::Ok();
  }

 private:
  HttpLimits limits_;
  std::string buffer_;
  /// Prefix of buffer_ already handed out as parsed requests; compacted
  /// lazily so pipelined parsing is amortized O(bytes).
  size_t consumed_ = 0;
  common::Status sticky_error_;
};

/// Incremental HTTP/1.1 response parser for the client side. Same feeding
/// contract as HttpRequestParser; bodies require Content-Length (the only
/// framing this repo's peers emit).
class HttpResponseParser {
 public:
  explicit HttpResponseParser(HttpLimits limits = HttpLimits());

  void Consume(std::string_view bytes);
  common::Result<bool> Next(HttpResponse* out);

  void Reset() {
    buffer_.clear();
    consumed_ = 0;
    sticky_error_ = common::Status::Ok();
  }

 private:
  HttpLimits limits_;
  std::string buffer_;
  size_t consumed_ = 0;
  common::Status sticky_error_;
};

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_HTTP_H_
