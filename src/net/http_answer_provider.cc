#include "net/http_answer_provider.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/string_util.h"
#include "core/spec_json.h"
#include "net/wire.h"

namespace crowdfusion::net {

using common::JsonValue;
using common::Status;

namespace {

common::Result<core::TicketPhase> ParsePhase(const std::string& name) {
  if (name == "in_flight") return core::TicketPhase::kInFlight;
  if (name == "ready") return core::TicketPhase::kReady;
  if (name == "failed") return core::TicketPhase::kFailed;
  return Status::Unavailable("platform reported unknown ticket phase \"" +
                             name + "\"");
}

}  // namespace

HttpAnswerProvider::HttpAnswerProvider(Options options)
    : options_(options), client_([&options] {
        HttpClient::Options client_options;
        client_options.host = options.host;
        client_options.port = options.port;
        client_options.timeout_seconds = options.request_timeout_seconds;
        return client_options;
      }()) {}

HttpAnswerProvider::~HttpAnswerProvider() {
  if (owns_universe_ && !options_.universe.empty()) {
    (void)client_.Delete("/v1/universes/" + options_.universe);
  }
}

common::Status HttpAnswerProvider::CreateUniverse(
    const core::ProviderSpec& spec) {
  CF_ASSIGN_OR_RETURN(
      const HttpResponse response,
      client_.Post("/v1/universes", core::ProviderSpecToJson(spec).Dump()));
  CF_ASSIGN_OR_RETURN(const JsonValue body, ExpectJson(response));
  CF_ASSIGN_OR_RETURN(const JsonValue* universe, body.Get("universe"));
  CF_ASSIGN_OR_RETURN(options_.universe, universe->GetString());
  owns_universe_ = true;
  return Status::Ok();
}

std::string HttpAnswerProvider::TicketPath(core::TicketId ticket,
                                           const char* suffix) const {
  return common::StrFormat("/v1/universes/%s/tickets/%lld%s",
                           options_.universe.c_str(),
                           static_cast<long long>(ticket), suffix);
}

common::Result<core::TicketId> HttpAnswerProvider::Submit(
    std::span<const int> fact_ids, const core::TicketOptions& options) {
  if (options_.universe.empty()) {
    return Status::FailedPrecondition(
        "no universe bound; call CreateUniverse first");
  }
  JsonValue body = JsonValue::MakeObject();
  JsonValue ids = JsonValue::MakeArray();
  for (const int id : fact_ids) ids.Append(JsonValue(id));
  body.Set("fact_ids", std::move(ids));
  body.Set("options", TicketOptionsToJson(options));
  CF_ASSIGN_OR_RETURN(
      const HttpResponse response,
      client_.Post("/v1/universes/" + options_.universe + "/tickets",
                   body.Dump()));
  CF_ASSIGN_OR_RETURN(const JsonValue parsed, ExpectJson(response));
  CF_ASSIGN_OR_RETURN(const JsonValue* ticket, parsed.Get("ticket"));
  CF_ASSIGN_OR_RETURN(const int64_t id, ticket->GetInt());
  return static_cast<core::TicketId>(id);
}

common::Result<core::TicketStatus> HttpAnswerProvider::Poll(
    core::TicketId ticket) {
  CF_ASSIGN_OR_RETURN(const HttpResponse response,
                      client_.Get(TicketPath(ticket, "")));
  CF_ASSIGN_OR_RETURN(const JsonValue body, ExpectJson(response));
  core::TicketStatus status;
  CF_ASSIGN_OR_RETURN(const JsonValue* phase, body.Get("phase"));
  CF_ASSIGN_OR_RETURN(const std::string phase_name, phase->GetString());
  CF_ASSIGN_OR_RETURN(status.phase, ParsePhase(phase_name));
  if (const JsonValue* attempts = body.Find("attempts_used")) {
    CF_ASSIGN_OR_RETURN(const int64_t value, attempts->GetInt());
    status.attempts_used = static_cast<int>(value);
  }
  if (const JsonValue* eta = body.Find("seconds_until_ready")) {
    CF_ASSIGN_OR_RETURN(status.seconds_until_ready, eta->GetDouble());
  }
  if (status.phase == core::TicketPhase::kFailed) {
    const JsonValue* error = body.Find("error");
    status.error = error != nullptr
                       ? StatusFromJson(*error, 500)
                       : Status::Unavailable("platform reported failure");
  }
  return status;
}

common::Result<std::vector<bool>> HttpAnswerProvider::Await(
    core::TicketId ticket) {
  const bool bounded = options_.await_timeout_seconds > 0;
  const double deadline =
      clock()->NowSeconds() + options_.await_timeout_seconds;
  for (;;) {
    CF_ASSIGN_OR_RETURN(const core::TicketStatus status, Poll(ticket));
    if (status.phase != core::TicketPhase::kInFlight) break;
    double sleep =
        std::max(status.seconds_until_ready, options_.min_poll_seconds);
    if (bounded) {
      // Cap each sleep to the remaining budget so a platform reporting a
      // distant ETA cannot overshoot the deadline by one long nap.
      const double remaining = deadline - clock()->NowSeconds();
      if (remaining <= 0) {
        return Status::DeadlineExceeded(common::StrFormat(
            "ticket %lld still in flight after %.3f s await budget",
            static_cast<long long>(ticket),
            options_.await_timeout_seconds));
      }
      sleep = std::min(sleep, remaining);
    }
    clock()->SleepSeconds(sleep);
  }
  CF_ASSIGN_OR_RETURN(const HttpResponse response,
                      client_.Post(TicketPath(ticket, ":take"), "{}"));
  CF_ASSIGN_OR_RETURN(const JsonValue body, ExpectJson(response));
  CF_ASSIGN_OR_RETURN(const JsonValue* answers, body.Get("answers"));
  if (!answers->is_array()) {
    return Status::Unavailable("platform returned non-array answers");
  }
  std::vector<bool> values;
  values.reserve(answers->array().size());
  for (const JsonValue& item : answers->array()) {
    CF_ASSIGN_OR_RETURN(const bool value, item.GetBool());
    values.push_back(value);
  }
  return values;
}

void HttpAnswerProvider::Cancel(core::TicketId ticket) {
  (void)client_.Delete(TicketPath(ticket, ""));
}

std::pair<int64_t, int64_t> HttpAnswerProvider::ServedCorrect() {
  auto response = client_.Get("/v1/universes/" + options_.universe + "/stats");
  if (!response.ok()) return {0, 0};
  auto body = ExpectJson(*response);
  if (!body.ok()) return {0, 0};
  int64_t served = 0;
  int64_t correct = 0;
  if (const JsonValue* value = body->Find("answers_served")) {
    if (auto parsed = value->GetInt(); parsed.ok()) served = *parsed;
  }
  if (const JsonValue* value = body->Find("answers_correct")) {
    if (auto parsed = value->GetInt(); parsed.ok()) correct = *parsed;
  }
  return {served, correct};
}

common::Status RegisterHttpProvider(core::ProviderRegistry& registry,
                                    common::Clock* clock) {
  return registry.Register(
      "http",
      [clock](const core::ProviderSpec& spec)
          -> common::Result<core::ProviderHandle> {
        if (spec.endpoint.empty()) {
          return Status::InvalidArgument(
              "http provider requires an \"endpoint\" (host:port) naming "
              "the crowd platform");
        }
        CF_ASSIGN_OR_RETURN(const Endpoint endpoint,
                            ParseEndpoint(spec.endpoint));
        HttpAnswerProvider::Options options;
        options.host = endpoint.host;
        options.port = endpoint.port;
        options.await_timeout_seconds = spec.await_timeout_seconds;
        options.clock = clock;
        auto provider = std::make_shared<HttpAnswerProvider>(options);

        // The universe template is the spec itself, minus the transport
        // fields: the platform hosts the concrete provider (default:
        // simulated_crowd) that this spec describes.
        core::ProviderSpec universe_spec = spec;
        universe_spec.kind = spec.universe_kind.empty()
                                 ? "simulated_crowd"
                                 : spec.universe_kind;
        universe_spec.endpoint.clear();
        universe_spec.endpoints.clear();
        universe_spec.await_timeout_seconds = 0.0;
        CF_RETURN_IF_ERROR(provider->CreateUniverse(universe_spec));

        core::ProviderHandle handle;
        handle.async = provider.get();
        handle.served_correct = [provider] {
          return provider->ServedCorrect();
        };
        handle.owner = std::move(provider);
        return handle;
      });
}

}  // namespace crowdfusion::net
