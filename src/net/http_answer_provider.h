#ifndef CROWDFUSION_NET_HTTP_ANSWER_PROVIDER_H_
#define CROWDFUSION_NET_HTTP_ANSWER_PROVIDER_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/clock.h"
#include "common/status.h"
#include "core/async_provider.h"
#include "core/registry.h"
#include "net/http_client.h"

namespace crowdfusion::net {

/// The real-platform AnswerProvider: speaks core::AsyncAnswerProvider over
/// the crowd HTTP wire (see net/loopback_crowd_server.h for the protocol).
/// Submit POSTs a ticket batch — the TicketOptions deadline/retry contract
/// travels with it and is enforced by the platform's own ledger machinery —
/// Poll GETs the ticket status, Await polls and sleeps on the injected
/// clock until the platform reports the ticket resolved, then consumes it
/// with :take, and Cancel DELETEs abandoned tickets so a long-lived
/// serving process leaks nothing remotely.
///
/// One provider serves one remote fact universe. Transport failures are
/// kUnavailable; platform-reported errors arrive with their original
/// status code and message (the wire transports Status losslessly).
/// Thread-safety matches the in-process providers: calls may come from
/// any thread (the HTTP client serializes internally).
class HttpAnswerProvider : public core::AsyncAnswerProvider {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    /// Pre-existing universe id; leave empty and call CreateUniverse to
    /// register a fresh one.
    std::string universe;
    /// Per-HTTP-call ceiling.
    double request_timeout_seconds = 10.0;
    /// Overall ceiling on one Await call: when the platform still reports
    /// the ticket in flight after this many seconds, Await returns
    /// kDeadlineExceeded (the ticket stays live remotely — Cancel it or
    /// resubmit elsewhere; net::ProviderPool does exactly that). 0 or
    /// negative means wait forever (the pre-pool behavior).
    double await_timeout_seconds = 0.0;
    /// Await's poll floor when the platform reports "ready in 0 s" but
    /// the ticket is still in flight (clock skew between client and
    /// platform).
    double min_poll_seconds = 0.001;
    /// Time source for Await sleeps; nullptr means Clock::Real().
    common::Clock* clock = nullptr;
  };

  explicit HttpAnswerProvider(Options options);

  /// Best-effort remote cleanup: a universe this provider registered via
  /// CreateUniverse is DELETEd so a long-lived platform does not
  /// accumulate one universe per served instance. A universe handed in
  /// through Options::universe is left alone (not ours to reap).
  ~HttpAnswerProvider() override;

  /// Registers a fact universe on the remote platform from a provider
  /// template (the same spec document the in-process registries consume);
  /// subsequent tickets are scoped to it.
  common::Status CreateUniverse(const core::ProviderSpec& spec);

  const std::string& universe() const { return options_.universe; }

  common::Result<core::TicketId> Submit(
      std::span<const int> fact_ids,
      const core::TicketOptions& options) override;
  using core::AsyncAnswerProvider::Submit;
  common::Result<core::TicketStatus> Poll(core::TicketId ticket) override;
  common::Result<std::vector<bool>> Await(core::TicketId ticket) override;
  void Cancel(core::TicketId ticket) override;

  /// (answers_served, answers_correct) as reported by the platform's
  /// stats endpoint; (0, 0) when unreachable.
  std::pair<int64_t, int64_t> ServedCorrect();

 private:
  common::Clock* clock() const {
    return options_.clock == nullptr ? common::Clock::Real()
                                     : options_.clock;
  }
  std::string TicketPath(core::TicketId ticket, const char* suffix) const;

  Options options_;
  HttpClient client_;
  /// True when CreateUniverse registered options_.universe (and the
  /// destructor should reap it).
  bool owns_universe_ = false;
};

/// Registers the "http" provider kind: ProviderSpec::endpoint names a
/// crowd platform ("host:port"); the factory registers the spec as a
/// fresh universe there and returns an async-only handle (engine mode
/// needs a synchronous provider and rejects it). `clock` is borrowed by
/// every created provider for Await sleeps.
common::Status RegisterHttpProvider(core::ProviderRegistry& registry,
                                    common::Clock* clock = nullptr);

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_HTTP_ANSWER_PROVIDER_H_
