#include "net/http_client.h"

#include <utility>

#include "common/string_util.h"

namespace crowdfusion::net {

using common::Status;

HttpClient::HttpClient(Options options) : options_(std::move(options)) {}

void HttpClient::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  connection_.Close();
}

common::Result<HttpResponse> HttpClient::Call(const HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  return CallLocked(request, /*allow_retry=*/true);
}

common::Result<HttpResponse> HttpClient::CallLocked(const HttpRequest& request,
                                                    bool allow_retry) {
  // Blind post-send replay is only safe when re-executing cannot change
  // server state: GET and DELETE (idempotent on every wire in this repo).
  // POSTs (ticket Submit, session create) must not be silently doubled —
  // for them, a stale kept-alive connection is detected BEFORE sending
  // (cheap MSG_PEEK probe: the common idle-timeout race shows up as an
  // already-received FIN), and a mid-flight failure surfaces to the
  // caller instead of retrying.
  const bool idempotent =
      request.method == "GET" || request.method == "DELETE" ||
      request.method == "HEAD";
  if (connection_.valid() && !idempotent && connection_.LooksClosed()) {
    connection_.Close();
  }
  const bool reused = connection_.valid();
  if (!reused) {
    CF_ASSIGN_OR_RETURN(connection_,
                        ConnectTcp(options_.host, options_.port,
                                   options_.timeout_seconds));
  }
  const std::string host =
      common::StrFormat("%s:%d", options_.host.c_str(), options_.port);
  const std::string wire = SerializeRequest(request, host);

  // A reused connection may have been closed by the server since the last
  // call; retry exactly once on a fresh connection. A request that never
  // reached a fresh connection is never retried blindly.
  auto retry = [&](const Status& status) -> common::Result<HttpResponse> {
    connection_.Close();
    if (reused && allow_retry && idempotent) {
      return CallLocked(request, /*allow_retry=*/false);
    }
    return status;
  };

  if (Status status = connection_.WriteAll(wire, options_.timeout_seconds);
      !status.ok()) {
    return retry(status);
  }

  HttpResponseParser parser(options_.limits);
  HttpResponse response;
  char buf[8192];
  for (;;) {
    auto parsed = parser.Next(&response);
    if (!parsed.ok()) {
      // Unparseable response: the byte stream is desynchronized and the
      // connection must not be reused (leftover bytes would masquerade as
      // the next call's response).
      connection_.Close();
      return parsed.status();
    }
    if (*parsed) break;
    auto n = connection_.Read(buf, sizeof(buf), options_.timeout_seconds);
    if (!n.ok()) {
      if (n.status().code() == common::StatusCode::kDeadlineExceeded) {
        connection_.Close();
        return n.status();
      }
      return retry(n.status());
    }
    if (*n == 0) {
      return retry(Status::Unavailable("server closed the connection"));
    }
    parser.Consume(std::string_view(buf, *n));
  }

  const std::string* connection_header = response.FindHeader("Connection");
  if (connection_header != nullptr &&
      common::ToLower(*connection_header) == "close") {
    connection_.Close();
  }
  return response;
}

common::Result<HttpResponse> HttpClient::Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return Call(request);
}

common::Result<HttpResponse> HttpClient::Post(const std::string& target,
                                              std::string body,
                                              const std::string& content_type) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.headers.push_back({"Content-Type", content_type});
  request.body = std::move(body);
  return Call(request);
}

common::Result<HttpResponse> HttpClient::Delete(const std::string& target) {
  HttpRequest request;
  request.method = "DELETE";
  request.target = target;
  return Call(request);
}

}  // namespace crowdfusion::net
