#ifndef CROWDFUSION_NET_HTTP_CLIENT_H_
#define CROWDFUSION_NET_HTTP_CLIENT_H_

#include <mutex>
#include <string>

#include "common/status.h"
#include "net/http.h"
#include "net/socket.h"

namespace crowdfusion::net {

/// Minimal blocking HTTP/1.1 client for one host:port. Keeps one
/// connection alive across calls and transparently reconnects once per
/// call when the server closed it between requests (the normal keep-alive
/// race). Thread-safe: calls serialize on an internal mutex, so one client
/// may be shared by a provider polled from several scheduler threads.
class HttpClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    /// Per-call ceiling for connect, send, and the full response read.
    double timeout_seconds = 10.0;
    HttpLimits limits;
  };

  explicit HttpClient(Options options);

  /// Sends one request and reads its response. Transport problems are
  /// Unavailable; a slow server is DeadlineExceeded. HTTP error statuses
  /// are NOT errors here — the caller inspects response.status_code.
  common::Result<HttpResponse> Call(const HttpRequest& request);

  /// Convenience wrappers.
  common::Result<HttpResponse> Get(const std::string& target);
  common::Result<HttpResponse> Post(const std::string& target,
                                    std::string body,
                                    const std::string& content_type =
                                        "application/json");
  common::Result<HttpResponse> Delete(const std::string& target);

  /// Drops the persistent connection (next call reconnects).
  void Reset();

  const Options& options() const { return options_; }

 private:
  common::Result<HttpResponse> CallLocked(const HttpRequest& request,
                                          bool allow_retry);

  Options options_;
  std::mutex mutex_;
  Socket connection_;
};

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_HTTP_CLIENT_H_
