#include "net/http_server.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/logging.h"

namespace crowdfusion::net {

using common::Status;

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HttpResponse MakeErrorResponse(int code, const std::string& message) {
  HttpResponse response;
  response.status_code = code;
  response.headers.push_back({"Content-Type", "application/json"});
  // Built through JsonValue so a message echoing hostile bytes (quotes,
  // backslashes, control characters from a bad request line) still emits
  // a valid JSON envelope.
  common::JsonValue error = common::JsonValue::MakeObject();
  error.Set("code", static_cast<int64_t>(code));
  error.Set("message", message);
  common::JsonValue body = common::JsonValue::MakeObject();
  body.Set("error", std::move(error));
  response.body = body.Dump();
  return response;
}

}  // namespace

HttpServer::HttpServer(Handler handler, Options options)
    : handler_(std::move(handler)), options_(std::move(options)) {
  CF_CHECK(handler_ != nullptr) << "HttpServer needs a handler";
}

HttpServer::~HttpServer() { Stop(); }

common::Status HttpServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  CF_ASSIGN_OR_RETURN(listener_,
                      Listener::Bind(options_.host, options_.port));
  if (::pipe(wake_pipe_) != 0) {
    listener_.Close();
    return Status::Unavailable("pipe failed");
  }
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_release);
  pool_ = std::make_unique<common::ThreadPool>(
      options_.threads > 0 ? options_.threads : 4);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  poll_thread_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  WakePoller();
  // Order matters: stop minting and dispatching connections first, then
  // unblock the ones inside workers, then join the workers.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (poll_thread_.joinable()) poll_thread_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& [id, socket] : active_) socket->ShutdownBoth();
    idle_.clear();  // parked connections just close
  }
  pool_.reset();  // drains and joins every in-flight worker task
  listener_.Close();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  CF_DCHECK(active_.empty());
  running_.store(false, std::memory_order_release);
}

void HttpServer::WakePoller() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Short poll so a Stop() is observed within ~100 ms even when no
    // client ever connects.
    auto accepted = listener_.Accept(0.100);
    if (!accepted.ok()) {
      // A hard accept error (e.g. EMFILE under fd exhaustion) would
      // otherwise spin this thread at 100% — the listener stays readable
      // and Accept fails instantly. Back off briefly; timeouts already
      // waited their 100 ms.
      if (accepted.status().code() !=
          common::StatusCode::kDeadlineExceeded) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn =
        std::make_shared<Connection>(std::move(*accepted), options_.limits);
    conn->idle_since = MonotonicSeconds();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      conn->id = next_connection_id_++;
      idle_[conn->id] = std::move(conn);
    }
    WakePoller();
  }
}

void HttpServer::PollLoop() {
  std::vector<struct pollfd> fds;
  std::vector<int64_t> ids;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    ids.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    ids.push_back(-1);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (const auto& [id, conn] : idle_) {
        fds.push_back({conn->socket.fd(), POLLIN, 0});
        ids.push_back(id);
      }
    }
    // 100 ms cap: bounds both the stop latency and the idle-timeout scan
    // cadence.
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (rc < 0) continue;  // EINTR

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    const double now = MonotonicSeconds();
    std::vector<std::shared_ptr<Connection>> ready;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (size_t i = 1; i < fds.size(); ++i) {
        auto it = idle_.find(ids[i]);
        if (it == idle_.end()) continue;
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          ready.push_back(std::move(it->second));
          idle_.erase(it);
        } else if (now - it->second->idle_since >
                   options_.read_timeout_seconds) {
          idle_.erase(it);  // idle keep-alive expired; just close
        }
      }
      for (auto& conn : ready) {
        active_[conn->id] = &conn->socket;
      }
    }
    for (auto& conn : ready) {
      pool_->Submit([this, conn] { ServeReadyConnection(conn); });
    }
    ready.clear();
  }
}

void HttpServer::ParkConnection(std::shared_ptr<Connection> conn) {
  conn->idle_since = MonotonicSeconds();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    active_.erase(conn->id);
    if (stopping_.load(std::memory_order_acquire)) return;  // closes
    idle_[conn->id] = std::move(conn);
  }
  WakePoller();
}

void HttpServer::ServeReadyConnection(std::shared_ptr<Connection> conn) {
  const auto finish = [this, &conn] {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    active_.erase(conn->id);
  };
  char buf[8192];
  bool read_anything = false;
  // Per-REQUEST read deadline, armed when this serving turn starts and
  // re-armed after each completed request: a slow-drip client cannot hold
  // a worker past read_timeout_seconds by trickling one byte per read
  // (each Read below gets only the remaining budget, not a fresh one).
  double request_deadline =
      MonotonicSeconds() + options_.read_timeout_seconds;
  while (!stopping_.load(std::memory_order_acquire)) {
    HttpRequest request;
    auto ready = conn->parser.Next(&request);
    if (!ready.ok()) {
      // Unrecoverable framing: answer once with the mapped status, then
      // drop the connection (the byte stream cannot be resynchronized).
      HttpResponse response = MakeErrorResponse(
          HttpStatusForParseError(ready.status()), ready.status().message());
      response.headers.push_back({"Connection", "close"});
      (void)conn->socket.WriteAll(SerializeResponse(response),
                                  options_.write_timeout_seconds);
      break;
    }
    if (*ready) {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse response = handler_(request);
      // A handler-set "Connection: close" is a server-side decision to
      // retire the connection; honor it instead of parking for reuse.
      const bool close = !request.KeepAlive() || response.WantsClose() ||
                         stopping_.load(std::memory_order_acquire);
      if (response.FindHeader("Connection") == nullptr) {
        response.headers.push_back(
            {"Connection", close ? "close" : "keep-alive"});
      }
      if (!conn->socket.WriteAll(SerializeResponse(response),
                                 options_.write_timeout_seconds)
               .ok()) {
        break;
      }
      if (close) break;
      request_deadline = MonotonicSeconds() + options_.read_timeout_seconds;
      continue;
    }
    // Parser needs more bytes. At a request boundary with nothing
    // buffered, the connection is idle: park it instead of holding this
    // worker; the poller hands it back when bytes arrive. (Mid-request —
    // bytes buffered — keep reading against the request deadline.)
    if (read_anything && conn->parser.buffered_bytes() == 0) {
      ParkConnection(std::move(conn));
      return;
    }
    const double remaining = request_deadline - MonotonicSeconds();
    if (remaining <= 0) break;  // request took too long end to end
    auto n = conn->socket.Read(buf, sizeof(buf), remaining);
    if (!n.ok() || *n == 0) break;  // stall, error, or EOF
    read_anything = true;
    conn->parser.Consume(std::string_view(buf, *n));
  }
  finish();
}

}  // namespace crowdfusion::net
