#include "net/http_server.h"

#include <utility>

#include "common/json.h"
#include "common/logging.h"

namespace crowdfusion::net {

using common::Status;

namespace {

HttpResponse MakeDroppedWriterResponse() {
  HttpResponse response;
  response.status_code = 500;
  response.headers.push_back({"Content-Type", "application/json"});
  common::JsonValue error = common::JsonValue::MakeObject();
  error.Set("code", static_cast<int64_t>(500));
  error.Set("message", "handler dropped the request without answering");
  common::JsonValue body = common::JsonValue::MakeObject();
  body.Set("error", std::move(error));
  response.body = body.Dump();
  return response;
}

}  // namespace

// ---------------------------------------------------------------------------
// ResponseWriter
// ---------------------------------------------------------------------------

ResponseWriter::~ResponseWriter() {
  if (queue_ != nullptr) {
    // A handler let the writer die unsent; answer for it so the client
    // is not left waiting for a timeout.
    queue_->Post(token_, MakeDroppedWriterResponse());
  }
}

ResponseWriter& ResponseWriter::operator=(ResponseWriter&& other) noexcept {
  if (this != &other) {
    if (queue_ != nullptr) {
      queue_->Post(token_, MakeDroppedWriterResponse());
    }
    queue_ = std::move(other.queue_);
    token_ = other.token_;
    other.queue_.reset();
  }
  return *this;
}

void ResponseWriter::Send(HttpResponse response) {
  CF_CHECK(queue_ != nullptr)
      << "ResponseWriter::Send called twice (or on a moved-from writer)";
  queue_->Post(token_, std::move(response));
  queue_.reset();
}

HttpServer::AsyncHandler SyncHandlerAdapter(SyncHandler handler) {
  return [handler = std::move(handler)](const HttpRequest& request,
                                        ResponseWriter&& writer) {
    writer.Send(handler(request));
  };
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

/// Pure forwarding shim so HttpServer exposes the dispatcher contract to
/// its EventLoop without publicly inheriting RequestDispatcher.
class HttpServer::Dispatcher : public RequestDispatcher {
 public:
  explicit Dispatcher(HttpServer* server) : server_(server) {}
  void DispatchRequest(uint64_t token, HttpRequest* request) override {
    server_->DispatchRequest(token, request);
  }

 private:
  HttpServer* server_;
};

HttpServer::HttpServer(AsyncHandler handler, Options options)
    : handler_(std::move(handler)),
      options_(std::move(options)),
      dispatcher_(std::make_unique<Dispatcher>(this)),
      loop_(dispatcher_.get(), options_) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::running() const {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  return running_;
}

common::Status HttpServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running_) return Status::FailedPrecondition("server already started");
  CF_RETURN_IF_ERROR(options_.Validate());
  {
    std::lock_guard<std::mutex> ring_lock(ring_mutex_);
    // The loop never exceeds max_queue_depth dispatched-but-unanswered
    // requests, so this ring can never overflow.
    ring_.clear();
    ring_.resize(static_cast<size_t>(options_.max_queue_depth));
    ring_head_ = 0;
    ring_count_ = 0;
    draining_ = false;
  }
  CF_RETURN_IF_ERROR(loop_.Start());
  pool_ = std::make_unique<common::ThreadPool>(options_.threads);
  // Long-lived worker tasks: each occupies one pool thread until Stop.
  for (int i = 0; i < options_.threads; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
  running_ = true;
  return Status::Ok();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!running_) return;
  // Loop first: no new dispatches, straggler Posts become no-ops.
  loop_.Stop();
  {
    std::lock_guard<std::mutex> ring_lock(ring_mutex_);
    draining_ = true;
  }
  ring_ready_.notify_all();
  pool_.reset();  // joins the workers
  running_ = false;
}

void HttpServer::DispatchRequest(uint64_t token, HttpRequest* request) {
  {
    std::lock_guard<std::mutex> lock(ring_mutex_);
    PendingRequest& slot = ring_[(ring_head_ + ring_count_) % ring_.size()];
    slot.token = token;
    // Swap, don't copy: the connection gets the slot's recycled request
    // (capacities intact) and the loop thread stays allocation-free.
    std::swap(slot.request, *request);
    ++ring_count_;
  }
  ring_ready_.notify_one();
}

void HttpServer::WorkerLoop() {
  // Worker-local scratch; its strings cycle through the ring and back to
  // the connections, so steady state recycles capacity on every hop.
  HttpRequest scratch;
  for (;;) {
    uint64_t token = 0;
    {
      std::unique_lock<std::mutex> lock(ring_mutex_);
      ring_ready_.wait(lock, [this] { return ring_count_ > 0 || draining_; });
      if (ring_count_ == 0) return;  // draining and empty
      PendingRequest& slot = ring_[ring_head_];
      token = slot.token;
      std::swap(scratch, slot.request);
      ring_head_ = (ring_head_ + 1) % ring_.size();
      --ring_count_;
    }
    handler_(scratch, ResponseWriter(loop_.completions(), token));
  }
}

}  // namespace crowdfusion::net
