#ifndef CROWDFUSION_NET_HTTP_SERVER_H_
#define CROWDFUSION_NET_HTTP_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/event_loop.h"
#include "net/http.h"
#include "net/server_config.h"

namespace crowdfusion::net {

/// The completion handle a handler uses to answer one request. Move-only;
/// exactly one Send() per request, callable from any thread — a handler
/// may stash the writer and complete the request later (deferred replies,
/// fan-out to other backends). Dropping an unsent writer answers 500 so a
/// buggy handler can never wedge a connection open until its timeout.
class ResponseWriter {
 public:
  ResponseWriter(std::shared_ptr<CompletionQueue> queue, uint64_t token)
      : queue_(std::move(queue)), token_(token) {}
  ~ResponseWriter();

  ResponseWriter(ResponseWriter&& other) noexcept
      : queue_(std::move(other.queue_)), token_(other.token_) {
    other.queue_.reset();
  }
  ResponseWriter& operator=(ResponseWriter&& other) noexcept;
  ResponseWriter(const ResponseWriter&) = delete;
  ResponseWriter& operator=(const ResponseWriter&) = delete;

  /// Delivers the response. Thread-safe w.r.t. the server; aborts if
  /// called twice. The connection may already be gone (client hung up) —
  /// the response is then silently dropped; Send never fails.
  void Send(HttpResponse response);

  /// False once Send() consumed the writer (or it was moved from).
  bool valid() const { return queue_ != nullptr; }

 private:
  std::shared_ptr<CompletionQueue> queue_;
  uint64_t token_ = 0;
};

/// Adapts a synchronous request->response function to the async handler
/// contract: computes inline on the worker thread and sends immediately.
using SyncHandler = std::function<HttpResponse(const HttpRequest&)>;

/// A dependency-free HTTP/1.1 server, reactor edition: one epoll
/// EventLoop thread owns every socket (accept, parse, write, timeouts)
/// and a small ThreadPool of workers runs the handler.
///
/// Threading contract:
///  * The handler runs on worker threads, never the loop thread, and must
///    be thread-safe (up to `threads` concurrent invocations).
///  * The HttpRequest reference passed to the handler is valid only for
///    the duration of the call — copy what must outlive it.
///  * The ResponseWriter is free-threaded: Send() may be called from the
///    worker, from another thread the handler handed it to, or after the
///    handler returned. Exactly one Send() per writer; destroying an
///    unsent writer auto-answers 500.
///  * Requests from one connection are serialized (the loop dispatches
///    the next pipelined request only after the previous response was
///    written), but requests from different connections are concurrent.
///
/// Backpressure (all enforced on the loop thread, answered from canned
/// bytes): connections beyond ServerConfig::max_connections are rejected
/// with 503 + close at accept; requests beyond max_queue_depth in flight
/// are shed with 503 + Retry-After while the connection stays usable;
/// header/read stalls are answered 408 + close. See EventLoop for the
/// state machine.
///
/// Stop() (and the destructor) joins the loop thread, closes every
/// connection, and drains the workers; responses still being computed are
/// dropped (their Send becomes a no-op). Idempotent.
class HttpServer {
 public:
  /// The handler contract: inspect `request`, eventually call
  /// `writer.Send(response)` exactly once (any thread, any time).
  using AsyncHandler =
      std::function<void(const HttpRequest&, ResponseWriter&&)>;
  /// One unified config for every server in the repo.
  using Options = ServerConfig;

  HttpServer(AsyncHandler handler, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts serving. FailedPrecondition if already started.
  common::Status Start();

  /// Graceful stop; idempotent. Blocks until the loop and workers exited.
  void Stop();

  bool running() const;

  /// The bound port; valid after Start().
  int port() const { return loop_.port(); }

  int64_t connections_accepted() const {
    return loop_.connections_accepted();
  }
  int64_t connections_rejected() const {
    return loop_.connections_rejected();
  }
  int64_t requests_served() const { return loop_.requests_dispatched(); }
  int64_t requests_shed() const { return loop_.requests_shed(); }
  int connections_current() const { return loop_.connections_current(); }

 private:
  /// EventLoop -> worker hand-off ring. Slots are preallocated to
  /// max_queue_depth (the loop never dispatches beyond it) and their
  /// HttpRequests are recycled by swapping: loop swaps a parsed request
  /// in, a worker swaps it out against its thread-local scratch, and the
  /// emptied-but-capacitied strings flow back toward the connections.
  struct PendingRequest {
    uint64_t token = 0;
    HttpRequest request;
  };

  class Dispatcher;  // EventLoop-facing shim, defined in the .cc

  void DispatchRequest(uint64_t token, HttpRequest* request);
  void WorkerLoop();

  AsyncHandler handler_;
  Options options_;

  std::unique_ptr<Dispatcher> dispatcher_;
  EventLoop loop_;
  std::unique_ptr<common::ThreadPool> pool_;

  std::mutex ring_mutex_;
  std::condition_variable ring_ready_;
  std::vector<PendingRequest> ring_;
  size_t ring_head_ = 0;
  size_t ring_count_ = 0;
  bool draining_ = false;

  bool running_ = false;
  mutable std::mutex lifecycle_mutex_;
};

/// Wraps a synchronous handler as an AsyncHandler: the worker computes
/// the response inline and sends it before returning. The migration path
/// for pre-reactor call sites.
HttpServer::AsyncHandler SyncHandlerAdapter(SyncHandler handler);

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_HTTP_SERVER_H_
