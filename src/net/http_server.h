#ifndef CROWDFUSION_NET_HTTP_SERVER_H_
#define CROWDFUSION_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/http.h"
#include "net/socket.h"

namespace crowdfusion::net {

/// A dependency-free HTTP/1.1 server: a blocking accept loop, an idle
/// poller, and a common::ThreadPool of request workers.
///
/// Connection lifecycle: accepted connections park in the poller's
/// poll(2) set; the moment one turns readable it is handed to a pool
/// worker, which reads and serves every buffered request (pipelining
/// included), then either parks the connection back (keep-alive idle) or
/// closes it. Workers therefore never block on an idle connection — a
/// handful of threads multiplexes any number of keep-alive clients, and a
/// mid-request stall only ties up its own worker (bounded by
/// read_timeout_seconds).
///
///  * Parse limits (HttpLimits) cap header and body bytes; violations map
///    to 431/413, malformed framing to 400, all answered once and closed.
///  * Idle keep-alive connections are dropped after read_timeout_seconds
///    without a byte.
///  * Stop() (and the destructor) joins the accept and poller threads,
///    shuts down every connection so blocked reads return immediately,
///    and drains the worker pool before returning.
///  * The handler runs on worker threads and must be thread-safe.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port (read back via port()).
    int port = 0;
    /// Worker threads serving readable connections.
    int threads = 4;
    /// Ceiling on receiving one complete request (first byte to full
    /// frame — a per-request deadline, so slow-drip bytes cannot extend
    /// it) and on keep-alive idleness between requests.
    double read_timeout_seconds = 10.0;
    double write_timeout_seconds = 10.0;
    HttpLimits limits;
  };

  HttpServer(Handler handler, Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts serving. FailedPrecondition if already started.
  common::Status Start();

  /// Graceful stop; idempotent. Blocks until every connection drained.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port; valid after Start().
  int port() const { return port_; }

  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  /// One keep-alive connection and its incremental parse state; owned by
  /// exactly one place at a time (the idle set, or a worker task).
  struct Connection {
    explicit Connection(Socket s, HttpLimits limits)
        : socket(std::move(s)), parser(limits) {}
    Socket socket;
    HttpRequestParser parser;
    int64_t id = 0;
    /// Wall-clock (monotonic) second the connection went idle.
    double idle_since = 0.0;
  };

  void AcceptLoop();
  void PollLoop();
  /// Serves every request currently readable on `conn`, then parks or
  /// closes it.
  void ServeReadyConnection(std::shared_ptr<Connection> conn);
  void ParkConnection(std::shared_ptr<Connection> conn);
  void WakePoller();

  Handler handler_;
  Options options_;
  int port_ = 0;

  Listener listener_;
  std::thread accept_thread_;
  std::thread poll_thread_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Guards idle_, active_, and the id counter.
  std::mutex connections_mutex_;
  /// Parked keep-alive connections, watched by the poller.
  std::unordered_map<int64_t, std::shared_ptr<Connection>> idle_;
  /// Sockets currently inside a worker, so Stop() can unblock them.
  std::unordered_map<int64_t, Socket*> active_;
  int64_t next_connection_id_ = 1;

  /// Self-pipe waking the poller when connections are parked or Stop()
  /// runs. [0] = read end, [1] = write end.
  int wake_pipe_[2] = {-1, -1};

  /// Serializes Start/Stop against each other.
  std::mutex lifecycle_mutex_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> requests_served_{0};
};

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_HTTP_SERVER_H_
