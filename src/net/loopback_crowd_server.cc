#include "net/loopback_crowd_server.h"

#include <charconv>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/spec_json.h"
#include "crowd/provider_registry.h"
#include "net/wire.h"

namespace crowdfusion::net {

using common::JsonValue;
using common::Status;

namespace {

common::Result<core::TicketId> ParseTicketId(std::string_view text) {
  core::TicketId ticket = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), ticket);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("malformed ticket id");
  }
  return ticket;
}

const char* PhaseName(core::TicketPhase phase) {
  switch (phase) {
    case core::TicketPhase::kInFlight:
      return "in_flight";
    case core::TicketPhase::kReady:
      return "ready";
    case core::TicketPhase::kFailed:
      return "failed";
  }
  return "unknown";
}

}  // namespace

LoopbackCrowdServer::LoopbackCrowdServer()
    : LoopbackCrowdServer(Options()) {}

LoopbackCrowdServer::LoopbackCrowdServer(Options options)
    : options_(options),
      registry_(crowd::FullProviderRegistry(options.clock)),
      server_(SyncHandlerAdapter([this](const HttpRequest& request) {
                return Handle(request);
              }),
              static_cast<const ServerConfig&>(options)) {}

LoopbackCrowdServer::~LoopbackCrowdServer() { Stop(); }

common::Status LoopbackCrowdServer::Start() { return server_.Start(); }

void LoopbackCrowdServer::Stop() { server_.Stop(); }

std::string LoopbackCrowdServer::endpoint() const {
  return common::StrFormat("%s:%d", options_.host.c_str(), server_.port());
}

int64_t LoopbackCrowdServer::universes_created() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_universe_ - 1;
}

int64_t LoopbackCrowdServer::universes_live() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(universes_.size());
}

int64_t LoopbackCrowdServer::tickets_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tickets_submitted_;
}

HttpResponse LoopbackCrowdServer::Handle(const HttpRequest& request) {
  // Route on the path only (no query strings on this wire).
  const std::string& target = request.target;
  if (target == "/healthz") {
    if (request.method != "GET") {
      return ErrorResponse(Status::InvalidArgument("healthz is GET-only"));
    }
    JsonValue body = JsonValue::MakeObject();
    body.Set("status", "ok");
    return JsonResponse(200, body);
  }
  const std::string prefix = "/v1/universes";
  if (common::StartsWith(target, prefix)) {
    return HandleUniverses(request, target.substr(prefix.size()));
  }
  return ErrorResponse(Status::NotFound("no route for " + target));
}

/// `rest` is the target after "/v1/universes": "" for the collection,
/// "/{u}", "/{u}/stats", "/{u}/tickets", "/{u}/tickets/{t}[:take]".
HttpResponse LoopbackCrowdServer::HandleUniverses(const HttpRequest& request,
                                                 const std::string& rest) {
  if (rest.empty()) {
    if (request.method != "POST") {
      return ErrorResponse(
          Status::InvalidArgument("universe collection accepts POST only"));
    }
    auto body = ParseJsonBody(request);
    if (!body.ok()) return ErrorResponse(body.status());
    auto spec = core::ProviderSpecFromJson(*body);
    if (!spec.ok()) return ErrorResponse(spec.status());
    if (spec->kind == "http") {
      return ErrorResponse(Status::InvalidArgument(
          "a crowd server cannot host \"http\" universes (that would "
          "recurse); register a concrete provider kind"));
    }
    auto handle = registry_.Create(spec->kind, *spec);
    if (!handle.ok()) return ErrorResponse(handle.status());

    auto universe = std::make_shared<Universe>();
    universe->handle = std::move(handle).value();
    if (universe->handle.async != nullptr) {
      universe->async = universe->handle.async;
    } else if (universe->handle.sync != nullptr) {
      universe->adapter = std::make_unique<core::SyncProviderAdapter>(
          universe->handle.sync, options_.clock);
      universe->async = universe->adapter.get();
    } else {
      return ErrorResponse(Status::Internal(
          "provider \"" + spec->kind + "\" produced no usable interface"));
    }

    std::string id;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      id = common::StrFormat("u-%lld",
                             static_cast<long long>(next_universe_++));
      universes_[id] = std::move(universe);
    }
    JsonValue response = JsonValue::MakeObject();
    response.Set("universe", id);
    return JsonResponse(201, response);
  }

  if (rest.front() != '/') {
    return ErrorResponse(Status::NotFound("no route"));
  }
  const size_t slash = rest.find('/', 1);
  const std::string universe_id =
      rest.substr(1, slash == std::string::npos ? std::string::npos
                                                : slash - 1);
  std::shared_ptr<Universe> universe;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = universes_.find(universe_id);
    if (it != universes_.end()) universe = it->second;
  }

  const std::string tail =
      slash == std::string::npos ? std::string() : rest.substr(slash);

  if (tail.empty()) {
    if (request.method == "DELETE") {
      std::lock_guard<std::mutex> lock(mutex_);
      universes_.erase(universe_id);  // idempotent
      return JsonResponse(200, JsonValue::MakeObject());
    }
    return ErrorResponse(
        Status::InvalidArgument("universe resource accepts DELETE only"));
  }

  if (universe == nullptr) {
    return ErrorResponse(
        Status::NotFound("unknown universe \"" + universe_id + "\""));
  }

  if (tail == "/stats") {
    if (request.method != "GET") {
      return ErrorResponse(Status::InvalidArgument("stats is GET-only"));
    }
    int64_t served = 0;
    int64_t correct = 0;
    if (universe->handle.served_correct != nullptr) {
      std::lock_guard<std::mutex> lock(universe->mutex);
      const auto [s, c] = universe->handle.served_correct();
      served = s;
      correct = c;
    }
    JsonValue body = JsonValue::MakeObject();
    body.Set("answers_served", served);
    body.Set("answers_correct", correct);
    return JsonResponse(200, body);
  }

  if (tail == "/tickets") {
    if (request.method != "POST") {
      return ErrorResponse(
          Status::InvalidArgument("ticket collection accepts POST only"));
    }
    auto body = ParseJsonBody(request);
    if (!body.ok()) return ErrorResponse(body.status());
    const JsonValue* fact_ids = body->Find("fact_ids");
    if (fact_ids == nullptr || !fact_ids->is_array()) {
      return ErrorResponse(
          Status::InvalidArgument("submit needs a \"fact_ids\" array"));
    }
    std::vector<int> ids;
    ids.reserve(fact_ids->array().size());
    for (const JsonValue& item : fact_ids->array()) {
      auto id = item.GetInt();
      if (!id.ok()) return ErrorResponse(id.status());
      ids.push_back(static_cast<int>(*id));
    }
    core::TicketOptions ticket_options;
    if (const JsonValue* options_json = body->Find("options")) {
      auto parsed = TicketOptionsFromJson(*options_json);
      if (!parsed.ok()) return ErrorResponse(parsed.status());
      ticket_options = *parsed;
    }
    common::Result<core::TicketId> ticket =
        Status::Internal("unreachable");
    {
      std::lock_guard<std::mutex> lock(universe->mutex);
      ticket = universe->async->Submit(ids, ticket_options);
    }
    if (!ticket.ok()) return ErrorResponse(ticket.status());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++tickets_submitted_;
    }
    JsonValue response = JsonValue::MakeObject();
    response.Set("ticket", static_cast<int64_t>(*ticket));
    return JsonResponse(201, response);
  }

  const std::string tickets_prefix = "/tickets/";
  if (common::StartsWith(tail, tickets_prefix) &&
      tail.size() > tickets_prefix.size()) {
    std::string ticket_text = tail.substr(tickets_prefix.size());
    const bool take = ticket_text.size() > 5 &&
                      ticket_text.substr(ticket_text.size() - 5) == ":take";
    if (take) ticket_text.resize(ticket_text.size() - 5);
    auto ticket = ParseTicketId(ticket_text);
    if (!ticket.ok()) return ErrorResponse(ticket.status());

    if (take) {
      if (request.method != "POST") {
        return ErrorResponse(Status::InvalidArgument(":take is POST-only"));
      }
      std::lock_guard<std::mutex> lock(universe->mutex);
      // Never sleep a server worker inside Await: resolve only tickets
      // that already landed; the client owns the waiting.
      auto poll = universe->async->Poll(*ticket);
      if (!poll.ok()) return ErrorResponse(poll.status());
      if (poll->phase == core::TicketPhase::kInFlight) {
        return ErrorResponse(Status::FailedPrecondition(
            "ticket still in flight; poll until ready"));
      }
      auto answers = universe->async->Await(*ticket);
      if (!answers.ok()) return ErrorResponse(answers.status());
      JsonValue response = JsonValue::MakeObject();
      JsonValue array = JsonValue::MakeArray();
      for (const bool answer : *answers) array.Append(JsonValue(answer));
      response.Set("answers", std::move(array));
      response.Set("attempts_used", poll->attempts_used);
      return JsonResponse(200, response);
    }

    if (request.method == "GET") {
      std::lock_guard<std::mutex> lock(universe->mutex);
      auto poll = universe->async->Poll(*ticket);
      if (!poll.ok()) return ErrorResponse(poll.status());
      JsonValue response = JsonValue::MakeObject();
      response.Set("phase", PhaseName(poll->phase));
      response.Set("attempts_used", poll->attempts_used);
      response.Set("seconds_until_ready", poll->seconds_until_ready);
      if (poll->phase == core::TicketPhase::kFailed) {
        response.Set("error", StatusToJson(poll->error));
      }
      return JsonResponse(200, response);
    }
    if (request.method == "DELETE") {
      std::lock_guard<std::mutex> lock(universe->mutex);
      universe->async->Cancel(*ticket);
      return JsonResponse(200, JsonValue::MakeObject());
    }
    return ErrorResponse(
        Status::InvalidArgument("tickets accept GET, POST :take, DELETE"));
  }

  return ErrorResponse(Status::NotFound("no route for " + request.target));
}

}  // namespace crowdfusion::net
