#ifndef CROWDFUSION_NET_LOOPBACK_CROWD_SERVER_H_
#define CROWDFUSION_NET_LOOPBACK_CROWD_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/status.h"
#include "core/async_provider.h"
#include "core/registry.h"
#include "net/http_server.h"
#include "net/server_config.h"

namespace crowdfusion::net {

/// A crowd platform behind real sockets: the HTTP face of the repo's
/// in-process providers, so the full select -> collect -> merge loop can
/// run client -> HTTP -> service -> HTTP -> crowd end-to-end. Primarily
/// the test double for net::HttpAnswerProvider (hence "loopback"), but
/// also startable from `crowdfusion_cli serve --crowd-port`.
///
/// Protocol (JSON bodies, error envelope per net/wire.h):
///   POST   /v1/universes                   register a fact universe from a
///                                          provider-spec document
///                                          -> {"universe": "u-1"}
///   DELETE /v1/universes/{u}               drop it
///   GET    /v1/universes/{u}/stats       {"answers_served", "answers_correct"}
///   POST   /v1/universes/{u}/tickets     {"fact_ids": [...], "options": {...}}
///                                          -> {"ticket": n}
///   GET    /v1/universes/{u}/tickets/{t}   ticket status (phase/attempts/
///                                          seconds_until_ready/error)
///   POST   /v1/universes/{u}/tickets/{t}:take  consume a resolved ticket
///                                          -> {"answers": [...]} or the
///                                          ticket's failure envelope
///   DELETE /v1/universes/{u}/tickets/{t}   cancel (idempotent)
///   GET    /healthz                        {"status": "ok"}
///
/// Universes are built through crowd::FullProviderRegistry — the *same
/// factory code path* the in-process service uses — which is what makes
/// the HTTP differential bit-for-bit: a universe created from a given
/// spec judges identically to the in-process provider built from it.
class LoopbackCrowdServer {
 public:
  /// The unified net::ServerConfig plus the crowd server's own knobs.
  struct Options : ServerConfig {
    Options() { threads = 2; }
    /// Injected into simulated latency models and ticket ledgers; nullptr
    /// means Clock::Real(). Borrowed.
    common::Clock* clock = nullptr;
  };

  LoopbackCrowdServer();
  explicit LoopbackCrowdServer(Options options);
  ~LoopbackCrowdServer();

  common::Status Start();
  void Stop();

  int port() const { return server_.port(); }
  /// "host:port", the ProviderSpec::endpoint spelling.
  std::string endpoint() const;

  int64_t universes_created() const;
  /// Universes currently hosted (created minus deleted): the leak gauge —
  /// a well-behaved HttpAnswerProvider reaps its universe on destruction.
  int64_t universes_live() const;
  int64_t tickets_submitted() const;

 private:
  struct Universe {
    core::ProviderHandle handle;
    /// Wraps sync-only providers (e.g. "scripted") for the wire.
    std::unique_ptr<core::SyncProviderAdapter> adapter;
    core::AsyncAnswerProvider* async = nullptr;
    /// Serializes Submit calls (providers require one submitter at a
    /// time); Poll/take ride along for simplicity.
    std::mutex mutex;
  };

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleUniverses(const HttpRequest& request,
                               const std::string& rest);

  Options options_;
  core::ProviderRegistry registry_;
  HttpServer server_;

  mutable std::mutex mutex_;
  /// shared_ptr so a universe being served survives a concurrent DELETE.
  std::unordered_map<std::string, std::shared_ptr<Universe>> universes_;
  int64_t next_universe_ = 1;
  int64_t tickets_submitted_ = 0;
};

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_LOOPBACK_CROWD_SERVER_H_
