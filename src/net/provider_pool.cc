#include "net/provider_pool.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/string_util.h"
#include "net/http_answer_provider.h"
#include "net/wire.h"

namespace crowdfusion::net {

using common::Status;
using common::StatusCode;

namespace {

/// Per-attempt budget when the spec leaves await_timeout_seconds unset:
/// long enough for a real crowd round-trip, short enough that a hung
/// endpoint costs seconds, not a wedged run.
constexpr double kDefaultAttemptTimeoutSeconds = 30.0;

}  // namespace

ProviderPool::ProviderPool(std::vector<Replica> replicas, Options options)
    : replicas_(std::move(replicas)), options_(options) {
  CF_CHECK(!replicas_.empty()) << "ProviderPool needs at least one replica";
  for (const Replica& replica : replicas_) {
    CF_CHECK(replica.handle.async != nullptr)
        << "ProviderPool replica \"" << replica.name
        << "\" has no async provider";
  }
  options_.start_replica =
      ((options_.start_replica % num_replicas()) + num_replicas()) %
      num_replicas();
  health_.resize(replicas_.size());
}

ProviderPool::~ProviderPool() {
  // Abandoned tickets must not leak on the platforms.
  for (const auto& [id, ticket] : tickets_) {
    if (ticket.replica >= 0 && ticket.terminal.ok()) {
      replicas_[static_cast<size_t>(ticket.replica)].handle.async->Cancel(
          ticket.remote);
    }
  }
}

bool ProviderPool::Resubmittable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

double ProviderPool::AttemptDeadline(double now) const {
  if (options_.attempt_timeout_seconds <= 0 ||
      std::isinf(options_.attempt_timeout_seconds)) {
    return std::numeric_limits<double>::infinity();
  }
  return now + options_.attempt_timeout_seconds;
}

void ProviderPool::MarkSuccess(int replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicaHealth& health = health_[static_cast<size_t>(replica)];
  health.consecutive_failures = 0;
  health.ejected_until = 0.0;
}

void ProviderPool::MarkFailure(int replica) {
  const double now = clock()->NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicaHealth& health = health_[static_cast<size_t>(replica)];
  ++health.consecutive_failures;
  ++stats_.replica_failures;
  if (health.consecutive_failures >= options_.eject_after_failures) {
    if (now >= health.ejected_until) ++stats_.replica_ejections;
    health.ejected_until = now + options_.reprobe_seconds;
  }
}

bool ProviderPool::replica_ejected(int index) const {
  const double now = options_.clock == nullptr
                         ? common::Clock::Real()->NowSeconds()
                         : options_.clock->NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  return now < health_[static_cast<size_t>(index)].ejected_until;
}

std::vector<int> ProviderPool::CandidateOrder(
    const std::vector<bool>& tried, int start) {
  const double now = clock()->NowSeconds();
  std::vector<int> eligible;
  std::vector<int> ejected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int i = 0; i < num_replicas(); ++i) {
      const int candidate = (start + i) % num_replicas();
      if (tried[static_cast<size_t>(candidate)]) continue;
      if (now >= health_[static_cast<size_t>(candidate)].ejected_until) {
        eligible.push_back(candidate);
      } else {
        ejected.push_back(candidate);
      }
    }
    // Forced probe: when nothing is eligible, try ejected replicas
    // soonest-reprobe first rather than failing outright.
    std::stable_sort(ejected.begin(), ejected.end(), [this](int a, int b) {
      return health_[static_cast<size_t>(a)].ejected_until <
             health_[static_cast<size_t>(b)].ejected_until;
    });
  }
  eligible.insert(eligible.end(), ejected.begin(), ejected.end());
  return eligible;
}

common::Result<std::pair<int, core::TicketId>> ProviderPool::SubmitSomewhere(
    const std::vector<int>& fact_ids, const core::TicketOptions& options,
    std::vector<bool>& tried, int start) {
  Status last_error = Status::Unavailable("no replica accepted the batch");
  for (const int candidate : CandidateOrder(tried, start)) {
    tried[static_cast<size_t>(candidate)] = true;
    auto remote =
        replicas_[static_cast<size_t>(candidate)].handle.async->Submit(
            fact_ids, options);
    if (remote.ok()) {
      MarkSuccess(candidate);
      return std::make_pair(candidate, *remote);
    }
    MarkFailure(candidate);
    if (!Resubmittable(remote.status().code()) &&
        remote.status().code() != StatusCode::kNotFound) {
      // Not a replica-health problem (e.g. the batch itself is invalid):
      // trying other replicas would fail identically.
      return remote.status();
    }
    last_error = remote.status();
  }
  return last_error;
}

common::Result<core::TicketId> ProviderPool::Submit(
    std::span<const int> fact_ids, const core::TicketOptions& options) {
  Ticket ticket;
  ticket.fact_ids.assign(fact_ids.begin(), fact_ids.end());
  ticket.options = options;
  ticket.tried.assign(static_cast<size_t>(num_replicas()), false);
  CF_ASSIGN_OR_RETURN(
      const auto placed,
      SubmitSomewhere(ticket.fact_ids, options, ticket.tried,
                      options_.start_replica));
  ticket.replica = placed.first;
  ticket.remote = placed.second;
  ticket.expires_at = AttemptDeadline(clock()->NowSeconds());

  std::lock_guard<std::mutex> lock(mutex_);
  const core::TicketId id = next_id_++;
  ++stats_.tickets_submitted;
  // A batch that had to skip past failed replicas before landing was
  // effectively resubmitted (first submission counts as attempt zero).
  const int64_t attempts =
      std::count(ticket.tried.begin(), ticket.tried.end(), true);
  stats_.tickets_resubmitted += attempts - 1;
  tickets_.emplace(id, std::move(ticket));
  return id;
}

bool ProviderPool::Failover(core::TicketId ticket, int failed_replica,
                            const Status& cause) {
  std::vector<int> fact_ids;
  core::TicketOptions options;
  std::vector<bool> tried;
  core::TicketId remote = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Ticket& record = tickets_.at(ticket);
    record.tried[static_cast<size_t>(failed_replica)] = true;
    fact_ids = record.fact_ids;
    options = record.options;
    tried = record.tried;
    remote = record.remote;
  }
  // The old ticket may still be live on a wedged-but-reachable platform;
  // release it so the answers are not double-collected later.
  replicas_[static_cast<size_t>(failed_replica)].handle.async->Cancel(
      remote);

  auto placed = SubmitSomewhere(fact_ids, options, tried,
                                (failed_replica + 1) % num_replicas());
  std::lock_guard<std::mutex> lock(mutex_);
  Ticket& record = tickets_.at(ticket);
  record.tried = tried;
  if (!placed.ok()) {
    const std::string message = common::StrFormat(
        "batch failed on every replica of a %d-replica pool; first "
        "cause: %s; last: %s",
        num_replicas(), cause.message().c_str(),
        placed.status().message().c_str());
    record.terminal = cause.code() == StatusCode::kDeadlineExceeded
                          ? Status::DeadlineExceeded(message)
                          : Status::Unavailable(message);
    return false;
  }
  record.replica = placed->first;
  record.remote = placed->second;
  record.expires_at = AttemptDeadline(clock()->NowSeconds());
  ++stats_.tickets_resubmitted;
  return true;
}

common::Result<core::TicketStatus> ProviderPool::Poll(
    core::TicketId ticket) {
  int replica = -1;
  core::TicketId remote = 0;
  double expires_at = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tickets_.find(ticket);
    if (it == tickets_.end()) {
      return Status::NotFound(common::StrFormat(
          "unknown pool ticket %lld", static_cast<long long>(ticket)));
    }
    if (!it->second.terminal.ok()) {
      core::TicketStatus status;
      status.phase = core::TicketPhase::kFailed;
      status.error = it->second.terminal;
      return status;
    }
    replica = it->second.replica;
    remote = it->second.remote;
    expires_at = it->second.expires_at;
  }

  auto polled =
      replicas_[static_cast<size_t>(replica)].handle.async->Poll(remote);
  Status cause;
  if (polled.ok()) {
    if (polled->phase == core::TicketPhase::kInFlight &&
        clock()->NowSeconds() >= expires_at) {
      cause = Status::DeadlineExceeded(common::StrFormat(
          "collection attempt on replica \"%s\" exceeded its %.3f s "
          "budget",
          replicas_[static_cast<size_t>(replica)].name.c_str(),
          options_.attempt_timeout_seconds));
    } else if (polled->phase == core::TicketPhase::kFailed &&
               Resubmittable(polled->error.code())) {
      cause = polled->error;
    } else {
      MarkSuccess(replica);
      return *polled;
    }
  } else if (Resubmittable(polled.status().code()) ||
             polled.status().code() == StatusCode::kNotFound) {
    // kNotFound here means the platform lost our ticket (e.g. it was
    // restarted): as dead as a refused connection for this attempt.
    cause = polled.status();
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    Ticket& record = tickets_.at(ticket);
    record.terminal = polled.status();
    core::TicketStatus status;
    status.phase = core::TicketPhase::kFailed;
    status.error = record.terminal;
    return status;
  }

  MarkFailure(replica);
  if (!Failover(ticket, replica, cause)) {
    std::lock_guard<std::mutex> lock(mutex_);
    core::TicketStatus status;
    status.phase = core::TicketPhase::kFailed;
    status.error = tickets_.at(ticket).terminal;
    return status;
  }
  core::TicketStatus status;
  status.phase = core::TicketPhase::kInFlight;
  status.seconds_until_ready = options_.min_poll_seconds;
  return status;
}

common::Result<std::vector<bool>> ProviderPool::Await(
    core::TicketId ticket) {
  for (;;) {
    int replica = -1;
    core::TicketId remote = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = tickets_.find(ticket);
      if (it == tickets_.end()) {
        return Status::NotFound(common::StrFormat(
            "unknown pool ticket %lld", static_cast<long long>(ticket)));
      }
      if (!it->second.terminal.ok()) {
        const Status terminal = it->second.terminal;
        tickets_.erase(it);  // Await consumes, even a failure
        return terminal;
      }
      replica = it->second.replica;
      remote = it->second.remote;
    }

    auto result =
        replicas_[static_cast<size_t>(replica)].handle.async->Await(remote);
    if (result.ok()) {
      MarkSuccess(replica);
      std::lock_guard<std::mutex> lock(mutex_);
      tickets_.erase(ticket);
      return result;
    }
    const StatusCode code = result.status().code();
    if (Resubmittable(code) || code == StatusCode::kNotFound) {
      MarkFailure(replica);
      if (Failover(ticket, replica, result.status())) continue;
      std::lock_guard<std::mutex> lock(mutex_);
      const Status terminal = tickets_.at(ticket).terminal;
      tickets_.erase(ticket);
      return terminal;
    }
    // A platform that answered with a non-transport error is healthy;
    // the failure belongs to the batch and travels to the caller as-is.
    MarkSuccess(replica);
    std::lock_guard<std::mutex> lock(mutex_);
    tickets_.erase(ticket);
    return result;
  }
}

void ProviderPool::Cancel(core::TicketId ticket) {
  int replica = -1;
  core::TicketId remote = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tickets_.find(ticket);
    if (it == tickets_.end()) return;
    if (it->second.terminal.ok()) {
      replica = it->second.replica;
      remote = it->second.remote;
    }
    tickets_.erase(it);
  }
  if (replica >= 0) {
    replicas_[static_cast<size_t>(replica)].handle.async->Cancel(remote);
  }
}

ProviderPool::Stats ProviderPool::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::pair<int64_t, int64_t> ProviderPool::ServedCorrect() const {
  int64_t served = 0;
  int64_t correct = 0;
  for (const Replica& replica : replicas_) {
    if (replica.handle.served_correct == nullptr) continue;
    const auto [s, c] = replica.handle.served_correct();
    served += s;
    correct += c;
  }
  return {served, correct};
}

common::Status RegisterHttpPoolProvider(core::ProviderRegistry& registry,
                                        common::Clock* clock) {
  // Rotates each created pool's preferred replica so the per-instance
  // pools of one serving process spread across the endpoints.
  auto rotation = std::make_shared<std::atomic<uint64_t>>(0);
  return registry.Register(
      "http_pool",
      [clock, rotation](const core::ProviderSpec& spec)
          -> common::Result<core::ProviderHandle> {
        if (spec.endpoints.empty()) {
          return Status::InvalidArgument(
              "http_pool provider requires \"endpoints\" (a non-empty "
              "list of host:port crowd platforms)");
        }
        const double attempt_timeout = spec.await_timeout_seconds > 0
                                           ? spec.await_timeout_seconds
                                           : kDefaultAttemptTimeoutSeconds;

        // The universe template is the spec minus the transport fields;
        // registering the *same* template (same seeds) on every endpoint
        // is what lets any replica serve bit-identical judgments.
        core::ProviderSpec universe_spec = spec;
        universe_spec.kind = spec.universe_kind.empty()
                                 ? "simulated_crowd"
                                 : spec.universe_kind;
        universe_spec.endpoint.clear();
        universe_spec.endpoints.clear();
        universe_spec.await_timeout_seconds = 0.0;

        std::vector<ProviderPool::Replica> replicas;
        replicas.reserve(spec.endpoints.size());
        for (const std::string& text : spec.endpoints) {
          CF_ASSIGN_OR_RETURN(const Endpoint endpoint, ParseEndpoint(text));
          HttpAnswerProvider::Options options;
          options.host = endpoint.host;
          options.port = endpoint.port;
          options.await_timeout_seconds = attempt_timeout;
          options.clock = clock;
          auto provider = std::make_shared<HttpAnswerProvider>(options);
          CF_RETURN_IF_ERROR(provider->CreateUniverse(universe_spec));
          ProviderPool::Replica replica;
          replica.name = text;
          replica.handle.async = provider.get();
          replica.handle.served_correct = [provider] {
            return provider->ServedCorrect();
          };
          replica.handle.owner = std::move(provider);
          replicas.push_back(std::move(replica));
        }

        ProviderPool::Options options;
        options.start_replica = static_cast<int>(
            rotation->fetch_add(1, std::memory_order_relaxed) %
            spec.endpoints.size());
        options.attempt_timeout_seconds = attempt_timeout;
        options.clock = clock;
        auto pool = std::make_shared<ProviderPool>(std::move(replicas),
                                                   std::move(options));
        core::ProviderHandle handle;
        handle.async = pool.get();
        handle.served_correct = [pool] { return pool->ServedCorrect(); };
        handle.tickets_resubmitted = [pool] {
          return pool->GetStats().tickets_resubmitted;
        };
        handle.owner = std::move(pool);
        return handle;
      });
}

}  // namespace crowdfusion::net
