#ifndef CROWDFUSION_NET_PROVIDER_POOL_H_
#define CROWDFUSION_NET_PROVIDER_POOL_H_

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/async_provider.h"
#include "core/registry.h"

namespace crowdfusion::net {

/// Failover tier over N answer-provider replicas, each bound to the same
/// fact universe on a different crowd platform (typically N
/// net::HttpAnswerProvider instances). One hung or dead endpoint must not
/// wedge a run: every collection attempt is bounded by an attempt budget,
/// and a batch whose attempt fails with kDeadlineExceeded / kUnavailable
/// (or whose endpoint stops answering) is resubmitted to a different
/// healthy replica — at most once per replica, so a ticket visits each
/// platform at most once before the pool reports the failure.
///
/// Placement: while its preferred replica is healthy, a pool submits
/// every batch there. Judgment parity with a single endpoint depends on
/// this — simulated universes draw answers from one sequential RNG stream
/// per universe, so a universe must see its batches in submission order.
/// Load spreads at pool granularity instead: the "http_pool" factory
/// rotates each new pool's preferred replica round-robin, so the
/// per-instance pools of a multi-book run fan out across endpoints.
///
/// Health: a replica is ejected after `eject_after_failures` consecutive
/// failed calls and sidelined for `reprobe_seconds`; after that it is
/// probed again by real traffic. When every replica is ejected the pool
/// force-probes the one whose re-probe is due soonest rather than
/// failing outright.
///
/// Poll never surfaces replica transport errors as Result errors (the
/// pipelined scheduler aborts a whole run on those): it either fails over
/// internally and reports the ticket in flight, or reports phase kFailed
/// carrying the terminal status. Thread-safety matches the other
/// providers: any thread may call in; per-ticket calls come from one
/// logical owner (Await consumes).
class ProviderPool : public core::AsyncAnswerProvider {
 public:
  /// One crowd platform: a name for diagnostics plus an owned handle
  /// whose async view must be non-null.
  struct Replica {
    std::string name;
    core::ProviderHandle handle;
  };

  struct Options {
    /// Index of the preferred replica for new submissions.
    int start_replica = 0;
    /// Budget for one collection attempt against one replica: an
    /// in-flight ticket older than this is treated as expired and
    /// resubmitted elsewhere. <= 0 or infinity means unbounded.
    double attempt_timeout_seconds =
        std::numeric_limits<double>::infinity();
    /// Consecutive failed calls before a replica is ejected.
    int eject_after_failures = 3;
    /// How long an ejected replica is sidelined before traffic probes it
    /// again.
    double reprobe_seconds = 5.0;
    /// seconds_until_ready reported right after an internal failover
    /// (the new attempt's ETA is unknown).
    double min_poll_seconds = 0.001;
    /// Time source for attempt budgets; nullptr means Clock::Real().
    common::Clock* clock = nullptr;
  };

  /// Every replica must carry a non-null async view; `replicas` must be
  /// non-empty.
  ProviderPool(std::vector<Replica> replicas, Options options);
  ~ProviderPool() override;

  common::Result<core::TicketId> Submit(
      std::span<const int> fact_ids,
      const core::TicketOptions& options) override;
  using core::AsyncAnswerProvider::Submit;
  common::Result<core::TicketStatus> Poll(core::TicketId ticket) override;
  common::Result<std::vector<bool>> Await(core::TicketId ticket) override;
  void Cancel(core::TicketId ticket) override;

  struct Stats {
    /// Batches accepted by Submit.
    int64_t tickets_submitted = 0;
    /// Batches handed to a different replica after a failed or expired
    /// attempt (including a failed first submission).
    int64_t tickets_resubmitted = 0;
    /// Individual failed replica calls.
    int64_t replica_failures = 0;
    /// Health-state transitions into ejection.
    int64_t replica_ejections = 0;
  };
  Stats GetStats() const;

  /// Sum of the replicas' (answers_served, answers_correct) stats hooks.
  std::pair<int64_t, int64_t> ServedCorrect() const;

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  /// True while replica `index` is sidelined by the health tracker.
  bool replica_ejected(int index) const;

 private:
  /// Pool-side bookkeeping for one live ticket.
  struct Ticket {
    std::vector<int> fact_ids;
    core::TicketOptions options;
    /// Current home replica and its ticket id there.
    int replica = -1;
    core::TicketId remote = 0;
    /// Replicas this ticket has already been submitted to.
    std::vector<bool> tried;
    /// Attempt budget expiry (absolute clock seconds; +inf = unbounded).
    double expires_at = std::numeric_limits<double>::infinity();
    /// Non-OK once the pool has given up on the ticket.
    common::Status terminal;
  };

  struct ReplicaHealth {
    int consecutive_failures = 0;
    /// Eligible again once the clock passes this (0 = never ejected).
    double ejected_until = 0.0;
  };

  common::Clock* clock() const {
    return options_.clock == nullptr ? common::Clock::Real()
                                     : options_.clock;
  }
  double AttemptDeadline(double now) const;
  void MarkSuccess(int replica);
  void MarkFailure(int replica);
  /// Candidate order for (re)submission: untried eligible replicas in
  /// ring order from `start`, then untried ejected ones by soonest
  /// re-probe (the forced-probe rule).
  std::vector<int> CandidateOrder(const std::vector<bool>& tried,
                                  int start);
  /// Submits `fact_ids` to the first candidate that accepts it. Marks
  /// tried/health as it goes. Returns (replica, remote ticket) or the
  /// last replica's error.
  common::Result<std::pair<int, core::TicketId>> SubmitSomewhere(
      const std::vector<int>& fact_ids, const core::TicketOptions& options,
      std::vector<bool>& tried, int start);
  /// Moves a live ticket off `failed_replica` after `cause`: cancels the
  /// remote ticket best-effort and resubmits to the next candidate.
  /// Returns false (and records the terminal status) when every replica
  /// has been tried.
  bool Failover(core::TicketId ticket, int failed_replica,
                const common::Status& cause);
  static bool Resubmittable(common::StatusCode code);

  std::vector<Replica> replicas_;
  Options options_;

  mutable std::mutex mutex_;
  std::vector<ReplicaHealth> health_;
  std::unordered_map<core::TicketId, Ticket> tickets_;
  core::TicketId next_id_ = 1;
  Stats stats_;
};

/// Registers the "http_pool" provider kind: ProviderSpec::endpoints names
/// N crowd platforms; the factory registers the spec's universe template
/// on every one of them (same seeds everywhere, so any replica serves
/// identical judgments) and returns an async-only ProviderPool handle.
/// ProviderSpec::await_timeout_seconds sets the per-attempt budget
/// (default 30 s when 0). Each pool's preferred replica is rotated
/// round-robin across the factory's creations. `clock` is borrowed by the
/// pool and every replica.
common::Status RegisterHttpPoolProvider(core::ProviderRegistry& registry,
                                        common::Clock* clock = nullptr);

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_PROVIDER_POOL_H_
