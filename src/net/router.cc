#include "net/router.h"

#include <algorithm>
#include <cctype>
#include <chrono>

#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "net/wire.h"

namespace crowdfusion::net {

using common::JsonValue;
using common::Status;

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// FNV-1a with a 64-bit finalizer. Raw FNV-1a gives a string's last byte
/// a single multiply round, so keys differing only in trailing digits
/// ("skey-1".."skey-16") keep correlated HIGH bits — and the ring orders
/// by those bits, which in practice parked every key on one backend. The
/// fmix64 finalizer avalanches the full word before the ring sees it.
uint64_t RingHash(std::string_view text) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

/// Headers that describe the hop, not the message: stripped before
/// proxying in either direction (client and server regenerate them).
bool IsHopHeader(const std::string& name) {
  constexpr std::string_view kHop[] = {"connection", "keep-alive", "host",
                                       "content-length"};
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const std::string_view hop : kHop) {
    if (lower == hop) return true;
  }
  return false;
}

void StripHopHeaders(std::vector<HttpHeader>& headers) {
  headers.erase(std::remove_if(headers.begin(), headers.end(),
                               [](const HttpHeader& header) {
                                 return IsHopHeader(header.name);
                               }),
                headers.end());
}

}  // namespace

Router::Router(Options options)
    : options_(std::move(options)),
      server_(SyncHandlerAdapter(
                  [this](const HttpRequest& request) { return Handle(request); }),
              options_) {}

Router::~Router() { Stop(); }

common::Status Router::Start() {
  if (options_.backends.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  if (backends_.empty()) {
    for (const std::string& text : options_.backends) {
      CF_ASSIGN_OR_RETURN(const Endpoint endpoint, ParseEndpoint(text));
      auto backend = std::make_unique<Backend>();
      backend->name = text;
      backend->client_options.host = endpoint.host;
      backend->client_options.port = endpoint.port;
      backend->client_options.timeout_seconds =
          options_.proxy_timeout_seconds;
      backend->client_options.limits = options_.limits;
      backends_.push_back(std::move(backend));
    }
    const int virtual_nodes = std::max(1, options_.virtual_nodes);
    for (size_t b = 0; b < backends_.size(); ++b) {
      for (int v = 0; v < virtual_nodes; ++v) {
        ring_.emplace_back(
            RingHash(common::StrFormat("%s#%d", backends_[b]->name.c_str(), v)),
            static_cast<int>(b));
      }
    }
    std::sort(ring_.begin(), ring_.end());
    // Placement and affinity must agree: the "@<key>" suffix is the ONLY
    // thing affinity routing sees, so the key attached to a created
    // session must hash to the backend that actually holds it — even when
    // health-based placement skipped the first ring choice. Precompute,
    // per backend, a canonical key whose ring owner IS that backend;
    // creates stamp the placed backend's key (keys need not be unique —
    // bare ids are unique per backend, and the key pins the backend).
    session_keys_.assign(backends_.size(), std::string());
    size_t keyed = 0;
    for (uint64_t k = 0; keyed < backends_.size(); ++k) {
      if (k > 4096 * backends_.size()) {
        return Status::Internal(
            "consistent-hash ring left a backend without a routable key; "
            "raise virtual_nodes");
      }
      const std::string key = std::to_string(k);
      const int owner =
          RingOrder(RingHash("skey-" + key), /*healthy_first=*/false).front();
      std::string& slot = session_keys_[static_cast<size_t>(owner)];
      if (slot.empty()) {
        slot = key;
        ++keyed;
      }
    }
  }
  return server_.Start();
}

void Router::Stop() { server_.Stop(); }

bool Router::BackendHealthy(int backend, double now) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return now >= backends_[static_cast<size_t>(backend)]->ejected_until;
}

void Router::MarkBackendFailure(int backend) {
  const double now = MonotonicSeconds();
  std::lock_guard<std::mutex> lock(health_mutex_);
  Backend& b = *backends_[static_cast<size_t>(backend)];
  ++b.consecutive_failures;
  if (b.consecutive_failures >= options_.eject_after_failures) {
    b.ejected_until = now + options_.reprobe_seconds;
  }
}

void Router::MarkBackendSuccess(int backend) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  Backend& b = *backends_[static_cast<size_t>(backend)];
  b.consecutive_failures = 0;
  b.ejected_until = 0.0;
}

std::vector<int> Router::RingOrder(uint64_t hash, bool healthy_first) const {
  // Distinct backends in successor order from the ring position.
  std::vector<int> order;
  std::vector<bool> seen(backends_.size(), false);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(hash, 0));
  for (size_t walked = 0;
       walked < ring_.size() && order.size() < backends_.size(); ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[static_cast<size_t>(it->second)]) {
      seen[static_cast<size_t>(it->second)] = true;
      order.push_back(it->second);
    }
    ++it;
  }
  if (healthy_first) {
    // For placement (session create): prefer a live backend, successor
    // order preserved within each class. Affinity lookups must NOT use
    // this — every backend mints the same bare ids ("s-1", "s-2", ...),
    // so rerouting a lookup to a non-owner can resolve a *different*
    // session that happens to share the bare id.
    const double now = MonotonicSeconds();
    std::stable_partition(order.begin(), order.end(), [this, now](int b) {
      return BackendHealthy(b, now);
    });
  }
  return order;
}

std::vector<int> Router::LeastLoadedOrder() const {
  // Snapshot the in-flight counts before sorting: a comparator reading
  // live atomics can see them change mid-sort, breaking the strict weak
  // ordering std::stable_sort requires.
  std::vector<int> order(backends_.size());
  std::vector<int> active(backends_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
    active[i] = backends_[i]->active.load(std::memory_order_relaxed);
  }
  const double now = MonotonicSeconds();
  std::stable_sort(order.begin(), order.end(), [&active](int a, int b) {
    return active[static_cast<size_t>(a)] < active[static_cast<size_t>(b)];
  });
  // Ejected backends go last (forced probe when nothing else is left).
  std::stable_partition(order.begin(), order.end(), [this, now](int b) {
    return BackendHealthy(b, now);
  });
  return order;
}

common::Result<HttpResponse> Router::ProxyTo(int backend,
                                             HttpRequest request) {
  Backend& b = *backends_[static_cast<size_t>(backend)];
  StripHopHeaders(request.headers);

  std::unique_ptr<HttpClient> client;
  {
    std::lock_guard<std::mutex> lock(b.clients_mutex);
    if (!b.idle_clients.empty()) {
      client = std::move(b.idle_clients.back());
      b.idle_clients.pop_back();
    }
  }
  if (client == nullptr) {
    client = std::make_unique<HttpClient>(b.client_options);
  }

  b.active.fetch_add(1, std::memory_order_relaxed);
  auto response = client->Call(request);
  b.active.fetch_sub(1, std::memory_order_relaxed);

  if (!response.ok()) {
    // The connection state is suspect; let the client die with it.
    MarkBackendFailure(backend);
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++proxy_failures_;
    return response.status();
  }
  MarkBackendSuccess(backend);
  b.proxied.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(b.clients_mutex);
    b.idle_clients.push_back(std::move(client));
  }
  StripHopHeaders(response->headers);
  return response;
}

void Router::RewriteSessionId(HttpResponse& response,
                              const std::string& key) {
  if (response.status_code < 200 || response.status_code >= 300) return;
  auto body = JsonValue::Parse(response.body);
  if (!body.ok() || !body->is_object()) return;
  const JsonValue* id = body->Find("session_id");
  if (id == nullptr) return;
  auto text = id->GetString();
  if (!text.ok()) return;
  body->Set("session_id", *text + "@" + key);
  response.body = body->Dump();
}

HttpResponse Router::HandleCreateSession(const HttpRequest& request) {
  if (request.method != "POST") {
    return ErrorResponse(
        Status::InvalidArgument("session collection accepts POST only"));
  }
  // The sequence number only spreads creates around the ring; the id is
  // rewritten with the *placed* backend's canonical key, so even after a
  // healthy-first skip or a transport-failure fallback the key's ring
  // owner is exactly the backend holding the session.
  const std::string spread = std::to_string(
      next_create_seq_.fetch_add(1, std::memory_order_relaxed));
  Status last = Status::Unavailable("no backend reachable");
  for (const int backend :
       RingOrder(RingHash("skey-" + spread), /*healthy_first=*/true)) {
    auto response = ProxyTo(backend, request);
    if (!response.ok()) {
      last = response.status();
      continue;  // transport failure: the next backend can still create
    }
    if (response->status_code >= 200 && response->status_code < 300) {
      RewriteSessionId(*response,
                       session_keys_[static_cast<size_t>(backend)]);
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++sessions_created_;
    }
    return *std::move(response);
  }
  return ErrorResponse(last);
}

HttpResponse Router::HandleSessions(const HttpRequest& request,
                                    const std::string& rest) {
  if (rest.empty()) return HandleCreateSession(request);
  if (rest.front() != '/') {
    return ErrorResponse(Status::NotFound("no route"));
  }
  const size_t slash = rest.find('/', 1);
  const std::string id = rest.substr(
      1, slash == std::string::npos ? std::string::npos : slash - 1);
  const std::string tail =
      slash == std::string::npos ? std::string() : rest.substr(slash);

  const size_t at = id.rfind('@');
  if (at == std::string::npos || at == 0 || at + 1 == id.size()) {
    return ErrorResponse(Status::NotFound(
        "session id \"" + id +
        "\" carries no routing key; ids minted through the router look "
        "like \"s-1@7\""));
  }
  const std::string bare_id = id.substr(0, at);
  const std::string key = id.substr(at + 1);

  // Affinity traffic goes to the key's OWNER only — never re-partitioned
  // by health. Session state lives in exactly one place, and since every
  // backend mints the same bare ids, a lookup sprayed at a non-owner can
  // silently hit an unrelated session with the same bare id. A dead
  // owner's sessions answer 503 until it returns (or the TTL reaps them).
  const std::vector<int> order =
      RingOrder(RingHash("skey-" + key), /*healthy_first=*/false);
  CF_DCHECK(!order.empty());
  HttpRequest proxied = request;
  proxied.target = "/v1/sessions/" + bare_id + tail;
  auto response = ProxyTo(order.front(), proxied);
  if (!response.ok()) {
    return ErrorResponse(Status::Unavailable(
        "backend " + backends_[static_cast<size_t>(order.front())]->name +
        " unreachable: " + response.status().message()));
  }
  RewriteSessionId(*response, key);
  return *std::move(response);
}

HttpResponse Router::ProxyLeastLoaded(const HttpRequest& request) {
  Status last = Status::Unavailable("no backend reachable");
  for (const int backend : LeastLoadedOrder()) {
    auto response = ProxyTo(backend, request);
    if (response.ok()) return *std::move(response);
    last = response.status();
  }
  return ErrorResponse(last);
}

HttpResponse Router::Handle(const HttpRequest& request) {
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++requests_routed_;
  }
  const std::string& target = request.target;
  if (target == "/healthz") {
    if (request.method != "GET") {
      return ErrorResponse(Status::InvalidArgument("healthz is GET-only"));
    }
    const double now = MonotonicSeconds();
    int healthy = 0;
    for (size_t b = 0; b < backends_.size(); ++b) {
      if (BackendHealthy(static_cast<int>(b), now)) ++healthy;
    }
    JsonValue body = JsonValue::MakeObject();
    body.Set("status", "ok");
    body.Set("backends", static_cast<int64_t>(backends_.size()));
    body.Set("healthy_backends", static_cast<int64_t>(healthy));
    return JsonResponse(200, body);
  }
  if (target == "/metricsz") {
    if (request.method != "GET") {
      return ErrorResponse(Status::InvalidArgument("metricsz is GET-only"));
    }
    const Metrics metrics = GetMetrics();
    JsonValue body = JsonValue::MakeObject();
    body.Set("requests_routed", metrics.requests_routed);
    body.Set("proxy_failures", metrics.proxy_failures);
    body.Set("sessions_created", metrics.sessions_created);
    JsonValue backends = JsonValue::MakeArray();
    for (const BackendMetrics& backend : metrics.backends) {
      JsonValue item = JsonValue::MakeObject();
      item.Set("endpoint", backend.endpoint);
      item.Set("proxied", backend.proxied);
      item.Set("ejected", backend.ejected);
      backends.Append(std::move(item));
    }
    body.Set("backends", std::move(backends));
    return JsonResponse(200, body);
  }
  const std::string sessions_prefix = "/v1/sessions";
  if (common::StartsWith(target, sessions_prefix)) {
    return HandleSessions(request, target.substr(sessions_prefix.size()));
  }
  return ProxyLeastLoaded(request);
}

Router::Metrics Router::GetMetrics() const {
  Metrics metrics;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics.requests_routed = requests_routed_;
    metrics.proxy_failures = proxy_failures_;
    metrics.sessions_created = sessions_created_;
  }
  const double now = MonotonicSeconds();
  for (size_t b = 0; b < backends_.size(); ++b) {
    BackendMetrics backend;
    backend.endpoint = backends_[b]->name;
    backend.proxied = backends_[b]->proxied.load(std::memory_order_relaxed);
    backend.ejected = !BackendHealthy(static_cast<int>(b), now);
    metrics.backends.push_back(std::move(backend));
  }
  return metrics;
}

}  // namespace crowdfusion::net
