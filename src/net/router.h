#ifndef CROWDFUSION_NET_ROUTER_H_
#define CROWDFUSION_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/http.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/server_config.h"

namespace crowdfusion::net {

/// The serving front tier: one HTTP endpoint fanning out to N
/// `crowdfusion_cli serve` backends, so the session-table capacity and
/// run throughput of the fleet scale with backend count while clients
/// keep a single address.
///
/// Routing policy:
///  * POST /v1/sessions (create) — the router walks the consistent-hash
///    ring (virtual nodes over the backend names) healthy-first from a
///    rotating spread point, proxies the create to the first backend that
///    answers, and rewrites the returned session id to
///    "<backend id>@<key>" where key is the *placed* backend's canonical
///    routing key (a precomputed key whose ring owner is that backend).
///    Placement and affinity therefore always agree, and the suffix makes
///    the id routable AND globally unique (every backend mints its own
///    "s-1", but the key pins which backend a bare id belongs to).
///  * /v1/sessions/{id}@{key}/... — session affinity: the key maps back
///    through the ring to the owning backend; the suffix is stripped
///    before proxying and re-added to session ids in the response. Ids
///    without a routing key are NotFound at the router. Affinity traffic
///    is never rerouted by health: every backend mints the same bare ids,
///    so a non-owner could silently resolve an unrelated session.
///  * /v1/fusion:run and everything else — proxied to the healthy backend
///    with the fewest in-flight proxied requests (least-loaded), retrying
///    the next backend on transport failure.
///
/// Health: consecutive transport failures eject a backend for
/// reprobe_seconds (same policy as net::ProviderPool); ejected backends
/// are deprioritized for placement and least-loaded proxying until
/// re-probed. A session whose owning backend died answers 503 until the
/// backend returns — the session state died with it; TTL re-creation is
/// the client's move.
///
/// The router holds a per-backend pool of keep-alive HttpClients; a
/// client whose call failed is discarded, not reused.
class Router {
 public:
  /// The unified server config; the router consumes the bind/reactor
  /// sections itself and reads the `backends`/ring knobs from the router
  /// section. `backends` is required non-empty here.
  using Options = ServerConfig;

  explicit Router(Options options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  common::Status Start();
  void Stop();
  int port() const { return server_.port(); }
  bool running() const { return server_.running(); }

  struct BackendMetrics {
    std::string endpoint;
    int64_t proxied = 0;
    bool ejected = false;
  };
  struct Metrics {
    int64_t requests_routed = 0;
    /// Proxy attempts that died in transport (before any backend answer).
    int64_t proxy_failures = 0;
    /// Session creates successfully routed.
    int64_t sessions_created = 0;
    std::vector<BackendMetrics> backends;
  };
  Metrics GetMetrics() const;

 private:
  struct Backend {
    std::string name;
    HttpClient::Options client_options;
    std::mutex clients_mutex;
    /// Keep-alive clients not currently proxying a request.
    std::vector<std::unique_ptr<HttpClient>> idle_clients;
    std::atomic<int> active{0};
    std::atomic<int64_t> proxied{0};
    // Guarded by health_mutex_.
    int consecutive_failures = 0;
    double ejected_until = 0.0;
  };

  HttpResponse Handle(const HttpRequest& request);
  HttpResponse HandleSessions(const HttpRequest& request,
                              const std::string& rest);
  HttpResponse HandleCreateSession(const HttpRequest& request);
  HttpResponse ProxyLeastLoaded(const HttpRequest& request);

  /// One proxied call; counts active/proxied, manages the client pool,
  /// and updates backend health. Transport-level failures come back as a
  /// Result error (the caller decides whether to retry elsewhere).
  common::Result<HttpResponse> ProxyTo(int backend, HttpRequest request);

  bool BackendHealthy(int backend, double now) const;
  void MarkBackendFailure(int backend);
  void MarkBackendSuccess(int backend);

  /// Distinct backends in ring-successor order starting at `hash`. With
  /// `healthy_first`, healthy ones are moved ahead (relative order
  /// preserved within each class) — placement only; affinity lookups
  /// must keep the true owner in front.
  std::vector<int> RingOrder(uint64_t hash, bool healthy_first) const;
  /// Healthy backends by ascending in-flight count.
  std::vector<int> LeastLoadedOrder() const;

  /// Appends "@key" to response.session_id (when present) of a 2xx
  /// proxied session response.
  static void RewriteSessionId(HttpResponse& response,
                               const std::string& key);

  Options options_;
  HttpServer server_;
  std::vector<std::unique_ptr<Backend>> backends_;
  /// (point, backend index), sorted by point.
  std::vector<std::pair<uint64_t, int>> ring_;
  /// Per-backend canonical routing key: session_keys_[b]'s ring owner is
  /// backend b, so ids stamped with it always route back to b. Computed
  /// once in Start().
  std::vector<std::string> session_keys_;
  /// Spreads session creates around the ring; never becomes a routing key.
  std::atomic<int64_t> next_create_seq_{1};

  mutable std::mutex health_mutex_;
  mutable std::mutex metrics_mutex_;
  int64_t requests_routed_ = 0;
  int64_t proxy_failures_ = 0;
  int64_t sessions_created_ = 0;
};

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_ROUTER_H_
