#include "net/server_config.h"

#include <cstdlib>
#include <string>

#include "common/string_util.h"

namespace crowdfusion::net {

using common::Status;

namespace {

Status Positive(const char* name, double value) {
  if (value > 0) return Status::Ok();
  return Status::InvalidArgument(
      common::StrFormat("%s must be > 0 (got %g)", name, value));
}

Status AtLeastOne(const char* name, int value) {
  if (value >= 1) return Status::Ok();
  return Status::InvalidArgument(
      common::StrFormat("%s must be >= 1 (got %d)", name, value));
}

common::Result<int> ParseInt(const char* flag, const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    return Status::InvalidArgument(
        common::StrFormat("%s wants an integer, got \"%s\"", flag, text));
  }
  return static_cast<int>(value);
}

common::Result<double> ParseDouble(const char* flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    return Status::InvalidArgument(
        common::StrFormat("%s wants a number, got \"%s\"", flag, text));
  }
  return value;
}

}  // namespace

common::Status ServerConfig::Validate() const {
  if (host.empty()) return Status::InvalidArgument("host must be non-empty");
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument(
        common::StrFormat("port must be in [0, 65535] (got %d)", port));
  }
  CF_RETURN_IF_ERROR(AtLeastOne("threads", threads));
  CF_RETURN_IF_ERROR(AtLeastOne("listen_backlog", listen_backlog));
  CF_RETURN_IF_ERROR(AtLeastOne("max_connections", max_connections));
  CF_RETURN_IF_ERROR(AtLeastOne("max_queue_depth", max_queue_depth));
  if (retry_after_seconds < 0) {
    return Status::InvalidArgument("retry_after_seconds must be >= 0");
  }
  CF_RETURN_IF_ERROR(
      Positive("header_timeout_seconds", header_timeout_seconds));
  CF_RETURN_IF_ERROR(Positive("read_timeout_seconds", read_timeout_seconds));
  CF_RETURN_IF_ERROR(
      Positive("write_timeout_seconds", write_timeout_seconds));
  CF_RETURN_IF_ERROR(Positive("idle_timeout_seconds", idle_timeout_seconds));
  if (limits.max_header_bytes == 0 || limits.max_body_bytes == 0) {
    return Status::InvalidArgument("parse limits must be > 0");
  }
  CF_RETURN_IF_ERROR(Positive("session_ttl_seconds", session_ttl_seconds));
  CF_RETURN_IF_ERROR(AtLeastOne("max_sessions", max_sessions));
  CF_RETURN_IF_ERROR(AtLeastOne("virtual_nodes", virtual_nodes));
  CF_RETURN_IF_ERROR(
      AtLeastOne("eject_after_failures", eject_after_failures));
  CF_RETURN_IF_ERROR(Positive("reprobe_seconds", reprobe_seconds));
  CF_RETURN_IF_ERROR(
      Positive("proxy_timeout_seconds", proxy_timeout_seconds));
  return Status::Ok();
}

common::Result<bool> ApplyServerFlag(int argc, char** argv, int* index,
                                     ServerConfig* config) {
  const std::string flag = argv[*index];
  const auto value = [&]() -> common::Result<const char*> {
    if (*index + 1 >= argc) {
      return Status::InvalidArgument(flag + " needs a value");
    }
    return argv[++*index];
  };

  if (flag == "--host") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    config->host = text;
  } else if (flag == "--port") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->port, ParseInt("--port", text));
  } else if (flag == "--threads") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->threads, ParseInt("--threads", text));
  } else if (flag == "--listen-backlog") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->listen_backlog,
                        ParseInt("--listen-backlog", text));
  } else if (flag == "--max-connections") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->max_connections,
                        ParseInt("--max-connections", text));
  } else if (flag == "--queue-depth") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->max_queue_depth,
                        ParseInt("--queue-depth", text));
  } else if (flag == "--retry-after") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->retry_after_seconds,
                        ParseInt("--retry-after", text));
  } else if (flag == "--header-timeout") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->header_timeout_seconds,
                        ParseDouble("--header-timeout", text));
  } else if (flag == "--read-timeout") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->read_timeout_seconds,
                        ParseDouble("--read-timeout", text));
  } else if (flag == "--write-timeout") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->write_timeout_seconds,
                        ParseDouble("--write-timeout", text));
  } else if (flag == "--idle-timeout") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->idle_timeout_seconds,
                        ParseDouble("--idle-timeout", text));
  } else if (flag == "--max-header-bytes") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(const int bytes,
                        ParseInt("--max-header-bytes", text));
    config->limits.max_header_bytes = static_cast<size_t>(bytes);
  } else if (flag == "--max-body-bytes") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(const int bytes, ParseInt("--max-body-bytes", text));
    config->limits.max_body_bytes = static_cast<size_t>(bytes);
  } else if (flag == "--session-ttl") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->session_ttl_seconds,
                        ParseDouble("--session-ttl", text));
  } else if (flag == "--max-sessions") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->max_sessions,
                        ParseInt("--max-sessions", text));
  } else if (flag == "--backends") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    config->backends = common::Split(text, ',');
  } else if (flag == "--virtual-nodes") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->virtual_nodes,
                        ParseInt("--virtual-nodes", text));
  } else if (flag == "--proxy-timeout") {
    CF_ASSIGN_OR_RETURN(const char* text, value());
    CF_ASSIGN_OR_RETURN(config->proxy_timeout_seconds,
                        ParseDouble("--proxy-timeout", text));
  } else {
    return false;
  }
  return true;
}

const char* ServerFlagUsage() {
  return "  --host H              bind address (default 127.0.0.1)\n"
         "  --port N              bind port; 0 = ephemeral\n"
         "  --threads N           handler worker threads (default 4)\n"
         "  --listen-backlog N    listen(2) backlog (default 256)\n"
         "  --max-connections N   open-connection cap; beyond it accepts\n"
         "                        are answered 503 and closed (default "
         "10000)\n"
         "  --queue-depth N       in-flight request cap; beyond it parsed\n"
         "                        requests shed 503 + Retry-After "
         "(default 128)\n"
         "  --retry-after S       Retry-After advertised on shed 503s "
         "(default 1)\n"
         "  --header-timeout S    first byte -> end of header block "
         "(default 10)\n"
         "  --read-timeout S      first byte -> full request frame "
         "(default 10)\n"
         "  --write-timeout S     response write stall cap (default 10)\n"
         "  --idle-timeout S      keep-alive idleness cap (default 10)\n"
         "  --max-header-bytes N  header-block parse cap (default 16384)\n"
         "  --max-body-bytes N    body parse cap (default 8388608)\n"
         "  --session-ttl S       session idle eviction, serve only "
         "(default 300)\n"
         "  --max-sessions N      live-session cap, serve only (default "
         "64)\n"
         "  --backends LIST       comma-separated host:port, route only\n"
         "  --virtual-nodes N     ring points per backend, route only "
         "(default 64)\n"
         "  --proxy-timeout S     per proxied call, route only (default "
         "30)\n";
}

}  // namespace crowdfusion::net
