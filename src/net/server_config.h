#ifndef CROWDFUSION_NET_SERVER_CONFIG_H_
#define CROWDFUSION_NET_SERVER_CONFIG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "net/http.h"

namespace crowdfusion::net {

/// The one knob surface every server in this repo shares. HttpServer,
/// Router, service::HttpFrontend, and LoopbackCrowdServer all configure
/// from this struct (directly or by deriving their Options from it), and
/// `crowdfusion_cli serve|route` map their flags onto it through
/// ApplyServerFlag — so the serve and route vocabularies cannot drift
/// apart and a knob added here is immediately available everywhere.
///
/// Unused knobs are inert: a plain HttpServer ignores the session and
/// router sections, the router ignores the session section, and so on.
/// Validate() checks the whole struct regardless, so an out-of-range
/// value is rejected at Start() even when the knob would have been inert.
struct ServerConfig {
  // --- Bind + workers -----------------------------------------------------
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (read back via port()).
  int port = 0;
  /// Handler worker threads (fusion compute; the reactor itself is one
  /// dedicated thread and is not counted here).
  int threads = 4;
  /// listen(2) backlog. Mostly irrelevant now that accept is non-blocking
  /// and drained in a loop, but a burst of >backlog SYNs between two loop
  /// iterations would otherwise be refused by the kernel.
  int listen_backlog = 256;

  // --- Reactor limits / backpressure --------------------------------------
  /// Ceiling on concurrently open connections. Accepts beyond it are
  /// answered with an immediate canned 503 + close instead of silently
  /// queueing in the kernel.
  int max_connections = 10000;
  /// Ceiling on requests dispatched to workers but not yet answered.
  /// Beyond it, fully parsed requests are shed with 503 + Retry-After on
  /// a still-healthy keep-alive connection.
  int max_queue_depth = 128;
  /// Advertised in the Retry-After header of shed (503) responses.
  int retry_after_seconds = 1;

  // --- Timeouts (seconds, on the reactor's timer wheel) --------------------
  /// First byte of a request to the end of its header block.
  double header_timeout_seconds = 10.0;
  /// First byte of a request to its full frame (headers + body). A
  /// slow-drip client cannot extend it by trickling bytes.
  double read_timeout_seconds = 10.0;
  /// Progress stall while flushing a response (EAGAIN with no drain).
  double write_timeout_seconds = 10.0;
  /// Keep-alive idleness between requests.
  double idle_timeout_seconds = 10.0;

  // --- Parse limits --------------------------------------------------------
  HttpLimits limits;

  // --- Session-serving knobs (service::HttpFrontend) -----------------------
  /// Idle sessions are evicted this many seconds after their last touch.
  double session_ttl_seconds = 300.0;
  /// Hard cap on live sessions; creation beyond it is ResourceExhausted.
  int max_sessions = 64;

  // --- Router knobs (net::Router) ------------------------------------------
  /// Backend frontends as "host:port". Required non-empty for the router.
  std::vector<std::string> backends;
  /// Ring points per backend: more = smoother key spread.
  int virtual_nodes = 64;
  int eject_after_failures = 3;
  double reprobe_seconds = 2.0;
  /// Per proxied call (a fusion:run may compute for a while).
  double proxy_timeout_seconds = 30.0;

  /// Range-checks every knob; servers call it from Start() so a bad CLI
  /// value fails loudly instead of producing a wedged reactor.
  common::Status Validate() const;
};

/// Maps one CLI flag at argv[*index] onto `config`, consuming its value
/// argument when present. Returns true when the flag was recognized and
/// applied (with *index advanced past the value), false when the flag is
/// not a server knob (the caller continues with command-specific flags),
/// and InvalidArgument when a recognized flag is missing its value or the
/// value does not parse. Shared by `crowdfusion_cli serve` and `route`:
///   --host H --port N --threads N --listen-backlog N
///   --max-connections N --queue-depth N --retry-after SECONDS
///   --header-timeout S --read-timeout S --write-timeout S --idle-timeout S
///   --max-header-bytes N --max-body-bytes N
///   --session-ttl S --max-sessions N
///   --backends host:port,host:port --virtual-nodes N --proxy-timeout S
common::Result<bool> ApplyServerFlag(int argc, char** argv, int* index,
                                     ServerConfig* config);

/// One usage line per ApplyServerFlag knob, for the CLI help text.
const char* ServerFlagUsage();

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_SERVER_CONFIG_H_
