#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "common/string_util.h"

namespace crowdfusion::net {

using common::Status;

namespace {

Status ErrnoStatus(const char* what) {
  return Status::Unavailable(
      common::StrFormat("%s: %s", what, std::strerror(errno)));
}

/// poll(2) for one event with a seconds timeout. Returns true when the
/// event fired, false on timeout; EINTR retries with the remaining budget
/// folded into the next full wait (close enough for socket deadlines).
common::Result<bool> PollOne(int fd, short events, double timeout_seconds) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  const int timeout_ms =
      timeout_seconds < 0
          ? -1
          : static_cast<int>(std::min(std::ceil(timeout_seconds * 1e3),
                                      static_cast<double>(1 << 30)));
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return ErrnoStatus("poll");
  }
}

common::Result<struct sockaddr_in> MakeAddress(const std::string& host,
                                               int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument(
        common::StrFormat("port %d out of range", port));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address \"" + host + "\"");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

common::Result<size_t> Socket::Read(char* buf, size_t len,
                                    double timeout_seconds) {
  if (!valid()) return Status::Unavailable("read on closed socket");
  CF_ASSIGN_OR_RETURN(const bool readable,
                      PollOne(fd_, POLLIN, timeout_seconds));
  if (!readable) {
    return Status::DeadlineExceeded("socket read timed out");
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return ErrnoStatus("recv");
  }
}

Status Socket::WriteAll(std::string_view data, double timeout_seconds) {
  if (!valid()) return Status::Unavailable("write on closed socket");
  size_t offset = 0;
  while (offset < data.size()) {
    CF_ASSIGN_OR_RETURN(const bool writable,
                        PollOne(fd_, POLLOUT, timeout_seconds));
    if (!writable) {
      return Status::DeadlineExceeded("socket write timed out");
    }
    const ssize_t n = ::send(fd_, data.data() + offset, data.size() - offset,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    offset += static_cast<size_t>(n);
  }
  return Status::Ok();
}

void Socket::ShutdownBoth() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::ShutdownWrite() {
  if (valid()) ::shutdown(fd_, SHUT_WR);
}

bool Socket::LooksClosed() const {
  if (!valid()) return true;
  char byte = 0;
  const ssize_t n = ::recv(fd_, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;  // orderly shutdown already received
  if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
    return true;  // reset or other hard error
  }
  return false;
}

void Socket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

common::Result<Socket> ConnectTcp(const std::string& host, int port,
                                  double timeout_seconds) {
  CF_ASSIGN_OR_RETURN(const struct sockaddr_in addr, MakeAddress(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket socket(fd);

  // Non-blocking connect so the timeout applies to the handshake too.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return ErrnoStatus("connect");
  if (rc != 0) {
    CF_ASSIGN_OR_RETURN(const bool ready,
                        PollOne(fd, POLLOUT, timeout_seconds));
    if (!ready) return Status::DeadlineExceeded("connect timed out");
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      errno = error != 0 ? error : errno;
      return ErrnoStatus("connect");
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; I/O polls explicitly

  // Request/response traffic: flush small writes immediately.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

common::Result<Listener> Listener::Bind(const std::string& host, int port,
                                        int backlog) {
  CF_ASSIGN_OR_RETURN(struct sockaddr_in addr, MakeAddress(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Listener listener;
  listener.fd_ = fd;

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (::listen(fd, backlog) != 0) return ErrnoStatus("listen");

  // Resolve port 0 to the kernel's ephemeral pick.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname");
  }
  listener.port_ = static_cast<int>(ntohs(addr.sin_port));
  return listener;
}

common::Result<Socket> Listener::Accept(double timeout_seconds) {
  if (!valid()) return Status::Unavailable("accept on closed listener");
  CF_ASSIGN_OR_RETURN(const bool ready,
                      PollOne(fd_, POLLIN, timeout_seconds));
  if (!ready) return Status::DeadlineExceeded("accept timed out");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("accept");
  }
}

void Listener::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace crowdfusion::net
