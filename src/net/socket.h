#ifndef CROWDFUSION_NET_SOCKET_H_
#define CROWDFUSION_NET_SOCKET_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"

namespace crowdfusion::net {

/// RAII wrapper over one connected TCP socket (POSIX fd). All blocking
/// I/O goes through poll(2) with an explicit timeout, so a stalled peer
/// can never hang a serving thread indefinitely; writes use MSG_NOSIGNAL
/// so a peer that closed mid-response surfaces as a Status, not SIGPIPE.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads up to `len` bytes. Returns 0 on orderly peer close (EOF),
  /// DeadlineExceeded when nothing arrived within `timeout_seconds`, and
  /// Unavailable on connection errors.
  common::Result<size_t> Read(char* buf, size_t len, double timeout_seconds);

  /// Writes all of `data`, waiting up to `timeout_seconds` for the socket
  /// to drain between chunks.
  common::Status WriteAll(std::string_view data, double timeout_seconds);

  /// Half-closes both directions, unblocking any thread inside Read.
  /// Safe to call from another thread while Read is in flight (the fd
  /// itself stays open until Close, so the fd cannot be reused under the
  /// reader).
  void ShutdownBoth();

  /// Half-closes the write side only (sends FIN; reads stay open) — the
  /// client half of the reactor's half-close tests.
  void ShutdownWrite();

  /// Non-blocking liveness probe (MSG_PEEK): true when the peer already
  /// closed or errored the connection. Used before reusing a keep-alive
  /// connection for a non-idempotent request, where a blind post-send
  /// retry would not be safe.
  bool LooksClosed() const;

  void Close();

 private:
  int fd_ = -1;
};

/// Blocking TCP connect with a timeout. `host` is a numeric address
/// ("127.0.0.1"); name resolution is deliberately out of scope.
common::Result<Socket> ConnectTcp(const std::string& host, int port,
                                  double timeout_seconds);

/// A listening TCP socket. Bind with port 0 to let the kernel pick an
/// ephemeral port (the test-suite contract: parallel ctest never collides),
/// then read the actual port back via port().
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener() { Close(); }

  /// Binds and listens on host:port with SO_REUSEADDR.
  static common::Result<Listener> Bind(const std::string& host, int port,
                                       int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The bound port (resolves port 0 to the kernel's pick).
  int port() const { return port_; }

  /// Waits up to `timeout_seconds` for a connection. DeadlineExceeded on
  /// timeout; Unavailable once the listener is closed.
  common::Result<Socket> Accept(double timeout_seconds);

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_SOCKET_H_
