#include "net/wire.h"

#include <charconv>
#include <limits>
#include <utility>

#include "common/json_util.h"
#include "common/string_util.h"

namespace crowdfusion::net {

using common::JsonValue;
using common::Status;
using common::StatusCode;

int HttpStatusFromCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

namespace {

common::Result<StatusCode> ParseStatusCodeName(const std::string& name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kNotFound,     StatusCode::kResourceExhausted,
      StatusCode::kInternal,     StatusCode::kDeadlineExceeded,
      StatusCode::kUnavailable,
  };
  for (const StatusCode code : kCodes) {
    if (name == common::StatusCodeName(code)) return code;
  }
  return Status::InvalidArgument("unknown status code name \"" + name + "\"");
}

Status MakeStatus(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::Ok();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
  }
  return Status::Internal(std::move(message));
}

StatusCode CodeForHttpStatus(int http_status) {
  switch (http_status) {
    case 400:
      return StatusCode::kInvalidArgument;
    case 404:
    case 410:
      return StatusCode::kNotFound;
    case 408:
      return StatusCode::kDeadlineExceeded;
    case 409:
      return StatusCode::kFailedPrecondition;
    case 413:
    case 429:
    case 431:
      return StatusCode::kResourceExhausted;
    case 503:
      return StatusCode::kUnavailable;
    default:
      return StatusCode::kInternal;
  }
}

}  // namespace

JsonValue StatusToJson(const Status& status) {
  JsonValue error = JsonValue::MakeObject();
  error.Set("code", common::StatusCodeName(status.code()));
  error.Set("message", status.message());
  JsonValue body = JsonValue::MakeObject();
  body.Set("error", std::move(error));
  return body;
}

Status StatusFromJson(const JsonValue& body, int fallback_http_status) {
  if (const JsonValue* error = body.Find("error")) {
    std::string name;
    std::string message;
    if (const JsonValue* code = error->Find("code"); code != nullptr) {
      if (auto text = code->GetString(); text.ok()) name = *text;
    }
    if (const JsonValue* text = error->Find("message"); text != nullptr) {
      if (auto value = text->GetString(); value.ok()) message = *value;
    }
    if (auto code = ParseStatusCodeName(name); code.ok()) {
      return MakeStatus(*code, std::move(message));
    }
  }
  return MakeStatus(CodeForHttpStatus(fallback_http_status),
                    common::StrFormat("HTTP %d", fallback_http_status));
}

HttpResponse JsonResponse(int status_code, const JsonValue& body) {
  HttpResponse response;
  response.status_code = status_code;
  response.headers.push_back({"Content-Type", "application/json"});
  response.body = body.Dump();
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusFromCode(status.code()),
                      StatusToJson(status));
}

common::Result<JsonValue> ParseJsonBody(const HttpRequest& request) {
  if (request.body.empty()) {
    return Status::InvalidArgument("request body must be a JSON document");
  }
  return JsonValue::Parse(request.body);
}

common::Result<JsonValue> ExpectJson(const HttpResponse& response) {
  if (response.status_code >= 200 && response.status_code < 300) {
    auto body = JsonValue::Parse(response.body);
    if (!body.ok()) {
      return Status::Unavailable("malformed JSON from server: " +
                                 body.status().message());
    }
    return body;
  }
  if (auto body = JsonValue::Parse(response.body); body.ok()) {
    return StatusFromJson(*body, response.status_code);
  }
  return MakeStatus(CodeForHttpStatus(response.status_code),
                    common::StrFormat("HTTP %d", response.status_code));
}

common::Result<Endpoint> ParseEndpoint(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Status::InvalidArgument("endpoint must be \"host:port\", got \"" +
                                   text + "\"");
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string_view port_text = std::string_view(text).substr(colon + 1);
  const auto [ptr, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), endpoint.port);
  if (ec != std::errc() || ptr != port_text.data() + port_text.size() ||
      endpoint.port < 1 || endpoint.port > 65535) {
    return Status::InvalidArgument("bad endpoint port in \"" + text + "\"");
  }
  return endpoint;
}

JsonValue TicketOptionsToJson(const core::TicketOptions& options) {
  JsonValue json = JsonValue::MakeObject();
  json.Set("deadline_seconds", options.deadline_seconds);
  json.Set("max_attempts", options.max_attempts);
  json.Set("retry_backoff_seconds", options.retry_backoff_seconds);
  return json;
}

common::Result<core::TicketOptions> TicketOptionsFromJson(
    const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("ticket options must be an object");
  }
  core::TicketOptions options;
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "deadline_seconds",
                                            &options.deadline_seconds));
  CF_RETURN_IF_ERROR(
      common::JsonReadInt(json, "max_attempts", &options.max_attempts));
  CF_RETURN_IF_ERROR(common::JsonReadDouble(json, "retry_backoff_seconds",
                                            &options.retry_backoff_seconds));
  return options;
}

}  // namespace crowdfusion::net
