#ifndef CROWDFUSION_NET_WIRE_H_
#define CROWDFUSION_NET_WIRE_H_

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "core/async_provider.h"
#include "core/registry.h"
#include "net/http.h"

namespace crowdfusion::net {

/// JSON-over-HTTP conventions shared by every wire in this repo (the
/// serving front-end, the crowd ticket protocol, and their clients):
///
///  * Success bodies are JSON objects; errors are
///    {"error": {"code": "<StatusCodeName>", "message": "..."}} with the
///    HTTP status mapped from the StatusCode, so a common::Status survives
///    a round trip over the wire with code and message intact.
///  * Requests and responses are Content-Type: application/json.

/// HTTP status for a StatusCode (InvalidArgument -> 400, NotFound -> 404,
/// DeadlineExceeded -> 408, ResourceExhausted -> 429, Unavailable -> 503,
/// everything else -> 500; Ok -> 200).
int HttpStatusFromCode(common::StatusCode code);

/// The {"error": {...}} envelope.
common::JsonValue StatusToJson(const common::Status& status);

/// Reconstructs a Status from an error envelope (or from a bare HTTP
/// status when the body carries no envelope — `fallback_http_status`
/// picks the code then).
common::Status StatusFromJson(const common::JsonValue& body,
                              int fallback_http_status);

/// 200/xx response carrying a JSON body.
HttpResponse JsonResponse(int status_code, const common::JsonValue& body);

/// Error response for a non-OK status.
HttpResponse ErrorResponse(const common::Status& status);

/// Parses a request body as one JSON document.
common::Result<common::JsonValue> ParseJsonBody(const HttpRequest& request);

/// Interprets an HTTP response under the conventions above: 2xx parses
/// the body as JSON; anything else reconstructs the transported Status.
common::Result<common::JsonValue> ExpectJson(const HttpResponse& response);

/// "host:port" spelling used by ProviderSpec::endpoint.
struct Endpoint {
  std::string host;
  int port = 0;
};
common::Result<Endpoint> ParseEndpoint(const std::string& text);

/// (Universe configs — remote provider templates — travel as
/// core::ProviderSpecToJson documents; see core/spec_json.h. One field
/// list serves the service request wire and this one.)

common::JsonValue TicketOptionsToJson(const core::TicketOptions& options);
common::Result<core::TicketOptions> TicketOptionsFromJson(
    const common::JsonValue& json);

}  // namespace crowdfusion::net

#endif  // CROWDFUSION_NET_WIRE_H_
